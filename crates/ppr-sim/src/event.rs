//! The deterministic discrete-event core.
//!
//! Everything time-ordered in the simulator — traffic arrivals, CSMA
//! attempts, transmission starts and ends, reception completions, ARQ
//! timers — flows through one [`EventQueue`]. The default implementation
//! is a binary heap ([`BinaryHeapQueue`]), but the queue is a trait so a
//! calendar queue or ladder queue can slot in later without touching the
//! drivers.
//!
//! ## The ordering key: `(time, priority, seq)`
//!
//! Determinism is the whole point. Every scheduled event gets a total,
//! seed-stable ordering key [`EventKey`] compared lexicographically:
//!
//! 1. **`time`** — the chip-clock timestamp (2 Mchip/s, see
//!    [`ppr_phy::chips::CHIP_RATE_HZ`]);
//! 2. **`priority`** — a caller-chosen class/minor pair (see
//!    [`priority`]) that fixes the order of *different kinds* of events
//!    scheduled for the same chip (e.g. a frame that ends at chip `t`
//!    is processed before a frame that starts at chip `t`, because end
//!    times are exclusive);
//! 3. **`seq`** — a per-queue push counter that breaks every remaining
//!    tie in schedule order.
//!
//! No two events ever compare equal, so the pop order is a pure function
//! of the schedule calls — independent of heap internals, worker-thread
//! scheduling, or iteration order of any container. There is no
//! `HashMap`, wall clock, or `thread_rng` anywhere in this module
//! (enforced by ppr-lint's `determinism` lint).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The total ordering key of one scheduled event: compared as the tuple
/// `(time, priority, seq)` — see the module docs for what each field
/// pins down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Chip-clock timestamp.
    pub time: u64,
    /// Same-time class/minor order (see [`priority`]).
    pub priority: u64,
    /// Push counter: the final, always-unique tie-break.
    pub seq: u64,
}

/// Packs a same-time ordering class and a minor index into one
/// [`EventKey::priority`] word: `class` orders *kinds* of events at the
/// same chip, `minor` orders events of the same kind (e.g. by sender).
pub const fn priority(class: u32, minor: u32) -> u64 {
    ((class as u64) << 32) | minor as u64
}

/// Priority classes for the reception drivers, in same-time pop order:
/// frame ends (exclusive) resolve before timers, timers before frame
/// starts at the same chip.
///
/// The timeline generator uses its own two classes ([`prio::ARRIVAL`],
/// [`prio::ATTEMPT`]) — it never shares a queue with the reception
/// drivers, so the two class spaces are independent.
pub mod prio {
    /// A transmission's last chip has passed (end times are exclusive).
    pub const TX_END: u32 = 0;
    /// A reception completes (same instant as the frame end).
    pub const RECEPTION: u32 = 1;
    /// An ARQ timer fires.
    pub const ARQ_TIMER: u32 = 2;
    /// A new transmission starts.
    pub const TX_START: u32 = 3;
    /// A jammer actor emits (or re-evaluates) a burst.
    pub const JAM_BURST: u32 = 4;
    /// A scheduled node crash or restart takes effect.
    pub const NODE_FAULT: u32 = 5;

    /// Timeline generator: a packet arrival (processed before attempts
    /// at the same chip, matching the legacy heap's `Ev` ordering).
    pub const ARRIVAL: u32 = 0;
    /// Timeline generator: a CSMA transmit attempt.
    pub const ATTEMPT: u32 = 1;
}

/// The event vocabulary shared by the timeline generator, the testbed
/// reception driver, and the mesh flood driver. Payload-heavy state
/// (prepared chip captures, decode outcomes) stays in driver-side
/// stores; events carry only indices into them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A new packet arrives at a sender's queue.
    TrafficArrival {
        /// Sender index.
        sender: usize,
    },
    /// A sender tries to transmit the head of its queue (CSMA attempt).
    TxAttempt {
        /// Sender index.
        sender: usize,
    },
    /// A transmission's first chip hits the air.
    TxStart {
        /// Index into the driver's transmission store.
        tx: usize,
    },
    /// A transmission's last chip has passed.
    TxEnd {
        /// Index into the driver's transmission store.
        tx: usize,
    },
    /// A receiver finishes capturing a frame and can evaluate it.
    ReceptionComplete {
        /// Index into the driver's transmission store.
        tx: usize,
        /// Receiver node index.
        receiver: usize,
        /// Driver-assigned output slot (testbed driver: the
        /// receiver-major reference position of this reception).
        slot: usize,
    },
    /// A PP-ARQ feedback timer fires at a receiver.
    ArqTimer {
        /// The waiting receiver node.
        node: usize,
        /// ARQ round this timer belongs to (stale timers are ignored).
        round: u8,
    },
    /// A self-scheduling jammer actor wakes up: it records the burst
    /// for its current slot and schedules the next wake-up.
    JamBurst {
        /// Jammer actor index (a single jammer today, but the event
        /// carries the index so a fleet needs no format change).
        jammer: usize,
    },
    /// A scheduled node fault takes effect: `up == false` crashes the
    /// node (volatile reception state is lost), `up == true` restarts
    /// it.
    NodeFault {
        /// The affected node.
        node: usize,
        /// Restart (`true`) or crash (`false`).
        up: bool,
    },
}

/// A deterministic discrete-event queue.
///
/// `schedule` assigns the `(time, priority, seq)` key (the queue owns
/// the `seq` counter); `pop` returns events in strictly increasing key
/// order. Implementations must be deterministic: the pop sequence is a
/// pure function of the schedule sequence.
pub trait EventQueue<E> {
    /// Schedules `event` at `time` with a same-time `priority`, returns
    /// the assigned key.
    fn schedule(&mut self, time: u64, priority: u64, event: E) -> EventKey;

    /// Removes and returns the minimum-key event.
    fn pop(&mut self) -> Option<(EventKey, E)>;

    /// Events currently scheduled.
    fn len(&self) -> usize;

    /// True when nothing is scheduled.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events dispatched (popped) so far — the numerator of every
    /// events/sec figure.
    fn dispatched(&self) -> u64;
}

/// One heap entry: ordered by key alone, so the payload type needs no
/// `Ord`. Keys are unique (the `seq` counter), so the derived-equality
/// shortcut of comparing keys only is consistent.
struct Entry<E> {
    key: EventKey,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The default [`EventQueue`]: a binary min-heap over [`EventKey`].
///
/// `std::collections::BinaryHeap` is not a stable heap, but stability is
/// irrelevant here: keys are unique by construction, so the pop order is
/// the total key order regardless of internal sift behavior.
// ppr-lint: region(snapshot-state) begin queue state persists across checkpoint/resume
pub struct BinaryHeapQueue<E> {
    // snapshot: serialized as (key, event) pairs sorted by key — heap
    // shape is an implementation detail, the key order is the contract.
    heap: BinaryHeap<Reverse<Entry<E>>>,
    // snapshot: serialized verbatim, so keys assigned after a resume
    // continue the same uniqueness sequence.
    next_seq: u64,
    // snapshot: serialized verbatim — events/sec accounting continues.
    dispatched: u64,
}
// ppr-lint: region(snapshot-state) end

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            dispatched: 0,
        }
    }

    /// An empty queue with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::with_capacity(n),
            next_seq: 0,
            dispatched: 0,
        }
    }

    /// The key of the next event to pop, if any.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|Reverse(e)| e.key)
    }
}

impl<E: Clone> BinaryHeapQueue<E> {
    /// The queue's full state for a snapshot: every scheduled entry as
    /// a `(key, event)` pair **sorted by key** (heap layout is an
    /// implementation detail; the total key order is the contract),
    /// plus the `next_seq` and `dispatched` counters. Keys are captured
    /// verbatim — including the `seq` tie-breaks already assigned — so
    /// a queue rebuilt by [`BinaryHeapQueue::from_state`] pops the
    /// exact same sequence as the original.
    pub fn save_state(&self) -> (Vec<(EventKey, E)>, u64, u64) {
        let mut entries: Vec<(EventKey, E)> = self
            .heap
            .iter()
            .map(|Reverse(e)| (e.key, e.event.clone()))
            .collect();
        entries.sort_by_key(|&(k, _)| k);
        (entries, self.next_seq, self.dispatched)
    }

    /// Rebuilds a queue from a [`BinaryHeapQueue::save_state`] capture,
    /// preserving every key verbatim. Future `schedule` calls continue
    /// from `next_seq`, so resumed runs assign the same keys an
    /// uninterrupted run would.
    pub fn from_state(entries: Vec<(EventKey, E)>, next_seq: u64, dispatched: u64) -> Self {
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for (key, event) in entries {
            debug_assert!(key.seq < next_seq, "entry seq beyond the push counter");
            heap.push(Reverse(Entry { key, event }));
        }
        BinaryHeapQueue {
            heap,
            next_seq,
            dispatched,
        }
    }
}

impl<E> EventQueue<E> for BinaryHeapQueue<E> {
    fn schedule(&mut self, time: u64, priority: u64, event: E) -> EventKey {
        let key = EventKey {
            time,
            priority,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { key, event }));
        key
    }

    fn pop(&mut self) -> Option<(EventKey, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.dispatched += 1;
        Some((e.key, e.event))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = BinaryHeapQueue::new();
        q.schedule(30, 0, "c");
        q.schedule(10, 0, "a");
        q.schedule(20, 0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(q.dispatched(), 3);
    }

    #[test]
    fn priority_orders_same_time_events() {
        let mut q = BinaryHeapQueue::new();
        q.schedule(5, priority(prio::TX_START, 0), "start");
        q.schedule(5, priority(prio::NODE_FAULT, 0), "fault");
        q.schedule(5, priority(prio::TX_END, 0), "end");
        q.schedule(5, priority(prio::JAM_BURST, 0), "jam");
        q.schedule(5, priority(prio::ARQ_TIMER, 0), "timer");
        q.schedule(5, priority(prio::RECEPTION, 0), "rx");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["end", "rx", "timer", "start", "jam", "fault"]);
    }

    #[test]
    fn seq_breaks_remaining_ties_in_schedule_order() {
        let mut q = BinaryHeapQueue::new();
        for i in 0..100 {
            q.schedule(7, 3, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn keys_are_unique_and_monotone_under_interleaved_ops() {
        let mut q = BinaryHeapQueue::new();
        let mut popped: Vec<EventKey> = Vec::new();
        // Interleave pushes and pops; popped keys must be strictly
        // increasing whenever no later push undercuts them (here all
        // pushes are at non-decreasing times, so the full pop sequence
        // is strictly increasing).
        for t in 0..50u64 {
            q.schedule(t, priority(prio::TX_START, (t % 3) as u32), ());
            if t % 2 == 1 {
                popped.push(q.pop().unwrap().0);
            }
        }
        while let Some((k, ())) = q.pop() {
            popped.push(k);
        }
        for w in popped.windows(2) {
            assert!(w[0] < w[1], "pop order not strictly increasing: {w:?}");
        }
        assert_eq!(popped.len(), 50);
    }

    #[test]
    fn priority_packs_class_over_minor() {
        assert!(priority(1, u32::MAX) < priority(2, 0));
        assert_eq!(priority(0, 7), 7);
        assert_eq!(priority(prio::TX_START, 0) >> 32, prio::TX_START as u64);
    }
}
