//! The differential harness: restore one frozen checkpoint under every
//! backend/driver/kernel combination and diff the resulting
//! [`Reception`] streams event by event.
//!
//! One-shot parity tests compare two fixed implementations on one
//! input. This module turns parity into *continuous cross-validation*:
//! any run is checkpointed at an event boundary
//! ([`crate::network::snapshot_after_events`]), and the identical
//! serialized state is completed under
//!
//! * the event-driven packed driver at several worker × batch shapes,
//! * the time-stepped packed driver, and
//! * the sequential `&[bool]` reference (the executable specification),
//!
//! after which [`first_divergence`] reports the first stream position
//! where any combination disagrees with the baseline — down to the
//! `(transmission, receiver)` pair, its completion chip time, and the
//! first differing field. The SIMD axis cannot be toggled in-process
//! (kernel selection is cached once from `PPR_NO_SIMD`), so it is
//! compared *across* processes: [`stream_fingerprint`] gives a stable
//! 64-bit digest of a reception stream that `ppr-cli diff` prints, and
//! CI runs the whole matrix twice — default and `PPR_NO_SIMD=1` — and
//! compares the printed fingerprints.

use crate::network::{
    resume_receptions_reference, resume_receptions_timestep, RadioEnv, Reception, ReceptionDriver,
    RxArm, SimConfig, Transmission,
};
use crate::results::fingerprint;
use crate::snapshot::{encode_reception, RxSnapshot, SnapError, SnapWriter};
pub use ppr_phy::simd::active_kernel_signature;

/// One way to complete a restored checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffBackend {
    /// The event-driven packed driver with explicit tuning knobs.
    Event {
        /// Worker-thread count.
        workers: usize,
        /// Per-worker batch length.
        batch_per_worker: usize,
    },
    /// The time-stepped packed driver (receiver-major batch walk, no
    /// event queue).
    Timestep {
        /// Worker-thread count.
        workers: usize,
    },
    /// The sequential `&[bool]` reference implementation.
    Reference,
}

impl DiffBackend {
    /// Stable human-readable label, used in reports and CI output.
    pub fn label(&self) -> String {
        match *self {
            DiffBackend::Event {
                workers,
                batch_per_worker,
            } => format!("event/w{workers}b{batch_per_worker}"),
            DiffBackend::Timestep { workers } => format!("timestep/w{workers}"),
            DiffBackend::Reference => "reference/bool".to_string(),
        }
    }
}

/// The default cross-validation matrix: the single-threaded event
/// driver as baseline, wider event shapes, the time-stepped driver,
/// and the bool reference.
pub fn standard_backends() -> Vec<DiffBackend> {
    vec![
        DiffBackend::Event {
            workers: 1,
            batch_per_worker: 1,
        },
        DiffBackend::Event {
            workers: 2,
            batch_per_worker: 8,
        },
        DiffBackend::Event {
            workers: 4,
            batch_per_worker: 32,
        },
        DiffBackend::Timestep { workers: 2 },
        DiffBackend::Reference,
    ]
}

/// Completes a restored checkpoint under one backend, returning the
/// full reception stream in receiver-major reference order.
pub fn resume_receptions(
    env: &RadioEnv,
    cfg: &SimConfig,
    timeline: &[Transmission],
    arm: &RxArm,
    snap: &RxSnapshot,
    backend: DiffBackend,
) -> Result<Vec<Reception>, SnapError> {
    match backend {
        DiffBackend::Event {
            workers,
            batch_per_worker,
        } => ReceptionDriver::restore(
            env,
            cfg,
            timeline,
            arm,
            Some(workers),
            batch_per_worker,
            snap,
        )
        .map(|d| d.run_to_end()),
        DiffBackend::Timestep { workers } => {
            resume_receptions_timestep(env, cfg, timeline, arm, snap, Some(workers))
        }
        DiffBackend::Reference => resume_receptions_reference(env, cfg, timeline, arm, snap),
    }
}

/// The first position where two reception streams disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Stream index (receiver-major reference order) of the first
    /// disagreement.
    pub index: usize,
    /// Transmission id at that position (baseline stream).
    pub tx_id: u64,
    /// Sender at that position.
    pub sender: usize,
    /// Receiver at that position.
    pub receiver: usize,
    /// Completion chip time of the diverging reception — the `time`
    /// component of its `ReceptionComplete` event key (0 when the
    /// transmission is unknown to the timeline).
    pub end_chip: u64,
    /// The first differing field.
    pub field: &'static str,
    /// Baseline value, rendered.
    pub left: String,
    /// Candidate value, rendered.
    pub right: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stream[{}] tx {} ({} -> {}) @chip {}: {} {} != {}",
            self.index,
            self.tx_id,
            self.sender,
            self.receiver,
            self.end_chip,
            self.field,
            self.left,
            self.right
        )
    }
}

/// Field-by-field comparison of one reception pair; `None` when equal.
fn diff_reception(a: &Reception, b: &Reception) -> Option<(&'static str, String, String)> {
    if a.tx_id != b.tx_id {
        return Some(("tx_id", a.tx_id.to_string(), b.tx_id.to_string()));
    }
    if a.sender != b.sender {
        return Some(("sender", a.sender.to_string(), b.sender.to_string()));
    }
    if a.receiver != b.receiver {
        return Some(("receiver", a.receiver.to_string(), b.receiver.to_string()));
    }
    if a.acquisition != b.acquisition {
        return Some((
            "acquisition",
            format!("{:?}", a.acquisition),
            format!("{:?}", b.acquisition),
        ));
    }
    if a.payload_len != b.payload_len {
        return Some((
            "payload_len",
            a.payload_len.to_string(),
            b.payload_len.to_string(),
        ));
    }
    if a.delivered_correct != b.delivered_correct {
        return Some((
            "delivered_correct",
            a.delivered_correct.to_string(),
            b.delivered_correct.to_string(),
        ));
    }
    if a.delivered_claimed != b.delivered_claimed {
        return Some((
            "delivered_claimed",
            a.delivered_claimed.to_string(),
            b.delivered_claimed.to_string(),
        ));
    }
    if a.crc_ok != b.crc_ok {
        return Some(("crc_ok", a.crc_ok.to_string(), b.crc_ok.to_string()));
    }
    if a.symbol_hints != b.symbol_hints {
        return Some((
            "symbol_hints",
            format!("{} hints", a.symbol_hints.len()),
            format!("{} hints (or content)", b.symbol_hints.len()),
        ));
    }
    if a.symbol_correct != b.symbol_correct {
        return Some((
            "symbol_correct",
            format!("{} symbols", a.symbol_correct.len()),
            format!("{} symbols (or content)", b.symbol_correct.len()),
        ));
    }
    None
}

/// Diffs two reception streams event by event (stream order is the
/// receiver-major reference order, common to every backend) and
/// reports the first disagreement, localized to its event key.
pub fn first_divergence(
    timeline: &[Transmission],
    baseline: &[Reception],
    candidate: &[Reception],
) -> Option<Divergence> {
    let end_chip_of = |tx_id: u64| {
        timeline
            .iter()
            .find(|t| t.id == tx_id)
            .map(|t| t.end_chip())
            .unwrap_or(0)
    };
    for (index, (a, b)) in baseline.iter().zip(candidate).enumerate() {
        if let Some((field, left, right)) = diff_reception(a, b) {
            return Some(Divergence {
                index,
                tx_id: a.tx_id,
                sender: a.sender,
                receiver: a.receiver,
                end_chip: end_chip_of(a.tx_id),
                field,
                left,
                right,
            });
        }
    }
    if baseline.len() != candidate.len() {
        let index = baseline.len().min(candidate.len());
        let probe = baseline.get(index).or_else(|| candidate.get(index));
        return Some(Divergence {
            index,
            tx_id: probe.map(|r| r.tx_id).unwrap_or(0),
            sender: probe.map(|r| r.sender).unwrap_or(0),
            receiver: probe.map(|r| r.receiver).unwrap_or(0),
            end_chip: probe.map(|r| end_chip_of(r.tx_id)).unwrap_or(0),
            field: "stream length",
            left: baseline.len().to_string(),
            right: candidate.len().to_string(),
        });
    }
    None
}

/// Stable 64-bit digest of a reception stream: FNV-1a over the
/// canonical field encoding of every reception, in stream order. Equal
/// streams — across processes, kernel selections and backends — print
/// equal fingerprints; this is how CI compares the SIMD and scalar
/// kernel runs.
pub fn stream_fingerprint(recs: &[Reception]) -> u64 {
    let mut w = SnapWriter::default();
    w.usize(recs.len());
    for rec in recs {
        encode_reception(&mut w, rec);
    }
    fingerprint(&w.into_inner())
}

/// One backend's verdict against the baseline stream.
#[derive(Debug, Clone)]
pub struct ComboReport {
    /// Backend label ([`DiffBackend::label`]).
    pub label: String,
    /// Digest of this backend's resumed stream.
    pub stream_fp: u64,
    /// First disagreement with the baseline, if any.
    pub divergence: Option<Divergence>,
}

/// Restores `snap` under every backend in `backends` (the first is the
/// baseline) and diffs each stream against the baseline. Returns the
/// per-combination reports, baseline first.
pub fn cross_validate(
    env: &RadioEnv,
    cfg: &SimConfig,
    timeline: &[Transmission],
    arm: &RxArm,
    snap: &RxSnapshot,
    backends: &[DiffBackend],
) -> Result<Vec<ComboReport>, SnapError> {
    assert!(!backends.is_empty(), "need a baseline backend");
    let baseline = resume_receptions(env, cfg, timeline, arm, snap, backends[0])?;
    let mut reports = vec![ComboReport {
        label: backends[0].label(),
        stream_fp: stream_fingerprint(&baseline),
        divergence: None,
    }];
    for &backend in &backends[1..] {
        let stream = resume_receptions(env, cfg, timeline, arm, snap, backend)?;
        reports.push(ComboReport {
            label: backend.label(),
            stream_fp: stream_fingerprint(&stream),
            divergence: first_divergence(timeline, &baseline, &stream),
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rxpath::Acquisition;

    fn rec(tx_id: u64, receiver: usize, delivered: usize) -> Reception {
        Reception {
            tx_id,
            sender: 1,
            receiver,
            acquisition: Acquisition::Preamble,
            payload_len: 100,
            delivered_correct: delivered,
            delivered_claimed: delivered,
            crc_ok: delivered == 100,
            symbol_hints: Vec::new(),
            symbol_correct: Vec::new(),
        }
    }

    fn tl() -> Vec<Transmission> {
        vec![Transmission {
            id: 7,
            sender: 1,
            seq: 0,
            start_chip: 1000,
            len_chips: 500,
        }]
    }

    #[test]
    fn equal_streams_have_no_divergence_and_equal_fingerprints() {
        let a = vec![rec(7, 0, 100), rec(7, 1, 40)];
        let b = a.clone();
        assert_eq!(first_divergence(&tl(), &a, &b), None);
        assert_eq!(stream_fingerprint(&a), stream_fingerprint(&b));
    }

    #[test]
    fn first_differing_field_is_localized_to_the_event_key() {
        let a = vec![rec(7, 0, 100), rec(7, 1, 40)];
        let mut b = a.clone();
        b[1].delivered_correct = 39;
        let d = first_divergence(&tl(), &a, &b).expect("divergence");
        assert_eq!(d.index, 1);
        assert_eq!(d.tx_id, 7);
        assert_eq!(d.receiver, 1);
        assert_eq!(d.end_chip, 1500);
        assert_eq!(d.field, "delivered_correct");
        assert_ne!(stream_fingerprint(&a), stream_fingerprint(&b));
    }

    #[test]
    fn length_mismatch_is_reported_after_the_common_prefix() {
        let a = vec![rec(7, 0, 100), rec(7, 1, 40)];
        let b = vec![rec(7, 0, 100)];
        let d = first_divergence(&tl(), &a, &b).expect("divergence");
        assert_eq!(d.index, 1);
        assert_eq!(d.field, "stream length");
        assert_eq!(d.left, "2");
        assert_eq!(d.right, "1");
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<String> = standard_backends().iter().map(|b| b.label()).collect();
        assert_eq!(
            labels,
            [
                "event/w1b1",
                "event/w2b8",
                "event/w4b32",
                "timestep/w2",
                "reference/bool"
            ]
        );
    }
}
