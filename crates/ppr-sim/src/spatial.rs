//! Spatial interference sharding: a uniform grid over node positions.
//!
//! The time-stepped simulator pairs every transmission with every
//! receiver — O(tx·rx) work that is fine at testbed scale (23×4) and
//! hopeless at 10 000 nodes. A [`SpatialIndex`] buckets nodes into a
//! uniform grid whose cell edge is at least the interference radius
//! (see [`ppr_channel::pathloss::PathLossModel::interference_radius_m`]),
//! so any node within that radius of a query point is guaranteed to sit
//! in the 3 × 3 cell neighborhood around it. Event dispatch then
//! enumerates only those candidates instead of the whole mesh, and the
//! grid cell doubles as the *shard* unit for batched parallel decoding.
//!
//! Candidate enumeration is deliberately a **superset** of the truly
//! audible set: the caller filters by exact link gain. The containment
//! is exact only when the propagation model has no shadowing
//! (`shadow_sigma_db == 0`) — a shadowing boost could otherwise carry a
//! link past the mean-power radius (`tests/event_parity.rs` pins the
//! superset property by proptest).
//!
//! Determinism: cells are plain `Vec`s scanned in row-major order with
//! node ids ascending inside each cell — no hashed containers, so the
//! candidate order is a pure function of the geometry.

use crate::geometry::Point;

/// A uniform spatial grid over a set of node positions.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    /// Cell edge length, meters (≥ the query radius).
    cell_m: f64,
    /// Grid columns.
    cols: usize,
    /// Grid rows.
    rows: usize,
    /// Origin offset so all coordinates map to non-negative cells.
    min_x: f64,
    /// Origin offset, y.
    min_y: f64,
    /// Node ids per cell, row-major (`cell = row * cols + col`),
    /// ascending within each cell.
    cells: Vec<Vec<u32>>,
}

impl SpatialIndex {
    /// Builds the index with cells of edge `cell_m` (the caller passes
    /// the interference radius, or anything at least as large as the
    /// radii it will query).
    pub fn build(points: &[Point], cell_m: f64) -> Self {
        assert!(cell_m > 0.0 && cell_m.is_finite(), "bad cell size {cell_m}");
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if points.is_empty() {
            (min_x, min_y, max_x, max_y) = (0.0, 0.0, 0.0, 0.0);
        }
        let cols = (((max_x - min_x) / cell_m).floor() as usize + 1).max(1);
        let rows = (((max_y - min_y) / cell_m).floor() as usize + 1).max(1);
        let mut index = SpatialIndex {
            cell_m,
            cols,
            rows,
            min_x,
            min_y,
            cells: vec![Vec::new(); cols * rows],
        };
        for (id, p) in points.iter().enumerate() {
            let c = index.cell_of(p);
            index.cells[c].push(id as u32);
        }
        index
    }

    /// The row-major cell index of a point (clamped to the grid).
    pub fn cell_of(&self, p: &Point) -> usize {
        let col = (((p.x - self.min_x) / self.cell_m).floor() as isize)
            .clamp(0, self.cols as isize - 1) as usize;
        let row = (((p.y - self.min_y) / self.cell_m).floor() as isize)
            .clamp(0, self.rows as isize - 1) as usize;
        row * self.cols + col
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Total cells (the shard count for per-shard parallel dispatch).
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// Appends every candidate node id in the 3 × 3 cell neighborhood of
    /// `p` to `out` — a superset of all nodes within `cell_m` of `p`
    /// (cells scanned row-major, ids ascending within a cell). The
    /// caller filters by exact link gain; this only prunes the
    /// geometrically impossible.
    pub fn candidates_into(&self, p: &Point, out: &mut Vec<u32>) {
        let col =
            (((p.x - self.min_x) / self.cell_m).floor() as isize).clamp(0, self.cols as isize - 1);
        let row =
            (((p.y - self.min_y) / self.cell_m).floor() as isize).clamp(0, self.rows as isize - 1);
        for dr in -1..=1isize {
            let r = row + dr;
            if r < 0 || r >= self.rows as isize {
                continue;
            }
            for dc in -1..=1isize {
                let c = col + dc;
                if c < 0 || c >= self.cols as isize {
                    continue;
                }
                out.extend_from_slice(&self.cells[r as usize * self.cols + c as usize]);
            }
        }
    }

    /// Convenience allocating form of [`Self::candidates_into`].
    pub fn candidates(&self, p: &Point) -> Vec<u32> {
        let mut out = Vec::new();
        self.candidates_into(p, &mut out);
        out
    }

    /// Mean nodes per non-empty cell — the shard occupancy the dispatch
    /// fan-out sees.
    pub fn mean_occupancy(&self) -> f64 {
        let non_empty = self.cells.iter().filter(|c| !c.is_empty()).count();
        if non_empty == 0 {
            return 0.0;
        }
        let total: usize = self.cells.iter().map(|c| c.len()).sum();
        total as f64 / non_empty as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize, pitch: f64) -> Vec<Point> {
        (0..n * n)
            .map(|i| Point::new((i % n) as f64 * pitch, (i / n) as f64 * pitch))
            .collect()
    }

    #[test]
    fn candidates_cover_everything_within_cell_radius() {
        let pts = grid_points(12, 3.7);
        let radius = 9.0;
        let idx = SpatialIndex::build(&pts, radius);
        for (i, p) in pts.iter().enumerate() {
            let cands = idx.candidates(p);
            for (j, q) in pts.iter().enumerate() {
                if p.distance(q) <= radius {
                    assert!(
                        cands.contains(&(j as u32)),
                        "node {j} within {radius} m of {i} but not a candidate"
                    );
                }
            }
        }
    }

    #[test]
    fn candidates_prune_far_nodes() {
        // On a large sparse grid, most of the mesh must NOT be in any
        // single query's candidate set — that's the whole point.
        let pts = grid_points(30, 5.0);
        let idx = SpatialIndex::build(&pts, 10.0);
        let cands = idx.candidates(&pts[0]);
        assert!(
            cands.len() < pts.len() / 4,
            "{} of {} candidates — no pruning",
            cands.len(),
            pts.len()
        );
    }

    #[test]
    fn candidate_order_is_deterministic_and_sorted_per_cell() {
        let pts = grid_points(8, 2.0);
        let idx = SpatialIndex::build(&pts, 4.0);
        let a = idx.candidates(&pts[20]);
        let b = idx.candidates(&pts[20]);
        assert_eq!(a, b);
        // Ids ascend within each cell because nodes are inserted in id
        // order; the concatenation is the row-major cell scan.
        assert!(!a.is_empty());
    }

    #[test]
    fn handles_degenerate_inputs() {
        let idx = SpatialIndex::build(&[], 5.0);
        assert!(idx.candidates(&Point::new(1.0, 2.0)).is_empty());
        let one = [Point::new(3.0, 4.0)];
        let idx = SpatialIndex::build(&one, 5.0);
        assert_eq!(idx.candidates(&one[0]), vec![0]);
        assert_eq!(idx.shard_count(), 1);
        assert!(idx.mean_occupancy() > 0.0);
    }

    #[test]
    fn shard_count_tracks_area_over_radius() {
        let pts = grid_points(20, 4.0); // 76 m × 76 m
        let idx = SpatialIndex::build(&pts, 19.1);
        let (cols, rows) = idx.dims();
        assert_eq!((cols, rows), (4, 4));
        assert_eq!(idx.shard_count(), 16);
    }
}
