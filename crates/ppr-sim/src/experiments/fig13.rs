//! Figure 13: anatomy of a collision — the full-DSP path.
//!
//! Three transmissions land at one receiver (the Fig. 5 scenario):
//!
//! * a short early burst that steals the receiver's attention and
//!   destroys **packet 1**'s preamble;
//! * **packet 1** (long, unit power);
//! * **packet 2** (short, ~8 dB stronger), arriving mid-packet-1 and
//!   ending before packet 1 does.
//!
//! The paper's narrative reproduced here: packet 2 synchronizes via its
//! preamble and decodes cleanly (low Hamming distance) despite the
//! underlying packet 1; packet 1's overlapped middle shows large Hamming
//! distances, while its clean tail decodes after packet 2 ends — and the
//! receiver frame-syncs on packet 1's **postamble**, rolling back to
//! recover the partial packet.
//!
//! Unlike the network experiments this runs the *sample-level* channel:
//! real MSK waveforms, superposition, AWGN and matched-filter
//! demodulation. (The capture is carrier-phase aligned: our MSK
//! demodulator is coherent and, as in the paper's implementation, does
//! no carrier recovery; small phase offsets are modeled, large ones
//! would need the derotation stage the paper also does not implement.)

use super::Experiment;
use crate::results::ExperimentResult;
use crate::scenario::{Scenario, DEFAULT_SEED};
use ppr_channel::sample_channel::{render, WaveformTx};
use ppr_mac::frame::Frame;
use ppr_mac::rx::{FrameReceiver, RxConfig};
use ppr_phy::modem::MskModem;
use ppr_phy::softphy::SoftSymbol;
use ppr_phy::spread::bytes_to_symbols;
use ppr_phy::sync::SyncKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result for one packet in the collision.
#[derive(Debug, Clone)]
pub struct PacketTrace {
    /// Which packet (0 = earlier/weaker/long, 1 = later/stronger/short).
    pub index: usize,
    /// How the receiver synchronized (preamble or postamble), if at all.
    pub sync: Option<SyncKind>,
    /// Per-codeword Hamming distance over the link-layer section.
    pub hamming: Vec<u8>,
    /// Per-codeword correctness against the known content.
    pub correct: Vec<bool>,
    /// Symbol range of this packet overlapped by the other packet.
    pub overlap_symbols: (usize, usize),
}

/// Experiment output.
#[derive(Debug, Clone)]
pub struct CollisionAnatomy {
    /// Traces for packets 1 and 2.
    pub packets: Vec<PacketTrace>,
}

/// Packet sizes (body bytes) for the two colliding packets.
const P1_BODY: usize = 240;
const P2_BODY: usize = 100;

/// Runs the collision scenario under the historical fixed seed.
pub fn collect() -> CollisionAnatomy {
    collect_seeded(1313)
}

/// Runs the collision scenario with an explicit channel-noise seed.
pub fn collect_seeded(seed: u64) -> CollisionAnatomy {
    let sps = 4;
    let modem = MskModem::new(sps);
    let mut rng = StdRng::seed_from_u64(seed);

    let p1 = Frame::new(1, 10, 0, test_payload(P1_BODY, 0xA1));
    let p2 = Frame::new(1, 11, 0, test_payload(P2_BODY, 0xB2));
    let jammer = Frame::new(9, 12, 0, test_payload(20, 0xCC));

    let p1_chips = p1.chips();
    let p2_chips = p2.chips();
    // Packet 2 starts 35% into packet 1 and ends well before it.
    let p2_start_chip = (p1_chips.len() as f64 * 0.35) as usize;
    assert!(p2_start_chip + p2_chips.len() < p1_chips.len() - 2000);

    let txs = vec![
        WaveformTx {
            chips: p1_chips.clone(),
            start_sample: 0,
            power_mw: 1.0,
            phase: 0.0,
        },
        WaveformTx {
            chips: p2_chips.clone(),
            start_sample: p2_start_chip * sps,
            power_mw: 6.0, // ~8 dB above packet 1
            phase: 0.15,
        },
        WaveformTx {
            chips: jammer.chips(),
            start_sample: 0,
            power_mw: 1.5,
            phase: 0.25,
        },
    ];
    let duration = (p1_chips.len() + 64) * sps;
    // ~17 dB SNR for packet 1 against thermal noise alone.
    let samples = render(&modem, &txs, duration, 0.02, &mut rng);

    // Continuous chip stream → the standard sliding-sync receive
    // pipeline (no known-offset shortcuts in this experiment).
    let n_chips = samples.len() / sps;
    let chips = modem.demodulate_hard(&samples, 0, n_chips, true);
    let receiver = FrameReceiver::new(RxConfig::default());
    let frames = receiver.receive(&chips);

    // Overlap geometry in each packet's own symbol coordinates.
    let pre_len = ppr_phy::sync::tx_preamble_chips().len();
    let p1_overlap = (
        (p2_start_chip.saturating_sub(pre_len)) / 32,
        ((p2_start_chip + p2_chips.len()).saturating_sub(pre_len)) / 32,
    );
    let p2_overlap = (0usize, p2.link_symbols()); // fully inside packet 1

    let mut packets = Vec::new();
    for (index, (frame, overlap)) in [(&p1, p1_overlap), (&p2, p2_overlap)]
        .into_iter()
        .enumerate()
    {
        let tx_symbols = bytes_to_symbols(&frame.link_bytes());
        let found = frames
            .iter()
            .find(|f| f.header.map(|h| h.src == frame.header.src).unwrap_or(false));
        let (sync, rx_symbols): (Option<SyncKind>, Vec<SoftSymbol>) = match found {
            Some(f) => (Some(f.sync), f.link_symbols()),
            None => (None, Vec::new()),
        };
        let hamming: Vec<u8> = rx_symbols.iter().map(|s| s.hint).collect();
        let correct: Vec<bool> = rx_symbols
            .iter()
            .zip(&tx_symbols)
            .map(|(a, b)| a.symbol == *b && a.hint < 33)
            .collect();
        packets.push(PacketTrace {
            index,
            sync,
            hamming,
            correct,
            overlap_symbols: overlap,
        });
    }
    CollisionAnatomy { packets }
}

fn test_payload(len: usize, tag: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(tag))
        .collect()
}

/// The Fig. 13 experiment. Inherently sample-level DSP — the scenario's
/// `backend` knob does not apply; duration and load are likewise fixed
/// by the three-transmission scene, though the seed override flows
/// through to the channel noise.
pub struct Fig13;

impl Experiment for Fig13 {
    fn id(&self) -> &'static str {
        "fig13"
    }

    fn title(&self) -> &'static str {
        "Figure 13: collision anatomy (DSP path)"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 13"
    }

    fn description(&self) -> &'static str {
        "Per-codeword anatomy of a two-packet collision, sample-level DSP"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        // XOR with the default master seed so the historical chip
        // stream (seed 1313) is preserved under the default scenario.
        let a = collect_seeded(1313 ^ scenario.seed ^ DEFAULT_SEED);
        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(
            "Figure 13: partial packet reception during two concurrent\n\
             transmissions (sample-level DSP path)\n\n",
        );
        for p in &a.packets {
            res.text(format!(
                "packet {} — sync: {:?}, {} codewords, overlapped symbols {}..{}\n",
                p.index + 1,
                p.sync,
                p.hamming.len(),
                p.overlap_symbols.0,
                p.overlap_symbols.1,
            ));
            res.metric(
                format!("packet{}_codewords", p.index + 1),
                p.hamming.len() as f64,
            );
            res.metric(
                format!("packet{}_correct", p.index + 1),
                p.correct.iter().filter(|&&c| c).count() as f64,
            );
            res.metric(
                format!("packet{}_postamble_sync", p.index + 1),
                match p.sync {
                    Some(SyncKind::Postamble) => 1.0,
                    _ => 0.0,
                },
            );
            if p.hamming.is_empty() {
                continue;
            }
            let mut listing = String::from("codeword  hamming  correct\n");
            for (i, (&h, &c)) in p.hamming.iter().zip(&p.correct).enumerate() {
                if i % 4 == 0 {
                    // The paper plots every fourth codeword for clarity.
                    listing.push_str(&format!("{i:>8}  {h:>7}  {}\n", if c { "*" } else { "" }));
                }
            }
            listing.push('\n');
            res.text(listing);
        }
        res.text(
            "Shape targets: packet 2 decodes cleanly (hamming ~0) throughout\n\
             despite overlapping packet 1; packet 1 shows large hamming over\n\
             the overlap, a clean tail after packet 2 ends, and is recovered\n\
             via its POSTAMBLE.\n",
        );
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_seed_derivation_preserves_historical_stream() {
        // Under the default master seed the experiment must evaluate the
        // exact historical scenario (seed 1313).
        let sc = crate::scenario::ScenarioBuilder::new()
            .duration_s(1.0)
            .build();
        assert_eq!(1313 ^ sc.seed ^ DEFAULT_SEED, 1313);
    }

    #[test]
    fn collision_anatomy_reproduces_paper_narrative() {
        let a = collect();
        assert_eq!(a.packets.len(), 2);
        let p1 = &a.packets[0];
        let p2 = &a.packets[1];

        // Packet 1: preamble jammed → recovered via postamble rollback.
        assert_eq!(p1.sync, Some(SyncKind::Postamble), "packet 1 sync");
        assert!(!p1.hamming.is_empty());

        // Packet 1's overlapped middle: almost everything decodes wrong
        // (the 8 dB-stronger collider owns the chips), and the Hamming
        // distances are elevated but scattered — the received words are
        // the *collider's* chips misaligned on packet 1's codeword grid,
        // which occasionally land near a valid codeword (the
        // cyclic-codebook "miss" phenomenon of §7.4.1).
        let (o_start, o_end) = p1.overlap_symbols;
        let lo = (o_start + 10).min(p1.hamming.len());
        let hi = (o_end - 10).min(p1.hamming.len());
        let mid_h = &p1.hamming[lo..hi];
        let mid_c = &p1.correct[lo..hi];
        let correct_mid = mid_c.iter().filter(|&&c| c).count();
        assert!(
            correct_mid * 5 < mid_c.len(),
            "overlap should be mostly wrong: {correct_mid}/{}",
            mid_c.len()
        );
        let mean_mid = mid_h.iter().map(|&h| h as f64).sum::<f64>() / mid_h.len() as f64;
        assert!(mean_mid > 3.0, "overlap mean hamming {mean_mid}");

        // …and its tail after packet 2 ends is clean.
        let tail_h = &p1.hamming[(o_end + 10).min(p1.hamming.len() - 1)..];
        let mean_tail = tail_h.iter().map(|&h| h as f64).sum::<f64>() / tail_h.len() as f64;
        assert!(mean_tail < 1.0, "tail mean hamming {mean_tail}");
        assert!(
            mean_mid > 4.0 * mean_tail,
            "overlap/tail separation too weak"
        );

        // Packet 2: stronger → preamble sync, clean decode throughout.
        assert_eq!(p2.sync, Some(SyncKind::Preamble), "packet 2 sync");
        let correct = p2.correct.iter().filter(|&&c| c).count();
        assert!(
            correct * 10 > p2.correct.len() * 9,
            "packet 2: {correct}/{} correct",
            p2.correct.len()
        );

        // Hamming distance tracks correctness: incorrect codewords carry
        // systematically larger hints than correct ones.
        for p in &a.packets {
            let mean_of = |want: bool| -> Option<f64> {
                let v: Vec<f64> = p
                    .hamming
                    .iter()
                    .zip(&p.correct)
                    .filter(|(_, &c)| c == want)
                    .map(|(&h, _)| h as f64)
                    .collect();
                if v.len() < 10 {
                    None
                } else {
                    Some(v.iter().sum::<f64>() / v.len() as f64)
                }
            };
            if let (Some(good), Some(bad)) = (mean_of(true), mean_of(false)) {
                assert!(
                    bad > good + 2.0,
                    "packet {}: incorrect mean hint {bad:.2} vs correct {good:.2}",
                    p.index + 1
                );
            }
        }
    }
}
