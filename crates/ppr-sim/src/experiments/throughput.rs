//! Figures 11–12: end-to-end per-link throughput.
//!
//! * Fig. 11 — per-link throughput CDF at 6.9 kbit/s/node (near channel
//!   saturation), carrier sense disabled, six scheme/postamble arms.
//! * Fig. 12 — scatter of PPR and packet-CRC per-link throughput against
//!   fragmented CRC (the x-axis baseline), at all three loads.
//!
//! Expected shape: PPR sits a roughly constant factor above fragmented
//! CRC; fragmented CRC far outperforms packet CRC; the spread of link
//! quality narrows for the finer-granularity schemes.

use super::common::{per_link_stats, six_arms, CapacityRun};
use super::Experiment;
use crate::metrics::Cdf;
use crate::network::RxArm;
use crate::results::{ExperimentResult, TableBlock};
use crate::scenario::{Scenario, LOADS};

/// One Fig. 11 curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label.
    pub label: String,
    /// Per-link throughput distribution, kbit/s.
    pub cdf: Cdf,
}

/// Fig. 11: throughput CDFs for the six arms at one load.
pub fn collect_fig11(scenario: &Scenario, load_kbps: f64) -> Vec<Curve> {
    let run = CapacityRun::from_scenario(scenario, load_kbps, false);
    let duration_s = run.cfg.duration_s;
    six_arms(scenario.schemes())
        .into_iter()
        .map(|(label, arm)| {
            let recs = run.receptions(&arm);
            let samples = per_link_stats(&run.env, &recs)
                .into_iter()
                .filter(|(_, s)| s.frames > 0)
                .map(|(_, s)| s.throughput_kbps(duration_s))
                .collect();
            Curve {
                label,
                cdf: Cdf::from_samples(samples),
            }
        })
        .collect()
}

/// One Fig. 12 scatter point: per-link throughputs under the three
/// schemes at one load.
#[derive(Debug, Clone, Copy)]
pub struct ScatterPoint {
    /// Offered load, kbit/s/node.
    pub load_kbps: f64,
    /// Link identity.
    pub link: (usize, usize),
    /// Fragmented CRC throughput (x-axis), kbit/s.
    pub frag: f64,
    /// Packet CRC throughput, kbit/s.
    pub packet: f64,
    /// PPR throughput, kbit/s.
    pub ppr: f64,
}

/// Fig. 12: per-link (fragmented CRC, packet CRC, PPR) throughput
/// triples at every load. Postamble decoding enabled for all (the
/// paper's default receiver).
pub fn collect_fig12(scenario: &Scenario) -> Vec<ScatterPoint> {
    let mut out = Vec::new();
    for load in scenario.loads(&LOADS) {
        let run = CapacityRun::from_scenario(scenario, load, false);
        let duration_s = run.cfg.duration_s;
        let [pkt, frag, ppr] = scenario.schemes();
        let arms = [pkt, frag, ppr].map(|scheme| RxArm {
            scheme,
            postamble: true,
            collect_symbols: false,
        });
        let stats: Vec<_> = arms
            .iter()
            .map(|arm| per_link_stats(&run.env, &run.receptions(arm)))
            .collect();
        for (i, &(link, ref packet_stats)) in stats[0].iter().enumerate() {
            if packet_stats.frames == 0 {
                continue;
            }
            out.push(ScatterPoint {
                load_kbps: load,
                link,
                packet: packet_stats.throughput_kbps(duration_s),
                frag: stats[1][i].1.throughput_kbps(duration_s),
                ppr: stats[2][i].1.throughput_kbps(duration_s),
            });
        }
    }
    out
}

/// The Fig. 11 experiment.
pub struct Fig11;

impl Experiment for Fig11 {
    fn id(&self) -> &'static str {
        "fig11"
    }

    fn title(&self) -> &'static str {
        "Figure 11: per-link throughput, near saturation"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 11"
    }

    fn description(&self) -> &'static str {
        "Per-link throughput CDFs at 6.9 kbit/s/node, carrier sense off"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let load_kbps = scenario.load_or(6.9);
        let curves = collect_fig11(scenario, load_kbps);
        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(format!(
            "Figure 11: end-to-end per-link throughput CDF\n\
             (offered load {load_kbps} kbit/s/node, carrier sense disabled)\n\n"
        ));
        let mut t = TableBlock::new(&["scheme / arm", "links", "median kbit/s", "p90 kbit/s"]);
        for c in &curves {
            t.row(vec![
                c.label.clone().into(),
                c.cdf.len().into(),
                c.cdf.median().into(),
                c.cdf.quantile(0.9).into(),
            ]);
            res.metric(format!("median_kbps/{}", c.label), c.cdf.median());
        }
        res.table(t);
        res.text("\n");
        let hi = curves
            .iter()
            .map(|c| c.cdf.quantile(1.0))
            .fold(1.0f64, f64::max);
        for c in &curves {
            res.series(&c.label, c.cdf.series(0.0, hi, 17));
            res.text("\n");
        }
        res
    }
}

/// The Fig. 12 experiment.
pub struct Fig12;

impl Experiment for Fig12 {
    fn id(&self) -> &'static str {
        "fig12"
    }

    fn title(&self) -> &'static str {
        "Figure 12: throughput scatter vs fragmented CRC"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 12"
    }

    fn description(&self) -> &'static str {
        "Per-link throughput triples (packet CRC, PPR vs fragmented CRC), all loads"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let points = collect_fig12(scenario);
        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(
            "Figure 12: per-link throughput, fragmented CRC (x) vs packet CRC\n\
             and PPR (y), all loads, carrier sense disabled\n\n",
        );
        let mut t = TableBlock::new(&[
            "load",
            "link s->r",
            "fragCRC kbit/s",
            "packetCRC kbit/s",
            "PPR kbit/s",
        ]);
        for p in &points {
            t.row(vec![
                format!("{}", p.load_kbps).into(),
                format!("{}->{}", p.link.0, p.link.1).into(),
                p.frag.into(),
                p.packet.into(),
                p.ppr.into(),
            ]);
        }
        res.table(t);
        // Summary ratios (geometric mean over links with nonzero frag).
        let mut ppr_ratios = Vec::new();
        let mut pkt_ratios = Vec::new();
        for p in &points {
            if p.frag > 0.01 {
                ppr_ratios.push(p.ppr / p.frag);
                if p.packet > 0.0 {
                    pkt_ratios.push(p.packet / p.frag);
                }
            }
        }
        let gm = |v: &[f64]| -> f64 {
            if v.is_empty() {
                return f64::NAN;
            }
            (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
        };
        let (gm_ppr, gm_pkt) = (gm(&ppr_ratios), gm(&pkt_ratios));
        res.metric("gm_ppr_over_frag", gm_ppr);
        res.metric("gm_packet_over_frag", gm_pkt);
        res.text(format!(
            "\nGeometric-mean ratio PPR/fragCRC: {}   packetCRC/fragCRC: {}\n\
             (paper: PPR a roughly constant factor above fragmented CRC;\n\
              packet CRC far below it)\n",
            crate::report::fmt(gm_ppr),
            crate::report::fmt(gm_pkt),
        ));
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    fn quick(duration_s: f64) -> Scenario {
        ScenarioBuilder::new().duration_s(duration_s).build()
    }

    #[test]
    fn fig12_ordering_ppr_over_frag_over_packet() {
        let points = collect_fig12(&quick(4.0));
        assert!(!points.is_empty());
        let tot = |f: fn(&ScatterPoint) -> f64| points.iter().map(f).sum::<f64>();
        let (pkt, frag, ppr) = (tot(|p| p.packet), tot(|p| p.frag), tot(|p| p.ppr));
        assert!(ppr >= frag, "ppr {ppr} < frag {frag}");
        assert!(frag > pkt, "frag {frag} <= pkt {pkt}");
    }

    #[test]
    fn fig11_throughput_bounded_by_offered_load() {
        let curves = collect_fig11(&quick(4.0), 6.9);
        for c in &curves {
            // No link can deliver much more than the offered load;
            // allow generous slack for Poisson burstiness on a short
            // test run (the window holds only a handful of packets).
            assert!(
                c.cdf.quantile(1.0) <= 6.9 * 3.5,
                "{}: max {}",
                c.label,
                c.cdf.quantile(1.0)
            );
        }
    }

    #[test]
    fn fig12_result_records_ratio_metrics() {
        let res = Fig12.run(&quick(3.0));
        let gm = res.get_metric("gm_ppr_over_frag").unwrap();
        assert!(gm >= 1.0, "PPR/frag geometric mean {gm}");
        assert!(res.render_text().contains("Geometric-mean ratio"));
    }
}
