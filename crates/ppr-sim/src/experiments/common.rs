//! Shared experiment machinery: standard runs, per-link aggregation, and
//! the experiment parameter conventions used across figures.

use crate::metrics::Cdf;
use crate::network::{
    generate_timeline, process_receptions, RadioEnv, Reception, RxArm, SimConfig, Transmission,
};
use crate::rxpath::Acquisition;
use ppr_mac::schemes::DeliveryScheme;

/// The paper's offered loads, kbit/s/node.
pub const LOADS: [f64; 3] = [3.5, 6.9, 13.8];

/// The Table 2 optimum fragment size, bytes.
pub const FRAG_BYTES: usize = 50;

/// The paper's SoftPHY threshold.
pub const ETA: u8 = 6;

/// The default experiment duration when `PPR_DURATION` is unset or
/// invalid, seconds.
pub const DEFAULT_DURATION_S: f64 = 90.0;

/// Default experiment duration, seconds. Override with the
/// `PPR_DURATION` environment variable (e.g. `PPR_DURATION=20` for a
/// quick pass). A value that does not parse as a positive, finite
/// number of seconds is rejected with a warning on stderr — a typo'd
/// duration must not silently run the full 90 s default.
pub fn default_duration() -> f64 {
    match parse_duration(std::env::var("PPR_DURATION").ok().as_deref()) {
        Ok(d) => d,
        Err(raw) => {
            eprintln!(
                "warning: ignoring invalid PPR_DURATION={raw:?} \
                 (want a positive number of seconds); using the default \
                 {DEFAULT_DURATION_S} s"
            );
            DEFAULT_DURATION_S
        }
    }
}

/// Parses an optional `PPR_DURATION` value. `Ok` carries the duration to
/// use (the default when unset); `Err` carries the rejected raw value so
/// the caller can warn.
fn parse_duration(raw: Option<&str>) -> Result<f64, String> {
    let Some(raw) = raw else {
        return Ok(DEFAULT_DURATION_S);
    };
    match raw.trim().parse::<f64>() {
        Ok(d) if d.is_finite() && d > 0.0 => Ok(d),
        _ => Err(raw.to_string()),
    }
}

/// Master seed shared by all experiments (reproducibility).
pub const SEED: u64 = 0x0050_5052;

/// The three delivery schemes under their standard parameters.
pub fn standard_schemes() -> [DeliveryScheme; 3] {
    [
        DeliveryScheme::PacketCrc,
        DeliveryScheme::FragmentedCrc {
            frag_payload: FRAG_BYTES,
        },
        DeliveryScheme::Ppr { eta: ETA },
    ]
}

/// One standard capacity run: environment + timeline, reusable across
/// arms (the trace-post-processing methodology).
pub struct CapacityRun {
    /// The radio environment.
    pub env: RadioEnv,
    /// The run configuration.
    pub cfg: SimConfig,
    /// The generated transmission timeline.
    pub timeline: Vec<Transmission>,
}

impl CapacityRun {
    /// Builds a run at the given load and carrier-sense arm.
    pub fn new(load_kbps: f64, carrier_sense: bool, duration_s: f64) -> Self {
        let env = RadioEnv::new(SEED);
        let cfg = SimConfig {
            load_kbps,
            body_bytes: 1500,
            carrier_sense,
            duration_s,
            seed: SEED,
        };
        let timeline = generate_timeline(&env, &cfg);
        CapacityRun { env, cfg, timeline }
    }

    /// Evaluates one receiver arm over the shared timeline.
    pub fn receptions(&self, arm: &RxArm) -> Vec<Reception> {
        process_receptions(&self.env, &self.cfg, &self.timeline, arm)
    }
}

/// Per-link aggregation of reception outcomes.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Frames transmitted on the link (evaluated receptions).
    pub frames: usize,
    /// Frames acquired via preamble.
    pub via_preamble: usize,
    /// Frames acquired via postamble.
    pub via_postamble: usize,
    /// Total correct bytes delivered.
    pub delivered_correct: usize,
    /// Total scheme payload bytes offered.
    pub payload_offered: usize,
}

impl LinkStats {
    /// Equivalent frame delivery rate: correct delivered bytes per
    /// airtime-equivalent byte (the 1500 B body), so scheme overhead is
    /// charged (§7.2.2).
    pub fn fdr(&self, body_bytes: usize) -> f64 {
        if self.frames == 0 {
            return f64::NAN;
        }
        self.delivered_correct as f64 / (self.frames * body_bytes) as f64
    }

    /// Delivered throughput over the run, kbit/s.
    pub fn throughput_kbps(&self, duration_s: f64) -> f64 {
        self.delivered_correct as f64 * 8.0 / duration_s / 1000.0
    }
}

/// Groups receptions by usable link, returning stats per (sender,
/// receiver) link in `env.links()` order.
pub fn per_link_stats(env: &RadioEnv, recs: &[Reception]) -> Vec<((usize, usize), LinkStats)> {
    let links = env.links();
    let mut stats: Vec<LinkStats> = vec![LinkStats::default(); links.len()];
    let index: std::collections::HashMap<(usize, usize), usize> =
        links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    for rec in recs {
        let Some(&i) = index.get(&(rec.sender, rec.receiver)) else {
            continue;
        };
        let s = &mut stats[i];
        s.frames += 1;
        s.payload_offered += rec.payload_len;
        s.delivered_correct += rec.delivered_correct;
        match rec.acquisition {
            Acquisition::Preamble => s.via_preamble += 1,
            Acquisition::Postamble => s.via_postamble += 1,
            Acquisition::None => {}
        }
    }
    links.into_iter().zip(stats).collect()
}

/// Per-link FDR samples for a reception set.
pub fn fdr_cdf(env: &RadioEnv, recs: &[Reception], body_bytes: usize) -> Cdf {
    let samples = per_link_stats(env, recs)
        .into_iter()
        .filter(|(_, s)| s.frames > 0)
        .map(|(_, s)| s.fdr(body_bytes))
        .collect();
    Cdf::from_samples(samples)
}

/// Per-link throughput samples (kbit/s) for a reception set.
pub fn throughput_cdf(env: &RadioEnv, recs: &[Reception], duration_s: f64) -> Cdf {
    let samples = per_link_stats(env, recs)
        .into_iter()
        .filter(|(_, s)| s.frames > 0)
        .map(|(_, s)| s.throughput_kbps(duration_s))
        .collect();
    Cdf::from_samples(samples)
}

/// The six arm combinations of Figs. 8–10: three schemes × postamble
/// on/off, in the paper's legend order.
pub fn six_arms() -> Vec<(String, RxArm)> {
    let mut out = Vec::new();
    for postamble in [false, true] {
        for scheme in standard_schemes() {
            let label = format!(
                "{}, {}",
                scheme.name(),
                if postamble {
                    "postamble decoding"
                } else {
                    "no postamble decoding"
                }
            );
            out.push((
                label,
                RxArm {
                    scheme,
                    postamble,
                    collect_symbols: false,
                },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_capacity_run_produces_links_and_stats() {
        let run = CapacityRun::new(13.8, false, 4.0);
        assert!(!run.timeline.is_empty());
        let arm = RxArm {
            scheme: DeliveryScheme::Ppr { eta: ETA },
            postamble: true,
            collect_symbols: false,
        };
        let recs = run.receptions(&arm);
        let stats = per_link_stats(&run.env, &recs);
        assert!(!stats.is_empty());
        let with_frames = stats.iter().filter(|(_, s)| s.frames > 0).count();
        assert!(with_frames > 5, "only {with_frames} active links");
        for (_, s) in &stats {
            if s.frames > 0 {
                let fdr = s.fdr(1500);
                assert!((0.0..=1.0).contains(&fdr), "fdr {fdr}");
            }
        }
    }

    #[test]
    fn duration_parsing_covers_valid_invalid_and_unset() {
        // Unset: the default, no warning path.
        assert_eq!(parse_duration(None), Ok(DEFAULT_DURATION_S));
        // Valid values, including surrounding whitespace.
        assert_eq!(parse_duration(Some("20")), Ok(20.0));
        assert_eq!(parse_duration(Some("0.5")), Ok(0.5));
        assert_eq!(parse_duration(Some(" 42.25 ")), Ok(42.25));
        // Invalid values are rejected (and reported back verbatim).
        for bad in ["", "abc", "20s", "1e999", "nan", "inf", "-5", "0"] {
            assert_eq!(
                parse_duration(Some(bad)),
                Err(bad.to_string()),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn six_arms_cover_schemes_and_postamble() {
        let arms = six_arms();
        assert_eq!(arms.len(), 6);
        assert_eq!(arms.iter().filter(|(_, a)| a.postamble).count(), 3);
        assert!(arms[0].0.contains("Packet CRC"));
    }
}
