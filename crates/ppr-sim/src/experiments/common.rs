//! Shared experiment machinery: standard runs, per-link aggregation, and
//! the experiment parameter conventions used across figures.
//!
//! Parameter defaults and environment overrides live in
//! [`crate::scenario`] — this module only consumes a resolved
//! [`Scenario`].

use crate::geometry::Testbed;
use crate::metrics::Cdf;
use crate::network::{
    generate_timeline, office_model, process_receptions_checkpointed, process_receptions_timestep,
    process_receptions_with_workers, resume_receptions_timestep, snapshot_after_events, RadioEnv,
    Reception, RxArm, SimConfig, Transmission, SQUELCH_SNR,
};
use crate::rxpath::Acquisition;
use crate::scenario::{Driver, Scenario, DEFAULT_SEED};
use crate::snapshot::RxSnapshot;
use ppr_mac::schemes::DeliveryScheme;

/// One standard capacity run: environment + timeline, reusable across
/// arms (the trace-post-processing methodology).
pub struct CapacityRun {
    /// The radio environment.
    pub env: RadioEnv,
    /// The run configuration.
    pub cfg: SimConfig,
    /// The generated transmission timeline.
    pub timeline: Vec<Transmission>,
    /// Reception-loop worker override (`None` = environment default).
    pub threads: Option<usize>,
    /// Which reception driver evaluates the arms.
    pub driver: Driver,
    /// Snapshot/restore exercise point (`None` = run uninterrupted).
    pub checkpoint: Option<u64>,
}

impl CapacityRun {
    /// Builds a run at the given load and carrier-sense arm under the
    /// historical defaults (master seed, 1500 B bodies, Fig. 7 floor).
    pub fn new(load_kbps: f64, carrier_sense: bool, duration_s: f64) -> Self {
        let cfg = SimConfig {
            load_kbps,
            body_bytes: 1500,
            carrier_sense,
            duration_s,
            seed: DEFAULT_SEED,
        };
        Self::from_config(cfg, None, Testbed::fig7(), Driver::Event, None)
    }

    /// Builds a run for a scenario at the experiment's canonical load
    /// and carrier-sense arm (both subject to the scenario's
    /// overrides), on the scenario's topology and driver.
    pub fn from_scenario(scenario: &Scenario, load_kbps: f64, carrier_sense: bool) -> Self {
        // The random-geometric square is sized for the *communication*
        // radius — the range at which a mean-power link still clears the
        // squelch threshold.
        let comm_radius_m = office_model().range_at_snr_m(SQUELCH_SNR);
        Self::from_config(
            scenario.sim_config(load_kbps, carrier_sense),
            scenario.threads,
            scenario.topology.testbed(comm_radius_m),
            scenario.driver,
            scenario.checkpoint,
        )
    }

    fn from_config(
        cfg: SimConfig,
        threads: Option<usize>,
        testbed: Testbed,
        driver: Driver,
        checkpoint: Option<u64>,
    ) -> Self {
        let env = RadioEnv::with_testbed(cfg.seed, testbed);
        let timeline = generate_timeline(&env, &cfg);
        CapacityRun {
            env,
            cfg,
            timeline,
            threads,
            driver,
            checkpoint,
        }
    }

    /// Evaluates one receiver arm over the shared timeline with the
    /// run's driver (event-driven by default; the time-stepped pinned
    /// reference under `driver=timestep`). Both produce bit-identical
    /// [`Reception`] streams — `tests/event_parity.rs` pins it.
    ///
    /// With a `checkpoint` set, the run is driven to that event
    /// boundary by the event core, serialized through the binary
    /// snapshot format, and completed under the run's driver — still
    /// bit-identical, which `tests/snapshot_roundtrip.rs` pins for the
    /// whole registry.
    pub fn receptions(&self, arm: &RxArm) -> Vec<Reception> {
        match (self.driver, self.checkpoint) {
            (Driver::Event, None) => process_receptions_with_workers(
                &self.env,
                &self.cfg,
                &self.timeline,
                arm,
                self.threads,
            ),
            (Driver::Event, Some(events)) => process_receptions_checkpointed(
                &self.env,
                &self.cfg,
                &self.timeline,
                arm,
                self.threads,
                events,
            ),
            (Driver::Timestep, None) => {
                process_receptions_timestep(&self.env, &self.cfg, &self.timeline, arm, self.threads)
            }
            (Driver::Timestep, Some(events)) => {
                // The checkpoint is always taken by the event core (the
                // timestep loop has no event counter); the *resume*
                // runs the time-stepped reference — cross-driver resume
                // in one run.
                let bytes = snapshot_after_events(
                    &self.env,
                    &self.cfg,
                    &self.timeline,
                    arm,
                    self.threads,
                    events,
                );
                let snap =
                    RxSnapshot::from_bytes(&bytes).expect("reception snapshot bytes round-trip");
                resume_receptions_timestep(
                    &self.env,
                    &self.cfg,
                    &self.timeline,
                    arm,
                    &snap,
                    self.threads,
                )
                .expect("reception snapshot resumes against its own run")
            }
        }
    }
}

/// Per-link aggregation of reception outcomes.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Frames transmitted on the link (evaluated receptions).
    pub frames: usize,
    /// Frames acquired via preamble.
    pub via_preamble: usize,
    /// Frames acquired via postamble.
    pub via_postamble: usize,
    /// Total correct bytes delivered.
    pub delivered_correct: usize,
    /// Total scheme payload bytes offered.
    pub payload_offered: usize,
}

impl LinkStats {
    /// Equivalent frame delivery rate: correct delivered bytes per
    /// airtime-equivalent byte (the 1500 B body), so scheme overhead is
    /// charged (§7.2.2).
    pub fn fdr(&self, body_bytes: usize) -> f64 {
        if self.frames == 0 {
            return f64::NAN;
        }
        self.delivered_correct as f64 / (self.frames * body_bytes) as f64
    }

    /// Delivered throughput over the run, kbit/s.
    pub fn throughput_kbps(&self, duration_s: f64) -> f64 {
        self.delivered_correct as f64 * 8.0 / duration_s / 1000.0
    }
}

/// Groups receptions by usable link, returning stats per (sender,
/// receiver) link in `env.links()` order.
pub fn per_link_stats(env: &RadioEnv, recs: &[Reception]) -> Vec<((usize, usize), LinkStats)> {
    let links = env.links();
    let mut stats: Vec<LinkStats> = vec![LinkStats::default(); links.len()];
    // BTreeMap, not HashMap: output order is driven by `links`, but the
    // experiment layer is deterministic *by construction* — no hashed
    // iteration order anywhere it could someday leak into results.
    let index: std::collections::BTreeMap<(usize, usize), usize> =
        links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    for rec in recs {
        let Some(&i) = index.get(&(rec.sender, rec.receiver)) else {
            continue;
        };
        let s = &mut stats[i];
        s.frames += 1;
        s.payload_offered += rec.payload_len;
        s.delivered_correct += rec.delivered_correct;
        match rec.acquisition {
            Acquisition::Preamble => s.via_preamble += 1,
            Acquisition::Postamble => s.via_postamble += 1,
            Acquisition::None => {}
        }
    }
    links.into_iter().zip(stats).collect()
}

/// Per-link FDR samples for a reception set.
pub fn fdr_cdf(env: &RadioEnv, recs: &[Reception], body_bytes: usize) -> Cdf {
    let samples = per_link_stats(env, recs)
        .into_iter()
        .filter(|(_, s)| s.frames > 0)
        .map(|(_, s)| s.fdr(body_bytes))
        .collect();
    Cdf::from_samples(samples)
}

/// Per-link throughput samples (kbit/s) for a reception set.
pub fn throughput_cdf(env: &RadioEnv, recs: &[Reception], duration_s: f64) -> Cdf {
    let samples = per_link_stats(env, recs)
        .into_iter()
        .filter(|(_, s)| s.frames > 0)
        .map(|(_, s)| s.throughput_kbps(duration_s))
        .collect();
    Cdf::from_samples(samples)
}

/// The six arm combinations of Figs. 8–10: the scenario's three schemes
/// × postamble on/off, in the paper's legend order.
pub fn six_arms(schemes: [DeliveryScheme; 3]) -> Vec<(String, RxArm)> {
    let mut out = Vec::new();
    for postamble in [false, true] {
        for scheme in schemes {
            let label = format!(
                "{}, {}",
                scheme.name(),
                if postamble {
                    "postamble decoding"
                } else {
                    "no postamble decoding"
                }
            );
            out.push((
                label,
                RxArm {
                    scheme,
                    postamble,
                    collect_symbols: false,
                },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioBuilder, DEFAULT_ETA};

    #[test]
    fn quick_capacity_run_produces_links_and_stats() {
        let sc = ScenarioBuilder::new().duration_s(4.0).build();
        let run = CapacityRun::from_scenario(&sc, 13.8, false);
        assert!(!run.timeline.is_empty());
        let arm = RxArm {
            scheme: DeliveryScheme::Ppr { eta: DEFAULT_ETA },
            postamble: true,
            collect_symbols: false,
        };
        let recs = run.receptions(&arm);
        let stats = per_link_stats(&run.env, &recs);
        assert!(!stats.is_empty());
        let with_frames = stats.iter().filter(|(_, s)| s.frames > 0).count();
        assert!(with_frames > 5, "only {with_frames} active links");
        for (_, s) in &stats {
            if s.frames > 0 {
                let fdr = s.fdr(1500);
                assert!((0.0..=1.0).contains(&fdr), "fdr {fdr}");
            }
        }
    }

    #[test]
    fn scenario_run_matches_legacy_constructor() {
        let sc = ScenarioBuilder::new().duration_s(3.0).build();
        let a = CapacityRun::from_scenario(&sc, 13.8, false);
        let b = CapacityRun::new(13.8, false, 3.0);
        assert_eq!(a.cfg, b.cfg);
        assert_eq!(a.timeline, b.timeline);
    }

    #[test]
    fn six_arms_cover_schemes_and_postamble() {
        let sc = ScenarioBuilder::new().duration_s(1.0).build();
        let arms = six_arms(sc.schemes());
        assert_eq!(arms.len(), 6);
        assert_eq!(arms.iter().filter(|(_, a)| a.postamble).count(), 3);
        assert!(arms[0].0.contains("Packet CRC"));
    }
}
