//! Table 1: the qualitative findings summary, distilled from the other
//! experiments.
//!
//! Historically this re-ran the Fig. 10 FDR sweep, the Fig. 3 hint
//! statistics and a PP-ARQ session batch from scratch. As a registry
//! experiment it instead *sources its numbers from already-computed
//! [`ExperimentResult`]s* when the driver hands them over
//! ([`Experiment::run_with`]) — in an `--all` run the summary costs
//! nothing beyond string formatting. Run standalone, it computes the
//! three dependencies itself at the scenario's full duration (the old
//! code clamped to 30 s; with reuse there is no reason to).

use super::fdr::median_metric_key;
use super::Experiment;
use crate::results::ExperimentResult;
use crate::scenario::Scenario;

/// The Table 1 experiment.
pub struct Table1;

/// The experiment ids Table 1 distills.
pub const DEPENDENCIES: [&str; 3] = ["fig10", "fig03", "fig16"];

fn dep<'a>(
    prior: &'a [ExperimentResult],
    id: &str,
    scenario: &Scenario,
) -> Option<&'a ExperimentResult> {
    prior.iter().find(|r| r.id == id && r.scenario == *scenario)
}

/// Builds the summary from the three dependency results (which must
/// match the scenario; see [`Experiment::run_with`]).
pub fn from_results(
    scenario: &Scenario,
    fig10: &ExperimentResult,
    fig03: &ExperimentResult,
    fig16: &ExperimentResult,
) -> ExperimentResult {
    let mut res = ExperimentResult::new(Table1.id(), Table1.title(), Table1.paper_ref(), scenario);
    let metric = |r: &ExperimentResult, key: &str| r.get_metric(key).unwrap_or(f64::NAN);

    // PPR capacity (§7.2): medians under high load.
    let pkt = metric(fig10, &median_metric_key("Packet CRC, postamble decoding"));
    let frag = metric(
        fig10,
        &median_metric_key("Fragmented CRC, postamble decoding"),
    );
    let ppr = metric(fig10, &median_metric_key("PPR, postamble decoding"));
    let mut out = String::from("Table 1: summary of experimental findings\n\n");
    out.push_str(&format!(
        "PPR capacity (7.2): median per-link FDR at high load —\n\
         packet CRC {:.3}, fragmented CRC {:.3}, PPR {:.3}\n\
         (PPR/packet ratio {:.1}x, PPR/frag ratio {:.2}x)\n\n",
        pkt,
        frag,
        ppr,
        if pkt > 0.0 { ppr / pkt } else { f64::INFINITY },
        if frag > 0.0 {
            ppr / frag
        } else {
            f64::INFINITY
        },
    ));

    // SoftPHY hints (§7.4), at the highest load.
    let p1 = metric(fig03, "p_d_le1_correct");
    let miss = metric(fig03, "miss_rate_at_eta");
    let fa = metric(fig03, "false_alarm_rate_at_eta");
    let eta = scenario.eta;
    out.push_str(&format!(
        "SoftPHY hints (7.4): P(d<=1 | correct) = {p1:.3}; miss rate at\n\
         eta={eta} = {miss:.3}; false-alarm rate at eta={eta} = {fa:.4}\n\n",
    ));

    // PP-ARQ (§7.5).
    let median_retx = metric(fig16, "median_retx_bytes");
    let packet_bytes = metric(fig16, "packet_bytes");
    out.push_str(&format!(
        "PP-ARQ (7.5): median retransmission {:.0} B of {:.0} B packets\n\
         ({:.0}% of full packet; paper reports ~50%)\n",
        median_retx,
        packet_bytes,
        100.0 * median_retx / packet_bytes,
    ));
    res.text(out);

    res.metric("median_fdr_packet", pkt);
    res.metric("median_fdr_frag", frag);
    res.metric("median_fdr_ppr", ppr);
    res.metric("p_d_le1_correct", p1);
    res.metric("miss_rate_at_eta", miss);
    res.metric("false_alarm_rate_at_eta", fa);
    res.metric("median_retx_bytes", median_retx);
    res
}

impl Experiment for Table1 {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Table 1: summary of experimental findings"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 1"
    }

    fn description(&self) -> &'static str {
        "Findings summary distilled from fig10, fig03 and fig16 results"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        self.run_with(scenario, &[])
    }

    fn run_with(&self, scenario: &Scenario, prior: &[ExperimentResult]) -> ExperimentResult {
        // Reuse prior results computed under this exact scenario;
        // compute only what is missing.
        let computed: Vec<ExperimentResult> = DEPENDENCIES
            .iter()
            .filter(|&&id| dep(prior, id, scenario).is_none())
            .map(|&id| {
                super::find(id)
                    .expect("table1 dependencies are registered")
                    .run(scenario)
            })
            .collect();
        let get = |id: &str| -> &ExperimentResult {
            dep(prior, id, scenario)
                .or_else(|| computed.iter().find(|r| r.id == id))
                .expect("dependency computed above")
        };
        from_results(scenario, get("fig10"), get("fig03"), get("fig16"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{fdr, fig03, fig16};
    use crate::scenario::ScenarioBuilder;

    #[test]
    fn summary_reuses_prior_results_without_recomputation() {
        let sc = ScenarioBuilder::new()
            .duration_s(2.0)
            .arq_packets(20)
            .build();
        let fig10 = fdr::FIG10.run(&sc);
        let f03 = fig03::Fig03.run(&sc);
        let f16 = fig16::Fig16.run(&sc);
        let prior = vec![fig10.clone(), f03.clone(), f16.clone()];

        // ppr-lint: allow(determinism) — wall-clock use is the point of
        // this test (it asserts reuse does no recomputation); the timing
        // never feeds simulation state.
        let t0 = std::time::Instant::now();
        let reused = Table1.run_with(&sc, &prior);
        let reuse_time = t0.elapsed();

        // Pure formatting: far below any simulation timescale.
        assert!(
            reuse_time.as_millis() < 100,
            "reuse took {reuse_time:?} — dependencies were re-run"
        );
        let direct = from_results(&sc, &fig10, &f03, &f16);
        assert_eq!(reused.render_text(), direct.render_text());
        assert!(reused
            .render_text()
            .starts_with("Table 1: summary of experimental findings"));
        assert!(reused.get_metric("median_fdr_ppr").is_some());
    }

    #[test]
    fn prior_results_under_a_different_scenario_are_not_reused() {
        let sc_a = ScenarioBuilder::new()
            .duration_s(2.0)
            .arq_packets(10)
            .build();
        let sc_b = ScenarioBuilder::new()
            .duration_s(3.0)
            .arq_packets(10)
            .build();
        let prior = vec![
            fdr::FIG10.run(&sc_a),
            fig03::Fig03.run(&sc_a),
            fig16::Fig16.run(&sc_a),
        ];
        // Must recompute under sc_b, not silently mix scenarios.
        let out = Table1.run_with(&sc_b, &prior);
        assert_eq!(out.scenario, sc_b);
    }
}
