//! Table 2: fragmented-CRC aggregate throughput vs chunk count.
//!
//! The paper sweeps the number of CRC chunks per 1500 B packet over
//! {1, 10, 30, 100, 300}: tiny chunks drown in checksum overhead, huge
//! chunks lose whole fragments to every error burst. The optimum lands
//! at ~30 chunks (50 B fragments), which the capacity experiments then
//! use.

use super::common::{per_link_stats, CapacityRun};
use crate::network::RxArm;
use crate::report::{fmt, Table};
use ppr_mac::schemes::DeliveryScheme;

/// The paper's chunk counts.
pub const CHUNK_COUNTS: [usize; 5] = [1, 10, 30, 100, 300];

/// One sweep row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Number of chunks per packet.
    pub chunks: usize,
    /// Fragment payload size, bytes.
    pub frag_bytes: usize,
    /// Aggregate delivered throughput across all links, kbit/s.
    pub aggregate_kbps: f64,
}

/// Runs the sweep at high load (where the trade-off is sharpest).
pub fn collect(duration_s: f64) -> Vec<Row> {
    let run = CapacityRun::new(13.8, false, duration_s);
    CHUNK_COUNTS
        .iter()
        .map(|&chunks| {
            // `chunks` fragments must fit in the 1500 B body including
            // their 4 B CRCs.
            let frag_bytes = (1500 / chunks).saturating_sub(4).max(1);
            let arm = RxArm {
                scheme: DeliveryScheme::FragmentedCrc {
                    frag_payload: frag_bytes,
                },
                postamble: true,
                collect_symbols: false,
            };
            let recs = run.receptions(&arm);
            let aggregate: f64 = per_link_stats(&run.env, &recs)
                .iter()
                .map(|(_, s)| s.throughput_kbps(duration_s))
                .sum();
            Row {
                chunks,
                frag_bytes,
                aggregate_kbps: aggregate,
            }
        })
        .collect()
}

/// Renders the Table 2 analogue.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Table 2: fragmented-CRC aggregate throughput vs chunk count\n\
         (1500 B packets, 13.8 kbit/s/node, carrier sense disabled)\n\n",
    );
    let mut t = Table::new(&["chunks", "frag bytes", "aggregate kbit/s"]);
    for r in rows {
        t.row(&[
            r.chunks.to_string(),
            r.frag_bytes.to_string(),
            fmt(r.aggregate_kbps),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape target: unimodal in chunk count, peaking near 30 chunks\n\
         (paper: 26 / 85 / 96 / 80 / 15 kbit/s).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_unimodal_with_interior_peak() {
        let rows = collect(5.0);
        assert_eq!(rows.len(), 5);
        let best = rows
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.aggregate_kbps.partial_cmp(&b.1.aggregate_kbps).unwrap())
            .unwrap()
            .0;
        // The peak must not sit at either extreme (the paper's central
        // claim about the overhead/robustness trade-off).
        assert!(best != 0, "peak at 1 chunk: {rows:?}");
        assert!(best != rows.len() - 1, "peak at 300 chunks: {rows:?}");
        // 300 tiny chunks must pay visible overhead vs the peak.
        assert!(
            rows[4].aggregate_kbps < rows[best].aggregate_kbps,
            "no overhead penalty visible: {rows:?}"
        );
    }
}
