//! Table 2: fragmented-CRC aggregate throughput vs chunk count.
//!
//! The paper sweeps the number of CRC chunks per 1500 B packet over
//! {1, 10, 30, 100, 300}: tiny chunks drown in checksum overhead, huge
//! chunks lose whole fragments to every error burst. The optimum lands
//! at ~30 chunks (50 B fragments), which the capacity experiments then
//! use.

use super::common::{per_link_stats, CapacityRun};
use super::Experiment;
use crate::network::RxArm;
use crate::results::{ExperimentResult, TableBlock};
use crate::scenario::Scenario;
use ppr_mac::schemes::DeliveryScheme;

/// The paper's chunk counts.
pub const CHUNK_COUNTS: [usize; 5] = [1, 10, 30, 100, 300];

/// One sweep row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Number of chunks per packet.
    pub chunks: usize,
    /// Fragment payload size, bytes.
    pub frag_bytes: usize,
    /// Aggregate delivered throughput across all links, kbit/s.
    pub aggregate_kbps: f64,
}

/// Runs the sweep at high load (where the trade-off is sharpest).
pub fn collect(scenario: &Scenario) -> Vec<Row> {
    let run = CapacityRun::from_scenario(scenario, 13.8, false);
    let duration_s = run.cfg.duration_s;
    let body_bytes = run.cfg.body_bytes;
    CHUNK_COUNTS
        .iter()
        .map(|&chunks| {
            // `chunks` fragments must fit in the body including their
            // 4 B CRCs.
            let frag_bytes = (body_bytes / chunks).saturating_sub(4).max(1);
            let arm = RxArm {
                scheme: DeliveryScheme::FragmentedCrc {
                    frag_payload: frag_bytes,
                },
                postamble: true,
                collect_symbols: false,
            };
            let recs = run.receptions(&arm);
            let aggregate: f64 = per_link_stats(&run.env, &recs)
                .iter()
                .map(|(_, s)| s.throughput_kbps(duration_s))
                .sum();
            Row {
                chunks,
                frag_bytes,
                aggregate_kbps: aggregate,
            }
        })
        .collect()
}

/// The Table 2 experiment.
pub struct Table2;

impl Experiment for Table2 {
    fn id(&self) -> &'static str {
        "table2"
    }

    fn title(&self) -> &'static str {
        "Table 2: fragmented-CRC chunk-size sweep"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 2"
    }

    fn description(&self) -> &'static str {
        "Fragmented-CRC aggregate throughput vs chunk count, high load"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let rows = collect(scenario);
        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(format!(
            "Table 2: fragmented-CRC aggregate throughput vs chunk count\n\
             ({} B packets, {} kbit/s/node, carrier sense {})\n\n",
            scenario.body_bytes,
            scenario.load_or(13.8),
            if scenario.carrier_sense_or(false) {
                "enabled"
            } else {
                "disabled"
            }
        ));
        let mut t = TableBlock::new(&["chunks", "frag bytes", "aggregate kbit/s"]);
        for r in &rows {
            t.row(vec![
                r.chunks.into(),
                r.frag_bytes.into(),
                r.aggregate_kbps.into(),
            ]);
            res.metric(format!("aggregate_kbps@{}", r.chunks), r.aggregate_kbps);
        }
        res.table(t);
        res.text(
            "\nShape target: unimodal in chunk count, peaking near 30 chunks\n\
             (paper: 26 / 85 / 96 / 80 / 15 kbit/s).\n",
        );
        if let Some(best) = rows.iter().max_by(|a, b| {
            a.aggregate_kbps
                .partial_cmp(&b.aggregate_kbps)
                .unwrap_or(std::cmp::Ordering::Equal)
        }) {
            res.metric("best_chunks", best.chunks as f64);
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    #[test]
    fn sweep_is_unimodal_with_interior_peak() {
        let sc = ScenarioBuilder::new().duration_s(5.0).build();
        let rows = collect(&sc);
        assert_eq!(rows.len(), 5);
        let best = rows
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.aggregate_kbps.partial_cmp(&b.1.aggregate_kbps).unwrap())
            .unwrap()
            .0;
        // The peak must not sit at either extreme (the paper's central
        // claim about the overhead/robustness trade-off).
        assert!(best != 0, "peak at 1 chunk: {rows:?}");
        assert!(best != rows.len() - 1, "peak at 300 chunks: {rows:?}");
        // 300 tiny chunks must pay visible overhead vs the peak.
        assert!(
            rows[4].aggregate_kbps < rows[best].aggregate_kbps,
            "no overhead penalty visible: {rows:?}"
        );
    }
}
