//! `jam`: goodput and partial delivery under a duty-cycled pulse jammer.
//!
//! A single link carries back-to-back 250 B packets on a shared chip
//! clock while a periodic pulse jammer blankets the band for a
//! duty-cycle fraction of every period. Two recovery arms run over the
//! *same* jam schedule (the pulse train is a pure function of time):
//!
//! * **PP-ARQ chunked repair** — the paper's scheme: the receiver
//!   feeds back verified-chunk boundaries and the sender retransmits
//!   only the bytes that failed.
//! * **Whole-frame ARQ** — the classic baseline: any CRC failure
//!   retransmits the entire frame.
//!
//! Both arms share one bounded-retry budget and one deterministic
//! exponential backoff ladder (the scenario's `arq_retries` /
//! `arq_backoff` axes), so the sweep isolates *what* is retransmitted,
//! not *how often*. Under jamming, every whole-frame retry re-exposes
//! all 250 B to the next pulse; PP-ARQ shrinks the exposed window each
//! round — the goodput gap the table reports.

use super::Experiment;
use crate::report::fmt;
use crate::results::{ExperimentResult, TableBlock};
use crate::rxpath::FastRx;
use crate::scenario::{Scenario, DEFAULT_SEED};
use ppr_channel::ber::chip_error_prob;
use ppr_channel::chip_channel::{corrupt_chips, ErrorProfile};
use ppr_channel::jamming::{clip_bursts, pulse_bursts_in};
use ppr_core::arq::{run_session_with, ArqChannel, PpArqConfig};
use ppr_core::dp::ChunkScratch;
use ppr_mac::crc::{append_crc32, verify_crc32_trailer};
use ppr_mac::frame::Frame;
use ppr_mac::{BackoffPolicy, DeliveryOutcome};
use ppr_phy::chips::CHIP_RATE_HZ;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pulse-jammer period in chips. A 250 B frame spans several periods,
/// so every frame sees multiple bursts and partial repair has chunks
/// to save.
pub const JAM_PERIOD: u64 = 4096;

/// Chip error probability inside a jamming burst: the jammer is
/// comparable to the signal, so chips are near-coin-flips.
pub const JAM_CHIP_ERROR: f64 = 0.35;

/// Radio turnaround between consecutive transmissions, chips.
pub const TURNAROUND: u64 = 512;

/// The duty cycles the sweep visits.
pub const DUTIES: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// Payload size per packet, matching the paper's 250 B frames.
pub const JAM_BODY_BYTES: usize = 250;

/// A point-to-point link on an absolute chip clock with a pulse jammer
/// on the band. Time advances with every transmission and with every
/// backoff gap, so the jam schedule a frame experiences depends on
/// *when* it is sent — exactly like the mesh adversary path.
pub struct JammedLinkChannel {
    /// Pulse period, chips.
    pub period: u64,
    /// Fraction of each period jammed.
    pub duty: f64,
    /// Clean-channel chip error probability (link SINR).
    pub base_chip_error: f64,
    /// Chip clock "now" — the next transmission start.
    pub now: u64,
    /// Backoff ladder applied before each retransmission round.
    pub policy: BackoffPolicy,
    forward_count: u8,
    rng: StdRng,
    rx: FastRx,
    jammed_chips: u64,
    airtime_chips: u64,
}

impl JammedLinkChannel {
    /// A good (≈7 dB) link whose only trouble is the jammer.
    pub fn new(duty: f64, policy: BackoffPolicy, seed: u64) -> Self {
        JammedLinkChannel {
            period: JAM_PERIOD,
            duty,
            base_chip_error: chip_error_prob(10f64.powf(0.7)),
            now: 0,
            policy,
            forward_count: 0,
            rng: StdRng::seed_from_u64(seed),
            rx: FastRx::new(true),
            jammed_chips: 0,
            airtime_chips: 0,
        }
    }

    /// Resets the per-session retry counter (the chip clock and the
    /// channel RNG keep running — sessions share the band).
    pub fn start_session(&mut self) {
        self.forward_count = 0;
    }

    /// Chips the jammer overlapped with transmitted frames so far.
    pub fn jammed_chips(&self) -> u64 {
        self.jammed_chips
    }

    /// Chips spent transmitting (both directions), excluding gaps.
    pub fn airtime_chips(&self) -> u64 {
        self.airtime_chips
    }

    /// Error profile of a frame occupying `[self.now, self.now+total)`:
    /// base error outside bursts, [`JAM_CHIP_ERROR`] inside.
    fn frame_profile(&mut self, total: u64) -> ErrorProfile {
        let bursts = pulse_bursts_in(self.period, self.duty, self.now, self.now + total);
        let spans = clip_bursts(&bursts, self.now, self.now + total);
        let mut pieces = Vec::with_capacity(2 * spans.len() + 1);
        let mut cursor = 0u64;
        for &(s, e) in &spans {
            if s > cursor {
                pieces.push((cursor, s, self.base_chip_error));
            }
            pieces.push((s, e, JAM_CHIP_ERROR));
            self.jammed_chips += e - s;
            cursor = e;
        }
        if cursor < total {
            pieces.push((cursor, total, self.base_chip_error));
        }
        ErrorProfile::from_pieces(pieces)
    }

    /// Sends `bytes` as one frame at `self.now`, advancing the clock.
    fn transmit(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
        let frame = Frame::new(1, 2, 0, bytes.to_vec());
        let chips = frame.chips();
        let total = chips.len() as u64;
        let profile = self.frame_profile(total);
        let corrupted = corrupt_chips(&chips, &profile, &mut self.rng);
        self.now += total + TURNAROUND;
        self.airtime_chips += total;

        let (_acq, rx_frame) = self.rx.receive(&frame, &corrupted, true);
        match rx_frame {
            Some(rx) => {
                let body = rx.body_bytes().unwrap_or_default();
                let hints = rx.body_byte_hints().unwrap_or_default();
                if body.len() == bytes.len() && hints.len() == bytes.len() {
                    (body, hints)
                } else {
                    (vec![0; bytes.len()], vec![u8::MAX; bytes.len()])
                }
            }
            None => (vec![0; bytes.len()], vec![u8::MAX; bytes.len()]),
        }
    }
}

impl ArqChannel for JammedLinkChannel {
    fn forward(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
        // Rounds after the first wait out the deterministic backoff
        // ladder first — during which the jammer keeps pulsing.
        if self.forward_count > 0 {
            self.now += self.policy.delay(self.forward_count - 1);
        }
        self.forward_count = self.forward_count.saturating_add(1);
        self.transmit(bytes)
    }

    fn reverse(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
        // Feedback rides the same jammed band: a pulse can wipe out a
        // feedback packet, costing PP-ARQ a round (the sender's
        // timeout path in `run_session_with`).
        self.transmit(bytes)
    }
}

/// Aggregate outcome of one arm at one duty cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ArmStats {
    /// Sessions attempted.
    pub sessions: usize,
    /// Sessions fully delivered within the retry budget.
    pub completed: usize,
    /// Sessions that degraded to a partial delivery.
    pub partial: usize,
    /// Sessions that delivered nothing.
    pub failed: usize,
    /// Verified payload bytes across all sessions.
    pub delivered_bytes: usize,
    /// Payload bytes offered across all sessions.
    pub offered_bytes: usize,
    /// Payload-or-repair bytes the sender put on the air.
    pub sent_bytes: usize,
    /// Chip-clock time consumed (transmissions + turnaround + backoff).
    pub elapsed_chips: u64,
    /// Retry rounds summed over all sessions.
    pub rounds: usize,
}

impl ArmStats {
    fn absorb(&mut self, outcome: &DeliveryOutcome, total: usize, sent: usize) {
        self.sessions += 1;
        self.offered_bytes += total;
        self.sent_bytes += sent;
        self.rounds += outcome.rounds() as usize;
        match *outcome {
            DeliveryOutcome::Complete { .. } => {
                self.completed += 1;
                self.delivered_bytes += total;
            }
            DeliveryOutcome::Partial {
                delivered_bytes, ..
            } => {
                self.partial += 1;
                self.delivered_bytes += delivered_bytes;
            }
            DeliveryOutcome::Failed { .. } => self.failed += 1,
        }
    }

    /// Verified payload bits per second of chip-clock time.
    pub fn goodput_kbps(&self) -> f64 {
        let secs = self.elapsed_chips as f64 / CHIP_RATE_HZ as f64;
        if secs <= 0.0 {
            return 0.0;
        }
        self.delivered_bytes as f64 * 8.0 / secs / 1e3
    }

    /// Mean delivered fraction over all sessions.
    pub fn delivered_fraction(&self) -> f64 {
        self.delivered_bytes as f64 / self.offered_bytes.max(1) as f64
    }

    /// Sender bytes per offered byte — the repair overhead.
    pub fn overhead(&self) -> f64 {
        self.sent_bytes as f64 / self.offered_bytes.max(1) as f64
    }
}

/// The session payload: deterministic pseudorandom bytes per index.
fn session_payload(seed: u64, i: usize) -> Vec<u8> {
    let mut r = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..JAM_BODY_BYTES).map(|_| r.gen()).collect()
}

/// Runs `n_packets` PP-ARQ sessions at one duty cycle.
pub fn run_pparq_arm(duty: f64, n_packets: usize, seed: u64, policy: BackoffPolicy) -> ArmStats {
    let mut channel = JammedLinkChannel::new(duty, policy, seed);
    let mut scratch = ChunkScratch::new();
    let config = PpArqConfig {
        max_rounds: policy.max_retries as usize,
        ..PpArqConfig::default()
    };
    let mut stats = ArmStats::default();
    for i in 0..n_packets {
        let payload = session_payload(seed, i);
        channel.start_session();
        let s = run_session_with(&payload, config, &mut channel, &mut scratch);
        // Verified bytes only: count positions the receiver got right.
        let delivered = if s.completed {
            payload.len()
        } else {
            s.final_payload
                .iter()
                .zip(&payload)
                .filter(|(a, b)| a == b)
                .count()
        };
        let outcome = DeliveryOutcome::classify(
            s.completed,
            s.rounds.min(u8::MAX as usize) as u8,
            delivered,
            payload.len(),
        );
        stats.absorb(&outcome, payload.len(), s.sender_bytes());
    }
    stats.elapsed_chips = channel.now;
    stats
}

/// Runs `n_packets` whole-frame ARQ sessions at one duty cycle: any
/// CRC failure retransmits the entire 250 B payload, on the same
/// backoff ladder. No partial credit — a frame either verifies or
/// delivers nothing, which is exactly the baseline's failure mode.
pub fn run_whole_frame_arm(
    duty: f64,
    n_packets: usize,
    seed: u64,
    policy: BackoffPolicy,
) -> ArmStats {
    let mut channel = JammedLinkChannel::new(duty, policy, seed);
    let mut stats = ArmStats::default();
    for i in 0..n_packets {
        let payload = session_payload(seed, i);
        let mut tx = payload.clone();
        append_crc32(&mut tx);
        channel.start_session();
        let mut sent = 0usize;
        let mut outcome = DeliveryOutcome::classify(false, policy.max_retries, 0, payload.len());
        for round in 0..=policy.max_retries {
            let (rx, _hints) = channel.forward(&tx);
            sent += tx.len();
            if rx.len() == tx.len() && verify_crc32_trailer(&rx) {
                outcome = DeliveryOutcome::classify(true, round, payload.len(), payload.len());
                break;
            }
        }
        stats.absorb(&outcome, payload.len(), sent);
    }
    stats.elapsed_chips = channel.now;
    stats
}

/// One duty-cycle point of the sweep: both arms over the same jammer.
pub fn run_duty_point(
    duty: f64,
    n_packets: usize,
    seed: u64,
    policy: BackoffPolicy,
) -> (ArmStats, ArmStats) {
    (
        run_pparq_arm(duty, n_packets, seed, policy),
        run_whole_frame_arm(duty, n_packets, seed, policy),
    )
}

/// The `jam` experiment: duty-cycle sweep of PP-ARQ chunked repair vs
/// whole-frame ARQ under a pulse jammer.
pub struct Jam;

impl Experiment for Jam {
    fn id(&self) -> &'static str {
        "jam"
    }

    fn title(&self) -> &'static str {
        "Adversarial jamming: PP-ARQ vs whole-frame ARQ goodput"
    }

    fn paper_ref(&self) -> &'static str {
        "Section 8.4 (robustness extension)"
    }

    fn description(&self) -> &'static str {
        "goodput + partial delivery vs pulse-jammer duty cycle, chunked repair vs whole-frame ARQ"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        // One third of the fig16 session budget per cell: the sweep
        // runs 12 (duty, arm) cells.
        let n_packets = (scenario.arq_packets / 3).max(5);
        let seed = 0x004A_414D ^ scenario.seed ^ DEFAULT_SEED;
        let policy = BackoffPolicy {
            max_retries: scenario.arq_retries,
            base_delay: 2 * JAM_PERIOD,
            multiplier_milli: (scenario.arq_backoff * 1000.0).round() as u64,
            jitter_span: 0,
        };

        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(format!(
            "Pulse jammer sweep: period {JAM_PERIOD} chips, {} sessions of {} B per cell,\n\
             retry budget {} rounds, backoff x{:.2}\n\n",
            n_packets, JAM_BODY_BYTES, policy.max_retries, scenario.arq_backoff,
        ));
        let mut t = TableBlock::new(&[
            "duty",
            "pparq kbps",
            "whole kbps",
            "pparq dlvd",
            "whole dlvd",
            "pparq overhead",
            "whole overhead",
            "exhausted p/w",
        ]);
        let mut wins = 0usize;
        for duty in DUTIES {
            let (pp, wf) = run_duty_point(duty, n_packets, seed, policy);
            if pp.goodput_kbps() > wf.goodput_kbps() {
                wins += 1;
            }
            t.row(vec![
                format!("{duty:.1}").into(),
                pp.goodput_kbps().into(),
                wf.goodput_kbps().into(),
                pp.delivered_fraction().into(),
                wf.delivered_fraction().into(),
                pp.overhead().into(),
                wf.overhead().into(),
                format!("{}/{}", pp.partial + pp.failed, wf.partial + wf.failed).into(),
            ]);
            let pct = (duty * 100.0).round() as u32;
            res.metric(format!("pparq_goodput_kbps_d{pct}"), pp.goodput_kbps());
            res.metric(format!("whole_goodput_kbps_d{pct}"), wf.goodput_kbps());
            res.metric(
                format!("pparq_delivered_frac_d{pct}"),
                pp.delivered_fraction(),
            );
            res.metric(
                format!("whole_delivered_frac_d{pct}"),
                wf.delivered_fraction(),
            );
            res.metric(
                format!("pparq_exhausted_d{pct}"),
                (pp.partial + pp.failed) as f64,
            );
        }
        res.table(t);
        res.text(format!(
            "\nPP-ARQ outgoes whole-frame ARQ at {wins} of {} duty points\n\
             (chunked repair re-exposes only unverified bytes to the next pulse;\n\
             whole-frame retries re-expose all {} B every round).\n",
            DUTIES.len(),
            JAM_BODY_BYTES,
        ));
        res.metric("pparq_win_points", wins as f64);
        res.metric("duty_points", DUTIES.len() as f64);
        res.metric("sessions_per_cell", n_packets as f64);
        res.metric("retry_budget", policy.max_retries as f64);
        res.text(format!(
            "sessions/cell {}  win points {}\n",
            fmt(n_packets as f64),
            wins
        ));
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BackoffPolicy {
        BackoffPolicy {
            max_retries: 3,
            base_delay: 2 * JAM_PERIOD,
            multiplier_milli: 1000,
            jitter_span: 0,
        }
    }

    #[test]
    fn clean_band_completes_both_arms() {
        let (pp, wf) = run_duty_point(0.0, 10, 7, policy());
        assert_eq!(pp.completed, 10, "{pp:?}");
        assert_eq!(wf.completed, 10, "{wf:?}");
        assert_eq!(pp.delivered_fraction(), 1.0);
        assert_eq!(wf.delivered_fraction(), 1.0);
    }

    #[test]
    fn chunked_repair_beats_whole_frame_under_jamming() {
        // The experiment's headline claim, at one mid-sweep duty.
        let (pp, wf) = run_duty_point(0.3, 20, 7, policy());
        assert!(
            pp.goodput_kbps() > wf.goodput_kbps(),
            "pparq {} <= whole {}",
            pp.goodput_kbps(),
            wf.goodput_kbps()
        );
        // And it degrades gracefully rather than binarily.
        assert!(pp.delivered_fraction() >= wf.delivered_fraction());
    }

    #[test]
    fn rounds_never_exceed_the_budget() {
        let p = policy();
        let (pp, wf) = run_duty_point(0.5, 10, 3, p);
        assert!(pp.rounds <= 10 * p.max_retries as usize);
        assert!(wf.rounds <= 10 * p.max_retries as usize);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_duty_point(0.2, 8, 11, policy());
        let b = run_duty_point(0.2, 8, 11, policy());
        assert_eq!(a, b);
    }
}
