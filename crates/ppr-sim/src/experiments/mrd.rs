//! Extension (§8.4): SoftPHY-based multi-radio diversity combining.
//!
//! The paper argues PPR's hints enable the simple block-based combining
//! of Miu et al.'s MRD — multiple access points hear the same
//! transmission and merge their copies — *without* PHY-specific soft
//! information: per codeword, just keep the copy whose SoftPHY hint is
//! smallest (the monotonicity contract makes this PHY-independent).
//!
//! This experiment runs the standard testbed and, for every
//! transmission, combines the four receivers' decoded symbol streams by
//! minimum hint, then compares delivered-correct bytes against the best
//! single receiver.

use super::common::CapacityRun;
use super::Experiment;
use crate::network::{payload_pattern, SQUELCH_SNR};
use crate::results::ExperimentResult;
use crate::rxpath::FastRx;
use crate::scenario::Scenario;
use ppr_channel::chip_channel::{corrupt_chips, ErrorProfile};
use ppr_channel::overlap::{interference_profile, HeardTx};
use ppr_mac::frame::Frame;
use ppr_phy::softphy::SoftSymbol;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of the combining experiment.
#[derive(Debug, Clone, Default)]
pub struct MrdResult {
    /// Transmissions evaluated (heard by ≥ 2 receivers).
    pub transmissions: usize,
    /// Correct payload bytes delivered by the best single receiver,
    /// summed over transmissions.
    pub best_single: usize,
    /// Correct payload bytes delivered by min-hint combining.
    pub combined: usize,
    /// Transmissions where combining recovered a packet (full payload)
    /// that no single receiver recovered.
    pub rescued_packets: usize,
}

/// Runs the combining experiment at high load (collisions corrupt
/// different spans at different receivers, which is where diversity
/// pays).
pub fn collect(scenario: &Scenario) -> MrdResult {
    let eta = scenario.eta;
    let run = CapacityRun::from_scenario(scenario, 13.8, false);
    let env = &run.env;
    let cfg = &run.cfg;
    let noise = env.model.noise_mw();
    let scheme = scenario.ppr_scheme();
    let fast = FastRx::new(true);
    let payload_len = scheme.payload_len(cfg.body_bytes);

    // Per-receiver heard lists.
    let heard: Vec<Vec<HeardTx>> = (0..env.testbed.receivers.len())
        .map(|r| {
            run.timeline
                .iter()
                .map(|tx| HeardTx {
                    id: tx.id,
                    start_chip: tx.start_chip,
                    len_chips: tx.len_chips,
                    power_mw: env.s2r_mw[tx.sender][r],
                })
                .collect()
        })
        .collect();
    let mut busy_until = vec![0u64; env.testbed.receivers.len()];

    let mut result = MrdResult::default();
    for (i, tx) in run.timeline.iter().enumerate() {
        let payload = payload_pattern(tx.sender, tx.seq, payload_len);
        let frame = Frame::new(0xFFFF, tx.sender as u16, tx.seq, payload.clone());
        let chips = frame.chips();

        // Decode at every receiver that can hear this sender.
        let mut copies: Vec<Vec<SoftSymbol>> = Vec::new();
        let mut singles: Vec<usize> = Vec::new();
        for r in 0..env.testbed.receivers.len() {
            let signal = env.s2r_mw[tx.sender][r];
            if signal / noise < SQUELCH_SNR {
                continue;
            }
            let spans = interference_profile(&heard[r][i], &heard[r]);
            let profile = ErrorProfile::from_interference(signal, noise, &spans);
            let mut rng = StdRng::seed_from_u64(
                cfg.seed ^ (tx.id.wrapping_mul(0x2545_F491_4F6C_DD1D)) ^ ((r as u64) << 56),
            );
            let corrupted = corrupt_chips(&chips, &profile, &mut rng);
            let idle = busy_until[r] <= tx.start_chip;
            let (acq, rx_frame) = fast.receive(&frame, &corrupted, idle);
            if acq == crate::rxpath::Acquisition::Preamble {
                busy_until[r] = tx.end_chip();
            }
            if let Some(rx) = rx_frame {
                if rx.header.is_some() {
                    let delivered =
                        ppr_mac::schemes::correct_delivered_bytes(&scheme.deliver(&rx), &payload);
                    singles.push(delivered);
                    copies.push(rx.link_symbols());
                }
            }
        }
        if copies.len() < 2 {
            continue; // diversity needs at least two copies
        }
        result.transmissions += 1;
        let best = singles.iter().copied().max().unwrap_or(0);
        result.best_single += best;

        // Min-hint combining over the link-symbol streams.
        let n = copies.iter().map(|c| c.len()).min().unwrap();
        let combined: Vec<SoftSymbol> = (0..n)
            .map(|k| copies.iter().map(|c| c[k]).min_by_key(|s| s.hint).unwrap())
            .collect();
        // Evaluate the combined stream with the same PPR delivery rule:
        // a byte is delivered when both nibble copies pass the
        // threshold, and counted when also correct.
        let tx_symbols = ppr_phy::spread::bytes_to_symbols(&frame.link_bytes());
        let body = ppr_mac::frame::FrameGeometry::for_body(payload.len()).body();
        let s0 = body.start * 2;
        let s1 = (body.end * 2).min(n.saturating_sub(1));
        let mut delivered = 0usize;
        let mut k = s0;
        while k + 1 < s1 {
            let lo = &combined[k];
            let hi_n = &combined[k + 1];
            if lo.hint <= eta
                && hi_n.hint <= eta
                && lo.symbol == tx_symbols[k]
                && hi_n.symbol == tx_symbols[k + 1]
            {
                delivered += 1;
            }
            k += 2;
        }
        result.combined += delivered;
        if delivered == payload.len() && best < payload.len() {
            result.rescued_packets += 1;
        }
    }
    result
}

/// The MRD combining experiment.
pub struct Mrd;

impl Experiment for Mrd {
    fn id(&self) -> &'static str {
        "mrd"
    }

    fn title(&self) -> &'static str {
        "Extension: multi-radio diversity combining"
    }

    fn paper_ref(&self) -> &'static str {
        "Section 8.4"
    }

    fn description(&self) -> &'static str {
        "Min-hint diversity combining across receivers vs the best single radio"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let r = collect(scenario);
        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(format!(
            "Extension: SoftPHY multi-radio diversity combining (8.4)\n\n\
             transmissions with >=2 copies: {}\n\
             best single receiver:  {} correct bytes\n\
             min-hint combining:    {} correct bytes ({:+.1}%)\n\
             packets only complete after combining: {}\n\n\
             Expected: combining >= best single receiver (different collisions\n\
             corrupt different spans at different receivers), with whole\n\
             packets rescued that no single radio recovered.\n",
            r.transmissions,
            r.best_single,
            r.combined,
            100.0 * (r.combined as f64 / r.best_single.max(1) as f64 - 1.0),
            r.rescued_packets,
        ));
        res.metric("transmissions", r.transmissions as f64);
        res.metric("best_single_bytes", r.best_single as f64);
        res.metric("combined_bytes", r.combined as f64);
        res.metric("rescued_packets", r.rescued_packets as f64);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combining_never_loses_and_sometimes_rescues() {
        let sc = crate::scenario::ScenarioBuilder::new()
            .duration_s(8.0)
            .build();
        let r = collect(&sc);
        assert!(r.transmissions > 10, "too few multi-copy transmissions");
        assert!(
            r.combined as f64 >= 0.98 * r.best_single as f64,
            "combining lost bytes: {} vs {}",
            r.combined,
            r.best_single
        );
        // With collisions at high load, diversity should add something.
        assert!(
            r.combined >= r.best_single,
            "no combining gain at all: {r:?}"
        );
    }
}
