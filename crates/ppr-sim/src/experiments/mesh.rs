//! `mesh10k` — the event core at scale: a 10 000-node mesh flood with
//! PP-ARQ repair.
//!
//! The testbed experiments pair every transmission with every receiver —
//! fine at 23×4, hopeless at 10 000 nodes. This experiment is the
//! subsystem's stress article: a random-geometric mesh
//! ([`Testbed::mesh`]) floods one 250 B PPR frame from the center node
//! outward, every event flows through the deterministic
//! [`BinaryHeapQueue`], and dispatch enumerates only the
//! [`SpatialIndex`] candidates of each transmitter instead of the whole
//! mesh.
//!
//! ## Protocol
//!
//! * The source broadcasts the frame; every node that *recovers* the
//!   full payload (byte-correct against the known ground truth, PPR
//!   delivery at η) rebroadcasts exactly once, after a deterministic
//!   per-node jitter.
//! * A node left with a *partial* payload arms a PP-ARQ timer. When it
//!   fires, the node plans its repair request with the paper's chunking
//!   DP ([`plan_chunks`]) over its byte-correct bitmask and asks its
//!   best recovered neighbor for exactly those spans; the neighbor
//!   unicasts a repair frame containing the requested bytes. Up to
//!   [`MAX_ARQ_ROUNDS`] rounds.
//! * Transmissions interfere: reception evaluation runs the real chip
//!   pipeline (per-span SINR → chip corruption → [`FastRx`] decode), so
//!   colliding rebroadcasts produce exactly the partial packets PP-ARQ
//!   exists to repair.
//!
//! ## Determinism and the flush window
//!
//! Reception outcomes are decoded in parallel batches without ever
//! becoming order-dependent:
//!
//! * completed receptions accumulate in a pending batch, flushed when
//!   the clock reaches `earliest pending completion + `[`SAFE_WINDOW`]
//!   (or when an ARQ timer — the only state-reading event — pops, or at
//!   queue drain);
//! * every outcome-scheduled event (rebroadcast, repair, timer) lands at
//!   least [`SAFE_WINDOW`] chips after the reception that caused it, so
//!   no event that could observe an outcome runs before its flush;
//! * interference and half-duplex checks happen *at flush*, when every
//!   transmission that could overlap a pending reception has already
//!   popped (any overlapper starts strictly before the reception ends,
//!   and the flush trigger time is later still);
//! * the parallel decode (`fan_out`) preserves batch order and each
//!   reception draws from its own `reception_rng_seed` stream, so the
//!   result is bit-identical for any worker count — pinned by
//!   `mesh_is_invariant_to_worker_count` below.
//!
//! Wall-clock events/sec is *measured* in `ppr-bench` (`bench_packed`,
//! the `BENCH_packed.json` mesh rows); this experiment reports only
//! deterministic counts, keeping ppr-sim free of wall-clock reads (the
//! ppr-lint `determinism` rule).

use super::Experiment;
use crate::adversary::{AdversaryState, FaultPlan, JammerSpec};
use crate::event::{prio, priority, BinaryHeapQueue, EventQueue, SimEvent};
use crate::geometry::{Point, Testbed};
use crate::network::{fan_out, office_model, payload_pattern, reception_rng_seed, SQUELCH_SNR};
use crate::results::ExperimentResult;
use crate::rxpath::FastRx;
use crate::scenario::Scenario;
use crate::snapshot::{MeshNodeSnapshot, MeshSnapshot, MeshTxSnapshot, SnapError};
use crate::spatial::SpatialIndex;
use ppr_channel::chip_channel::{corrupt_chip_words_in_place, ErrorProfile};
use ppr_channel::overlap::{interference_profile, HeardTx};
use ppr_channel::pathloss::PathLossModel;
use ppr_core::dp::{plan_chunks, CostModel};
use ppr_core::runs::{RunLengths, UnitRange};
use ppr_mac::frame::Frame;
use ppr_mac::schemes::{Delivered, DeliveryScheme};
use ppr_mac::BackoffPolicy;
use ppr_phy::chips::CHIP_RATE_HZ;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Flush window, chips: pending receptions are decoded before the clock
/// passes `earliest completion + SAFE_WINDOW`, and every
/// outcome-scheduled event is deferred by at least this much.
pub const SAFE_WINDOW: u64 = 4096;

/// Rebroadcast/repair jitter span, chips (2¹⁷ ≈ 66 ms at 2 Mchip/s).
/// A 250 B frame is ~18 k chips of airtime, so two rebroadcasts inside
/// this span collide ~27% of the time — frequent enough to produce the
/// partial packets PP-ARQ exists to repair, rare enough that the flood
/// still propagates.
pub const JITTER_SPAN: u64 = 1 << 17;

/// PP-ARQ timer delay after the arming reception's completion, chips —
/// half a jitter span, so a partial node asks for repair only after the
/// local rebroadcast wave has mostly played out.
pub const ARQ_TIMEOUT: u64 = JITTER_SPAN / 2;

/// Default maximum PP-ARQ repair rounds per node (the `arq_retries`
/// scenario axis overrides it).
pub const MAX_ARQ_ROUNDS: u8 = 3;

/// On-air body bytes of the flooded frame (the paper's PP-ARQ
/// experiments use 250 B packets).
pub const MESH_BODY_BYTES: usize = 250;

/// Broadcast link-layer address.
const BROADCAST: u16 = 0xFFFF;

/// The mesh propagation model: the office chip-channel parameters with
/// shadowing *disabled* — open-plan synthetic terrain, and the zero
/// sigma is what makes the [`SpatialIndex`] candidate superset exact
/// (a mean-power radius bounds every link).
pub fn mesh_model() -> PathLossModel {
    PathLossModel {
        shadow_sigma_db: 0.0,
        ..office_model()
    }
}

/// Parameters of one mesh flood run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshParams {
    /// Node count.
    pub nodes: usize,
    /// Expected neighbors within the communication radius.
    pub density: f64,
    /// Master seed (placement, corruption).
    pub seed: u64,
    /// PPR delivery threshold η.
    pub eta: u8,
    /// Body bytes of the flooded frame.
    pub body_bytes: usize,
    /// Jammer actor ([`JammerSpec::Off`] = no adversary).
    pub jammer: JammerSpec,
    /// Node crash/restart churn, crashes per simulated second.
    pub churn: f64,
    /// PP-ARQ retry budget per node.
    pub arq_retries: u8,
    /// PP-ARQ backoff multiplier in exact integer milli-units
    /// (`1000` = ×1.0, the pre-adversary constant schedule).
    pub arq_backoff_milli: u64,
}

impl MeshParams {
    /// Benign parameters: no jammer, no churn, the historical retry
    /// budget and constant backoff — bit-identical to the pre-adversary
    /// driver.
    pub fn benign(nodes: usize, density: f64, seed: u64, eta: u8, body_bytes: usize) -> Self {
        MeshParams {
            nodes,
            density,
            seed,
            eta,
            body_bytes,
            jammer: JammerSpec::Off,
            churn: 0.0,
            arq_retries: MAX_ARQ_ROUNDS,
            arq_backoff_milli: 1000,
        }
    }

    /// Parameters from a scenario (`mesh_nodes`, `mesh_density`, seed,
    /// η; 250 B bodies; `jammer`/`churn`/`arq_retries`/`arq_backoff`
    /// adversarial axes).
    pub fn from_scenario(sc: &Scenario) -> Self {
        MeshParams {
            nodes: sc.mesh_nodes,
            density: sc.mesh_density,
            seed: sc.seed,
            eta: sc.eta,
            body_bytes: MESH_BODY_BYTES,
            jammer: sc.jammer,
            churn: sc.churn,
            arq_retries: sc.arq_retries,
            arq_backoff_milli: (sc.arq_backoff * 1000.0).round() as u64,
        }
    }
}

/// Deterministic counters of one mesh flood run — everything the
/// experiment reports, and what the worker-count invariance test pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeshStats {
    /// Node count.
    pub nodes: usize,
    /// Nodes that recovered the full payload.
    pub recovered: usize,
    /// All transmissions (flood + rebroadcasts + repairs).
    pub transmissions: usize,
    /// Repair (PP-ARQ) transmissions among them.
    pub repair_tx: usize,
    /// Receptions scheduled by spatial dispatch.
    pub receptions_scheduled: usize,
    /// Receptions actually run through the chip pipeline.
    pub receptions_evaluated: usize,
    /// Receptions skipped: receiver already recovered, or a unicast
    /// repair addressed elsewhere.
    pub receptions_skipped: usize,
    /// Receptions dropped because the receiver was transmitting
    /// (half-duplex).
    pub self_busy_drops: usize,
    /// Events dispatched by the queue — the numerator of events/sec.
    pub events_dispatched: u64,
    /// Total payload bytes requested over all PP-ARQ repair plans.
    pub repair_bytes_requested: usize,
    /// Correct payload bytes accumulated across all nodes.
    pub correct_bytes: usize,
    /// Chip-clock time of the last dispatched event.
    pub sim_chips: u64,
    /// Spatial shards (grid cells) of the index.
    pub shards: usize,
    /// Decode flushes performed.
    pub flush_batches: usize,
    /// Largest single decode batch.
    pub max_batch: usize,
    /// Jamming bursts emitted.
    pub jam_bursts: usize,
    /// Total chips jammed across all bursts.
    pub jam_chips: u64,
    /// Node crashes injected.
    pub crashes: usize,
    /// Node restarts injected.
    pub restarts: usize,
    /// Nodes whose PP-ARQ retry budget ran out unrecovered.
    pub retry_exhausted: usize,
}

impl MeshStats {
    /// Simulated seconds covered by the run.
    pub fn sim_seconds(&self) -> f64 {
        self.sim_chips as f64 / CHIP_RATE_HZ as f64
    }

    /// Fraction of nodes that recovered the payload.
    pub fn coverage(&self) -> f64 {
        self.recovered as f64 / self.nodes.max(1) as f64
    }
}

/// One on-air frame of the mesh run.
// ppr-lint: region(snapshot-state) begin mesh transmission store
struct MeshTx {
    /// snapshot: serialized — transmitting node.
    sender: usize,
    /// snapshot: serialized — link-layer destination ([`BROADCAST`] for
    /// flood frames, the requester for repairs).
    dst: u16,
    /// snapshot: serialized — start chip.
    start: u64,
    /// snapshot: rebuilt — derived from the reconstructed frame.
    len: u64,
    /// snapshot: rebuilt — the frame bytes are reconstructed from the
    /// ground-truth payload (flood) or the repair spans; the sequence
    /// number is the transmission's index in the store.
    frame: Frame,
    /// snapshot: serialized — for repairs: the payload spans this frame
    /// carries, in original payload coordinates (the receiver maps
    /// delivered bytes back through them).
    spans: Option<Vec<UnitRange>>,
}
// ppr-lint: region(snapshot-state) end

impl MeshTx {
    fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// Per-node protocol state — the per-link PP-ARQ session state of the
/// flood. The chunking DP's scratch is *not* part of it: a repair plan
/// reconstructs its working state from the byte-correct mask on demand,
/// which is why checkpoints exclude `ChunkScratch` contents entirely.
#[derive(Clone)]
// ppr-lint: region(snapshot-state) begin mesh per-node ARQ session state
struct NodeState {
    /// snapshot: serialized — byte-correct bitmask over the payload.
    mask: Vec<u64>,
    /// snapshot: serialized — correct-byte count (cached popcount).
    correct: usize,
    /// snapshot: serialized — full payload recovered.
    recovered: bool,
    /// snapshot: serialized — rebroadcast already scheduled.
    rebroadcasted: bool,
    /// snapshot: serialized — a PP-ARQ timer is armed.
    timer_armed: bool,
    /// snapshot: serialized — node is up (fault injection crashes and
    /// restarts nodes; a crashed node neither sends nor receives, and
    /// loses its non-recovered partial state).
    alive: bool,
}
// ppr-lint: region(snapshot-state) end

impl NodeState {
    fn new(payload_len: usize) -> Self {
        NodeState {
            mask: vec![0u64; payload_len.div_ceil(64)],
            correct: 0,
            recovered: false,
            rebroadcasted: false,
            timer_armed: false,
            alive: true,
        }
    }

    fn has(&self, i: usize) -> bool {
        self.mask[i / 64] >> (i % 64) & 1 == 1
    }

    fn set(&mut self, i: usize) {
        self.mask[i / 64] |= 1 << (i % 64);
    }
}

/// SplitMix64 — the stateless jitter hash (no RNG object, so scheduling
/// order can never perturb a shared stream).
fn jitter_hash(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps an offset within a repair payload (the concatenation of `spans`)
/// back to the original payload coordinate.
fn map_repair_offset(spans: &[UnitRange], off: usize) -> Option<usize> {
    let mut consumed = 0usize;
    for s in spans {
        let len = s.len();
        if off < consumed + len {
            return Some(s.start + (off - consumed));
        }
        consumed += len;
    }
    None
}

/// Runs one mesh flood. `threads` caps the decode fan-out (`None` =
/// the `PPR_THREADS` / available-parallelism default); the returned
/// stats are bit-identical for every value — the flush-window rule above
/// is what guarantees it.
pub fn run_mesh(params: &MeshParams, threads: Option<usize>) -> MeshStats {
    MeshDriver::new(params, threads).run_to_end()
}

/// [`run_mesh`] with a checkpoint in the middle: the flood is driven to
/// the `checkpoint_events` dispatch boundary, serialized, restored from
/// the bytes, and completed. Stats (including the flush-batch counters
/// the rendered report prints) are bit-identical to an uninterrupted
/// run: a checkpoint serializes the pending decode batch *as is* rather
/// than forcing an early flush, so batch boundaries never move.
pub fn run_mesh_checkpointed(
    params: &MeshParams,
    threads: Option<usize>,
    checkpoint_events: u64,
) -> MeshStats {
    let mut driver = MeshDriver::new(params, threads);
    driver.run_events(checkpoint_events);
    let bytes = driver.save().to_bytes();
    drop(driver);
    let snap = MeshSnapshot::from_bytes(&bytes).expect("mesh snapshot bytes round-trip");
    MeshDriver::restore(params, threads, &snap)
        .expect("mesh snapshot restores against its own params")
        .run_to_end()
}

/// The mesh flood as a resumable state machine: the event loop of the
/// module docs, with [`MeshDriver::save`]/[`MeshDriver::restore`] to
/// checkpoint it at any event boundary. Unlike the testbed driver, a
/// mesh checkpoint does *not* flush the pending decode batch — the
/// batch (and its deadline) is serialized verbatim, so the flush
/// statistics printed in the experiment report are unchanged by
/// checkpointing.
pub struct MeshDriver {
    // ppr-lint: region(snapshot-state) begin mesh flood driver state
    /// snapshot: identity — run parameters, validated on restore.
    params: MeshParams,
    /// snapshot: rebuilt — propagation model, derived from nothing.
    model: PathLossModel,
    /// snapshot: rebuilt — noise floor, derived from the model.
    noise: f64,
    /// snapshot: rebuilt — node placement, derived from the seed.
    tb: Testbed,
    /// snapshot: rebuilt — spatial shards, derived from the placement.
    index: SpatialIndex,
    /// snapshot: rebuilt — delivery scheme, derived from η.
    scheme: DeliveryScheme,
    /// snapshot: rebuilt — payload length, derived from the scheme.
    payload_len: usize,
    /// snapshot: rebuilt — ground-truth payload, derived from the
    /// seed-determined flood source.
    truth: Vec<u8>,
    /// snapshot: rebuilt — stateless per-packet receiver.
    fast: FastRx,
    /// snapshot: rebuilt — execution knob (thread count), never
    /// simulation state; results are invariant to it.
    workers: usize,
    /// snapshot: serialized — per-node PP-ARQ session state
    /// (`ChunkScratch` contents excluded: the DP reconstructs its
    /// working state from the mask on demand).
    states: Vec<NodeState>,
    /// snapshot: serialized — the transmission store, as
    /// (sender, dst, start, spans); frames are reconstructed.
    txs: Vec<MeshTx>,
    /// snapshot: rebuilt — per-sender (start, end, id) transmission
    /// windows, reconstructed from `started` and the store.
    own_tx: Vec<Vec<(u64, u64, u64)>>,
    /// snapshot: serialized — tx ids whose TxStart already dispatched,
    /// in dispatch order.
    started: Vec<usize>,
    /// snapshot: serialized — the event queue with keys verbatim, plus
    /// its push/dispatch counters.
    q: BinaryHeapQueue<SimEvent>,
    /// snapshot: serialized — every deterministic counter, flat in
    /// field order.
    stats: MeshStats,
    /// snapshot: serialized — completed-but-undecoded receptions, in
    /// pop order (never flushed early by a checkpoint).
    pending: Vec<(usize, usize)>,
    /// snapshot: serialized — flush deadline of the pending batch.
    pending_deadline: u64,
    /// snapshot: rebuilt — scratch buffer for spatial candidate lists.
    cand_buf: Vec<u32>,
    /// snapshot: serialized — chip time of the last dispatched event.
    last_time: u64,
    /// snapshot: serialized — the jammer actor's dynamic state (RNG
    /// words, busy horizon, sweep step, scheduled + recorded bursts);
    /// its spec is identity-validated on restore.
    adversary: AdversaryState,
    /// snapshot: rebuilt — the fault plan is a pure function of
    /// `(seed, churn, nodes, source)` and is regenerated on restore.
    fault_plan: FaultPlan,
    /// snapshot: rebuilt — retry/backoff schedule, derived from params.
    policy: BackoffPolicy,
    // ppr-lint: region(snapshot-state) end
}

impl MeshDriver {
    /// Builds a driver at event zero: placement, spatial index and
    /// source selection done, the source's flood frame scheduled.
    pub fn new(params: &MeshParams, threads: Option<usize>) -> Self {
        let model = mesh_model();
        let noise = model.noise_mw();
        let comm_radius = model.range_at_snr_m(SQUELCH_SNR);
        let tb = Testbed::mesh(params.seed, params.nodes, params.density, comm_radius);
        let pts: &[Point] = &tb.senders;
        let n = pts.len();
        let index = SpatialIndex::build(pts, model.interference_radius_m());

        let scheme = DeliveryScheme::Ppr { eta: params.eta };
        let payload_len = scheme.payload_len(params.body_bytes);

        // Source: the node nearest the center of the deployment square.
        let side = pts.iter().flat_map(|p| [p.x, p.y]).fold(0.0f64, f64::max);
        let center = Point::new(side / 2.0, side / 2.0);
        let source = (0..n)
            .min_by(|&a, &b| {
                pts[a]
                    .distance(&center)
                    .partial_cmp(&pts[b].distance(&center))
                    .unwrap()
            })
            .expect("mesh has nodes");

        let truth = payload_pattern(source, 0, payload_len);
        let workers = threads.unwrap_or_else(crate::env::threads_from_env).max(1);

        let mut states: Vec<NodeState> = vec![NodeState::new(payload_len); n];
        states[source].mask.fill(u64::MAX);
        states[source].correct = payload_len;
        states[source].recovered = true;
        states[source].rebroadcasted = true;

        let stats = MeshStats {
            nodes: n,
            shards: index.shard_count(),
            ..Default::default()
        };
        let adversary = AdversaryState::new(params.jammer, params.seed, side);
        let fault_plan = FaultPlan::generate(params.seed, params.churn, n, source);
        let policy = BackoffPolicy {
            max_retries: params.arq_retries,
            base_delay: ARQ_TIMEOUT,
            multiplier_milli: params.arq_backoff_milli,
            jitter_span: 0,
        };
        let mut driver = MeshDriver {
            params: *params,
            model,
            noise,
            tb,
            index,
            scheme,
            payload_len,
            truth: truth.clone(),
            fast: FastRx::new(true),
            workers,
            states,
            txs: Vec::new(),
            own_tx: vec![Vec::new(); n], // (start, end, tx id)
            started: Vec::new(),
            q: BinaryHeapQueue::new(),
            stats,
            // Pending completed-but-undecoded receptions, in pop order
            // as (tx idx, receiver).
            pending: Vec::new(),
            pending_deadline: u64::MAX,
            cand_buf: Vec::new(),
            last_time: 0,
            adversary,
            fault_plan,
            policy,
        };
        driver.schedule_tx(source, BROADCAST, 0, truth, None);
        // Adversarial events ride the same queue. With the jammer off
        // and zero churn, nothing below schedules — the benign queue
        // (and every key it assigns) is bit-identical to the
        // pre-adversary driver.
        if let Some(t) = driver.adversary.initial_burst_time() {
            driver.q.schedule(
                t,
                priority(prio::JAM_BURST, 0),
                SimEvent::JamBurst { jammer: 0 },
            );
        }
        for i in 0..driver.fault_plan.faults.len() {
            let f = driver.fault_plan.faults[i];
            driver.q.schedule(
                f.time,
                priority(prio::NODE_FAULT, f.node as u32),
                SimEvent::NodeFault {
                    node: f.node,
                    up: f.up,
                },
            );
        }
        driver
    }

    /// Mean-power link gain (the mesh model has zero shadowing).
    fn gain(&self, s: usize, r: usize) -> f64 {
        self.model
            .rx_power_mw(self.tb.senders[s].distance(&self.tb.senders[r]), 0.0)
    }

    /// Appends a transmission to the store (its sequence number is its
    /// index) and schedules its TxStart.
    fn schedule_tx(
        &mut self,
        sender: usize,
        dst: u16,
        start: u64,
        body: Vec<u8>,
        spans: Option<Vec<UnitRange>>,
    ) {
        let seq = self.txs.len() as u16;
        let frame = Frame::new(dst, sender as u16, seq, body);
        let len = frame.chips_len() as u64;
        let idx = self.txs.len();
        self.txs.push(MeshTx {
            sender,
            dst,
            start,
            len,
            frame,
            spans,
        });
        self.q.schedule(
            start,
            priority(prio::TX_START, sender as u32),
            SimEvent::TxStart { tx: idx },
        );
    }

    /// Decodes the pending batch and applies outcomes in batch order.
    /// Outcomes: mask updates, first-recovery rebroadcast scheduling,
    /// ARQ timer arming. Everything the parallel phase reads (`txs`,
    /// `own_tx`, positions) is frozen for the duration of the flush.
    fn flush(&mut self) {
        if !self.pending.is_empty() {
            // Work selection is sequential and reads only pre-flush
            // state, so it is batch-order deterministic.
            let mut work: Vec<(usize, usize)> = Vec::new();
            for &(ti, r) in &self.pending {
                let t = &self.txs[ti];
                if t.dst != BROADCAST && t.dst != r as u16 {
                    self.stats.receptions_skipped += 1;
                    continue;
                }
                // A crashed receiver hears nothing (it may have died
                // between reception scheduling and this flush).
                if !self.states[r].alive {
                    self.stats.receptions_skipped += 1;
                    continue;
                }
                // Half-duplex before anything else: a transmitting
                // node hears nothing, recovered or not.
                if self.own_tx[r]
                    .iter()
                    .any(|&(s, e, _)| s < t.end() && t.start < e)
                {
                    self.stats.self_busy_drops += 1;
                    continue;
                }
                if self.states[r].recovered {
                    self.stats.receptions_skipped += 1;
                    continue;
                }
                work.push((ti, r));
            }
            self.stats.receptions_evaluated += work.len();
            self.stats.flush_batches += 1;
            self.stats.max_batch = self.stats.max_batch.max(work.len());

            let outcomes: Vec<Option<Vec<Delivered>>> = fan_out(self.workers, &work, |&(ti, r)| {
                let t = &self.txs[ti];
                let signal = self.gain(t.sender, r);
                let me = HeardTx {
                    id: ti as u64,
                    start_chip: t.start,
                    len_chips: t.len,
                    power_mw: signal,
                };
                // Interferers: every overlapping transmission
                // from a sender inside the receiver's 3×3 cell
                // neighborhood. Beyond that radius a sender's
                // mean power is below the noise floor.
                let mut heard = vec![me];
                let mut cands = Vec::new();
                self.index.candidates_into(&self.tb.senders[r], &mut cands);
                for &s in &cands {
                    let s = s as usize;
                    if s == r {
                        continue;
                    }
                    for &(os, oe, oid) in &self.own_tx[s] {
                        if oid != ti as u64 && os < t.end() && t.start < oe {
                            heard.push(HeardTx {
                                id: oid,
                                start_chip: os,
                                len_chips: oe - os,
                                power_mw: self.gain(s, r),
                            });
                        }
                    }
                }
                // Jamming bursts are just more interferers: each
                // overlapping burst contributes its path-loss power at
                // the receiver through the same profile math as a
                // colliding frame. Ids count down from u64::MAX so they
                // can never collide with transmission ids.
                for (k, b) in self
                    .adversary
                    .bursts_overlapping(t.start, t.end())
                    .enumerate()
                {
                    heard.push(HeardTx {
                        id: u64::MAX - k as u64,
                        start_chip: b.start,
                        len_chips: b.end - b.start,
                        power_mw: self
                            .model
                            .rx_power_mw(b.pos().distance(&self.tb.senders[r]), 0.0),
                    });
                }
                let spans = interference_profile(&me, &heard);
                // Link degradation raises this receiver's noise floor
                // for the window (×1.0 — bit-exact — outside one).
                let noise = self.noise * self.fault_plan.noise_factor(r, t.start, t.end());
                let profile = ErrorProfile::from_interference(signal, noise, &spans);
                let mut corrupted = t.frame.chip_words();
                let mut rng =
                    StdRng::seed_from_u64(reception_rng_seed(self.params.seed, ti as u64, r));
                corrupt_chip_words_in_place(&mut corrupted, &profile, &mut rng);
                let (_acq, rx) = self.fast.receive_words(&t.frame, &corrupted, true);
                rx.map(|rx| self.scheme.deliver(&rx))
            });

            for ((ti, r), outcome) in work.into_iter().zip(outcomes) {
                let end = self.txs[ti].end();
                let mut rebroadcast = false;
                if let Some(delivered) = outcome {
                    let st = &mut self.states[r];
                    for d in &delivered {
                        for (i, &b) in d.bytes.iter().enumerate() {
                            let off = match &self.txs[ti].spans {
                                None => Some(d.offset + i),
                                Some(spans) => map_repair_offset(spans, d.offset + i),
                            };
                            if let Some(off) = off {
                                if off < self.payload_len && self.truth[off] == b && !st.has(off) {
                                    st.set(off);
                                    st.correct += 1;
                                }
                            }
                        }
                    }
                    if st.correct == self.payload_len && !st.recovered {
                        st.recovered = true;
                        if !st.rebroadcasted {
                            st.rebroadcasted = true;
                            rebroadcast = true;
                        }
                    }
                }
                if rebroadcast {
                    let jitter =
                        jitter_hash(self.params.seed ^ ((r as u64) << 20) ^ 0xB0) % JITTER_SPAN;
                    let body = self.truth.clone();
                    self.schedule_tx(r, BROADCAST, end + SAFE_WINDOW + jitter, body, None);
                }
                // A partial node arms its PP-ARQ timer off any
                // evaluated reception (it heard *something*).
                let st = &mut self.states[r];
                if !st.recovered && !st.timer_armed {
                    st.timer_armed = true;
                    self.q.schedule(
                        end + self.policy.delay(0),
                        priority(prio::ARQ_TIMER, r as u32),
                        SimEvent::ArqTimer { node: r, round: 0 },
                    );
                }
            }
            self.pending.clear();
        }
        self.pending_deadline = u64::MAX;
    }

    /// Dispatches the next event (or, on queue drain, performs the
    /// final flush). Returns `false` when the run is complete.
    fn step(&mut self) -> bool {
        let Some((key, ev)) = self.q.pop() else {
            // Queue drained — but the flush may recover nodes and
            // schedule their rebroadcasts, so only a flush that adds
            // nothing ends the run.
            self.flush();
            return !self.q.is_empty();
        };
        self.last_time = self.last_time.max(key.time);
        // The flush rule: decode before the clock passes the window,
        // and always before a state-reading event runs (ARQ timers and
        // node faults both read/write node state; a JamBurst only
        // touches the actor, so it needs no flush).
        if key.time >= self.pending_deadline
            || matches!(ev, SimEvent::ArqTimer { .. } | SimEvent::NodeFault { .. })
        {
            self.flush();
        }
        match ev {
            SimEvent::TxStart { tx } => {
                let (sender, start, end) = {
                    let t = &self.txs[tx];
                    (t.sender, t.start, t.end())
                };
                // A crashed sender's scheduled frame never hits the
                // air: no transmission counted, no receptions.
                if !self.states[sender].alive {
                    return true;
                }
                self.stats.transmissions += 1;
                self.own_tx[sender].push((start, end, tx as u64));
                self.started.push(tx);
                self.cand_buf.clear();
                let mut cand_buf = std::mem::take(&mut self.cand_buf);
                self.index
                    .candidates_into(&self.tb.senders[sender], &mut cand_buf);
                for &r in &cand_buf {
                    let r = r as usize;
                    if r == sender
                        || !self.states[r].alive
                        || self.gain(sender, r) / self.noise < SQUELCH_SNR
                    {
                        continue;
                    }
                    self.stats.receptions_scheduled += 1;
                    self.q.schedule(
                        end,
                        priority(prio::RECEPTION, r as u32),
                        SimEvent::ReceptionComplete {
                            tx,
                            receiver: r,
                            slot: 0,
                        },
                    );
                }
                self.cand_buf = cand_buf;
                // Reactive jammer: sense this frame start at the
                // jammer's position (same squelch rule as a receiver)
                // and, if it triggers, schedule the burst event.
                if self.adversary.active() {
                    let d = self.tb.senders[sender].distance(&self.adversary.pos());
                    let sense_ok = self.model.rx_power_mw(d, 0.0) / self.noise >= SQUELCH_SNR;
                    if let Some(t) = self.adversary.on_tx_start(start, end, sense_ok) {
                        self.q.schedule(
                            t,
                            priority(prio::JAM_BURST, 0),
                            SimEvent::JamBurst { jammer: 0 },
                        );
                    }
                }
            }
            SimEvent::ReceptionComplete { tx, receiver, .. } => {
                if self.pending.is_empty() {
                    self.pending_deadline = key.time + SAFE_WINDOW;
                }
                self.pending.push((tx, receiver));
            }
            SimEvent::ArqTimer { node, round } => {
                self.states[node].timer_armed = false;
                if self.states[node].recovered || !self.states[node].alive {
                    return true;
                }
                // Plan the repair request with the paper's chunking DP
                // over the byte-correct mask.
                let labels: Vec<bool> = (0..self.payload_len)
                    .map(|i| self.states[node].has(i))
                    .collect();
                let rl = RunLengths::from_labels(&labels);
                let plan = plan_chunks(&rl, &CostModel::bytes(self.payload_len));
                if plan.chunks.is_empty() {
                    return true;
                }
                // Best recovered neighbor repairs; ties break to the
                // lowest id (strict > comparison over exact gains).
                self.cand_buf.clear();
                let mut cand_buf = std::mem::take(&mut self.cand_buf);
                self.index
                    .candidates_into(&self.tb.senders[node], &mut cand_buf);
                let mut peer: Option<(usize, f64)> = None;
                for &c in &cand_buf {
                    let c = c as usize;
                    if c == node || !self.states[c].recovered || !self.states[c].alive {
                        continue;
                    }
                    let g = self.gain(c, node);
                    if g / self.noise < SQUELCH_SNR {
                        continue;
                    }
                    if peer.map(|(_, best)| g > best).unwrap_or(true) {
                        peer = Some((c, g));
                    }
                }
                self.cand_buf = cand_buf;
                if let Some((peer, _)) = peer {
                    self.stats.repair_tx += 1;
                    self.stats.repair_bytes_requested += plan.requested_units();
                    let repair: Vec<u8> = plan
                        .chunks
                        .iter()
                        .flat_map(|s| self.truth[s.start..s.end].iter().copied())
                        .collect();
                    let jitter = jitter_hash(
                        self.params.seed ^ ((node as u64) << 20) ^ ((round as u64) << 8) ^ 0xA7,
                    ) % JITTER_SPAN;
                    let start = key.time + SAFE_WINDOW + jitter;
                    self.schedule_tx(peer, node as u16, start, repair, Some(plan.chunks.clone()));
                    if self.policy.allows(round + 1) {
                        let repair_end = self.txs.last().unwrap().end();
                        self.states[node].timer_armed = true;
                        self.q.schedule(
                            repair_end + self.policy.delay(round + 1),
                            priority(prio::ARQ_TIMER, node as u32),
                            SimEvent::ArqTimer {
                                node,
                                round: round + 1,
                            },
                        );
                    } else {
                        // Last round: whatever this final repair
                        // delivers, nobody will ask again.
                        self.stats.retry_exhausted += 1;
                    }
                } else if self.policy.allows(round + 1) {
                    // Nobody nearby has the payload yet — retry after
                    // the flood has had time to advance.
                    self.states[node].timer_armed = true;
                    self.q.schedule(
                        key.time + 2 * self.policy.delay(round + 1),
                        priority(prio::ARQ_TIMER, node as u32),
                        SimEvent::ArqTimer {
                            node,
                            round: round + 1,
                        },
                    );
                } else {
                    self.stats.retry_exhausted += 1;
                }
            }
            SimEvent::JamBurst { .. } => {
                // The actor records this slot's burst (if any) and
                // names its successor; the driver owns the queue.
                if let Some(next) = self.adversary.on_jam_burst(key.time) {
                    self.q.schedule(
                        next,
                        priority(prio::JAM_BURST, 0),
                        SimEvent::JamBurst { jammer: 0 },
                    );
                }
            }
            SimEvent::NodeFault { node, up } => {
                let st = &mut self.states[node];
                st.alive = up;
                if up {
                    self.stats.restarts += 1;
                } else {
                    self.stats.crashes += 1;
                    // A crash loses volatile reception state; a node
                    // that already recovered keeps its stored payload.
                    if !st.recovered {
                        st.mask.fill(0);
                        st.correct = 0;
                    }
                }
            }
            other => unreachable!("unexpected {other:?} in the mesh driver"),
        }
        true
    }

    /// Total events dispatched so far — the checkpoint epoch counter.
    pub fn dispatched(&self) -> u64 {
        self.q.dispatched()
    }

    /// Drives the flood until `events` total dispatches (a stable epoch
    /// boundary: the count is invariant to the worker count) or until
    /// the run completes, whichever is first.
    pub fn run_events(&mut self, events: u64) {
        while self.q.dispatched() < events {
            if !self.step() {
                break;
            }
        }
    }

    /// Runs to completion and returns the final stats.
    pub fn run_to_end(mut self) -> MeshStats {
        while self.step() {}
        self.stats.events_dispatched = self.q.dispatched();
        self.stats.sim_chips = self.last_time;
        self.stats.recovered = self.states.iter().filter(|s| s.recovered).count();
        self.stats.correct_bytes = self.states.iter().map(|s| s.correct).sum();
        self.stats.jam_bursts = self.adversary.bursts().len();
        self.stats.jam_chips = self.adversary.jam_chips();
        self.stats
    }

    /// Checkpoints the driver — *without* flushing the pending decode
    /// batch, which is serialized verbatim so the run's flush
    /// statistics (printed in the report) cannot shift.
    pub fn save(&self) -> MeshSnapshot {
        let (queue, next_seq, dispatched) = self.q.save_state();
        let (adv_rng, adv_busy_until, adv_sweep_idx, adv_scheduled, adv_bursts) =
            self.adversary.save_state();
        MeshSnapshot {
            nodes: self.params.nodes,
            density: self.params.density,
            seed: self.params.seed,
            eta: self.params.eta,
            body_bytes: self.params.body_bytes,
            jammer: self.params.jammer.identity_words(),
            churn: self.params.churn,
            arq_retries: self.params.arq_retries,
            arq_backoff_milli: self.params.arq_backoff_milli,
            adv_rng,
            adv_busy_until,
            adv_sweep_idx,
            adv_scheduled,
            adv_bursts,
            kernel_signature: ppr_phy::simd::active_kernel_signature().into_bytes(),
            states: self
                .states
                .iter()
                .map(|st| MeshNodeSnapshot {
                    mask: st.mask.clone(),
                    correct: st.correct,
                    recovered: st.recovered,
                    rebroadcasted: st.rebroadcasted,
                    timer_armed: st.timer_armed,
                    alive: st.alive,
                })
                .collect(),
            txs: self
                .txs
                .iter()
                .map(|t| MeshTxSnapshot {
                    sender: t.sender,
                    dst: t.dst,
                    start: t.start,
                    spans: t
                        .spans
                        .as_ref()
                        .map(|spans| spans.iter().map(|s| (s.start, s.end)).collect()),
                })
                .collect(),
            started: self.started.clone(),
            queue,
            next_seq,
            dispatched,
            pending: self.pending.clone(),
            pending_deadline: self.pending_deadline,
            last_time: self.last_time,
            stats: stats_words(&self.stats),
        }
    }

    /// Rebuilds a driver from a checkpoint, validating the snapshot's
    /// identity against `params` and every index against the
    /// reconstructed run. Frames are rebuilt from the ground-truth
    /// payload (flood) or their repair spans.
    pub fn restore(
        params: &MeshParams,
        threads: Option<usize>,
        snap: &MeshSnapshot,
    ) -> Result<Self, SnapError> {
        if params.nodes != snap.nodes
            || params.density.to_bits() != snap.density.to_bits()
            || params.seed != snap.seed
            || params.eta != snap.eta
            || params.body_bytes != snap.body_bytes
            || params.jammer.identity_words() != snap.jammer
            || params.churn.to_bits() != snap.churn.to_bits()
            || params.arq_retries != snap.arq_retries
            || params.arq_backoff_milli != snap.arq_backoff_milli
        {
            return Err(SnapError::IdentityMismatch(
                "MeshParams differ from the snapshot's".into(),
            ));
        }
        let mut driver = MeshDriver::new(params, threads);
        let n = driver.states.len();
        let payload_len = driver.payload_len;
        let mask_words = payload_len.div_ceil(64);
        if snap.states.len() != n {
            return Err(SnapError::Corrupt(format!(
                "{} node states for {n} nodes",
                snap.states.len()
            )));
        }
        for (i, st) in snap.states.iter().enumerate() {
            if st.mask.len() != mask_words || st.correct > payload_len {
                return Err(SnapError::Corrupt(format!("node {i} state out of bounds")));
            }
        }
        let ntx = snap.txs.len();
        for (i, t) in snap.txs.iter().enumerate() {
            let spans_ok = t.spans.as_ref().is_none_or(|spans| {
                !spans.is_empty() && spans.iter().all(|&(s, e)| s < e && e <= payload_len)
            });
            if t.sender >= n || !spans_ok {
                return Err(SnapError::Corrupt(format!(
                    "transmission {i} out of bounds"
                )));
            }
        }
        if snap.started.iter().any(|&id| id >= ntx) {
            return Err(SnapError::Corrupt("started id beyond the store".into()));
        }
        for (key, ev) in &snap.queue {
            let ok = match *ev {
                SimEvent::TxStart { tx } => tx < ntx,
                SimEvent::ReceptionComplete { tx, receiver, .. } => tx < ntx && receiver < n,
                SimEvent::ArqTimer { node, round } => node < n && round < params.arq_retries,
                SimEvent::JamBurst { jammer } => jammer == 0,
                SimEvent::NodeFault { node, .. } => node < n,
                _ => false,
            };
            if !ok || key.seq >= snap.next_seq {
                return Err(SnapError::Corrupt(format!(
                    "queue entry {key:?} {ev:?} out of bounds"
                )));
            }
        }
        if snap.pending.iter().any(|&(t, r)| t >= ntx || r >= n) {
            return Err(SnapError::Corrupt("pending reception out of bounds".into()));
        }
        let stats = stats_from_words(&snap.stats).ok_or_else(|| {
            SnapError::Corrupt(format!("{} stats words, expected 20", snap.stats.len()))
        })?;

        driver.states = snap
            .states
            .iter()
            .map(|st| NodeState {
                mask: st.mask.clone(),
                correct: st.correct,
                recovered: st.recovered,
                rebroadcasted: st.rebroadcasted,
                timer_armed: st.timer_armed,
                alive: st.alive,
            })
            .collect();
        driver.txs = snap
            .txs
            .iter()
            .enumerate()
            .map(|(idx, t)| {
                let (body, spans) = match &t.spans {
                    None => (driver.truth.clone(), None),
                    Some(spans) => {
                        let spans: Vec<UnitRange> =
                            spans.iter().map(|&(s, e)| UnitRange::new(s, e)).collect();
                        let body: Vec<u8> = spans
                            .iter()
                            .flat_map(|s| driver.truth[s.start..s.end].iter().copied())
                            .collect();
                        (body, Some(spans))
                    }
                };
                let frame = Frame::new(t.dst, t.sender as u16, idx as u16, body);
                let len = frame.chips_len() as u64;
                MeshTx {
                    sender: t.sender,
                    dst: t.dst,
                    start: t.start,
                    len,
                    frame,
                    spans,
                }
            })
            .collect();
        driver.own_tx = vec![Vec::new(); n];
        for &id in &snap.started {
            let t = &driver.txs[id];
            driver.own_tx[t.sender].push((t.start, t.end(), id as u64));
        }
        driver.started = snap.started.clone();
        driver.q = BinaryHeapQueue::from_state(snap.queue.clone(), snap.next_seq, snap.dispatched);
        driver.stats = stats;
        driver.pending = snap.pending.clone();
        driver.pending_deadline = snap.pending_deadline;
        driver.last_time = snap.last_time;
        driver.adversary.restore_state((
            snap.adv_rng,
            snap.adv_busy_until,
            snap.adv_sweep_idx,
            snap.adv_scheduled.clone(),
            snap.adv_bursts.clone(),
        ));
        Ok(driver)
    }
}

/// [`MeshStats`] as flat words, in field order — the snapshot encoding.
fn stats_words(s: &MeshStats) -> Vec<u64> {
    vec![
        s.nodes as u64,
        s.recovered as u64,
        s.transmissions as u64,
        s.repair_tx as u64,
        s.receptions_scheduled as u64,
        s.receptions_evaluated as u64,
        s.receptions_skipped as u64,
        s.self_busy_drops as u64,
        s.events_dispatched,
        s.repair_bytes_requested as u64,
        s.correct_bytes as u64,
        s.sim_chips,
        s.shards as u64,
        s.flush_batches as u64,
        s.max_batch as u64,
        s.jam_bursts as u64,
        s.jam_chips,
        s.crashes as u64,
        s.restarts as u64,
        s.retry_exhausted as u64,
    ]
}

/// Inverse of [`stats_words`]; `None` on a wrong word count or a value
/// that does not fit the field.
fn stats_from_words(w: &[u64]) -> Option<MeshStats> {
    if w.len() != 20 {
        return None;
    }
    let u = |i: usize| usize::try_from(w[i]).ok();
    Some(MeshStats {
        nodes: u(0)?,
        recovered: u(1)?,
        transmissions: u(2)?,
        repair_tx: u(3)?,
        receptions_scheduled: u(4)?,
        receptions_evaluated: u(5)?,
        receptions_skipped: u(6)?,
        self_busy_drops: u(7)?,
        events_dispatched: w[8],
        repair_bytes_requested: u(9)?,
        correct_bytes: u(10)?,
        sim_chips: w[11],
        shards: u(12)?,
        flush_batches: u(13)?,
        max_batch: u(14)?,
        jam_bursts: u(15)?,
        jam_chips: w[16],
        crashes: u(17)?,
        restarts: u(18)?,
        retry_exhausted: u(19)?,
    })
}

/// The `mesh10k` experiment.
pub struct Mesh10k;

impl Experiment for Mesh10k {
    fn id(&self) -> &'static str {
        "mesh10k"
    }

    fn title(&self) -> &'static str {
        "Event core at scale: mesh broadcast flood with PP-ARQ"
    }

    fn paper_ref(&self) -> &'static str {
        "Section 8.4 (extension)"
    }

    fn description(&self) -> &'static str {
        "10k-node random-geometric flood through the event queue + spatial shards"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let params = MeshParams::from_scenario(scenario);
        let s = match scenario.checkpoint {
            None => run_mesh(&params, scenario.threads),
            Some(events) => run_mesh_checkpointed(&params, scenario.threads, events),
        };
        let sim_s = s.sim_seconds();
        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(format!(
            "Event core at scale: {} nodes, density {:.1}, {} B bodies, eta {}\n\n\
             coverage            {:>10.3}  ({} of {} nodes recovered)\n\
             transmissions       {:>10}  ({} PP-ARQ repairs)\n\
             receptions          {:>10}  evaluated ({} scheduled, {} skipped, {} half-duplex drops)\n\
             events dispatched   {:>10}\n\
             simulated time      {:>10.3}  s  ({:.0} packets/s of simulated airtime)\n\
             spatial shards      {:>10}  (largest decode batch {})\n\
             repair bytes asked  {:>10}\n\n\
             Deterministic counts only: wall-clock events/sec for this run is\n\
             measured by ppr-bench (BENCH_packed.json, mesh rows).\n",
            s.nodes,
            params.density,
            params.body_bytes,
            params.eta,
            s.coverage(),
            s.recovered,
            s.nodes,
            s.transmissions,
            s.repair_tx,
            s.receptions_evaluated,
            s.receptions_scheduled,
            s.receptions_skipped,
            s.self_busy_drops,
            s.events_dispatched,
            sim_s,
            s.transmissions as f64 / sim_s.max(1e-9),
            s.shards,
            s.max_batch,
            s.repair_bytes_requested,
        ));
        res.metric("nodes", s.nodes as f64);
        res.metric("recovered", s.recovered as f64);
        res.metric("coverage", s.coverage());
        res.metric("transmissions", s.transmissions as f64);
        res.metric("repair_tx", s.repair_tx as f64);
        res.metric("receptions_evaluated", s.receptions_evaluated as f64);
        res.metric("receptions_skipped", s.receptions_skipped as f64);
        res.metric("self_busy_drops", s.self_busy_drops as f64);
        res.metric("events_dispatched", s.events_dispatched as f64);
        res.metric("sim_seconds", sim_s);
        res.metric(
            "sim_packets_per_sec",
            s.transmissions as f64 / sim_s.max(1e-9),
        );
        res.metric("spatial_shards", s.shards as f64);
        res.metric("repair_bytes_requested", s.repair_bytes_requested as f64);
        res.metric("correct_bytes", s.correct_bytes as f64);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MeshParams {
        MeshParams::benign(300, 12.0, 3, 6, 250)
    }

    fn small_jammed() -> MeshParams {
        let mut p = small();
        p.jammer = JammerSpec::React { delay: 4096 };
        p.churn = 2.0;
        p.arq_retries = 5;
        p.arq_backoff_milli = 1500;
        p
    }

    #[test]
    fn flood_covers_most_of_a_small_mesh() {
        let s = run_mesh(&small(), Some(1));
        assert_eq!(s.nodes, 300);
        assert!(s.coverage() > 0.8, "coverage {}", s.coverage());
        assert!(s.transmissions >= s.nodes / 2, "tx {}", s.transmissions);
        assert!(
            s.receptions_evaluated > s.nodes,
            "rx {}",
            s.receptions_evaluated
        );
        assert!(s.events_dispatched > 0 && s.sim_chips > 0);
        assert!(s.shards > 1);
    }

    #[test]
    fn mesh_is_invariant_to_worker_count() {
        // The whole determinism argument in one assertion: parallel
        // decode fan-out must never change an outcome.
        let a = run_mesh(&small(), Some(1));
        let b = run_mesh(&small(), Some(4));
        let c = run_mesh(&small(), Some(7));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn mesh_checkpoint_roundtrip_is_bit_identical() {
        let a = run_mesh(&small(), Some(2));
        for events in [1, 57, 913] {
            // Different worker count on resume on purpose: a snapshot
            // carries no execution knobs.
            let b = run_mesh_checkpointed(&small(), Some(3), events);
            assert_eq!(a, b, "checkpoint at {events} events");
        }
    }

    #[test]
    fn mesh_is_seed_stable_but_seed_sensitive() {
        let a = run_mesh(&small(), None);
        let b = run_mesh(&small(), None);
        assert_eq!(a, b);
        let mut p = small();
        p.seed = 4;
        let c = run_mesh(&p, None);
        assert_ne!(a, c);
    }

    #[test]
    fn jammed_mesh_is_invariant_to_worker_count() {
        let a = run_mesh(&small_jammed(), Some(1));
        let b = run_mesh(&small_jammed(), Some(4));
        assert_eq!(a, b);
        assert!(a.jam_bursts > 0, "reactive jammer never fired");
        assert!(a.crashes > 0, "churn produced no crashes");
    }

    #[test]
    fn jammed_mesh_checkpoint_roundtrip_is_bit_identical() {
        let a = run_mesh(&small_jammed(), Some(2));
        for events in [1, 57, 913] {
            let b = run_mesh_checkpointed(&small_jammed(), Some(3), events);
            assert_eq!(a, b, "checkpoint at {events} events");
        }
    }

    #[test]
    fn benign_params_change_nothing() {
        // The adversarial fields at their defaults must leave the
        // benign flood bit-identical to the pre-adversary driver.
        let s = run_mesh(&small(), Some(1));
        assert_eq!(s.jam_bursts, 0);
        assert_eq!(s.jam_chips, 0);
        assert_eq!(s.crashes + s.restarts, 0);
    }

    #[test]
    fn repair_offsets_map_through_spans() {
        let spans = vec![UnitRange::new(3, 5), UnitRange::new(10, 13)];
        assert_eq!(map_repair_offset(&spans, 0), Some(3));
        assert_eq!(map_repair_offset(&spans, 1), Some(4));
        assert_eq!(map_repair_offset(&spans, 2), Some(10));
        assert_eq!(map_repair_offset(&spans, 4), Some(12));
        assert_eq!(map_repair_offset(&spans, 5), None);
    }
}
