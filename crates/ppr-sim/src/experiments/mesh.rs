//! `mesh10k` — the event core at scale: a 10 000-node mesh flood with
//! PP-ARQ repair.
//!
//! The testbed experiments pair every transmission with every receiver —
//! fine at 23×4, hopeless at 10 000 nodes. This experiment is the
//! subsystem's stress article: a random-geometric mesh
//! ([`Testbed::mesh`]) floods one 250 B PPR frame from the center node
//! outward, every event flows through the deterministic
//! [`BinaryHeapQueue`], and dispatch enumerates only the
//! [`SpatialIndex`] candidates of each transmitter instead of the whole
//! mesh.
//!
//! ## Protocol
//!
//! * The source broadcasts the frame; every node that *recovers* the
//!   full payload (byte-correct against the known ground truth, PPR
//!   delivery at η) rebroadcasts exactly once, after a deterministic
//!   per-node jitter.
//! * A node left with a *partial* payload arms a PP-ARQ timer. When it
//!   fires, the node plans its repair request with the paper's chunking
//!   DP ([`plan_chunks`]) over its byte-correct bitmask and asks its
//!   best recovered neighbor for exactly those spans; the neighbor
//!   unicasts a repair frame containing the requested bytes. Up to
//!   [`MAX_ARQ_ROUNDS`] rounds.
//! * Transmissions interfere: reception evaluation runs the real chip
//!   pipeline (per-span SINR → chip corruption → [`FastRx`] decode), so
//!   colliding rebroadcasts produce exactly the partial packets PP-ARQ
//!   exists to repair.
//!
//! ## Determinism and the flush window
//!
//! Reception outcomes are decoded in parallel batches without ever
//! becoming order-dependent:
//!
//! * completed receptions accumulate in a pending batch, flushed when
//!   the clock reaches `earliest pending completion + `[`SAFE_WINDOW`]
//!   (or when an ARQ timer — the only state-reading event — pops, or at
//!   queue drain);
//! * every outcome-scheduled event (rebroadcast, repair, timer) lands at
//!   least [`SAFE_WINDOW`] chips after the reception that caused it, so
//!   no event that could observe an outcome runs before its flush;
//! * interference and half-duplex checks happen *at flush*, when every
//!   transmission that could overlap a pending reception has already
//!   popped (any overlapper starts strictly before the reception ends,
//!   and the flush trigger time is later still);
//! * the parallel decode (`fan_out`) preserves batch order and each
//!   reception draws from its own `reception_rng_seed` stream, so the
//!   result is bit-identical for any worker count — pinned by
//!   `mesh_is_invariant_to_worker_count` below.
//!
//! Wall-clock events/sec is *measured* in `ppr-bench` (`bench_packed`,
//! the `BENCH_packed.json` mesh rows); this experiment reports only
//! deterministic counts, keeping ppr-sim free of wall-clock reads (the
//! ppr-lint `determinism` rule).

use super::Experiment;
use crate::event::{prio, priority, BinaryHeapQueue, EventQueue, SimEvent};
use crate::geometry::{Point, Testbed};
use crate::network::{fan_out, office_model, payload_pattern, reception_rng_seed, SQUELCH_SNR};
use crate::results::ExperimentResult;
use crate::rxpath::FastRx;
use crate::scenario::Scenario;
use crate::spatial::SpatialIndex;
use ppr_channel::chip_channel::{corrupt_chip_words_in_place, ErrorProfile};
use ppr_channel::overlap::{interference_profile, HeardTx};
use ppr_channel::pathloss::PathLossModel;
use ppr_core::dp::{plan_chunks, CostModel};
use ppr_core::runs::{RunLengths, UnitRange};
use ppr_mac::frame::Frame;
use ppr_mac::schemes::{Delivered, DeliveryScheme};
use ppr_phy::chips::CHIP_RATE_HZ;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Flush window, chips: pending receptions are decoded before the clock
/// passes `earliest completion + SAFE_WINDOW`, and every
/// outcome-scheduled event is deferred by at least this much.
pub const SAFE_WINDOW: u64 = 4096;

/// Rebroadcast/repair jitter span, chips (2¹⁷ ≈ 66 ms at 2 Mchip/s).
/// A 250 B frame is ~18 k chips of airtime, so two rebroadcasts inside
/// this span collide ~27% of the time — frequent enough to produce the
/// partial packets PP-ARQ exists to repair, rare enough that the flood
/// still propagates.
pub const JITTER_SPAN: u64 = 1 << 17;

/// PP-ARQ timer delay after the arming reception's completion, chips —
/// half a jitter span, so a partial node asks for repair only after the
/// local rebroadcast wave has mostly played out.
pub const ARQ_TIMEOUT: u64 = JITTER_SPAN / 2;

/// Maximum PP-ARQ repair rounds per node.
pub const MAX_ARQ_ROUNDS: u8 = 3;

/// On-air body bytes of the flooded frame (the paper's PP-ARQ
/// experiments use 250 B packets).
pub const MESH_BODY_BYTES: usize = 250;

/// Broadcast link-layer address.
const BROADCAST: u16 = 0xFFFF;

/// The mesh propagation model: the office chip-channel parameters with
/// shadowing *disabled* — open-plan synthetic terrain, and the zero
/// sigma is what makes the [`SpatialIndex`] candidate superset exact
/// (a mean-power radius bounds every link).
pub fn mesh_model() -> PathLossModel {
    PathLossModel {
        shadow_sigma_db: 0.0,
        ..office_model()
    }
}

/// Parameters of one mesh flood run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshParams {
    /// Node count.
    pub nodes: usize,
    /// Expected neighbors within the communication radius.
    pub density: f64,
    /// Master seed (placement, corruption).
    pub seed: u64,
    /// PPR delivery threshold η.
    pub eta: u8,
    /// Body bytes of the flooded frame.
    pub body_bytes: usize,
}

impl MeshParams {
    /// Parameters from a scenario (`mesh_nodes`, `mesh_density`, seed,
    /// η; 250 B bodies).
    pub fn from_scenario(sc: &Scenario) -> Self {
        MeshParams {
            nodes: sc.mesh_nodes,
            density: sc.mesh_density,
            seed: sc.seed,
            eta: sc.eta,
            body_bytes: MESH_BODY_BYTES,
        }
    }
}

/// Deterministic counters of one mesh flood run — everything the
/// experiment reports, and what the worker-count invariance test pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeshStats {
    /// Node count.
    pub nodes: usize,
    /// Nodes that recovered the full payload.
    pub recovered: usize,
    /// All transmissions (flood + rebroadcasts + repairs).
    pub transmissions: usize,
    /// Repair (PP-ARQ) transmissions among them.
    pub repair_tx: usize,
    /// Receptions scheduled by spatial dispatch.
    pub receptions_scheduled: usize,
    /// Receptions actually run through the chip pipeline.
    pub receptions_evaluated: usize,
    /// Receptions skipped: receiver already recovered, or a unicast
    /// repair addressed elsewhere.
    pub receptions_skipped: usize,
    /// Receptions dropped because the receiver was transmitting
    /// (half-duplex).
    pub self_busy_drops: usize,
    /// Events dispatched by the queue — the numerator of events/sec.
    pub events_dispatched: u64,
    /// Total payload bytes requested over all PP-ARQ repair plans.
    pub repair_bytes_requested: usize,
    /// Correct payload bytes accumulated across all nodes.
    pub correct_bytes: usize,
    /// Chip-clock time of the last dispatched event.
    pub sim_chips: u64,
    /// Spatial shards (grid cells) of the index.
    pub shards: usize,
    /// Decode flushes performed.
    pub flush_batches: usize,
    /// Largest single decode batch.
    pub max_batch: usize,
}

impl MeshStats {
    /// Simulated seconds covered by the run.
    pub fn sim_seconds(&self) -> f64 {
        self.sim_chips as f64 / CHIP_RATE_HZ as f64
    }

    /// Fraction of nodes that recovered the payload.
    pub fn coverage(&self) -> f64 {
        self.recovered as f64 / self.nodes.max(1) as f64
    }
}

/// One on-air frame of the mesh run.
struct MeshTx {
    sender: usize,
    /// Link-layer destination ([`BROADCAST`] for flood frames, the
    /// requester for repairs).
    dst: u16,
    start: u64,
    len: u64,
    frame: Frame,
    /// For repairs: the payload spans this frame carries, in original
    /// payload coordinates (the receiver maps delivered bytes back
    /// through them).
    spans: Option<Vec<UnitRange>>,
}

impl MeshTx {
    fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// Per-node protocol state.
#[derive(Clone)]
struct NodeState {
    /// Byte-correct bitmask over the payload.
    mask: Vec<u64>,
    correct: usize,
    recovered: bool,
    rebroadcasted: bool,
    timer_armed: bool,
}

impl NodeState {
    fn new(payload_len: usize) -> Self {
        NodeState {
            mask: vec![0u64; payload_len.div_ceil(64)],
            correct: 0,
            recovered: false,
            rebroadcasted: false,
            timer_armed: false,
        }
    }

    fn has(&self, i: usize) -> bool {
        self.mask[i / 64] >> (i % 64) & 1 == 1
    }

    fn set(&mut self, i: usize) {
        self.mask[i / 64] |= 1 << (i % 64);
    }
}

/// SplitMix64 — the stateless jitter hash (no RNG object, so scheduling
/// order can never perturb a shared stream).
fn jitter_hash(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps an offset within a repair payload (the concatenation of `spans`)
/// back to the original payload coordinate.
fn map_repair_offset(spans: &[UnitRange], off: usize) -> Option<usize> {
    let mut consumed = 0usize;
    for s in spans {
        let len = s.len();
        if off < consumed + len {
            return Some(s.start + (off - consumed));
        }
        consumed += len;
    }
    None
}

/// Runs one mesh flood. `threads` caps the decode fan-out (`None` =
/// the `PPR_THREADS` / available-parallelism default); the returned
/// stats are bit-identical for every value — the flush-window rule above
/// is what guarantees it.
pub fn run_mesh(params: &MeshParams, threads: Option<usize>) -> MeshStats {
    let model = mesh_model();
    let noise = model.noise_mw();
    let comm_radius = model.range_at_snr_m(SQUELCH_SNR);
    let tb = Testbed::mesh(params.seed, params.nodes, params.density, comm_radius);
    let pts: &[Point] = &tb.senders;
    let n = pts.len();
    let index = SpatialIndex::build(pts, model.interference_radius_m());

    let scheme = DeliveryScheme::Ppr { eta: params.eta };
    let payload_len = scheme.payload_len(params.body_bytes);

    // Source: the node nearest the center of the deployment square.
    let side = pts.iter().flat_map(|p| [p.x, p.y]).fold(0.0f64, f64::max);
    let center = Point::new(side / 2.0, side / 2.0);
    let source = (0..n)
        .min_by(|&a, &b| {
            pts[a]
                .distance(&center)
                .partial_cmp(&pts[b].distance(&center))
                .unwrap()
        })
        .expect("mesh has nodes");

    let truth = payload_pattern(source, 0, payload_len);
    let gain = |s: usize, r: usize| model.rx_power_mw(pts[s].distance(&pts[r]), 0.0);
    let fast = FastRx::new(true);
    let workers = threads.unwrap_or_else(crate::env::threads_from_env).max(1);

    let mut states: Vec<NodeState> = vec![NodeState::new(payload_len); n];
    states[source].mask.fill(u64::MAX);
    states[source].correct = payload_len;
    states[source].recovered = true;
    states[source].rebroadcasted = true;

    let mut txs: Vec<MeshTx> = Vec::new();
    let mut own_tx: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); n]; // (start, end, tx id)
    let mut q: BinaryHeapQueue<SimEvent> = BinaryHeapQueue::new();
    let mut stats = MeshStats {
        nodes: n,
        shards: index.shard_count(),
        ..Default::default()
    };

    let schedule_tx = |txs: &mut Vec<MeshTx>,
                       q: &mut BinaryHeapQueue<SimEvent>,
                       sender: usize,
                       dst: u16,
                       start: u64,
                       body: Vec<u8>,
                       spans: Option<Vec<UnitRange>>| {
        let seq = txs.len() as u16;
        let frame = Frame::new(dst, sender as u16, seq, body);
        let len = frame.chips_len() as u64;
        let idx = txs.len();
        txs.push(MeshTx {
            sender,
            dst,
            start,
            len,
            frame,
            spans,
        });
        q.schedule(
            start,
            priority(prio::TX_START, sender as u32),
            SimEvent::TxStart { tx: idx },
        );
    };

    schedule_tx(&mut txs, &mut q, source, BROADCAST, 0, truth.clone(), None);

    // Pending completed-but-undecoded receptions, in pop order.
    let mut pending: Vec<(usize, usize)> = Vec::new(); // (tx idx, receiver)
    let mut pending_deadline = u64::MAX;
    let mut cand_buf: Vec<u32> = Vec::new();
    let mut last_time = 0u64;

    // Decodes the pending batch and applies outcomes in batch order.
    // Outcomes: mask updates, first-recovery rebroadcast scheduling, ARQ
    // timer arming. Everything the parallel phase reads (`txs`,
    // `own_tx`, positions) is frozen for the duration of the flush.
    macro_rules! flush {
        () => {{
            if !pending.is_empty() {
                // Work selection is sequential and reads only
                // pre-flush state, so it is batch-order deterministic.
                let mut work: Vec<(usize, usize)> = Vec::new();
                for &(ti, r) in &pending {
                    let t = &txs[ti];
                    if t.dst != BROADCAST && t.dst != r as u16 {
                        stats.receptions_skipped += 1;
                        continue;
                    }
                    // Half-duplex before anything else: a transmitting
                    // node hears nothing, recovered or not.
                    if own_tx[r]
                        .iter()
                        .any(|&(s, e, _)| s < t.end() && t.start < e)
                    {
                        stats.self_busy_drops += 1;
                        continue;
                    }
                    if states[r].recovered {
                        stats.receptions_skipped += 1;
                        continue;
                    }
                    work.push((ti, r));
                }
                stats.receptions_evaluated += work.len();
                stats.flush_batches += 1;
                stats.max_batch = stats.max_batch.max(work.len());

                let outcomes: Vec<Option<Vec<Delivered>>> = fan_out(workers, &work, |&(ti, r)| {
                    let t = &txs[ti];
                    let signal = gain(t.sender, r);
                    let me = HeardTx {
                        id: ti as u64,
                        start_chip: t.start,
                        len_chips: t.len,
                        power_mw: signal,
                    };
                    // Interferers: every overlapping transmission
                    // from a sender inside the receiver's 3×3 cell
                    // neighborhood. Beyond that radius a sender's
                    // mean power is below the noise floor.
                    let mut heard = vec![me];
                    let mut cands = Vec::new();
                    index.candidates_into(&pts[r], &mut cands);
                    for &s in &cands {
                        let s = s as usize;
                        if s == r {
                            continue;
                        }
                        for &(os, oe, oid) in &own_tx[s] {
                            if oid != ti as u64 && os < t.end() && t.start < oe {
                                heard.push(HeardTx {
                                    id: oid,
                                    start_chip: os,
                                    len_chips: oe - os,
                                    power_mw: gain(s, r),
                                });
                            }
                        }
                    }
                    let spans = interference_profile(&me, &heard);
                    let profile = ErrorProfile::from_interference(signal, noise, &spans);
                    let mut corrupted = t.frame.chip_words();
                    let mut rng =
                        StdRng::seed_from_u64(reception_rng_seed(params.seed, ti as u64, r));
                    corrupt_chip_words_in_place(&mut corrupted, &profile, &mut rng);
                    let (_acq, rx) = fast.receive_words(&t.frame, &corrupted, true);
                    rx.map(|rx| scheme.deliver(&rx))
                });

                for ((ti, r), outcome) in work.into_iter().zip(outcomes) {
                    let end = txs[ti].end();
                    if let Some(delivered) = outcome {
                        let st = &mut states[r];
                        for d in &delivered {
                            for (i, &b) in d.bytes.iter().enumerate() {
                                let off = match &txs[ti].spans {
                                    None => Some(d.offset + i),
                                    Some(spans) => map_repair_offset(spans, d.offset + i),
                                };
                                if let Some(off) = off {
                                    if off < payload_len && truth[off] == b && !st.has(off) {
                                        st.set(off);
                                        st.correct += 1;
                                    }
                                }
                            }
                        }
                        if st.correct == payload_len && !st.recovered {
                            st.recovered = true;
                            if !st.rebroadcasted {
                                st.rebroadcasted = true;
                                let jitter = jitter_hash(params.seed ^ ((r as u64) << 20) ^ 0xB0)
                                    % JITTER_SPAN;
                                schedule_tx(
                                    &mut txs,
                                    &mut q,
                                    r,
                                    BROADCAST,
                                    end + SAFE_WINDOW + jitter,
                                    truth.clone(),
                                    None,
                                );
                            }
                        }
                    }
                    // A partial node arms its PP-ARQ timer off any
                    // evaluated reception (it heard *something*).
                    let st = &mut states[r];
                    if !st.recovered && !st.timer_armed {
                        st.timer_armed = true;
                        q.schedule(
                            end + ARQ_TIMEOUT,
                            priority(prio::ARQ_TIMER, r as u32),
                            SimEvent::ArqTimer { node: r, round: 0 },
                        );
                    }
                }
                pending.clear();
            }
            pending_deadline = u64::MAX;
        }};
    }

    loop {
        let Some((key, ev)) = q.pop() else {
            // Queue drained — but the flush may recover nodes and
            // schedule their rebroadcasts, so only a flush that adds
            // nothing ends the run.
            flush!();
            if q.is_empty() {
                break;
            }
            continue;
        };
        last_time = last_time.max(key.time);
        // The flush rule: decode before the clock passes the window, and
        // always before a state-reading timer runs.
        if key.time >= pending_deadline || matches!(ev, SimEvent::ArqTimer { .. }) {
            flush!();
        }
        match ev {
            SimEvent::TxStart { tx } => {
                let (sender, start, end) = {
                    let t = &txs[tx];
                    (t.sender, t.start, t.end())
                };
                stats.transmissions += 1;
                own_tx[sender].push((start, end, tx as u64));
                cand_buf.clear();
                index.candidates_into(&pts[sender], &mut cand_buf);
                for &r in &cand_buf {
                    let r = r as usize;
                    if r == sender || gain(sender, r) / noise < SQUELCH_SNR {
                        continue;
                    }
                    stats.receptions_scheduled += 1;
                    q.schedule(
                        end,
                        priority(prio::RECEPTION, r as u32),
                        SimEvent::ReceptionComplete {
                            tx,
                            receiver: r,
                            slot: 0,
                        },
                    );
                }
            }
            SimEvent::ReceptionComplete { tx, receiver, .. } => {
                if pending.is_empty() {
                    pending_deadline = key.time + SAFE_WINDOW;
                }
                pending.push((tx, receiver));
            }
            SimEvent::ArqTimer { node, round } => {
                let st = &mut states[node];
                st.timer_armed = false;
                if st.recovered {
                    continue;
                }
                // Plan the repair request with the paper's chunking DP
                // over the byte-correct mask.
                let labels: Vec<bool> = (0..payload_len).map(|i| states[node].has(i)).collect();
                let rl = RunLengths::from_labels(&labels);
                let plan = plan_chunks(&rl, &CostModel::bytes(payload_len));
                if plan.chunks.is_empty() {
                    continue;
                }
                // Best recovered neighbor repairs; ties break to the
                // lowest id (strict > comparison over exact gains).
                cand_buf.clear();
                index.candidates_into(&pts[node], &mut cand_buf);
                let mut peer: Option<(usize, f64)> = None;
                for &c in &cand_buf {
                    let c = c as usize;
                    if c == node || !states[c].recovered {
                        continue;
                    }
                    let g = gain(c, node);
                    if g / noise < SQUELCH_SNR {
                        continue;
                    }
                    if peer.map(|(_, best)| g > best).unwrap_or(true) {
                        peer = Some((c, g));
                    }
                }
                if let Some((peer, _)) = peer {
                    stats.repair_tx += 1;
                    stats.repair_bytes_requested += plan.requested_units();
                    let repair: Vec<u8> = plan
                        .chunks
                        .iter()
                        .flat_map(|s| truth[s.start..s.end].iter().copied())
                        .collect();
                    let jitter = jitter_hash(
                        params.seed ^ ((node as u64) << 20) ^ ((round as u64) << 8) ^ 0xA7,
                    ) % JITTER_SPAN;
                    let start = key.time + SAFE_WINDOW + jitter;
                    schedule_tx(
                        &mut txs,
                        &mut q,
                        peer,
                        node as u16,
                        start,
                        repair,
                        Some(plan.chunks.clone()),
                    );
                    if round + 1 < MAX_ARQ_ROUNDS {
                        let repair_end = txs.last().unwrap().end();
                        states[node].timer_armed = true;
                        q.schedule(
                            repair_end + ARQ_TIMEOUT,
                            priority(prio::ARQ_TIMER, node as u32),
                            SimEvent::ArqTimer {
                                node,
                                round: round + 1,
                            },
                        );
                    }
                } else if round + 1 < MAX_ARQ_ROUNDS {
                    // Nobody nearby has the payload yet — retry after
                    // the flood has had time to advance.
                    states[node].timer_armed = true;
                    q.schedule(
                        key.time + 2 * ARQ_TIMEOUT,
                        priority(prio::ARQ_TIMER, node as u32),
                        SimEvent::ArqTimer {
                            node,
                            round: round + 1,
                        },
                    );
                }
            }
            other => unreachable!("unexpected {other:?} in the mesh driver"),
        }
    }
    let _ = pending_deadline;

    stats.events_dispatched = q.dispatched();
    stats.sim_chips = last_time;
    stats.recovered = states.iter().filter(|s| s.recovered).count();
    stats.correct_bytes = states.iter().map(|s| s.correct).sum();
    stats
}

/// The `mesh10k` experiment.
pub struct Mesh10k;

impl Experiment for Mesh10k {
    fn id(&self) -> &'static str {
        "mesh10k"
    }

    fn title(&self) -> &'static str {
        "Event core at scale: mesh broadcast flood with PP-ARQ"
    }

    fn paper_ref(&self) -> &'static str {
        "Section 8.4 (extension)"
    }

    fn description(&self) -> &'static str {
        "10k-node random-geometric flood through the event queue + spatial shards"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let params = MeshParams::from_scenario(scenario);
        let s = run_mesh(&params, scenario.threads);
        let sim_s = s.sim_seconds();
        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(format!(
            "Event core at scale: {} nodes, density {:.1}, {} B bodies, eta {}\n\n\
             coverage            {:>10.3}  ({} of {} nodes recovered)\n\
             transmissions       {:>10}  ({} PP-ARQ repairs)\n\
             receptions          {:>10}  evaluated ({} scheduled, {} skipped, {} half-duplex drops)\n\
             events dispatched   {:>10}\n\
             simulated time      {:>10.3}  s  ({:.0} packets/s of simulated airtime)\n\
             spatial shards      {:>10}  (largest decode batch {})\n\
             repair bytes asked  {:>10}\n\n\
             Deterministic counts only: wall-clock events/sec for this run is\n\
             measured by ppr-bench (BENCH_packed.json, mesh rows).\n",
            s.nodes,
            params.density,
            params.body_bytes,
            params.eta,
            s.coverage(),
            s.recovered,
            s.nodes,
            s.transmissions,
            s.repair_tx,
            s.receptions_evaluated,
            s.receptions_scheduled,
            s.receptions_skipped,
            s.self_busy_drops,
            s.events_dispatched,
            sim_s,
            s.transmissions as f64 / sim_s.max(1e-9),
            s.shards,
            s.max_batch,
            s.repair_bytes_requested,
        ));
        res.metric("nodes", s.nodes as f64);
        res.metric("recovered", s.recovered as f64);
        res.metric("coverage", s.coverage());
        res.metric("transmissions", s.transmissions as f64);
        res.metric("repair_tx", s.repair_tx as f64);
        res.metric("receptions_evaluated", s.receptions_evaluated as f64);
        res.metric("receptions_skipped", s.receptions_skipped as f64);
        res.metric("self_busy_drops", s.self_busy_drops as f64);
        res.metric("events_dispatched", s.events_dispatched as f64);
        res.metric("sim_seconds", sim_s);
        res.metric(
            "sim_packets_per_sec",
            s.transmissions as f64 / sim_s.max(1e-9),
        );
        res.metric("spatial_shards", s.shards as f64);
        res.metric("repair_bytes_requested", s.repair_bytes_requested as f64);
        res.metric("correct_bytes", s.correct_bytes as f64);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MeshParams {
        MeshParams {
            nodes: 300,
            density: 12.0,
            seed: 3,
            eta: 6,
            body_bytes: 250,
        }
    }

    #[test]
    fn flood_covers_most_of_a_small_mesh() {
        let s = run_mesh(&small(), Some(1));
        assert_eq!(s.nodes, 300);
        assert!(s.coverage() > 0.8, "coverage {}", s.coverage());
        assert!(s.transmissions >= s.nodes / 2, "tx {}", s.transmissions);
        assert!(
            s.receptions_evaluated > s.nodes,
            "rx {}",
            s.receptions_evaluated
        );
        assert!(s.events_dispatched > 0 && s.sim_chips > 0);
        assert!(s.shards > 1);
    }

    #[test]
    fn mesh_is_invariant_to_worker_count() {
        // The whole determinism argument in one assertion: parallel
        // decode fan-out must never change an outcome.
        let a = run_mesh(&small(), Some(1));
        let b = run_mesh(&small(), Some(4));
        let c = run_mesh(&small(), Some(7));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn mesh_is_seed_stable_but_seed_sensitive() {
        let a = run_mesh(&small(), None);
        let b = run_mesh(&small(), None);
        assert_eq!(a, b);
        let mut p = small();
        p.seed = 4;
        let c = run_mesh(&p, None);
        assert_ne!(a, c);
    }

    #[test]
    fn repair_offsets_map_through_spans() {
        let spans = vec![UnitRange::new(3, 5), UnitRange::new(10, 13)];
        assert_eq!(map_repair_offset(&spans, 0), Some(3));
        assert_eq!(map_repair_offset(&spans, 1), Some(4));
        assert_eq!(map_repair_offset(&spans, 2), Some(10));
        assert_eq!(map_repair_offset(&spans, 4), Some(12));
        assert_eq!(map_repair_offset(&spans, 5), None);
    }
}
