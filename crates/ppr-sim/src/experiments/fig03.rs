//! Figure 3: CDF of Hamming distance for correct vs incorrect codewords,
//! at the three offered loads.
//!
//! The paper's headline SoftPHY statistic: conditioned on a correct
//! decode, 96 % of codewords sit at distance ≤ 1; barely 10 % of
//! incorrect codewords sit at distance ≤ 6. This experiment collects the
//! per-codeword (hint, correctness) pairs from every acquired packet in
//! the standard capacity run and prints the six CDF curves.

use super::common::CapacityRun;
use super::Experiment;
use crate::metrics::HintHistogram;
use crate::network::RxArm;
use crate::results::{ExperimentResult, TableBlock};
use crate::scenario::{Scenario, LOADS};

/// The collected statistics for one load.
#[derive(Debug, Clone)]
pub struct LoadHints {
    /// Offered load, kbit/s/node.
    pub load_kbps: f64,
    /// The hint histogram split by correctness.
    pub hist: HintHistogram,
}

/// Runs the experiment at every load (or the scenario's pinned load).
pub fn collect(scenario: &Scenario) -> Vec<LoadHints> {
    scenario
        .loads(&LOADS)
        .into_iter()
        .map(|load| {
            // Carrier sense on: the CC2420 default, and the §3.2/§7.4
            // hint-statistics environment (the paper disables CS only in
            // the experiments that say so, Figs. 9-12).
            let run = CapacityRun::from_scenario(scenario, load, true);
            let arm = RxArm {
                scheme: scenario.ppr_scheme(),
                postamble: true,
                collect_symbols: true,
            };
            let mut hist = HintHistogram::new();
            for rec in run.receptions(&arm) {
                for (&h, &c) in rec.symbol_hints.iter().zip(&rec.symbol_correct) {
                    hist.record(h, c);
                }
            }
            LoadHints {
                load_kbps: load,
                hist,
            }
        })
        .collect()
}

/// The Fig. 3 experiment.
pub struct Fig03;

impl Experiment for Fig03 {
    fn id(&self) -> &'static str {
        "fig03"
    }

    fn title(&self) -> &'static str {
        "Figure 3: SoftPHY hint distributions"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 3"
    }

    fn description(&self) -> &'static str {
        "Hamming-distance CDFs for correct vs incorrect codewords, per load"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let data = collect(scenario);
        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(
            "Figure 3: CDF of Hamming distance per received codeword,\n\
             split by decode correctness (cf. paper Fig. 3)\n\n",
        );
        let mut t = TableBlock::new(&[
            "load (kbit/s)",
            "codewords",
            "d<=0",
            "d<=1",
            "d<=3",
            "d<=6",
            "d<=9",
            "d<=12",
        ]);
        for lh in &data {
            for correct in [true, false] {
                let cdf = lh.hist.cdf(correct);
                let n = if correct {
                    lh.hist.total_correct()
                } else {
                    lh.hist.total_incorrect()
                };
                t.row(vec![
                    format!(
                        "{} {}",
                        lh.load_kbps,
                        if correct { "correct" } else { "incorrect" }
                    )
                    .into(),
                    n.into(),
                    cdf[0].into(),
                    cdf[1].into(),
                    cdf[3].into(),
                    cdf[6].into(),
                    cdf[9].into(),
                    cdf[12].into(),
                ]);
            }
        }
        res.table(t);
        res.text(
            "\nShape targets: correct codewords concentrate at d<=1 (~0.96 in\n\
             the paper); incorrect codewords mostly d>6 (<=0.10 below).\n",
        );
        let eta = scenario.eta;
        for lh in &data {
            let load = lh.load_kbps;
            res.metric(format!("p_d_le1_correct@{load}"), lh.hist.cdf(true)[1]);
            res.metric(format!("miss_rate_at_eta@{load}"), lh.hist.miss_rate(eta));
            res.metric(
                format!("false_alarm_rate_at_eta@{load}"),
                lh.hist.false_alarm_rate(eta),
            );
        }
        // Headline values at the highest load (Table 1's inputs).
        if let Some(hi) = data.last() {
            res.metric("p_d_le1_correct", hi.hist.cdf(true)[1]);
            res.metric("miss_rate_at_eta", hi.hist.miss_rate(eta));
            res.metric("false_alarm_rate_at_eta", hi.hist.false_alarm_rate(eta));
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    #[test]
    fn correct_and_incorrect_distributions_separate() {
        let sc = ScenarioBuilder::new().duration_s(4.0).build();
        let data = collect(&sc);
        assert_eq!(data.len(), 3);
        // Use the highest load (most collisions → most incorrect
        // codewords) for the shape assertions.
        let hi = &data[2].hist;
        assert!(hi.total_correct() > 1000, "too few correct samples");
        assert!(hi.total_incorrect() > 100, "too few incorrect samples");
        let c = hi.cdf(true);
        let i = hi.cdf(false);
        // Correct codewords concentrate at tiny distances.
        assert!(c[1] > 0.9, "P(d<=1 | correct) = {}", c[1]);
        // Incorrect codewords rarely look good.
        assert!(i[6] < 0.3, "P(d<=6 | incorrect) = {}", i[6]);
        // And the two curves are far apart at the threshold.
        assert!(c[6] - i[6] > 0.5);
    }

    #[test]
    fn result_metrics_expose_table1_inputs() {
        let sc = ScenarioBuilder::new().duration_s(3.0).build();
        let res = Fig03.run(&sc);
        for key in [
            "p_d_le1_correct",
            "miss_rate_at_eta",
            "false_alarm_rate_at_eta",
        ] {
            let v = res
                .get_metric(key)
                .unwrap_or_else(|| panic!("missing {key}"));
            assert!((0.0..=1.0).contains(&v), "{key} = {v}");
        }
        assert!(res.render_text().contains("load (kbit/s)"));
    }
}
