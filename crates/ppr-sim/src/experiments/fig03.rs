//! Figure 3: CDF of Hamming distance for correct vs incorrect codewords,
//! at the three offered loads.
//!
//! The paper's headline SoftPHY statistic: conditioned on a correct
//! decode, 96 % of codewords sit at distance ≤ 1; barely 10 % of
//! incorrect codewords sit at distance ≤ 6. This experiment collects the
//! per-codeword (hint, correctness) pairs from every acquired packet in
//! the standard capacity run and prints the six CDF curves.

use super::common::{CapacityRun, ETA, LOADS};
use crate::metrics::HintHistogram;
use crate::network::RxArm;
use crate::report::{fmt, Table};
use ppr_mac::schemes::DeliveryScheme;

/// The collected statistics for one load.
#[derive(Debug, Clone)]
pub struct LoadHints {
    /// Offered load, kbit/s/node.
    pub load_kbps: f64,
    /// The hint histogram split by correctness.
    pub hist: HintHistogram,
}

/// Runs the experiment at every load.
pub fn collect(duration_s: f64) -> Vec<LoadHints> {
    LOADS
        .iter()
        .map(|&load| {
            // Carrier sense on: the CC2420 default, and the §3.2/§7.4
            // hint-statistics environment (the paper disables CS only in
            // the experiments that say so, Figs. 9-12).
            let run = CapacityRun::new(load, true, duration_s);
            let arm = RxArm {
                scheme: DeliveryScheme::Ppr { eta: ETA },
                postamble: true,
                collect_symbols: true,
            };
            let mut hist = HintHistogram::new();
            for rec in run.receptions(&arm) {
                for (&h, &c) in rec.symbol_hints.iter().zip(&rec.symbol_correct) {
                    hist.record(h, c);
                }
            }
            LoadHints {
                load_kbps: load,
                hist,
            }
        })
        .collect()
}

/// Renders the Fig. 3 curves: `P(distance ≤ d)` at d = 0..12 for each
/// (load, correctness) combination.
pub fn render(data: &[LoadHints]) -> String {
    let mut out = String::from(
        "Figure 3: CDF of Hamming distance per received codeword,\n\
         split by decode correctness (cf. paper Fig. 3)\n\n",
    );
    let mut t = Table::new(&[
        "load (kbit/s)",
        "codewords",
        "d<=0",
        "d<=1",
        "d<=3",
        "d<=6",
        "d<=9",
        "d<=12",
    ]);
    for lh in data {
        for correct in [true, false] {
            let cdf = lh.hist.cdf(correct);
            let n = if correct {
                lh.hist.total_correct()
            } else {
                lh.hist.total_incorrect()
            };
            t.row(&[
                format!(
                    "{} {}",
                    lh.load_kbps,
                    if correct { "correct" } else { "incorrect" }
                ),
                n.to_string(),
                fmt(cdf[0]),
                fmt(cdf[1]),
                fmt(cdf[3]),
                fmt(cdf[6]),
                fmt(cdf[9]),
                fmt(cdf[12]),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape targets: correct codewords concentrate at d<=1 (~0.96 in\n\
         the paper); incorrect codewords mostly d>6 (<=0.10 below).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_and_incorrect_distributions_separate() {
        let data = collect(4.0);
        assert_eq!(data.len(), 3);
        // Use the highest load (most collisions → most incorrect
        // codewords) for the shape assertions.
        let hi = &data[2].hist;
        assert!(hi.total_correct() > 1000, "too few correct samples");
        assert!(hi.total_incorrect() > 100, "too few incorrect samples");
        let c = hi.cdf(true);
        let i = hi.cdf(false);
        // Correct codewords concentrate at tiny distances.
        assert!(c[1] > 0.9, "P(d<=1 | correct) = {}", c[1]);
        // Incorrect codewords rarely look good.
        assert!(i[6] < 0.3, "P(d<=6 | incorrect) = {}", i[6]);
        // And the two curves are far apart at the threshold.
        assert!(c[6] - i[6] > 0.5);
    }
}
