//! Figure 16: PP-ARQ partial-retransmission sizes over a single link.
//!
//! One transmitter sends 250-byte packets back-to-back to one receiver
//! over a marginal link with intermittent collision bursts; PP-ARQ
//! recovers each packet. The figure is the CDF of the sizes of the
//! retransmission packets the sender emits — the paper reports a median
//! of roughly *half* the 250 B packet size, i.e. PP-ARQ resends about
//! half the data on half the retransmissions.
//!
//! The transport here is the real chip-level pipeline: every forward
//! packet (data *and* retransmission) is framed, spread to chips,
//! corrupted by SINR-driven chip errors plus occasional interference
//! bursts, and decoded with SoftPHY hints, exactly like a network
//! reception.

use super::Experiment;
use crate::metrics::Cdf;
use crate::report::fmt;
use crate::results::{ExperimentResult, TableBlock};
use crate::rxpath::FastRx;
use crate::scenario::{Scenario, DEFAULT_SEED};
use ppr_channel::chip_channel::{corrupt_chips, ErrorProfile};
use ppr_core::arq::{run_session_with, ArqChannel, PpArqConfig, SessionStats};
use ppr_core::dp::ChunkScratch;
use ppr_mac::frame::Frame;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single radio link carrying PP-ARQ traffic at chip level.
pub struct RadioLinkChannel {
    /// Clean-channel chip error probability (from link SINR).
    pub base_chip_error: f64,
    /// Probability that a forward frame suffers a collision burst.
    pub burst_prob: f64,
    /// Burst chip error probability (interferer comparable to signal).
    pub burst_chip_error: f64,
    /// Fraction of the frame a burst covers (mean).
    pub burst_cover: f64,
    /// RNG for channel draws.
    pub rng: StdRng,
    rx: FastRx,
}

impl RadioLinkChannel {
    /// A marginal-but-usable link: ~4 dB SNR with frequent bursts.
    pub fn marginal(seed: u64) -> Self {
        RadioLinkChannel {
            base_chip_error: ppr_channel::ber::chip_error_prob(10f64.powf(0.4)), // 4 dB
            burst_prob: 0.7,
            burst_chip_error: 0.35,
            burst_cover: 0.45,
            rng: StdRng::seed_from_u64(seed),
            rx: FastRx::new(true),
        }
    }

    /// Sends `bytes` as one frame over the link; returns the receiver's
    /// view of the body plus per-byte hints.
    fn transmit(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
        let frame = Frame::new(1, 2, 0, bytes.to_vec());
        let chips = frame.chips();
        let total = chips.len() as u64;

        let mut profile = vec![(0u64, total, self.base_chip_error)];
        if self.rng.gen::<f64>() < self.burst_prob {
            let cover = (total as f64 * self.burst_cover * self.rng.gen::<f64>() * 2.0) as u64;
            let cover = cover.min(total.saturating_sub(1)).max(1);
            let start = self.rng.gen_range(0..total - cover);
            profile = vec![
                (0, start, self.base_chip_error),
                (start, start + cover, self.burst_chip_error),
                (start + cover, total, self.base_chip_error),
            ];
        }
        let profile = ErrorProfile::from_pieces(profile);
        let corrupted = corrupt_chips(&chips, &profile, &mut self.rng);

        let (_acq, rx_frame) = self.rx.receive(&frame, &corrupted, true);
        match rx_frame {
            Some(rx) => {
                let body = rx.body_bytes().unwrap_or_default();
                let hints = rx.body_byte_hints().unwrap_or_default();
                if body.len() == bytes.len() && hints.len() == bytes.len() {
                    (body, hints)
                } else {
                    // Geometry mismatch: treat as lost.
                    (vec![0; bytes.len()], vec![u8::MAX; bytes.len()])
                }
            }
            None => (vec![0; bytes.len()], vec![u8::MAX; bytes.len()]),
        }
    }
}

impl ArqChannel for RadioLinkChannel {
    fn forward(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
        self.transmit(bytes)
    }
    fn reverse(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
        // Feedback rides the same link quality without bursts (it is
        // short; the paper's reverse link is the same radio pair).
        let frame = Frame::new(2, 1, 0, bytes.to_vec());
        let chips = frame.chips();
        let profile = ErrorProfile::uniform(chips.len() as u64, self.base_chip_error);
        let corrupted = corrupt_chips(&chips, &profile, &mut self.rng);
        let (_acq, rx_frame) = self.rx.receive(&frame, &corrupted, true);
        match rx_frame.and_then(|rx| rx.body_bytes()) {
            Some(body) if body.len() == bytes.len() => {
                let hints = vec![0u8; body.len()];
                (body, hints)
            }
            _ => (vec![0; bytes.len()], vec![u8::MAX; bytes.len()]),
        }
    }
}

/// Experiment output.
#[derive(Debug, Clone)]
pub struct PpArqRun {
    /// All retransmission packet sizes observed (bytes).
    pub retx_sizes: Vec<usize>,
    /// Per-session stats.
    pub sessions: Vec<SessionStats>,
    /// Packet (payload) size used.
    pub packet_bytes: usize,
}

/// Runs `n_packets` back-to-back 250 B transfers under the historical
/// fixed channel seed.
pub fn collect(n_packets: usize) -> PpArqRun {
    collect_seeded(n_packets, 0xF16)
}

/// Runs `n_packets` transfers with an explicit channel seed.
pub fn collect_seeded(n_packets: usize, seed: u64) -> PpArqRun {
    let packet_bytes = 250;
    let mut channel = RadioLinkChannel::marginal(seed);
    let mut retx_sizes = Vec::new();
    let mut sessions = Vec::new();
    // One planner scratch for the whole link: the receiver side of
    // every session reuses the same feedback-DP buffers.
    let mut scratch = ChunkScratch::new();
    for i in 0..n_packets {
        let payload: Vec<u8> = {
            let mut r = StdRng::seed_from_u64(i as u64);
            (0..packet_bytes).map(|_| r.gen()).collect()
        };
        let stats = run_session_with(&payload, PpArqConfig::default(), &mut channel, &mut scratch);
        retx_sizes.extend(stats.retx_sizes.iter().copied());
        sessions.push(stats);
    }
    PpArqRun {
        retx_sizes,
        sessions,
        packet_bytes,
    }
}

/// The Fig. 16 experiment. The packet count rides the scenario's
/// `arq_packets` knob (default 300, the historical binary's count).
pub struct Fig16;

impl Experiment for Fig16 {
    fn id(&self) -> &'static str {
        "fig16"
    }

    fn title(&self) -> &'static str {
        "Figure 16: PP-ARQ retransmission sizes"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 16"
    }

    fn description(&self) -> &'static str {
        "PP-ARQ partial-retransmission size CDF over a marginal bursty link"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        // XOR with the default master seed so the historical channel
        // stream (seed 0xF16) is preserved under the default scenario.
        let run = collect_seeded(scenario.arq_packets, 0xF16 ^ scenario.seed ^ DEFAULT_SEED);
        let sizes: Vec<f64> = run.retx_sizes.iter().map(|&s| s as f64).collect();
        let cdf = Cdf::from_samples(sizes);
        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(format!(
            "Figure 16: sizes of PP-ARQ partial retransmissions\n\
             ({} sessions of {} B packets over a marginal bursty link)\n\n",
            run.sessions.len(),
            run.packet_bytes
        ));
        let mut t = TableBlock::new(&["metric", "value"]);
        t.row(vec!["retransmission packets".into(), cdf.len().into()]);
        t.row(vec!["median size (bytes)".into(), cdf.median().into()]);
        t.row(vec![
            "p25 / p75".into(),
            format!("{} / {}", fmt(cdf.quantile(0.25)), fmt(cdf.quantile(0.75))).into(),
        ]);
        let completed = run.sessions.iter().filter(|s| s.completed).count();
        t.row(vec![
            "sessions completed".into(),
            format!("{completed}/{}", run.sessions.len()).into(),
        ]);
        let mean_rounds = run.sessions.iter().map(|s| s.rounds as f64).sum::<f64>()
            / run.sessions.len().max(1) as f64;
        t.row(vec!["mean rounds".into(), mean_rounds.into()]);
        res.table(t);
        res.text("\n");
        res.series("retx size CDF", cdf.series(0.0, 300.0, 16));
        res.text(
            "\nShape target: median retransmission ~half the 250 B packet\n\
             (the paper's preliminary implementation reports ~125 B).\n",
        );
        res.metric("median_retx_bytes", cdf.median());
        res.metric("packet_bytes", run.packet_bytes as f64);
        res.metric("sessions_completed", completed as f64);
        res.metric("mean_rounds", mean_rounds);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_complete_and_retx_is_partial() {
        let run = collect(30);
        let completed = run.sessions.iter().filter(|s| s.completed).count();
        assert!(
            completed * 10 >= run.sessions.len() * 9,
            "{completed}/30 completed"
        );
        // Transfers must be correct.
        for (i, s) in run.sessions.iter().enumerate() {
            if s.completed {
                let mut r = StdRng::seed_from_u64(i as u64);
                let expect: Vec<u8> = (0..run.packet_bytes).map(|_| r.gen()).collect();
                assert_eq!(s.final_payload, expect, "session {i} delivered wrong bytes");
            }
        }
        // Retransmissions happen (bursty link) and are typically partial.
        assert!(!run.retx_sizes.is_empty());
        let cdf = Cdf::from_samples(run.retx_sizes.iter().map(|&s| s as f64).collect());
        assert!(
            cdf.median() < run.packet_bytes as f64,
            "median retx {} not partial",
            cdf.median()
        );
    }
}
