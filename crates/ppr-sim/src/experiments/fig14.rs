//! Figure 14: CCDF of contiguous SoftPHY *miss* lengths at thresholds
//! η ∈ {1, 2, 3, 4}.
//!
//! A miss is an incorrect codeword labeled good (`hint ≤ η`). The
//! paper's saving grace for PP-ARQ: misses are short — ~30 % have length
//! 1 and the length distribution falls faster than exponential — so a
//! missed codeword is almost always adjacent to correctly-labeled bad
//! codewords that PP-ARQ retransmits anyway (and the run-checksum pass
//! catches the rest).

use super::common::CapacityRun;
use super::Experiment;
use crate::metrics::MissRunHistogram;
use crate::network::RxArm;
use crate::results::ExperimentResult;
use crate::scenario::Scenario;

/// Thresholds evaluated, as in the paper.
pub const ETAS: [u8; 4] = [1, 2, 3, 4];

/// Collects the miss-run histogram from the high-load run (most
/// collisions → most misses).
pub fn collect(scenario: &Scenario) -> MissRunHistogram {
    // Carrier sense on, as in the Fig. 3 hint-statistics runs; high
    // load maximizes the collision (and therefore miss) count.
    let run = CapacityRun::from_scenario(scenario, 13.8, true);
    let arm = RxArm {
        scheme: scenario.ppr_scheme(),
        postamble: true,
        collect_symbols: true,
    };
    let mut hist = MissRunHistogram::new(ETAS.to_vec(), 100);
    for rec in run.receptions(&arm) {
        if !rec.symbol_hints.is_empty() {
            hist.record_packet(&rec.symbol_hints, &rec.symbol_correct);
        }
    }
    hist
}

/// The Fig. 14 experiment.
pub struct Fig14;

impl Experiment for Fig14 {
    fn id(&self) -> &'static str {
        "fig14"
    }

    fn title(&self) -> &'static str {
        "Figure 14: contiguous miss lengths"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 14"
    }

    fn description(&self) -> &'static str {
        "CCDF of contiguous miss-run lengths at eta in {1,2,3,4}, high load"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let hist = collect(scenario);
        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(format!(
            "Figure 14: CCDF of contiguous miss lengths at thresholds eta\n\
             (high load, {} kbit/s/node)\n\n",
            scenario.load_or(13.8)
        ));
        for (e, &eta) in hist.etas.iter().enumerate() {
            let ccdf = hist.ccdf(e);
            let pts: Vec<(f64, f64)> = ccdf
                .iter()
                .take(30)
                .map(|&(len, p)| (len as f64, p))
                .collect();
            let total_runs: u64 = hist.counts[e].iter().sum();
            res.metric(format!("miss_runs_eta{eta}"), total_runs as f64);
            if let Some(&(_, p2)) = ccdf.get(1) {
                res.metric(format!("p_len_ge2_eta{eta}"), p2);
            }
            res.series(format!("eta = {eta}"), pts);
            res.text("\n");
        }
        res.text(
            "Shape targets: mass concentrated at length 1 (~30 % in the\n\
             paper); CCDF decays at least as fast as an exponential.\n",
        );
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    #[test]
    fn miss_lengths_are_short_and_decaying() {
        let sc = ScenarioBuilder::new().duration_s(6.0).build();
        let hist = collect(&sc);
        // Use eta = 4 (most permissive -> most misses).
        let e = 3;
        let ccdf = hist.ccdf(e);
        if ccdf.len() < 3 {
            // Too few misses to assert a distribution — the miss rate
            // itself being tiny is consistent with the paper.
            return;
        }
        // P(len >= 1) = 1; mass at short lengths dominates.
        assert!((ccdf[0].1 - 1.0).abs() < 1e-9);
        let p2 = ccdf[1].1; // P(len >= 2)
        assert!(p2 < 0.8, "misses are too long: P(len>=2) = {p2}");
        // Monotone decreasing tail.
        for w in ccdf.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }
}
