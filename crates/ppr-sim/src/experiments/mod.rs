//! One module per paper table/figure, plus shared machinery.
//!
//! | Module | Paper result |
//! |---|---|
//! | [`fig03`] | Fig. 3 — Hamming-distance CDFs, correct vs incorrect |
//! | [`fdr`] | Figs. 8–10 — per-link equivalent frame delivery rate |
//! | [`throughput`] | Figs. 11–12 — end-to-end per-link throughput |
//! | [`fig13`] | Fig. 13 — collision anatomy (sample-level DSP) |
//! | [`fig14`] | Fig. 14 — CCDF of contiguous miss lengths |
//! | [`fig15`] | Fig. 15 — false-alarm rate vs threshold |
//! | [`fig16`] | Fig. 16 — PP-ARQ retransmission sizes |
//! | [`table2`] | Table 2 — fragmented-CRC chunk-size sweep |
//! | [`mrd`] | §8.4 — multi-radio diversity combining |
//! | [`relay`] | §8.4 — partial-packet mesh forwarding |
//! | [`mesh`] | §8.4 extension — 10k-node event-core flood with PP-ARQ |
//! | [`jam`] | robustness extension — PP-ARQ vs whole-frame ARQ under jamming |
//! | [`meshjam`] | robustness extension — mesh flood vs reactive jammer + churn |
//! | [`table1`] | Table 1 — findings summary, distilled from the rest |
//!
//! Every experiment implements [`Experiment`] and registers itself in
//! [`registry`], so drivers (the `ppr-cli` binary, the golden
//! regression test) enumerate them instead of hard-wiring binaries.

pub mod common;
pub mod fdr;
pub mod fig03;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod jam;
pub mod mesh;
pub mod meshjam;
pub mod mrd;
pub mod relay;
pub mod table1;
pub mod table2;
pub mod throughput;

use crate::results::ExperimentResult;
use crate::scenario::Scenario;

/// A runnable paper experiment.
///
/// Implementations are zero-sized unit structs registered in
/// [`registry`]; all parameterization flows through the [`Scenario`].
pub trait Experiment: Sync {
    /// Stable registry id (e.g. `fig10`) — the CLI `run <id>` handle.
    fn id(&self) -> &'static str;

    /// Human banner title (what the old per-figure binaries printed).
    fn title(&self) -> &'static str;

    /// The paper artifact this reproduces (e.g. `Figure 10`).
    fn paper_ref(&self) -> &'static str;

    /// One-line description for `--list`.
    fn description(&self) -> &'static str;

    /// Runs the experiment under a scenario.
    fn run(&self, scenario: &Scenario) -> ExperimentResult;

    /// Runs with access to results already computed this invocation
    /// (in registry order). The default ignores them; derived
    /// experiments like [`table1`] override this to reuse prior
    /// results instead of re-running their dependencies.
    fn run_with(&self, scenario: &Scenario, _prior: &[ExperimentResult]) -> ExperimentResult {
        self.run(scenario)
    }
}

/// Every registered experiment, in the canonical `--all` run order
/// (derived experiments last, so [`Experiment::run_with`] finds their
/// dependencies already computed).
pub fn registry() -> &'static [&'static dyn Experiment] {
    static REGISTRY: [&dyn Experiment; 17] = [
        &fig03::Fig03,
        &table2::Table2,
        &fdr::FIG08,
        &fdr::FIG09,
        &fdr::FIG10,
        &throughput::Fig11,
        &throughput::Fig12,
        &fig13::Fig13,
        &fig14::Fig14,
        &fig15::Fig15,
        &fig16::Fig16,
        &jam::Jam,
        &mrd::Mrd,
        &relay::Relay,
        &mesh::Mesh10k,
        &meshjam::MeshJam,
        &table1::Table1,
    ];
    &REGISTRY
}

/// Looks up an experiment by registry id.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    registry().iter().copied().find(|e| e.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let mut seen = std::collections::BTreeSet::new();
        for exp in registry() {
            assert!(seen.insert(exp.id()), "duplicate id {}", exp.id());
            assert!(find(exp.id()).is_some());
            assert!(!exp.title().is_empty());
            assert!(!exp.paper_ref().is_empty());
            assert!(!exp.description().is_empty());
        }
        assert_eq!(seen.len(), 17);
        assert!(find("nonexistent").is_none());
    }

    #[test]
    fn registry_covers_every_paper_experiment() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        for want in [
            "fig03", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
            "fig16", "table1", "table2", "mrd", "relay", "mesh10k", "jam", "meshjam",
        ] {
            assert!(ids.contains(&want), "missing {want}");
        }
        // Derived experiments come after their dependencies.
        let pos = |id: &str| ids.iter().position(|&x| x == id).unwrap();
        assert!(pos("table1") > pos("fig10"));
        assert!(pos("table1") > pos("fig03"));
        assert!(pos("table1") > pos("fig16"));
    }
}
