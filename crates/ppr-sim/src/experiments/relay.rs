//! Extension (§8.4): partial-packet forwarding for mesh routing.
//!
//! The paper sketches integrating SoftPHY with opportunistic routing:
//! "nodes need only forward … symbols (groups of bits) that are likely
//! to be correct, and avoid wasting network capacity on incorrect
//! data". This experiment builds the minimal mesh: a source S, a relay
//! R, and a destination D, with marginal S→D and better S→R / R→D
//! links. Three forwarding policies are compared on identical channel
//! draws:
//!
//! * **Packet forwarding** (status quo): R forwards a packet only when
//!   its CRC-32 passes; D accepts only CRC-passing copies.
//! * **PPR forwarding**: R re-encodes and forwards only the bytes it
//!   labeled good (bad spans are sent as zero filler and *marked* by a
//!   forwarded hint mask); D combines its direct reception with R's
//!   forwarded copy by hint preference.
//! * **Direct only**: no relay — the baseline floor.
//!
//! Metric: end-to-end correct bytes delivered to D per source packet.

use super::Experiment;
use crate::results::ExperimentResult;
use crate::rxpath::{Acquisition, FastRx};
use crate::scenario::{Scenario, DEFAULT_SEED};
use ppr_channel::chip_channel::{corrupt_chips, ErrorProfile};
use ppr_mac::frame::Frame;
use ppr_mac::rx::RxFrame;
use ppr_mac::schemes::DEFAULT_ETA;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One hop's channel quality: base chip error rate plus burst behavior.
#[derive(Debug, Clone, Copy)]
pub struct HopQuality {
    /// Baseline chip error probability.
    pub base: f64,
    /// Probability a frame suffers an additional collision burst.
    pub burst_prob: f64,
    /// Chip error probability inside the burst.
    pub burst_p: f64,
}

impl HopQuality {
    /// A marginal hop: frequent partial corruption.
    pub fn marginal() -> Self {
        HopQuality {
            base: 0.02,
            burst_prob: 0.8,
            burst_p: 0.4,
        }
    }

    /// A decent hop: occasional bursts.
    pub fn decent() -> Self {
        HopQuality {
            base: 2e-3,
            burst_prob: 0.35,
            burst_p: 0.4,
        }
    }
}

/// Sends `frame` over a hop, returning the receiver's view.
fn send_over(
    frame: &Frame,
    q: HopQuality,
    rx: &FastRx,
    rng: &mut StdRng,
) -> (Acquisition, Option<RxFrame>) {
    let chips = frame.chips();
    let total = chips.len() as u64;
    let mut pieces = vec![(0u64, total, q.base)];
    if rng.gen::<f64>() < q.burst_prob {
        let len = rng.gen_range(total / 8..total / 2);
        let start = rng.gen_range(0..total - len);
        pieces = vec![
            (0, start, q.base),
            (start, start + len, q.burst_p),
            (start + len, total, q.base),
        ];
    }
    let profile = ErrorProfile::from_pieces(pieces);
    let corrupted = corrupt_chips(&chips, &profile, rng);
    rx.receive(frame, &corrupted, true)
}

/// Per-policy tally of end-to-end correct bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelayResult {
    /// Packets sent by the source.
    pub packets: usize,
    /// Payload bytes per packet.
    pub payload: usize,
    /// Correct bytes at D, direct reception only.
    pub direct_only: usize,
    /// Correct bytes at D with CRC-gated packet forwarding.
    pub packet_forwarding: usize,
    /// Correct bytes at D with PPR partial forwarding + hint combining.
    pub ppr_forwarding: usize,
}

/// Runs `n_packets` source packets through the three policies.
pub fn collect(n_packets: usize, payload_len: usize, seed: u64) -> RelayResult {
    let rx = FastRx::new(true);
    let mut rng = StdRng::seed_from_u64(seed);
    let s_d = HopQuality::marginal();
    let s_r = HopQuality::decent();
    let r_d = HopQuality::decent();

    let mut result = RelayResult {
        packets: n_packets,
        payload: payload_len,
        ..Default::default()
    };

    for seq in 0..n_packets as u16 {
        let payload: Vec<u8> = (0..payload_len)
            .map(|i| (i as u8).wrapping_mul(29).wrapping_add(seq as u8))
            .collect();
        let frame = Frame::new(3, 1, seq, payload.clone());

        // One broadcast: D and R hear independent corruptions.
        let (_, d_rx) = send_over(&frame, s_d, &rx, &mut rng);
        let (_, r_rx) = send_over(&frame, s_r, &rx, &mut rng);

        // Direct-only tally (PPR delivery at D).
        let direct = delivered_map(&d_rx, &payload);
        result.direct_only += count_correct(&direct, &payload);

        // Packet forwarding: R forwards iff CRC passes; D takes its own
        // CRC-passing copy, else the relayed CRC-passing copy.
        let d_crc_ok = d_rx.as_ref().map(|f| f.pkt_crc_ok()).unwrap_or(false);
        let mut pkt_bytes = 0;
        if d_crc_ok {
            pkt_bytes = payload.len();
        } else if r_rx.as_ref().map(|f| f.pkt_crc_ok()).unwrap_or(false) {
            // Relay transmits a fresh frame over R→D.
            let relay_frame = Frame::new(3, 2, seq, payload.clone());
            let (_, d2) = send_over(&relay_frame, r_d, &rx, &mut rng);
            if d2.map(|f| f.pkt_crc_ok()).unwrap_or(false) {
                pkt_bytes = payload.len();
            }
        }
        result.packet_forwarding += pkt_bytes;

        // PPR forwarding: R forwards its good-labeled bytes (bad spans
        // zero-filled; the hint mask rides along conceptually — here the
        // relay's hints gate what D may accept from the relayed copy).
        let r_map = delivered_map(&r_rx, &payload);
        let mut relayed_map = vec![None; payload.len()];
        if r_map.iter().any(Option::is_some) {
            let fwd_payload: Vec<u8> = r_map.iter().map(|b| b.unwrap_or(0)).collect();
            let relay_frame = Frame::new(3, 2, seq, fwd_payload);
            let (_, d2) = send_over(&relay_frame, r_d, &rx, &mut rng);
            let hop2 = delivered_map_raw(&d2);
            // A relayed byte is usable only if R labeled it good AND it
            // survived the R→D hop with a good hint.
            for i in 0..payload.len() {
                if r_map[i].is_some() {
                    if let Some(Some(b)) = hop2.get(i) {
                        relayed_map[i] = Some(*b);
                    }
                }
            }
        }
        // D combines: direct good bytes win, relayed fill the gaps.
        let mut combined = direct.clone();
        for i in 0..payload.len() {
            if combined[i].is_none() {
                combined[i] = relayed_map[i];
            }
        }
        result.ppr_forwarding += count_correct(&combined, &payload);
    }
    result
}

/// D's view of the payload under PPR delivery: `Some(byte)` where the
/// hint passed the threshold, `None` elsewhere. Checked against nothing
/// — correctness is tallied separately.
fn delivered_map(rx: &Option<RxFrame>, payload: &[u8]) -> Vec<Option<u8>> {
    let mut out = vec![None; payload.len()];
    if let Some(f) = rx {
        if let (Some(body), Some(hints)) = (f.body_bytes(), f.body_byte_hints()) {
            for i in 0..payload.len().min(body.len()) {
                if hints[i] <= DEFAULT_ETA {
                    out[i] = Some(body[i]);
                }
            }
        }
    }
    out
}

/// Like [`delivered_map`] but sized from the frame itself.
fn delivered_map_raw(rx: &Option<RxFrame>) -> Vec<Option<u8>> {
    match rx {
        Some(f) => match (f.body_bytes(), f.body_byte_hints()) {
            (Some(body), Some(hints)) => body
                .iter()
                .zip(&hints)
                .map(|(&b, &h)| if h <= DEFAULT_ETA { Some(b) } else { None })
                .collect(),
            _ => Vec::new(),
        },
        None => Vec::new(),
    }
}

fn count_correct(map: &[Option<u8>], truth: &[u8]) -> usize {
    map.iter()
        .zip(truth)
        .filter(|(m, t)| m.as_ref() == Some(t))
        .count()
}

/// The relay-forwarding experiment. The source packet count rides the
/// scenario's `relay_packets` knob (default 400, the historical
/// binary's count); the 200 B payload matches the original scene.
pub struct Relay;

/// Payload bytes per source packet in the canonical relay scene.
pub const RELAY_PAYLOAD: usize = 200;

impl Experiment for Relay {
    fn id(&self) -> &'static str {
        "relay"
    }

    fn title(&self) -> &'static str {
        "Extension: partial-packet mesh forwarding"
    }

    fn paper_ref(&self) -> &'static str {
        "Section 8.4"
    }

    fn description(&self) -> &'static str {
        "2-hop mesh: PPR partial forwarding vs CRC-gated packet forwarding"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        // XOR with the default master seed so the historical channel
        // stream (seed 0xE20) is preserved under the default scenario.
        let r = collect(
            scenario.relay_packets,
            RELAY_PAYLOAD,
            0xE20 ^ scenario.seed ^ DEFAULT_SEED,
        );
        let total = (r.packets * r.payload) as f64;
        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(format!(
            "Extension: partial-packet forwarding over a 2-hop mesh (8.4)\n\n\
             {} packets x {} B, marginal S->D, decent S->R and R->D\n\n\
             policy                        end-to-end correct bytes   fraction\n\
             ------------------------------------------------------------------\n\
             direct only (PPR delivery)    {:>10}                 {:.3}\n\
             packet fwd (CRC end-to-end)   {:>10}                 {:.3}\n\
             PPR forwarding                {:>10}                 {:.3}\n\n\
             Expected: PPR forwarding far above the CRC-gated status quo —\n\
             the relay salvages good fragments of packets whose CRC failed\n\
             everywhere (the 8.4 capacity argument) — and above direct-only,\n\
             since relayed fragments fill the direct reception's gaps.\n",
            r.packets,
            r.payload,
            r.direct_only,
            r.direct_only as f64 / total,
            r.packet_forwarding,
            r.packet_forwarding as f64 / total,
            r.ppr_forwarding,
            r.ppr_forwarding as f64 / total,
        ));
        res.metric("direct_only_bytes", r.direct_only as f64);
        res.metric("packet_forwarding_bytes", r.packet_forwarding as f64);
        res.metric("ppr_forwarding_bytes", r.ppr_forwarding as f64);
        res.metric("packets", r.packets as f64);
        res.metric("payload_bytes", r.payload as f64);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppr_forwarding_beats_packet_forwarding_beats_direct() {
        let r = collect(60, 200, 0xE20);
        assert_eq!(r.packets, 60);
        assert!(
            r.ppr_forwarding > r.packet_forwarding,
            "ppr {} <= packet {}",
            r.ppr_forwarding,
            r.packet_forwarding
        );
        assert!(
            r.ppr_forwarding > r.direct_only,
            "ppr {} <= direct {}",
            r.ppr_forwarding,
            r.direct_only
        );
        // PPR forwarding must deliver a substantial fraction.
        let frac = r.ppr_forwarding as f64 / (r.packets * r.payload) as f64;
        assert!(frac > 0.5, "fraction {frac}");
    }

    #[test]
    fn combining_prefers_direct_bytes() {
        // With a perfect direct link, the relay adds nothing and the
        // result equals the full payload.
        let rx = FastRx::new(true);
        let mut rng = StdRng::seed_from_u64(1);
        let payload: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let frame = Frame::new(3, 1, 0, payload.clone());
        let clean = HopQuality {
            base: 0.0,
            burst_prob: 0.0,
            burst_p: 0.0,
        };
        let (_, d_rx) = send_over(&frame, clean, &rx, &mut rng);
        let map = delivered_map(&d_rx, &payload);
        assert_eq!(count_correct(&map, &payload), payload.len());
    }
}
