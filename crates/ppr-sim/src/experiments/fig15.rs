//! Figure 15: false-alarm rate — the complementary CDF of correct
//! codewords' Hamming distances, at the three offered loads.
//!
//! A false alarm is a *correct* codeword labeled bad (`hint > η`),
//! causing a needless retransmission of one codeword. The paper finds
//! the rate tiny (~5 × 10⁻³ at η = 6) and only weakly load-dependent —
//! which is why PPR's overhead from conservatism is negligible.

use super::common::{CapacityRun, LOADS};
use crate::metrics::HintHistogram;
use crate::network::RxArm;
use crate::report::{fmt, Table};
use ppr_mac::schemes::DeliveryScheme;

/// Collected histograms per load.
pub fn collect(duration_s: f64) -> Vec<(f64, HintHistogram)> {
    LOADS
        .iter()
        .map(|&load| {
            // Carrier sense on, as in the Fig. 3 hint-statistics runs.
            let run = CapacityRun::new(load, true, duration_s);
            let arm = RxArm {
                scheme: DeliveryScheme::Ppr { eta: 6 },
                postamble: true,
                collect_symbols: true,
            };
            let mut hist = HintHistogram::new();
            for rec in run.receptions(&arm) {
                for (&h, &c) in rec.symbol_hints.iter().zip(&rec.symbol_correct) {
                    hist.record(h, c);
                }
            }
            (load, hist)
        })
        .collect()
}

/// Renders false-alarm rates over η = 0..12 per load.
pub fn render(data: &[(f64, HintHistogram)]) -> String {
    let mut out = String::from(
        "Figure 15: false-alarm rate (CCDF of correct codewords' Hamming\n\
         distance) vs threshold eta\n\n",
    );
    let mut t = Table::new(&["eta", "3.5 kbit/s", "6.9 kbit/s", "13.8 kbit/s"]);
    for eta in 0..=12u8 {
        let mut row = vec![eta.to_string()];
        for (_, hist) in data {
            row.push(fmt(hist.false_alarm_rate(eta)));
        }
        t.row(&row);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape targets: ~5e-3 at eta = 6, weak load dependence,\n\
         monotone decreasing in eta.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_alarm_rate_is_small_and_monotone() {
        let data = collect(5.0);
        for (load, hist) in &data {
            assert!(hist.total_correct() > 1000, "load {load}: too few samples");
            let fa6 = hist.false_alarm_rate(6);
            assert!(fa6 < 0.05, "load {load}: false alarm at eta=6 is {fa6}");
            let mut prev = 1.1;
            for eta in 0..=12u8 {
                let fa = hist.false_alarm_rate(eta);
                assert!(fa <= prev + 1e-12, "load {load}: non-monotone at {eta}");
                prev = fa;
            }
        }
    }
}
