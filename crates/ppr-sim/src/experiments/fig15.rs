//! Figure 15: false-alarm rate — the complementary CDF of correct
//! codewords' Hamming distances, at the three offered loads.
//!
//! A false alarm is a *correct* codeword labeled bad (`hint > η`),
//! causing a needless retransmission of one codeword. The paper finds
//! the rate tiny (~5 × 10⁻³ at η = 6) and only weakly load-dependent —
//! which is why PPR's overhead from conservatism is negligible.

use super::common::CapacityRun;
use super::Experiment;
use crate::metrics::HintHistogram;
use crate::network::RxArm;
use crate::results::{ExperimentResult, TableBlock};
use crate::scenario::{Scenario, LOADS};

/// Collected histograms per load.
pub fn collect(scenario: &Scenario) -> Vec<(f64, HintHistogram)> {
    scenario
        .loads(&LOADS)
        .into_iter()
        .map(|load| {
            // Carrier sense on, as in the Fig. 3 hint-statistics runs.
            let run = CapacityRun::from_scenario(scenario, load, true);
            let arm = RxArm {
                scheme: scenario.ppr_scheme(),
                postamble: true,
                collect_symbols: true,
            };
            let mut hist = HintHistogram::new();
            for rec in run.receptions(&arm) {
                for (&h, &c) in rec.symbol_hints.iter().zip(&rec.symbol_correct) {
                    hist.record(h, c);
                }
            }
            (load, hist)
        })
        .collect()
}

/// The Fig. 15 experiment.
pub struct Fig15;

impl Experiment for Fig15 {
    fn id(&self) -> &'static str {
        "fig15"
    }

    fn title(&self) -> &'static str {
        "Figure 15: false-alarm rates"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 15"
    }

    fn description(&self) -> &'static str {
        "False-alarm rate vs threshold eta, per offered load"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let data = collect(scenario);
        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(
            "Figure 15: false-alarm rate (CCDF of correct codewords' Hamming\n\
             distance) vs threshold eta\n\n",
        );
        let mut headers = vec!["eta".to_string()];
        headers.extend(data.iter().map(|(load, _)| format!("{load} kbit/s")));
        let mut t = TableBlock::new(&headers.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        for eta in 0..=12u8 {
            let mut row = vec![crate::results::Cell::Str(eta.to_string())];
            for (_, hist) in &data {
                row.push(hist.false_alarm_rate(eta).into());
            }
            t.row(row);
        }
        res.table(t);
        res.text(
            "\nShape targets: ~5e-3 at eta = 6, weak load dependence,\n\
             monotone decreasing in eta.\n",
        );
        for (load, hist) in &data {
            res.metric(
                format!("false_alarm_at_eta@{load}"),
                hist.false_alarm_rate(scenario.eta),
            );
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    #[test]
    fn false_alarm_rate_is_small_and_monotone() {
        let sc = ScenarioBuilder::new().duration_s(5.0).build();
        let data = collect(&sc);
        for (load, hist) in &data {
            assert!(hist.total_correct() > 1000, "load {load}: too few samples");
            let fa6 = hist.false_alarm_rate(6);
            assert!(fa6 < 0.05, "load {load}: false alarm at eta=6 is {fa6}");
            let mut prev = 1.1;
            for eta in 0..=12u8 {
                let fa = hist.false_alarm_rate(eta);
                assert!(fa <= prev + 1e-12, "load {load}: non-monotone at {eta}");
                prev = fa;
            }
        }
    }
}
