//! `meshjam`: the mesh flood under a reactive jammer with node churn.
//!
//! Same event-core flood as [`super::mesh`], but adversarial by
//! default: when the scenario leaves the `jammer` axis off, a reactive
//! jammer (sense→jam turnaround of 4096 chips) is substituted, and an
//! unset `churn` axis becomes 2 crashes per simulated second — so
//! `ppr-cli run meshjam` exercises the adversary path out of the box
//! while explicit `--set jammer=...` / `--set churn=...` overrides
//! still win. The report centers on graceful degradation: the
//! partial-delivery fraction (correct bytes over offered bytes across
//! all nodes), retry exhaustion, and the jammer/fault activity counts.

use super::mesh::{run_mesh, run_mesh_checkpointed, MeshParams};
use super::Experiment;
use crate::adversary::JammerSpec;
use crate::results::{ExperimentResult, TableBlock};
use crate::scenario::Scenario;

/// Sense→jam turnaround of the default reactive jammer, chips.
pub const DEFAULT_REACT_DELAY: u64 = 4096;

/// Default node churn when the axis is unset, crashes per simulated
/// second.
pub const DEFAULT_CHURN: f64 = 2.0;

/// Adversarial mesh parameters: the scenario's, with the reactive
/// jammer and churn substituted when the axes are at their benign
/// defaults.
pub fn meshjam_params(scenario: &Scenario) -> MeshParams {
    let mut params = MeshParams::from_scenario(scenario);
    if params.jammer == JammerSpec::Off {
        params.jammer = JammerSpec::React {
            delay: DEFAULT_REACT_DELAY,
        };
    }
    if params.churn == 0.0 {
        params.churn = DEFAULT_CHURN;
    }
    params
}

/// The `meshjam` experiment.
pub struct MeshJam;

impl Experiment for MeshJam {
    fn id(&self) -> &'static str {
        "meshjam"
    }

    fn title(&self) -> &'static str {
        "Mesh flood under reactive jamming and node churn"
    }

    fn paper_ref(&self) -> &'static str {
        "Section 8.4 (robustness extension)"
    }

    fn description(&self) -> &'static str {
        "graceful degradation of the mesh flood against a reactive jammer plus crash/restart churn"
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let params = meshjam_params(scenario);
        let s = match scenario.checkpoint {
            None => run_mesh(&params, scenario.threads),
            Some(events) => run_mesh_checkpointed(&params, scenario.threads, events),
        };
        let offered = s.nodes * params.body_bytes;
        let partial_delivery = s.correct_bytes as f64 / offered.max(1) as f64;
        let sim_s = s.sim_seconds();

        let mut res = ExperimentResult::new(self.id(), self.title(), self.paper_ref(), scenario);
        res.text(format!(
            "Adversarial mesh flood: {} nodes, jammer {}, churn {:.1}/s,\n\
             retry budget {} rounds, backoff x{:.2}\n\n",
            s.nodes,
            params.jammer.render(),
            params.churn,
            params.arq_retries,
            params.arq_backoff_milli as f64 / 1000.0,
        ));
        let mut t = TableBlock::new(&["metric", "value"]);
        t.row(vec!["coverage (full payload)".into(), s.coverage().into()]);
        t.row(vec![
            "partial delivery fraction".into(),
            partial_delivery.into(),
        ]);
        t.row(vec![
            "retry budget exhausted".into(),
            s.retry_exhausted.into(),
        ]);
        t.row(vec![
            "jam bursts / jammed chips".into(),
            format!("{} / {}", s.jam_bursts, s.jam_chips).into(),
        ]);
        t.row(vec![
            "crashes / restarts".into(),
            format!("{} / {}", s.crashes, s.restarts).into(),
        ]);
        t.row(vec![
            "transmissions (repairs)".into(),
            format!("{} ({})", s.transmissions, s.repair_tx).into(),
        ]);
        t.row(vec![
            "repair bytes requested".into(),
            s.repair_bytes_requested.into(),
        ]);
        t.row(vec!["simulated seconds".into(), sim_s.into()]);
        res.table(t);
        res.text(
            "\nGraceful degradation: jammed and churned nodes end Partial, not\n\
             looping — every retry schedule is bounded and deterministic.\n",
        );
        res.metric("nodes", s.nodes as f64);
        res.metric("coverage", s.coverage());
        res.metric("partial_delivery_fraction", partial_delivery);
        res.metric("recovered", s.recovered as f64);
        res.metric("correct_bytes", s.correct_bytes as f64);
        res.metric("retry_exhausted", s.retry_exhausted as f64);
        res.metric("jam_bursts", s.jam_bursts as f64);
        res.metric("jam_chips", s.jam_chips as f64);
        res.metric("crashes", s.crashes as f64);
        res.metric("restarts", s.restarts as f64);
        res.metric("transmissions", s.transmissions as f64);
        res.metric("repair_tx", s.repair_tx as f64);
        res.metric("repair_bytes_requested", s.repair_bytes_requested as f64);
        res.metric("events_dispatched", s.events_dispatched as f64);
        res.metric("sim_seconds", sim_s);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    #[test]
    fn defaults_substitute_an_adversary() {
        let sc = ScenarioBuilder::new().mesh_nodes(300).build();
        let p = meshjam_params(&sc);
        assert_eq!(
            p.jammer,
            JammerSpec::React {
                delay: DEFAULT_REACT_DELAY
            }
        );
        assert_eq!(p.churn, DEFAULT_CHURN);
    }

    #[test]
    fn explicit_axes_override_the_substitution() {
        let mut b = ScenarioBuilder::new().mesh_nodes(300);
        b.set("jammer", "pulse:8192:0.25").unwrap();
        b.set("churn", "0.5").unwrap();
        let p = meshjam_params(&b.build());
        assert_eq!(
            p.jammer,
            JammerSpec::Pulse {
                period: 8192,
                duty: 0.25
            }
        );
        assert_eq!(p.churn, 0.5);
    }

    #[test]
    fn meshjam_reports_adversary_activity() {
        let sc = ScenarioBuilder::new().mesh_nodes(300).seed(9).build();
        let res = MeshJam.run(&sc);
        let get = |k: &str| res.metrics.iter().find(|(n, _)| n == k).unwrap().1;
        assert!(get("crashes") > 0.0, "churn produced no crashes");
        assert!(get("partial_delivery_fraction") > 0.0);
        assert!(get("partial_delivery_fraction") <= 1.0);
    }
}
