//! Figures 8–10: per-link equivalent frame delivery rate CDFs.
//!
//! * Fig. 8 — carrier sense ON, 3.5 kbit/s/node.
//! * Fig. 9 — carrier sense OFF, 3.5 kbit/s/node.
//! * Fig. 10 — carrier sense OFF, 13.8 kbit/s/node.
//!
//! Each figure plots six curves: {packet CRC, fragmented CRC, PPR} ×
//! {no postamble, postamble}. Expected shape: PPR > fragmented CRC >
//! packet CRC; postamble decoding shifts every curve right (≈2× median);
//! packet CRC collapses without carrier sense and at high load while PPR
//! stays high.

use super::common::{fdr_cdf, six_arms, CapacityRun};
use super::Experiment;
use crate::metrics::Cdf;
use crate::results::{ExperimentResult, TableBlock};
use crate::scenario::Scenario;

/// One evaluated curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label (scheme + postamble arm).
    pub label: String,
    /// Per-link FDR distribution.
    pub cdf: Cdf,
}

/// The headline-metric key for a curve's median FDR.
pub fn median_metric_key(label: &str) -> String {
    format!("median_fdr/{label}")
}

/// Runs one figure's experiment at the resolved load/carrier-sense.
pub fn collect(scenario: &Scenario, load_kbps: f64, carrier_sense: bool) -> Vec<Curve> {
    let run = CapacityRun::from_scenario(scenario, load_kbps, carrier_sense);
    six_arms(scenario.schemes())
        .into_iter()
        .map(|(label, arm)| {
            let recs = run.receptions(&arm);
            Curve {
                label,
                cdf: fdr_cdf(&run.env, &recs, run.cfg.body_bytes),
            }
        })
        .collect()
}

/// One of the three FDR figures, distinguished by its canonical
/// (load, carrier-sense) point.
pub struct FdrExperiment {
    id: &'static str,
    title: &'static str,
    figure: &'static str,
    description: &'static str,
    load_kbps: f64,
    carrier_sense: bool,
}

/// Fig. 8: carrier sense on, moderate load.
pub const FIG08: FdrExperiment = FdrExperiment {
    id: "fig08",
    title: "Figure 8: FDR, carrier sense on, moderate load",
    figure: "Figure 8",
    description: "Per-link FDR CDFs, carrier sense on, 3.5 kbit/s/node",
    load_kbps: 3.5,
    carrier_sense: true,
};

/// Fig. 9: carrier sense off, moderate load.
pub const FIG09: FdrExperiment = FdrExperiment {
    id: "fig09",
    title: "Figure 9: FDR, carrier sense off, moderate load",
    figure: "Figure 9",
    description: "Per-link FDR CDFs, carrier sense off, 3.5 kbit/s/node",
    load_kbps: 3.5,
    carrier_sense: false,
};

/// Fig. 10: carrier sense off, high load.
pub const FIG10: FdrExperiment = FdrExperiment {
    id: "fig10",
    title: "Figure 10: FDR, carrier sense off, high load",
    figure: "Figure 10",
    description: "Per-link FDR CDFs, carrier sense off, 13.8 kbit/s/node",
    load_kbps: 13.8,
    carrier_sense: false,
};

impl Experiment for FdrExperiment {
    fn id(&self) -> &'static str {
        self.id
    }

    fn title(&self) -> &'static str {
        self.title
    }

    fn paper_ref(&self) -> &'static str {
        self.figure
    }

    fn description(&self) -> &'static str {
        self.description
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let load_kbps = scenario.load_or(self.load_kbps);
        let carrier_sense = scenario.carrier_sense_or(self.carrier_sense);
        let curves = collect(scenario, load_kbps, carrier_sense);

        let mut res = ExperimentResult::new(self.id, self.title, self.figure, scenario);
        res.text(format!(
            "{}: per-link equivalent frame delivery rate\n\
             (offered load {load_kbps} kbit/s/node, carrier sense {})\n\n",
            self.figure,
            if carrier_sense { "ENABLED" } else { "DISABLED" }
        ));
        let mut t = TableBlock::new(&["scheme / arm", "links", "median FDR", "p25", "p75"]);
        for c in &curves {
            t.row(vec![
                c.label.clone().into(),
                c.cdf.len().into(),
                c.cdf.median().into(),
                c.cdf.quantile(0.25).into(),
                c.cdf.quantile(0.75).into(),
            ]);
            res.metric(median_metric_key(&c.label), c.cdf.median());
        }
        res.table(t);
        res.text("\n");
        for c in &curves {
            res.series(&c.label, c.cdf.series(0.0, 1.0, 21));
            res.text("\n");
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    fn quick(duration_s: f64) -> Scenario {
        ScenarioBuilder::new().duration_s(duration_s).build()
    }

    /// The central ordering claims of the paper, checked on a short
    /// high-load run where the separation is widest.
    #[test]
    fn scheme_ordering_holds_at_high_load() {
        let curves = collect(&quick(5.0), 13.8, false);
        let median = |label: &str| -> f64 {
            curves
                .iter()
                .find(|c| c.label.contains(label))
                .unwrap()
                .cdf
                .median()
        };
        let pkt_post = median("Packet CRC, postamble");
        let frag_post = median("Fragmented CRC, postamble");
        let ppr_post = median("PPR, postamble");
        assert!(
            ppr_post >= frag_post && frag_post >= pkt_post,
            "ordering violated: ppr {ppr_post} frag {frag_post} pkt {pkt_post}"
        );
        assert!(ppr_post > pkt_post, "PPR must beat packet CRC outright");
    }

    #[test]
    fn postamble_improves_or_matches_every_scheme() {
        let curves = collect(&quick(5.0), 13.8, false);
        for scheme in ["Packet CRC", "Fragmented CRC", "PPR"] {
            let no_post = curves
                .iter()
                .find(|c| c.label.starts_with(scheme) && c.label.contains("no postamble"))
                .unwrap()
                .cdf
                .median();
            let post = curves
                .iter()
                .find(|c| c.label.starts_with(scheme) && !c.label.contains("no postamble"))
                .unwrap()
                .cdf
                .median();
            assert!(
                post >= no_post - 0.02,
                "{scheme}: postamble median {post} < no-postamble {no_post}"
            );
        }
    }

    #[test]
    fn experiment_result_carries_six_curves_and_metrics() {
        let res = FIG10.run(&quick(2.0));
        assert_eq!(res.id, "fig10");
        let series = res
            .blocks
            .iter()
            .filter(|b| matches!(b, crate::results::Block::Series { .. }))
            .count();
        assert_eq!(series, 6);
        assert_eq!(res.metrics.len(), 6);
        assert!(res
            .get_metric(&median_metric_key("PPR, postamble decoding"))
            .is_some());
        assert!(res.render_text().starts_with("Figure 10:"));
    }

    #[test]
    fn load_override_pins_the_run() {
        let sc = ScenarioBuilder::new()
            .duration_s(2.0)
            .load_kbps(6.9)
            .build();
        let res = FIG10.run(&sc);
        assert!(res.render_text().contains("offered load 6.9 kbit/s/node"));
    }
}
