//! Figures 8–10: per-link equivalent frame delivery rate CDFs.
//!
//! * Fig. 8 — carrier sense ON, 3.5 kbit/s/node.
//! * Fig. 9 — carrier sense OFF, 3.5 kbit/s/node.
//! * Fig. 10 — carrier sense OFF, 13.8 kbit/s/node.
//!
//! Each figure plots six curves: {packet CRC, fragmented CRC, PPR} ×
//! {no postamble, postamble}. Expected shape: PPR > fragmented CRC >
//! packet CRC; postamble decoding shifts every curve right (≈2× median);
//! packet CRC collapses without carrier sense and at high load while PPR
//! stays high.

use super::common::{fdr_cdf, six_arms, CapacityRun};
use crate::metrics::Cdf;
use crate::report::{fmt, series, Table};

/// One evaluated curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label (scheme + postamble arm).
    pub label: String,
    /// Per-link FDR distribution.
    pub cdf: Cdf,
}

/// Runs one figure's experiment.
pub fn collect(load_kbps: f64, carrier_sense: bool, duration_s: f64) -> Vec<Curve> {
    let run = CapacityRun::new(load_kbps, carrier_sense, duration_s);
    six_arms()
        .into_iter()
        .map(|(label, arm)| {
            let recs = run.receptions(&arm);
            Curve {
                label,
                cdf: fdr_cdf(&run.env, &recs, run.cfg.body_bytes),
            }
        })
        .collect()
}

/// Renders a figure: median table plus full CDF series.
pub fn render(figure: &str, load_kbps: f64, carrier_sense: bool, curves: &[Curve]) -> String {
    let mut out = format!(
        "{figure}: per-link equivalent frame delivery rate\n\
         (offered load {load_kbps} kbit/s/node, carrier sense {})\n\n",
        if carrier_sense { "ENABLED" } else { "DISABLED" }
    );
    let mut t = Table::new(&["scheme / arm", "links", "median FDR", "p25", "p75"]);
    for c in curves {
        t.row(&[
            c.label.clone(),
            c.cdf.len().to_string(),
            fmt(c.cdf.median()),
            fmt(c.cdf.quantile(0.25)),
            fmt(c.cdf.quantile(0.75)),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    for c in curves {
        out.push_str(&series(&c.label, &c.cdf.series(0.0, 1.0, 21)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The central ordering claims of the paper, checked on a short
    /// high-load run where the separation is widest.
    #[test]
    fn scheme_ordering_holds_at_high_load() {
        let curves = collect(13.8, false, 5.0);
        let median = |label: &str| -> f64 {
            curves
                .iter()
                .find(|c| c.label.contains(label))
                .unwrap()
                .cdf
                .median()
        };
        let pkt_post = median("Packet CRC, postamble");
        let frag_post = median("Fragmented CRC, postamble");
        let ppr_post = median("PPR, postamble");
        assert!(
            ppr_post >= frag_post && frag_post >= pkt_post,
            "ordering violated: ppr {ppr_post} frag {frag_post} pkt {pkt_post}"
        );
        assert!(ppr_post > pkt_post, "PPR must beat packet CRC outright");
    }

    #[test]
    fn postamble_improves_or_matches_every_scheme() {
        let curves = collect(13.8, false, 5.0);
        for scheme in ["Packet CRC", "Fragmented CRC", "PPR"] {
            let no_post = curves
                .iter()
                .find(|c| c.label.starts_with(scheme) && c.label.contains("no postamble"))
                .unwrap()
                .cdf
                .median();
            let post = curves
                .iter()
                .find(|c| c.label.starts_with(scheme) && !c.label.contains("no postamble"))
                .unwrap()
                .cdf
                .median();
            assert!(
                post >= no_post - 0.02,
                "{scheme}: postamble median {post} < no-postamble {no_post}"
            );
        }
    }
}
