//! Environment-variable overrides, parsed in exactly one place.
//!
//! Two knobs are honored process-wide and both warn on stderr instead of
//! silently ignoring a typo:
//!
//! * `PPR_DURATION` — simulated seconds per experiment run (default
//!   [`DEFAULT_DURATION_S`]).
//! * `PPR_THREADS` — worker-thread count for the reception loop
//!   (default: the machine's available parallelism).
//!
//! Everything else folds these in through [`crate::scenario::Scenario`]
//! (the builder > env > default precedence), so no other module reads
//! `std::env` for simulation parameters.

/// The default experiment duration when `PPR_DURATION` is unset or
/// invalid, seconds.
pub const DEFAULT_DURATION_S: f64 = 90.0;

/// Default experiment duration, seconds. Override with the
/// `PPR_DURATION` environment variable (e.g. `PPR_DURATION=20` for a
/// quick pass). A value that does not parse as a positive, finite
/// number of seconds is rejected with a warning on stderr — a typo'd
/// duration must not silently run the full 90 s default.
pub fn duration_from_env() -> f64 {
    match parse_duration(std::env::var("PPR_DURATION").ok().as_deref()) {
        Ok(d) => d,
        Err(raw) => {
            eprintln!(
                "warning: ignoring invalid PPR_DURATION={raw:?} \
                 (want a positive number of seconds); using the default \
                 {DEFAULT_DURATION_S} s"
            );
            DEFAULT_DURATION_S
        }
    }
}

/// Parses an optional `PPR_DURATION` value. `Ok` carries the duration to
/// use (the default when unset); `Err` carries the rejected raw value so
/// the caller can warn.
pub fn parse_duration(raw: Option<&str>) -> Result<f64, String> {
    let Some(raw) = raw else {
        return Ok(DEFAULT_DURATION_S);
    };
    match raw.trim().parse::<f64>() {
        Ok(d) if d.is_finite() && d > 0.0 => Ok(d),
        _ => Err(raw.to_string()),
    }
}

/// Worker-thread ceiling for the reception loop: the `PPR_THREADS`
/// override, else the machine's available parallelism. An invalid
/// override is rejected with a warning on stderr — a typo'd thread
/// count must not silently run on all cores. The environment is
/// resolved once per process so the warning prints a single time, not
/// once per reception-loop call.
pub fn threads_from_env() -> usize {
    threads_override_from_env().unwrap_or_else(available_parallelism)
}

/// The `PPR_THREADS` override itself, `None` when unset (or invalid,
/// after the warning above) — what [`crate::scenario::ScenarioBuilder`]
/// folds into a scenario, so the variable is read in exactly one place.
pub fn threads_override_from_env() -> Option<usize> {
    static OVERRIDE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *OVERRIDE.get_or_init(
        || match parse_threads(std::env::var("PPR_THREADS").ok().as_deref()) {
            Ok(over) => over,
            Err(raw) => {
                eprintln!(
                    "warning: ignoring invalid PPR_THREADS={raw:?} \
                     (want a positive integer); using available parallelism"
                );
                None
            }
        },
    )
}

/// Parses an optional `PPR_THREADS` value. `Ok(None)` means unset (use
/// available parallelism); `Err` carries the rejected raw value so the
/// caller can warn.
pub fn parse_threads(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(raw.to_string()),
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_parsing_covers_valid_invalid_and_unset() {
        // Unset: the default, no warning path.
        assert_eq!(parse_duration(None), Ok(DEFAULT_DURATION_S));
        // Valid values, including surrounding whitespace.
        assert_eq!(parse_duration(Some("20")), Ok(20.0));
        assert_eq!(parse_duration(Some("0.5")), Ok(0.5));
        assert_eq!(parse_duration(Some(" 42.25 ")), Ok(42.25));
        // Invalid values are rejected (and reported back verbatim).
        for bad in ["", "abc", "20s", "1e999", "nan", "inf", "-5", "0"] {
            assert_eq!(
                parse_duration(Some(bad)),
                Err(bad.to_string()),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn thread_parsing_covers_valid_invalid_and_unset() {
        assert_eq!(parse_threads(None), Ok(None));
        assert_eq!(parse_threads(Some("1")), Ok(Some(1)));
        assert_eq!(parse_threads(Some(" 8 ")), Ok(Some(8)));
        for bad in ["", "zero", "0", "-2", "1.5", "4x"] {
            assert_eq!(
                parse_threads(Some(bad)),
                Err(bad.to_string()),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn env_resolvers_return_positive_values() {
        assert!(duration_from_env() > 0.0);
        assert!(threads_from_env() >= 1);
    }
}
