//! Metric collection: CDFs, CCDFs, quantiles, and hint-statistics
//! histograms shared by the experiments.

/// An empirical distribution built from samples.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds from samples (order irrelevant).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|s| s.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The q-quantile (0 ≤ q ≤ 1), by nearest-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// The median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Fraction of samples ≤ x.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let n = self.sorted.partition_point(|&s| s <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Evaluates the CDF at evenly spaced points of `[lo, hi]` —
    /// the plottable series of the paper's figures.
    pub fn series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1).max(1) as f64;
                (x, self.at(x))
            })
            .collect()
    }

    /// Raw sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Histogram over SoftPHY hint values split by ground-truth correctness
/// (drives Figs. 3 and 15).
#[derive(Debug, Clone)]
pub struct HintHistogram {
    /// `counts[h]` for codewords decoded correctly.
    pub correct: Vec<u64>,
    /// `counts[h]` for codewords decoded incorrectly.
    pub incorrect: Vec<u64>,
}

impl Default for HintHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl HintHistogram {
    /// An empty histogram over hints 0..=33 (32 chip flips + the
    /// never-received sentinel).
    pub fn new() -> Self {
        HintHistogram {
            correct: vec![0; 34],
            incorrect: vec![0; 34],
        }
    }

    /// Records one codeword.
    pub fn record(&mut self, hint: u8, was_correct: bool) {
        let h = (hint as usize).min(33);
        if was_correct {
            self.correct[h] += 1;
        } else {
            self.incorrect[h] += 1;
        }
    }

    /// Total correct codewords.
    pub fn total_correct(&self) -> u64 {
        self.correct.iter().sum()
    }

    /// Total incorrect codewords.
    pub fn total_incorrect(&self) -> u64 {
        self.incorrect.iter().sum()
    }

    /// CDF of hint values conditioned on correctness:
    /// `P(hint ≤ h | correct)` (Fig. 3's curves).
    pub fn cdf(&self, of_correct: bool) -> Vec<f64> {
        let counts = if of_correct {
            &self.correct
        } else {
            &self.incorrect
        };
        let total: u64 = counts.iter().sum();
        let mut acc = 0u64;
        counts
            .iter()
            .map(|&c| {
                acc += c;
                if total == 0 {
                    f64::NAN
                } else {
                    acc as f64 / total as f64
                }
            })
            .collect()
    }

    /// Miss rate at threshold η: `P(hint ≤ η | incorrect)` — incorrect
    /// codewords falsely labeled good (§7.4.1).
    pub fn miss_rate(&self, eta: u8) -> f64 {
        self.cdf(false)[(eta as usize).min(33)]
    }

    /// False-alarm rate at threshold η: `P(hint > η | correct)` —
    /// correct codewords labeled bad and needlessly retransmitted
    /// (§7.4.2, Fig. 15).
    pub fn false_alarm_rate(&self, eta: u8) -> f64 {
        1.0 - self.cdf(true)[(eta as usize).min(33)]
    }
}

/// Histogram of contiguous miss-run lengths at several thresholds
/// (Fig. 14).
#[derive(Debug, Clone)]
pub struct MissRunHistogram {
    /// Thresholds η under evaluation.
    pub etas: Vec<u8>,
    /// `counts[e][len]`: number of contiguous miss runs of `len` at
    /// `etas[e]` (index 0 unused).
    pub counts: Vec<Vec<u64>>,
}

impl MissRunHistogram {
    /// Creates a histogram for the given thresholds, tracking run
    /// lengths up to `max_len`.
    pub fn new(etas: Vec<u8>, max_len: usize) -> Self {
        let counts = vec![vec![0; max_len + 1]; etas.len()];
        MissRunHistogram { etas, counts }
    }

    /// Records one packet's hint/correctness trace: a *miss* is an
    /// incorrect codeword with `hint ≤ η`; contiguous misses form runs.
    pub fn record_packet(&mut self, hints: &[u8], correct: &[bool]) {
        for (e, &eta) in self.etas.iter().enumerate() {
            let max = self.counts[e].len() - 1;
            let mut run = 0usize;
            for (&h, &c) in hints.iter().zip(correct) {
                let miss = !c && h <= eta;
                if miss {
                    run += 1;
                } else if run > 0 {
                    self.counts[e][run.min(max)] += 1;
                    run = 0;
                }
            }
            if run > 0 {
                self.counts[e][run.min(max)] += 1;
            }
        }
    }

    /// CCDF of miss-run length at threshold index `e`:
    /// `P(run length ≥ len)`.
    pub fn ccdf(&self, e: usize) -> Vec<(usize, f64)> {
        let total: u64 = self.counts[e].iter().sum();
        if total == 0 {
            return Vec::new();
        }
        let mut tail: u64 = total;
        let mut out = Vec::new();
        for (len, &c) in self.counts[e].iter().enumerate().skip(1) {
            out.push((len, tail as f64 / total as f64));
            tail -= c;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_quantiles() {
        let c = Cdf::from_samples(vec![3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(c.median(), 3.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 5.0);
        assert_eq!(c.at(2.5), 0.4);
        assert_eq!(c.at(10.0), 1.0);
        assert_eq!(c.at(0.0), 0.0);
    }

    #[test]
    fn cdf_handles_empty_and_nan() {
        let c = Cdf::from_samples(vec![f64::NAN, 1.0]);
        assert_eq!(c.len(), 1);
        assert!(Cdf::from_samples(vec![]).median().is_nan());
    }

    #[test]
    fn cdf_series_is_monotone() {
        let c = Cdf::from_samples((0..100).map(|i| (i as f64).sin()).collect());
        let s = c.series(-1.0, 1.0, 21);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(s.len(), 21);
    }

    #[test]
    fn hint_histogram_rates() {
        let mut h = HintHistogram::new();
        // 90 correct at hint 0, 10 correct at hint 8;
        // 5 incorrect at hint 2, 45 incorrect at hint 12.
        for _ in 0..90 {
            h.record(0, true);
        }
        for _ in 0..10 {
            h.record(8, true);
        }
        for _ in 0..5 {
            h.record(2, false);
        }
        for _ in 0..45 {
            h.record(12, false);
        }
        assert_eq!(h.total_correct(), 100);
        assert_eq!(h.total_incorrect(), 50);
        assert!((h.miss_rate(6) - 0.1).abs() < 1e-12);
        assert!((h.false_alarm_rate(6) - 0.1).abs() < 1e-12);
        assert!((h.false_alarm_rate(8) - 0.0).abs() < 1e-12);
        assert!((h.miss_rate(1) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn miss_runs_counted_correctly() {
        let mut m = MissRunHistogram::new(vec![6], 10);
        // correct pattern: one run of 2 misses, one of 1.
        let hints = [0u8, 3, 3, 9, 0, 2, 0];
        let corr = [true, false, false, false, true, false, true];
        // misses (hint≤6 && !correct): idx1, idx2 (run of 2); idx3 has
        // hint 9 → not a miss; idx5 (run of 1).
        m.record_packet(&hints, &corr);
        assert_eq!(m.counts[0][2], 1);
        assert_eq!(m.counts[0][1], 1);
        let ccdf = m.ccdf(0);
        assert_eq!(ccdf[0], (1, 1.0));
        assert_eq!(ccdf[1], (2, 0.5));
    }

    #[test]
    fn trailing_miss_run_is_flushed() {
        let mut m = MissRunHistogram::new(vec![6], 10);
        m.record_packet(&[0, 0], &[false, false]);
        assert_eq!(m.counts[0][2], 1);
    }
}
