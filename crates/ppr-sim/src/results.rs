//! Typed, self-describing experiment results.
//!
//! Every experiment produces an [`ExperimentResult`]: headline metrics
//! (named scalars) plus an ordered sequence of [`Block`]s — prose,
//! typed tables, and (x, y) series. The plain-text report the paper
//! figures are compared against is *derived* from the blocks
//! ([`ExperimentResult::render_text`]), and the same structure
//! serializes to JSON ([`ExperimentResult::to_json`]) for downstream
//! tooling — hand-rolled, since the build container is offline and the
//! workspace vendors no serde.

use crate::report::{fmt, series, Table};
use crate::scenario::Scenario;
use std::fmt::Write as _;

/// A minimal JSON document tree with a deterministic serializer.
///
/// Numbers render via Rust's shortest-roundtrip `f64` display (stable
/// across platforms); non-finite values render as `null`. Object keys
/// keep insertion order, so serialized output is reproducible — the
/// golden regression test fingerprints it byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// An unsigned integer, serialized exactly (a 64-bit seed must
    /// round-trip; `f64` would silently round above 2⁵³).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value (non-finite becomes `null` at render time).
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// An integer value, exact over the full `u64` range.
    pub fn int(v: u64) -> Json {
        Json::UInt(v)
    }

    /// Serializes without insignificant whitespace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One table cell: typed so JSON keeps numbers as numbers while the
/// text renderer reproduces the paper-style formatting ([`fmt`] for
/// floats, plain display for integers).
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A preformatted string (labels, composite cells).
    Str(String),
    /// An integer count.
    Int(u64),
    /// A float, text-rendered through [`fmt`].
    Num(f64),
}

impl Cell {
    /// The text-report rendering of this cell.
    pub fn text(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Num(v) => fmt(*v),
        }
    }

    fn json(&self) -> Json {
        match self {
            Cell::Str(s) => Json::str(s),
            Cell::Int(v) => Json::int(*v),
            Cell::Num(v) => Json::num(*v),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Cell {
        Cell::Str(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Cell {
        Cell::Str(s)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Cell {
        Cell::Int(v as u64)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Cell {
        Cell::Int(v)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Cell {
        Cell::Num(v)
    }
}

/// A typed table: headers plus rows of [`Cell`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct TableBlock {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must match the header count.
    pub rows: Vec<Vec<Cell>>,
}

impl TableBlock {
    /// An empty table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        TableBlock {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns (identical to [`Table`]).
    pub fn render(&self) -> String {
        let mut t = Table::new(&self.headers.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        for row in &self.rows {
            t.row(&row.iter().map(Cell::text).collect::<Vec<_>>());
        }
        t.render()
    }
}

/// One ordered piece of an experiment report.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// Verbatim prose (figure captions, shape-target notes, spacing).
    Text(String),
    /// A typed table.
    Table(TableBlock),
    /// A named (x, y) series — one curve of a paper figure.
    Series {
        /// Legend label.
        label: String,
        /// The curve's points.
        points: Vec<(f64, f64)>,
    },
}

impl Block {
    fn render_text(&self) -> String {
        match self {
            Block::Text(s) => s.clone(),
            Block::Table(t) => t.render(),
            Block::Series { label, points } => series(label, points),
        }
    }

    fn to_json(&self) -> Json {
        match self {
            Block::Text(s) => Json::Obj(vec![
                ("type".into(), Json::str("text")),
                ("text".into(), Json::str(s)),
            ]),
            Block::Table(t) => Json::Obj(vec![
                ("type".into(), Json::str("table")),
                (
                    "headers".into(),
                    Json::Arr(t.headers.iter().map(Json::str).collect()),
                ),
                (
                    "rows".into(),
                    Json::Arr(
                        t.rows
                            .iter()
                            .map(|r| Json::Arr(r.iter().map(Cell::json).collect()))
                            .collect(),
                    ),
                ),
            ]),
            Block::Series { label, points } => Json::Obj(vec![
                ("type".into(), Json::str("series")),
                ("label".into(), Json::str(label)),
                (
                    "points".into(),
                    Json::Arr(
                        points
                            .iter()
                            .map(|&(x, y)| Json::Arr(vec![Json::num(x), Json::num(y)]))
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

/// The self-describing outcome of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Registry id (e.g. `fig10`).
    pub id: String,
    /// Human banner title.
    pub title: String,
    /// Paper reference (e.g. `Figure 10` or `Table 1`).
    pub paper_ref: String,
    /// The scenario this result was computed under.
    pub scenario: Scenario,
    /// Headline named scalars (drive Table 1 and JSON consumers).
    pub metrics: Vec<(String, f64)>,
    /// The ordered report blocks.
    pub blocks: Vec<Block>,
}

impl ExperimentResult {
    /// An empty result shell for an experiment run.
    pub fn new(id: &str, title: &str, paper_ref: &str, scenario: &Scenario) -> Self {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            paper_ref: paper_ref.to_string(),
            scenario: scenario.clone(),
            metrics: Vec::new(),
            blocks: Vec::new(),
        }
    }

    /// Records a named headline metric.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// Looks up a headline metric by name.
    pub fn get_metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Appends a prose block (spacing included — blocks concatenate
    /// verbatim).
    pub fn text(&mut self, s: impl Into<String>) {
        self.blocks.push(Block::Text(s.into()));
    }

    /// Appends a table block.
    pub fn table(&mut self, t: TableBlock) {
        self.blocks.push(Block::Table(t));
    }

    /// Appends a series block.
    pub fn series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) {
        self.blocks.push(Block::Series {
            label: label.into(),
            points,
        });
    }

    /// The plain-text report: the blocks concatenated in order. For
    /// every experiment this reproduces the pre-registry renderer output
    /// byte for byte.
    pub fn render_text(&self) -> String {
        self.blocks.iter().map(Block::render_text).collect()
    }

    /// The JSON document for this result.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::str(&self.id)),
            ("title".into(), Json::str(&self.title)),
            ("paper_ref".into(), Json::str(&self.paper_ref)),
            ("scenario".into(), self.scenario.to_json()),
            (
                "metrics".into(),
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::num(*v)))
                        .collect(),
                ),
            ),
            (
                "blocks".into(),
                Json::Arr(self.blocks.iter().map(Block::to_json).collect()),
            ),
        ])
    }
}

/// FNV-1a fingerprint of a byte string — pins the golden regression
/// test's serialized-results digest without a hash dependency.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    #[test]
    fn json_renders_escaped_and_ordered() {
        let j = Json::Obj(vec![
            ("b".into(), Json::num(1.5)),
            ("a".into(), Json::str("x\"y\n")),
            ("n".into(), Json::Num(f64::NAN)),
            ("arr".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"b":1.5,"a":"x\"y\n","n":null,"arr":[true,null]}"#
        );
    }

    #[test]
    fn json_integers_render_without_fraction() {
        assert_eq!(Json::int(42).render(), "42");
        assert_eq!(Json::num(0.125).render(), "0.125");
        // Above 2^53 an f64 would round; seeds must survive exactly.
        assert_eq!(
            Json::int(9_007_199_254_740_993).render(),
            "9007199254740993"
        );
        assert_eq!(Json::int(u64::MAX).render(), "18446744073709551615");
    }

    #[test]
    fn cells_render_like_the_legacy_formatters() {
        assert_eq!(Cell::from(7usize).text(), "7");
        assert_eq!(Cell::from(0.5).text(), fmt(0.5));
        assert_eq!(Cell::from("x / y").text(), "x / y");
    }

    #[test]
    fn table_block_matches_report_table() {
        let mut tb = TableBlock::new(&["scheme", "median"]);
        tb.row(vec!["PPR".into(), 0.93.into()]);
        let mut t = Table::new(&["scheme", "median"]);
        t.row(&["PPR".into(), fmt(0.93)]);
        assert_eq!(tb.render(), t.render());
    }

    #[test]
    fn result_text_is_block_concatenation() {
        let sc = ScenarioBuilder::new().duration_s(1.0).build();
        let mut r = ExperimentResult::new("x", "X", "Figure X", &sc);
        r.text("head\n\n");
        r.series("curve", vec![(0.0, 0.0), (1.0, 1.0)]);
        r.text("\n");
        let text = r.render_text();
        assert!(text.starts_with("head\n\n# curve\n"));
        assert!(text.ends_with("\n\n"));
        r.metric("m", 2.0);
        assert_eq!(r.get_metric("m"), Some(2.0));
        assert_eq!(r.get_metric("absent"), None);
    }

    #[test]
    fn fingerprint_is_stable() {
        assert_eq!(fingerprint(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fingerprint(b"a"), fingerprint(b"b"));
    }
}
