//! The [`Scenario`]: every knob an experiment run can turn, in one
//! place, with one precedence rule.
//!
//! Historically each experiment binary hard-wired its own
//! parameterization (duration, seed, load, η, carrier sense, fragment
//! size, thread count…), and environment overrides were parsed in
//! scattered modules. A [`Scenario`] consolidates all of them; the
//! [`ScenarioBuilder`] folds the environment in at one choke point with
//! the documented precedence:
//!
//! > **builder > environment > default**
//!
//! Explicit builder calls (or CLI `--set key=val`) always win; unset
//! fields fall back to `PPR_DURATION` / `PPR_THREADS` (see
//! [`crate::env`]); whatever remains takes the paper's defaults.
//!
//! `load` and `carrier_sense` are *overrides*: left unset, each
//! experiment uses its canonical per-figure parameterization (Fig. 8 is
//! defined at 3.5 kbit/s with carrier sense on; Fig. 10 at 13.8 without).
//! Setting them pins every experiment in the run to that value — the
//! sweep API.

use crate::adversary::JammerSpec;
use crate::env;
use crate::geometry::Testbed;
use crate::network::SimConfig;
use crate::results::Json;
use ppr_mac::schemes::DeliveryScheme;

/// Master seed shared by all experiments (reproducibility).
pub const DEFAULT_SEED: u64 = 0x0050_5052;

/// The paper's offered loads, kbit/s/node.
pub const LOADS: [f64; 3] = [3.5, 6.9, 13.8];

/// The Table 2 optimum fragment size, bytes.
pub const DEFAULT_FRAG_BYTES: usize = 50;

/// The paper's SoftPHY threshold.
pub const DEFAULT_ETA: u8 = 6;

/// Channel backend selector. Today only [`Backend::Chip`] drives the
/// network experiments; the sample-level DSP pipeline backs `fig13`
/// regardless (its whole point is real waveforms). The knob exists so a
/// future sample-level network backend slots in without an API change —
/// until one consumes it, [`ScenarioBuilder::set`] rejects
/// `backend=dsp` rather than mislabeling chip-backend results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Fast chip-flip channel (SINR-driven Bernoulli chip errors).
    #[default]
    Chip,
    /// Sample-level DSP channel (MSK waveforms + superposition + AWGN).
    Dsp,
}

impl Backend {
    /// The CLI/JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Chip => "chip",
            Backend::Dsp => "dsp",
        }
    }
}

/// Default node count for the mesh flood experiment.
pub const DEFAULT_MESH_NODES: usize = 10_000;

/// Default expected neighbor count (mesh density) for the
/// random-geometric layouts.
pub const DEFAULT_MESH_DENSITY: f64 = 12.0;

/// Default PP-ARQ retry budget (the mesh driver's historical
/// `MAX_ARQ_ROUNDS`).
pub const DEFAULT_ARQ_RETRIES: u8 = 3;

/// Default PP-ARQ backoff multiplier: 1.0 is a constant-delay
/// schedule, bit-identical to the pre-adversary timing.
pub const DEFAULT_ARQ_BACKOFF: f64 = 1.0;

/// The sender layout a capacity run simulates — a first-class scenario
/// axis (`--set topology=...`). Values use `:`-separated syntax because
/// the CLI splits `--set` values on commas for sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Topology {
    /// The paper's Fig. 7 office floor (23 senders, 4 receivers).
    #[default]
    Fig7,
    /// A regular `cols × rows` sender grid on the office floor
    /// ([`Testbed::grid`]): syntax `grid:CxR`, e.g. `grid:6x4` (bare
    /// `grid` means `grid:6x4`).
    Grid {
        /// Grid columns.
        cols: usize,
        /// Grid rows.
        rows: usize,
    },
    /// A random-geometric layout ([`Testbed::random_geometric`]):
    /// syntax `rg:SEED:DENSITY`, e.g. `rg:7:12`.
    RandomGeometric {
        /// Placement seed (independent of the scenario seed so layouts
        /// can be swept while traffic stays fixed).
        seed: u64,
        /// Expected neighbors within the communication radius.
        density: f64,
    },
}

impl Topology {
    /// The CLI/JSON name, e.g. `fig7`, `grid:6x4`, `rg:7:12`.
    pub fn name(&self) -> String {
        match self {
            Topology::Fig7 => "fig7".to_string(),
            Topology::Grid { cols, rows } => format!("grid:{cols}x{rows}"),
            Topology::RandomGeometric { seed, density } => format!("rg:{seed}:{density}"),
        }
    }

    /// Parses the CLI syntax (`fig7`, `grid`, `grid:CxR`,
    /// `rg:SEED:DENSITY`).
    pub fn parse(s: &str) -> Result<Topology, String> {
        let s = s.trim();
        if s == "fig7" {
            return Ok(Topology::Fig7);
        }
        if s == "grid" {
            return Ok(Topology::Grid { cols: 6, rows: 4 });
        }
        if let Some(spec) = s.strip_prefix("grid:") {
            let (c, r) = spec
                .split_once('x')
                .ok_or_else(|| format!("invalid grid spec {s:?} (want grid:CxR)"))?;
            let cols: usize = c
                .parse()
                .map_err(|_| format!("invalid grid columns {c:?} in {s:?}"))?;
            let rows: usize = r
                .parse()
                .map_err(|_| format!("invalid grid rows {r:?} in {s:?}"))?;
            if cols < 1 || rows < 1 {
                return Err(format!("grid needs at least 1x1, got {s:?}"));
            }
            return Ok(Topology::Grid { cols, rows });
        }
        if let Some(spec) = s.strip_prefix("rg:") {
            let (seed, density) = spec
                .split_once(':')
                .ok_or_else(|| format!("invalid rg spec {s:?} (want rg:SEED:DENSITY)"))?;
            let seed: u64 = seed
                .parse()
                .map_err(|_| format!("invalid rg seed {seed:?} in {s:?}"))?;
            let density: f64 = density
                .parse()
                .map_err(|_| format!("invalid rg density {density:?} in {s:?}"))?;
            if !(density.is_finite() && density > 0.0) {
                return Err(format!("rg density must be positive, got {s:?}"));
            }
            return Ok(Topology::RandomGeometric { seed, density });
        }
        Err(format!(
            "unknown topology {s:?} (want fig7 | grid:CxR | rg:SEED:DENSITY)"
        ))
    }

    /// Builds the testbed. `comm_radius_m` sizes the random-geometric
    /// square (the caller passes the propagation model's communication
    /// range); the office layouts ignore it.
    pub fn testbed(&self, comm_radius_m: f64) -> Testbed {
        match *self {
            Topology::Fig7 => Testbed::fig7(),
            Topology::Grid { cols, rows } => Testbed::grid(cols, rows),
            Topology::RandomGeometric { seed, density } => {
                Testbed::random_geometric(seed, density, comm_radius_m)
            }
        }
    }
}

/// Which reception driver a capacity run uses: the event-driven core
/// (production) or the pinned time-stepped reference loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Driver {
    /// The discrete-event driver over [`crate::event`].
    #[default]
    Event,
    /// The pre-event-core time-stepped batch loop
    /// ([`crate::network::process_receptions_timestep`]).
    Timestep,
}

impl Driver {
    /// The CLI/JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            Driver::Event => "event",
            Driver::Timestep => "timestep",
        }
    }
}

/// One fully-resolved experiment parameterization.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Simulated duration per run, seconds.
    pub duration_s: f64,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// SoftPHY threshold η for the PPR scheme.
    pub eta: u8,
    /// Fragment payload size for the fragmented-CRC scheme, bytes.
    pub frag_bytes: usize,
    /// Over-the-air body size for capacity experiments, bytes.
    pub body_bytes: usize,
    /// Back-to-back packets in the PP-ARQ (Fig. 16) experiment.
    pub arq_packets: usize,
    /// Source packets in the relay-forwarding experiment.
    pub relay_packets: usize,
    /// Reception-loop worker threads (`None` = `PPR_THREADS` /
    /// available parallelism, resolved at the reception loop).
    pub threads: Option<usize>,
    /// Channel backend.
    pub backend: Backend,
    /// Offered-load override, kbit/s/node (`None` = each experiment's
    /// canonical load(s)).
    pub load_kbps: Option<f64>,
    /// Carrier-sense override (`None` = each experiment's canonical
    /// arm).
    pub carrier_sense: Option<bool>,
    /// Sender layout for the capacity experiments.
    pub topology: Topology,
    /// Reception driver (event-driven vs time-stepped reference).
    pub driver: Driver,
    /// Node count for the mesh flood experiment (`mesh10k`).
    pub mesh_nodes: usize,
    /// Expected neighbor count for the mesh / random-geometric layouts.
    pub mesh_density: f64,
    /// Snapshot/restore exercise point: run each reception loop to this
    /// event-dispatch boundary, checkpoint through the binary snapshot
    /// format, and resume (`None` = run uninterrupted). Results are
    /// bit-identical either way — that is the pinned contract.
    pub checkpoint: Option<u64>,
    /// Jammer actor for the adversarial experiments
    /// ([`JammerSpec::Off`] = no adversary machinery at all).
    pub jammer: JammerSpec,
    /// Node crash/restart churn, crashes per simulated second
    /// (0 = no fault injection).
    pub churn: f64,
    /// PP-ARQ retry budget (repair rounds per node).
    pub arq_retries: u8,
    /// PP-ARQ retry backoff multiplier (1.0 = constant delay).
    pub arq_backoff: f64,
}

impl Scenario {
    /// The environment-resolved scenario with no builder overrides —
    /// what every experiment binary ran before the registry existed.
    pub fn from_env() -> Scenario {
        ScenarioBuilder::new().build()
    }

    /// The [`SimConfig`] for a capacity run at the given canonical load
    /// and carrier-sense arm (both overridable by this scenario).
    pub fn sim_config(&self, load_kbps: f64, carrier_sense: bool) -> SimConfig {
        SimConfig {
            load_kbps: self.load_kbps.unwrap_or(load_kbps),
            body_bytes: self.body_bytes,
            carrier_sense: self.carrier_sense.unwrap_or(carrier_sense),
            duration_s: self.duration_s,
            seed: self.seed,
        }
    }

    /// The three §7.2 delivery schemes under this scenario's parameters.
    pub fn schemes(&self) -> [DeliveryScheme; 3] {
        DeliveryScheme::standard_set(self.frag_bytes, self.eta)
    }

    /// The PPR scheme at this scenario's η.
    pub fn ppr_scheme(&self) -> DeliveryScheme {
        DeliveryScheme::Ppr { eta: self.eta }
    }

    /// The loads an experiment should sweep: the single override when
    /// set, else the experiment's canonical list.
    pub fn loads(&self, canonical: &[f64]) -> Vec<f64> {
        match self.load_kbps {
            Some(load) => vec![load],
            None => canonical.to_vec(),
        }
    }

    /// A single canonical load, subject to the override.
    pub fn load_or(&self, canonical: f64) -> f64 {
        self.load_kbps.unwrap_or(canonical)
    }

    /// A canonical carrier-sense arm, subject to the override.
    pub fn carrier_sense_or(&self, canonical: bool) -> bool {
        self.carrier_sense.unwrap_or(canonical)
    }

    /// JSON snapshot (embedded in every serialized result).
    ///
    /// The PR 8 axes (`topology`, `driver`, `mesh_nodes`,
    /// `mesh_density`) are emitted **only when non-default**: every
    /// pre-existing scenario renders byte-identically, so the golden
    /// registry fingerprint is untouched by their introduction.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("duration_s".into(), Json::num(self.duration_s)),
            ("seed".into(), Json::int(self.seed)),
            ("eta".into(), Json::int(self.eta as u64)),
            ("frag_bytes".into(), Json::int(self.frag_bytes as u64)),
            ("body_bytes".into(), Json::int(self.body_bytes as u64)),
            ("arq_packets".into(), Json::int(self.arq_packets as u64)),
            ("relay_packets".into(), Json::int(self.relay_packets as u64)),
            (
                "threads".into(),
                match self.threads {
                    Some(n) => Json::int(n as u64),
                    None => Json::Null,
                },
            ),
            ("backend".into(), Json::str(self.backend.name())),
            (
                "load_kbps".into(),
                match self.load_kbps {
                    Some(l) => Json::num(l),
                    None => Json::Null,
                },
            ),
            (
                "carrier_sense".into(),
                match self.carrier_sense {
                    Some(cs) => Json::Bool(cs),
                    None => Json::Null,
                },
            ),
        ];
        if self.topology != Topology::Fig7 {
            fields.push(("topology".into(), Json::str(self.topology.name())));
        }
        if self.driver != Driver::Event {
            fields.push(("driver".into(), Json::str(self.driver.name())));
        }
        if self.mesh_nodes != DEFAULT_MESH_NODES {
            fields.push(("mesh_nodes".into(), Json::int(self.mesh_nodes as u64)));
        }
        if self.mesh_density != DEFAULT_MESH_DENSITY {
            fields.push(("mesh_density".into(), Json::num(self.mesh_density)));
        }
        if let Some(cp) = self.checkpoint {
            fields.push(("checkpoint".into(), Json::int(cp)));
        }
        if self.jammer != JammerSpec::Off {
            fields.push(("jammer".into(), Json::str(self.jammer.render())));
        }
        if self.churn != 0.0 {
            fields.push(("churn".into(), Json::num(self.churn)));
        }
        if self.arq_retries != DEFAULT_ARQ_RETRIES {
            fields.push(("arq_retries".into(), Json::int(self.arq_retries as u64)));
        }
        if self.arq_backoff != DEFAULT_ARQ_BACKOFF {
            fields.push(("arq_backoff".into(), Json::num(self.arq_backoff)));
        }
        Json::Obj(fields)
    }
}

/// Builder for [`Scenario`]: unset fields resolve from the environment,
/// then from the paper's defaults (builder > env > default).
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    duration_s: Option<f64>,
    seed: Option<u64>,
    eta: Option<u8>,
    frag_bytes: Option<usize>,
    body_bytes: Option<usize>,
    arq_packets: Option<usize>,
    relay_packets: Option<usize>,
    threads: Option<usize>,
    backend: Option<Backend>,
    load_kbps: Option<f64>,
    carrier_sense: Option<bool>,
    topology: Option<Topology>,
    driver: Option<Driver>,
    mesh_nodes: Option<usize>,
    mesh_density: Option<f64>,
    checkpoint: Option<u64>,
    jammer: Option<JammerSpec>,
    churn: Option<f64>,
    arq_retries: Option<u8>,
    arq_backoff: Option<f64>,
}

/// The keys [`ScenarioBuilder::set`] accepts, with their value syntax —
/// also the CLI's `--set` vocabulary.
pub const SCENARIO_KEYS: &[(&str, &str)] = &[
    ("duration", "positive seconds, e.g. duration=20"),
    ("seed", "u64, e.g. seed=42"),
    ("eta", "SoftPHY threshold 0-33, e.g. eta=6"),
    (
        "frag_bytes",
        "fragment payload bytes >= 1, e.g. frag_bytes=50",
    ),
    ("body_bytes", "on-air body bytes >= 1, e.g. body_bytes=1500"),
    ("arq_packets", "PP-ARQ packets >= 1, e.g. arq_packets=300"),
    (
        "relay_packets",
        "relay packets >= 1, e.g. relay_packets=400",
    ),
    ("threads", "worker threads >= 1, e.g. threads=4"),
    ("backend", "chip (dsp reserved, not yet wired)"),
    ("load", "offered load kbit/s/node, e.g. load=13.8"),
    ("carrier_sense", "true | false"),
    (
        "topology",
        "fig7 | grid:CxR | rg:SEED:DENSITY, e.g. topology=grid:6x4",
    ),
    ("driver", "event | timestep, e.g. driver=event"),
    ("mesh_nodes", "mesh node count >= 2, e.g. mesh_nodes=10000"),
    (
        "mesh_density",
        "expected neighbors > 0, e.g. mesh_density=12",
    ),
    (
        "checkpoint",
        "snapshot/resume at this event count >= 1, e.g. checkpoint=1000",
    ),
    (
        "jammer",
        "off | pulse:PERIOD:DUTY | rand:DUTY | sweep:PERIOD:DUTY | react:DELAY, \
         e.g. jammer=pulse:32768:0.2",
    ),
    (
        "churn",
        "node crashes per simulated second >= 0, e.g. churn=2",
    ),
    (
        "arq_retries",
        "PP-ARQ repair rounds 1-255, e.g. arq_retries=3",
    ),
    (
        "arq_backoff",
        "PP-ARQ retry backoff multiplier >= 1, e.g. arq_backoff=1.5",
    ),
];

impl ScenarioBuilder {
    /// A builder with nothing overridden.
    pub fn new() -> Self {
        ScenarioBuilder::default()
    }

    /// Sets the simulated duration, seconds.
    pub fn duration_s(mut self, v: f64) -> Self {
        self.duration_s = Some(v);
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, v: u64) -> Self {
        self.seed = Some(v);
        self
    }

    /// Sets the SoftPHY threshold η.
    pub fn eta(mut self, v: u8) -> Self {
        self.eta = Some(v);
        self
    }

    /// Sets the fragmented-CRC fragment payload size, bytes.
    pub fn frag_bytes(mut self, v: usize) -> Self {
        self.frag_bytes = Some(v);
        self
    }

    /// Sets the on-air body size, bytes.
    pub fn body_bytes(mut self, v: usize) -> Self {
        self.body_bytes = Some(v);
        self
    }

    /// Sets the PP-ARQ packet count.
    pub fn arq_packets(mut self, v: usize) -> Self {
        self.arq_packets = Some(v);
        self
    }

    /// Sets the relay packet count.
    pub fn relay_packets(mut self, v: usize) -> Self {
        self.relay_packets = Some(v);
        self
    }

    /// Sets the reception-loop worker count.
    pub fn threads(mut self, v: usize) -> Self {
        self.threads = Some(v);
        self
    }

    /// Sets the channel backend.
    pub fn backend(mut self, v: Backend) -> Self {
        self.backend = Some(v);
        self
    }

    /// Pins the offered load for every experiment in the run.
    pub fn load_kbps(mut self, v: f64) -> Self {
        self.load_kbps = Some(v);
        self
    }

    /// Pins the carrier-sense arm for every experiment in the run.
    pub fn carrier_sense(mut self, v: bool) -> Self {
        self.carrier_sense = Some(v);
        self
    }

    /// Sets the sender layout.
    pub fn topology(mut self, v: Topology) -> Self {
        self.topology = Some(v);
        self
    }

    /// Sets the reception driver.
    pub fn driver(mut self, v: Driver) -> Self {
        self.driver = Some(v);
        self
    }

    /// Sets the mesh flood node count.
    pub fn mesh_nodes(mut self, v: usize) -> Self {
        self.mesh_nodes = Some(v);
        self
    }

    /// Sets the mesh / random-geometric density (expected neighbors).
    pub fn mesh_density(mut self, v: f64) -> Self {
        self.mesh_density = Some(v);
        self
    }

    /// Routes every reception loop through a snapshot/restore cycle at
    /// the given event-dispatch boundary.
    pub fn checkpoint(mut self, events: u64) -> Self {
        self.checkpoint = Some(events);
        self
    }

    /// Sets the jammer actor for adversarial runs.
    pub fn jammer(mut self, v: JammerSpec) -> Self {
        self.jammer = Some(v);
        self
    }

    /// Sets the node crash/restart churn rate (crashes per simulated
    /// second).
    pub fn churn(mut self, v: f64) -> Self {
        self.churn = Some(v);
        self
    }

    /// Sets the PP-ARQ retry budget.
    pub fn arq_retries(mut self, v: u8) -> Self {
        self.arq_retries = Some(v);
        self
    }

    /// Sets the PP-ARQ retry backoff multiplier.
    pub fn arq_backoff(mut self, v: f64) -> Self {
        self.arq_backoff = Some(v);
        self
    }

    /// Applies one `key=value` override by name — the CLI `--set`
    /// entry point. Returns a descriptive error for unknown keys or
    /// malformed values.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn parse<T: std::str::FromStr>(key: &str, value: &str, want: &str) -> Result<T, String> {
            value
                .trim()
                .parse::<T>()
                .map_err(|_| format!("invalid value {value:?} for {key} (want {want})"))
        }
        match key {
            "duration" | "duration_s" => {
                let v: f64 = parse(key, value, "positive seconds")?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!(
                        "invalid value {value:?} for {key} (want positive seconds)"
                    ));
                }
                self.duration_s = Some(v);
            }
            "seed" => self.seed = Some(parse(key, value, "a u64")?),
            "eta" => {
                let v: u8 = parse(key, value, "0-33")?;
                if v > 33 {
                    return Err(format!("invalid value {value:?} for eta (want 0-33)"));
                }
                self.eta = Some(v);
            }
            "frag" | "frag_bytes" => {
                self.frag_bytes = Some(parse_positive(key, value)?);
            }
            "body" | "body_bytes" => {
                self.body_bytes = Some(parse_positive(key, value)?);
            }
            "arq_packets" => self.arq_packets = Some(parse_positive(key, value)?),
            "relay_packets" => self.relay_packets = Some(parse_positive(key, value)?),
            "threads" => self.threads = Some(parse_positive(key, value)?),
            "backend" => {
                self.backend = Some(match value.trim() {
                    "chip" => Backend::Chip,
                    // Accepting `dsp` here would silently run the chip
                    // backend while the JSON labels the result dsp —
                    // reject until a sample-level network backend
                    // consumes the knob.
                    "dsp" => {
                        return Err(
                            "backend \"dsp\" is reserved: the sample-level network backend \
                             is not implemented yet; only \"chip\" is accepted"
                                .to_string(),
                        )
                    }
                    _ => return Err(format!("invalid value {value:?} for backend (want chip)")),
                });
            }
            "load" | "load_kbps" => {
                let v: f64 = parse(key, value, "kbit/s per node")?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!(
                        "invalid value {value:?} for {key} (want positive kbit/s)"
                    ));
                }
                self.load_kbps = Some(v);
            }
            "carrier_sense" | "cs" => {
                self.carrier_sense = Some(match value.trim() {
                    "true" | "on" | "1" => true,
                    "false" | "off" | "0" => false,
                    _ => {
                        return Err(format!(
                            "invalid value {value:?} for {key} (want true | false)"
                        ))
                    }
                });
            }
            "topology" => {
                self.topology = Some(Topology::parse(value).map_err(|e| format!("topology: {e}"))?)
            }
            "driver" => {
                self.driver = Some(match value.trim() {
                    "event" => Driver::Event,
                    "timestep" => Driver::Timestep,
                    _ => {
                        return Err(format!(
                            "invalid value {value:?} for driver (want event | timestep)"
                        ))
                    }
                });
            }
            "mesh_nodes" => {
                let v = parse_positive(key, value)?;
                if v < 2 {
                    return Err(format!(
                        "invalid value {value:?} for mesh_nodes (want >= 2)"
                    ));
                }
                self.mesh_nodes = Some(v);
            }
            "mesh_density" => {
                let v: f64 = parse(key, value, "expected neighbors > 0")?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!(
                        "invalid value {value:?} for mesh_density (want > 0)"
                    ));
                }
                self.mesh_density = Some(v);
            }
            "checkpoint" => {
                let v: u64 = parse(key, value, "an event count >= 1")?;
                if v == 0 {
                    return Err(format!(
                        "invalid value {value:?} for checkpoint (want an event count >= 1)"
                    ));
                }
                self.checkpoint = Some(v);
            }
            "jammer" => {
                self.jammer = Some(JammerSpec::parse(value).map_err(|e| format!("jammer: {e}"))?)
            }
            "churn" => {
                let v: f64 = parse(key, value, "crashes per second >= 0")?;
                if !(v.is_finite() && v >= 0.0) {
                    return Err(format!(
                        "invalid value {value:?} for churn (want crashes per second >= 0)"
                    ));
                }
                self.churn = Some(v);
            }
            "arq_retries" => {
                let v: u8 = parse(key, value, "repair rounds 1-255")?;
                if v == 0 {
                    return Err(format!(
                        "invalid value {value:?} for arq_retries (want repair rounds 1-255)"
                    ));
                }
                self.arq_retries = Some(v);
            }
            "arq_backoff" => {
                let v: f64 = parse(key, value, "a multiplier >= 1")?;
                if !(v.is_finite() && v >= 1.0) {
                    return Err(format!(
                        "invalid value {value:?} for arq_backoff (want a multiplier >= 1)"
                    ));
                }
                self.arq_backoff = Some(v);
            }
            _ => {
                let keys: Vec<&str> = SCENARIO_KEYS.iter().map(|&(k, _)| k).collect();
                return Err(format!(
                    "unknown scenario key {key:?}; valid keys: {}",
                    keys.join(", ")
                ));
            }
        }
        Ok(())
    }

    /// Resolves the scenario: builder overrides win, then the
    /// environment (`PPR_DURATION`, `PPR_THREADS`), then the paper's
    /// defaults. This is the single place environment variables enter
    /// the experiment layer.
    pub fn build(&self) -> Scenario {
        Scenario {
            duration_s: self.duration_s.unwrap_or_else(env::duration_from_env),
            seed: self.seed.unwrap_or(DEFAULT_SEED),
            eta: self.eta.unwrap_or(DEFAULT_ETA),
            frag_bytes: self.frag_bytes.unwrap_or(DEFAULT_FRAG_BYTES),
            body_bytes: self.body_bytes.unwrap_or(1500),
            arq_packets: self.arq_packets.unwrap_or(300),
            relay_packets: self.relay_packets.unwrap_or(400),
            threads: self.threads.or_else(env::threads_override_from_env),
            backend: self.backend.unwrap_or_default(),
            load_kbps: self.load_kbps,
            carrier_sense: self.carrier_sense,
            topology: self.topology.unwrap_or_default(),
            driver: self.driver.unwrap_or_default(),
            mesh_nodes: self.mesh_nodes.unwrap_or(DEFAULT_MESH_NODES),
            mesh_density: self.mesh_density.unwrap_or(DEFAULT_MESH_DENSITY),
            checkpoint: self.checkpoint,
            jammer: self.jammer.unwrap_or_default(),
            churn: self.churn.unwrap_or(0.0),
            arq_retries: self.arq_retries.unwrap_or(DEFAULT_ARQ_RETRIES),
            arq_backoff: self.arq_backoff.unwrap_or(DEFAULT_ARQ_BACKOFF),
        }
    }
}

fn parse_positive(key: &str, value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(v) if v >= 1 => Ok(v),
        _ => Err(format!(
            "invalid value {value:?} for {key} (want an integer >= 1)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_beat_defaults() {
        let sc = ScenarioBuilder::new()
            .duration_s(2.0)
            .seed(7)
            .eta(4)
            .frag_bytes(25)
            .load_kbps(6.9)
            .carrier_sense(true)
            .build();
        assert_eq!(sc.duration_s, 2.0);
        assert_eq!(sc.seed, 7);
        assert_eq!(sc.eta, 4);
        assert_eq!(sc.frag_bytes, 25);
        assert_eq!(sc.load_or(3.5), 6.9);
        assert!(sc.carrier_sense_or(false));
        assert_eq!(sc.loads(&[3.5, 13.8]), vec![6.9]);
    }

    #[test]
    fn unset_overrides_fall_back_to_canonical() {
        let sc = ScenarioBuilder::new().duration_s(1.0).build();
        assert_eq!(sc.seed, DEFAULT_SEED);
        assert_eq!(sc.eta, DEFAULT_ETA);
        assert_eq!(sc.frag_bytes, DEFAULT_FRAG_BYTES);
        assert_eq!(sc.load_or(13.8), 13.8);
        assert!(!sc.carrier_sense_or(false));
        assert_eq!(sc.loads(&LOADS), LOADS.to_vec());
        let cfg = sc.sim_config(3.5, true);
        assert_eq!(cfg.load_kbps, 3.5);
        assert!(cfg.carrier_sense);
        assert_eq!(cfg.duration_s, 1.0);
        assert_eq!(cfg.seed, DEFAULT_SEED);
    }

    #[test]
    fn set_accepts_every_documented_key() {
        let mut b = ScenarioBuilder::new();
        for (key, example) in SCENARIO_KEYS {
            let value = example.rsplit_once('=').map(|(_, v)| v).unwrap_or("chip");
            let value = if *key == "backend" {
                "chip"
            } else if *key == "carrier_sense" {
                "true"
            } else {
                value
            };
            b.set(key, value)
                .unwrap_or_else(|e| panic!("set({key}, {value}): {e}"));
        }
        let sc = b.build();
        assert_eq!(sc.duration_s, 20.0);
        assert_eq!(sc.backend, Backend::Chip);
        assert_eq!(sc.threads, Some(4));
    }

    #[test]
    fn set_rejects_malformed_values_and_unknown_keys() {
        let mut b = ScenarioBuilder::new();
        for (key, value) in [
            ("duration", "-2"),
            ("duration", "abc"),
            ("seed", "0x50"),
            ("eta", "99"),
            ("frag_bytes", "0"),
            ("threads", "none"),
            ("backend", "fpga"),
            ("backend", "dsp"),
            ("load", "0"),
            ("carrier_sense", "maybe"),
            ("topology", "donut"),
            ("topology", "grid:0x3"),
            ("topology", "rg:7"),
            ("driver", "warp"),
            ("mesh_nodes", "1"),
            ("mesh_density", "0"),
            ("checkpoint", "0"),
            ("checkpoint", "soon"),
            ("jammer", "nuke"),
            ("jammer", "pulse:16:0.5"),
            ("jammer", "rand:1.5"),
            ("churn", "-1"),
            ("arq_retries", "0"),
            ("arq_backoff", "0.5"),
            ("nonsense", "1"),
        ] {
            let err = b.set(key, value).unwrap_err();
            assert!(
                err.contains(key) || err.contains("unknown"),
                "{key}={value}: {err}"
            );
        }
        assert!(b.set("bogus", "1").unwrap_err().contains("valid keys"));
    }

    #[test]
    fn scenario_json_snapshot_is_stable() {
        let sc = ScenarioBuilder::new().duration_s(2.0).seed(1).build();
        let j = sc.to_json().render();
        assert!(j.starts_with(r#"{"duration_s":2,"seed":1,"eta":6"#), "{j}");
        assert!(j.contains(r#""backend":"chip""#));
        assert!(j.contains(r#""load_kbps":null"#));
    }

    #[test]
    fn topology_parses_and_round_trips() {
        assert_eq!(Topology::parse("fig7").unwrap(), Topology::Fig7);
        assert_eq!(
            Topology::parse("grid").unwrap(),
            Topology::Grid { cols: 6, rows: 4 }
        );
        let g = Topology::parse("grid:8x3").unwrap();
        assert_eq!(g, Topology::Grid { cols: 8, rows: 3 });
        assert_eq!(Topology::parse(&g.name()).unwrap(), g);
        let rg = Topology::parse("rg:7:12.5").unwrap();
        assert_eq!(
            rg,
            Topology::RandomGeometric {
                seed: 7,
                density: 12.5
            }
        );
        assert_eq!(Topology::parse(&rg.name()).unwrap(), rg);
        assert_eq!(rg.testbed(35.0).senders.len(), crate::geometry::NUM_SENDERS);
        assert_eq!(g.testbed(35.0).senders.len(), 24);
        for bad in ["grid:0x3", "grid:ax3", "rg:7", "rg:x:2", "rg:1:-3", "donut"] {
            assert!(Topology::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn new_axes_stay_out_of_default_json() {
        // Fingerprint safety: a default scenario must render exactly as
        // it did before the topology/driver/mesh axes existed.
        let sc = ScenarioBuilder::new().duration_s(2.0).build();
        let j = sc.to_json().render();
        assert!(
            !j.contains("topology")
                && !j.contains("driver")
                && !j.contains("mesh")
                && !j.contains("checkpoint")
                && !j.contains("jammer")
                && !j.contains("churn")
                && !j.contains("arq_retries")
                && !j.contains("arq_backoff"),
            "{j}"
        );
        let mut b = ScenarioBuilder::new();
        b.set("topology", "grid:6x4").unwrap();
        b.set("driver", "timestep").unwrap();
        b.set("mesh_nodes", "400").unwrap();
        b.set("mesh_density", "9").unwrap();
        b.set("checkpoint", "1000").unwrap();
        b.set("jammer", "react:4096").unwrap();
        b.set("churn", "2").unwrap();
        b.set("arq_retries", "5").unwrap();
        b.set("arq_backoff", "1.5").unwrap();
        let j = b.build().to_json().render();
        assert!(j.contains(r#""topology":"grid:6x4""#), "{j}");
        assert!(j.contains(r#""driver":"timestep""#), "{j}");
        assert!(j.contains(r#""mesh_nodes":400"#), "{j}");
        assert!(j.contains(r#""mesh_density":9"#), "{j}");
        assert!(j.contains(r#""checkpoint":1000"#), "{j}");
        assert!(j.contains(r#""jammer":"react:4096""#), "{j}");
        assert!(j.contains(r#""churn":2"#), "{j}");
        assert!(j.contains(r#""arq_retries":5"#), "{j}");
        assert!(j.contains(r#""arq_backoff":1.5"#), "{j}");
    }

    #[test]
    fn adversary_axes_round_trip_through_set() {
        let mut b = ScenarioBuilder::new();
        b.set("jammer", "pulse:32768:0.2").unwrap();
        let sc = b.build();
        assert_eq!(
            sc.jammer,
            JammerSpec::Pulse {
                period: 32_768,
                duty: 0.2
            }
        );
        assert_eq!(sc.churn, 0.0);
        assert_eq!(sc.arq_retries, DEFAULT_ARQ_RETRIES);
        assert_eq!(sc.arq_backoff, DEFAULT_ARQ_BACKOFF);
        let sc = ScenarioBuilder::new()
            .jammer(JammerSpec::React { delay: 100 })
            .churn(1.5)
            .arq_retries(7)
            .arq_backoff(2.0)
            .build();
        assert_eq!(sc.jammer, JammerSpec::React { delay: 100 });
        assert_eq!(sc.churn, 1.5);
        assert_eq!(sc.arq_retries, 7);
        assert_eq!(sc.arq_backoff, 2.0);
    }
}
