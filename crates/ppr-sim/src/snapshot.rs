//! Versioned, dependency-free serialization of simulator state —
//! checkpoint any run at an epoch (event) boundary, resume it
//! bit-identically, and hand the same frozen state to every
//! backend/driver combination for differential testing (see
//! [`crate::diff`]).
//!
//! ## Byte layout
//!
//! Every snapshot is one self-contained byte string:
//!
//! ```text
//! | magic "PPRSNAP1" | version u32 | kind u8 | payload ... | fingerprint u64 |
//!       8 bytes          LE           1 B                       FNV-1a, LE
//! ```
//!
//! All integers are little-endian and fixed-width; floats travel as
//! their IEEE-754 bit patterns (`f64::to_bits`), never as text — a
//! snapshot is exact or it is nothing. Variable-length sections are
//! length-prefixed (`u64` count, then elements). The trailing
//! fingerprint is [`crate::results::fingerprint`] (FNV-1a 64) over
//! everything before it; [`SnapReader::finish`] rejects a byte string
//! whose trailer does not match, so truncation and bit rot are caught
//! before any field is trusted.
//!
//! ## Versioning and stability
//!
//! [`SNAPSHOT_VERSION`] names the layout. Readers accept exactly the
//! current version: a snapshot is a *checkpoint*, not an archive
//! format, so cross-version migration is out of scope — but the layout
//! is pinned by `tests/snapshot_roundtrip.rs` (a byte-level fingerprint
//! test), so an accidental layout change fails CI rather than silently
//! orphaning saved state. Bump the version whenever the byte layout
//! changes, and update that pinned fingerprint in the same commit.
//!
//! ## What is serialized, and what is reconstructed
//!
//! The format stores the minimum state that cannot be recomputed from
//! the run's inputs, and *identity fields* (seed, config, fingerprints
//! of the timeline and the radio environment) that restore validates
//! against the inputs it is handed:
//!
//! * **RNG stream positions** — every RNG in the simulator is either
//!   consumed atomically inside one pipeline stage or derived
//!   statelessly from `(seed, tx id, receiver)`, so the only live
//!   stream positions at an epoch boundary are those of in-flight
//!   captures; each is stored verbatim as the xoshiro256++ state words
//!   (`StdRng::state`) and resumed with `StdRng::from_state`.
//! * **The event queue** — every scheduled `(EventKey, SimEvent)` pair
//!   with its key preserved verbatim (including `seq` tie-breaks), plus
//!   the queue's push/dispatch counters
//!   ([`crate::event::BinaryHeapQueue::save_state`]).
//! * **In-flight frames** — identified by `(receiver, timeline index,
//!   slot)`; the frame bytes, known payload and interference profile
//!   are *reconstructed* from the timeline and environment on restore,
//!   so a snapshot stays small.
//! * **Per-link PP-ARQ session state** — the mesh driver's per-node
//!   byte-correct masks, recovery/rebroadcast flags and armed timers.
//!   `ChunkScratch` contents are deliberately excluded: the chunking
//!   DP's scratch is reallocated per plan and reconstructed on demand.
//!
//! Structs whose fields persist through this format are wrapped in
//! `// ppr-lint: region(snapshot-state)` markers, and every field in
//! such a region must declare its snapshot handling in a `snapshot:`
//! comment — the ppr-lint `snapshot-field-doc` rule fails the build
//! otherwise, so a new piece of simulator state cannot silently dodge
//! the checkpoint story.

use crate::event::EventKey;
use crate::event::SimEvent;
use crate::network::{RadioEnv, Reception, Transmission};
use crate::results::fingerprint;
use crate::rxpath::Acquisition;
use ppr_mac::schemes::DeliveryScheme;

/// Leading magic of every snapshot byte string.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"PPRSNAP1";

/// Current byte-layout version. Readers accept exactly this version.
///
/// Version history: 1 — initial format; 2 — adversarial state (jammer
/// identity + actor state, node liveness, fault/backoff knobs, and the
/// `JamBurst`/`NodeFault` event tags).
pub const SNAPSHOT_VERSION: u32 = 2;

/// Kind tag of a testbed reception-driver snapshot ([`RxSnapshot`]).
pub const KIND_RX: u8 = 1;

/// Kind tag of a mesh flood-driver snapshot ([`MeshSnapshot`]).
pub const KIND_MESH: u8 = 2;

/// Why a snapshot byte string was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte string ended before a field was complete.
    Truncated,
    /// The leading magic is not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The layout version is not [`SNAPSHOT_VERSION`].
    BadVersion(u32),
    /// The kind tag does not name the expected snapshot type.
    BadKind(u8),
    /// The trailing FNV-1a fingerprint does not match the bytes.
    BadFingerprint {
        /// Fingerprint stored in the trailer.
        stored: u64,
        /// Fingerprint recomputed over the received bytes.
        computed: u64,
    },
    /// A field decoded to a structurally invalid value.
    Corrupt(String),
    /// The snapshot's identity fields do not match the run inputs the
    /// restore was handed (different seed, config, timeline or radio
    /// environment).
    IdentityMismatch(String),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "not a PPR snapshot (bad magic)"),
            SnapError::BadVersion(v) => {
                write!(
                    f,
                    "snapshot version {v} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            SnapError::BadKind(k) => write!(f, "unexpected snapshot kind {k}"),
            SnapError::BadFingerprint { stored, computed } => write!(
                f,
                "snapshot fingerprint mismatch: trailer {stored:#018x}, bytes {computed:#018x}"
            ),
            SnapError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
            SnapError::IdentityMismatch(m) => write!(f, "snapshot/run mismatch: {m}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Little-endian, fixed-width snapshot writer. The `finish` call
/// appends the FNV-1a trailer; everything else appends raw field bytes.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// A writer primed with the magic, version and kind header.
    pub fn new(kind: u8) -> Self {
        let mut w = SnapWriter { buf: Vec::new() };
        w.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        w.u32(SNAPSHOT_VERSION);
        w.u8(kind);
        w
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a usize as a u64.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an f64 as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends the FNV-1a trailer and returns the finished byte string.
    pub fn finish(mut self) -> Vec<u8> {
        let fp = fingerprint(&self.buf);
        self.u64(fp);
        self.buf
    }

    /// The raw accumulated bytes, with no trailer — for callers (like
    /// stream fingerprinting) that use the writer as a canonical field
    /// encoder rather than a snapshot container.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian snapshot reader: the mirror of [`SnapWriter`], with
/// the fingerprint and header validated up front by [`SnapReader::new`].
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Validates the trailer fingerprint, magic, version and kind, then
    /// positions the reader at the first payload field.
    pub fn new(bytes: &'a [u8], kind: u8) -> Result<SnapReader<'a>, SnapError> {
        let header = SNAPSHOT_MAGIC.len() + 4 + 1;
        if bytes.len() < header + 8 {
            return Err(SnapError::Truncated);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        let computed = fingerprint(body);
        if stored != computed {
            return Err(SnapError::BadFingerprint { stored, computed });
        }
        let mut r = SnapReader { buf: body, pos: 0 };
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = r.u8()?;
        }
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapError::BadVersion(version));
        }
        let k = r.u8()?;
        if k != kind {
            return Err(SnapError::BadKind(k));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (rejecting anything but 0/1).
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a u64-encoded usize.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt(format!("usize {v} overflows")))
    }

    /// Reads an IEEE-754 bit pattern back to f64.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.usize()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Asserts every payload byte was consumed (the fingerprint already
    /// matched, so trailing garbage means an encoder/decoder mismatch).
    pub fn finish(self) -> Result<(), SnapError> {
        if self.pos != self.buf.len() {
            return Err(SnapError::Corrupt(format!(
                "{} unread payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// FNV-1a over the timeline's defining fields — the identity stamp a
/// reception snapshot carries so restore can refuse a different
/// timeline.
pub fn timeline_fingerprint(timeline: &[Transmission]) -> u64 {
    let mut w = SnapWriter::default();
    w.usize(timeline.len());
    for tx in timeline {
        w.u64(tx.id);
        w.usize(tx.sender);
        w.u16(tx.seq);
        w.u64(tx.start_chip);
        w.u64(tx.len_chips);
    }
    fingerprint(&w.buf)
}

/// FNV-1a over the radio environment's frozen link gains (both
/// matrices, exact f64 bits) and node counts — the identity stamp for
/// the propagation side of a reception snapshot.
pub fn env_fingerprint(env: &RadioEnv) -> u64 {
    let mut w = SnapWriter::default();
    w.usize(env.testbed.senders.len());
    w.usize(env.testbed.receivers.len());
    for row in &env.s2r_mw {
        for &p in row {
            w.f64(p);
        }
    }
    for row in &env.s2s_mw {
        for &p in row {
            w.f64(p);
        }
    }
    fingerprint(&w.buf)
}

/// Encodes a delivery scheme (stable wire tags, part of the format).
pub fn encode_scheme(w: &mut SnapWriter, scheme: &DeliveryScheme) {
    match *scheme {
        DeliveryScheme::PacketCrc => w.u8(0),
        DeliveryScheme::FragmentedCrc { frag_payload } => {
            w.u8(1);
            w.usize(frag_payload);
        }
        DeliveryScheme::Ppr { eta } => {
            w.u8(2);
            w.u8(eta);
        }
    }
}

/// Decodes a delivery scheme.
pub fn decode_scheme(r: &mut SnapReader) -> Result<DeliveryScheme, SnapError> {
    match r.u8()? {
        0 => Ok(DeliveryScheme::PacketCrc),
        1 => Ok(DeliveryScheme::FragmentedCrc {
            frag_payload: r.usize()?,
        }),
        2 => Ok(DeliveryScheme::Ppr { eta: r.u8()? }),
        t => Err(SnapError::Corrupt(format!("scheme tag {t}"))),
    }
}

/// Encodes one event-queue entry (key verbatim + event tag).
pub fn encode_event(w: &mut SnapWriter, key: EventKey, ev: &SimEvent) {
    w.u64(key.time);
    w.u64(key.priority);
    w.u64(key.seq);
    match *ev {
        SimEvent::TrafficArrival { sender } => {
            w.u8(0);
            w.usize(sender);
        }
        SimEvent::TxAttempt { sender } => {
            w.u8(1);
            w.usize(sender);
        }
        SimEvent::TxStart { tx } => {
            w.u8(2);
            w.usize(tx);
        }
        SimEvent::TxEnd { tx } => {
            w.u8(3);
            w.usize(tx);
        }
        SimEvent::ReceptionComplete { tx, receiver, slot } => {
            w.u8(4);
            w.usize(tx);
            w.usize(receiver);
            w.usize(slot);
        }
        SimEvent::ArqTimer { node, round } => {
            w.u8(5);
            w.usize(node);
            w.u8(round);
        }
        SimEvent::JamBurst { jammer } => {
            w.u8(6);
            w.usize(jammer);
        }
        SimEvent::NodeFault { node, up } => {
            w.u8(7);
            w.usize(node);
            w.bool(up);
        }
    }
}

/// Decodes one event-queue entry.
pub fn decode_event(r: &mut SnapReader) -> Result<(EventKey, SimEvent), SnapError> {
    let key = EventKey {
        time: r.u64()?,
        priority: r.u64()?,
        seq: r.u64()?,
    };
    let ev = match r.u8()? {
        0 => SimEvent::TrafficArrival { sender: r.usize()? },
        1 => SimEvent::TxAttempt { sender: r.usize()? },
        2 => SimEvent::TxStart { tx: r.usize()? },
        3 => SimEvent::TxEnd { tx: r.usize()? },
        4 => SimEvent::ReceptionComplete {
            tx: r.usize()?,
            receiver: r.usize()?,
            slot: r.usize()?,
        },
        5 => SimEvent::ArqTimer {
            node: r.usize()?,
            round: r.u8()?,
        },
        6 => SimEvent::JamBurst { jammer: r.usize()? },
        7 => SimEvent::NodeFault {
            node: r.usize()?,
            up: r.bool()?,
        },
        t => return Err(SnapError::Corrupt(format!("event tag {t}"))),
    };
    Ok((key, ev))
}

/// Encodes one decoded [`Reception`].
pub fn encode_reception(w: &mut SnapWriter, rec: &Reception) {
    w.u64(rec.tx_id);
    w.usize(rec.sender);
    w.usize(rec.receiver);
    w.u8(rec.acquisition.to_tag());
    w.usize(rec.payload_len);
    w.usize(rec.delivered_correct);
    w.usize(rec.delivered_claimed);
    w.bool(rec.crc_ok);
    w.bytes(&rec.symbol_hints);
    w.usize(rec.symbol_correct.len());
    for &b in &rec.symbol_correct {
        w.bool(b);
    }
}

/// Decodes one [`Reception`].
pub fn decode_reception(r: &mut SnapReader) -> Result<Reception, SnapError> {
    let tx_id = r.u64()?;
    let sender = r.usize()?;
    let receiver = r.usize()?;
    let tag = r.u8()?;
    let acquisition = Acquisition::from_tag(tag)
        .ok_or_else(|| SnapError::Corrupt(format!("acquisition tag {tag}")))?;
    let payload_len = r.usize()?;
    let delivered_correct = r.usize()?;
    let delivered_claimed = r.usize()?;
    let crc_ok = r.bool()?;
    let symbol_hints = r.bytes()?;
    let n = r.usize()?;
    let mut symbol_correct = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        symbol_correct.push(r.bool()?);
    }
    Ok(Reception {
        tx_id,
        sender,
        receiver,
        acquisition,
        payload_len,
        delivered_correct,
        delivered_claimed,
        crc_ok,
        symbol_hints,
        symbol_correct,
    })
}

/// One in-flight capture of the testbed reception driver: the frame has
/// started on the air (its busy/idle resolution is already folded into
/// the snapshot's `busy_until`) but its completion event has not popped.
/// The capture itself — frame bytes, known payload, corrupted chips —
/// is *reconstructed* on restore from the timeline, environment and the
/// stored RNG stream position.
#[derive(Debug, Clone, PartialEq, Eq)]
// ppr-lint: region(snapshot-state) begin in-flight capture identity
pub struct InFlightRx {
    /// snapshot: serialized — receiver node index.
    pub receiver: usize,
    /// snapshot: serialized — index into the run's timeline.
    pub tx_index: usize,
    /// snapshot: serialized — receiver-major output slot.
    pub slot: usize,
    /// snapshot: serialized — the xoshiro256++ stream position this
    /// capture's chip corruption draws from (`StdRng::state`).
    pub rng: [u64; 4],
    /// snapshot: serialized — the busy/idle verdict resolved in event
    /// order before the checkpoint (orchestration state, not physics).
    pub idle: bool,
}
// ppr-lint: region(snapshot-state) end

/// A checkpoint of the testbed reception driver
/// ([`crate::network::ReceptionDriver`]) at an event boundary.
///
/// Identity fields pin the run inputs; progress fields carry exactly
/// the state the driver cannot recompute. Fields are public so the
/// bisect harness can perturb a restored stream deliberately
/// (`tests/differential.rs`); [`RxSnapshot::to_bytes`] re-fingerprints
/// whatever the caller built.
#[derive(Debug, Clone, PartialEq)]
// ppr-lint: region(snapshot-state) begin testbed reception driver checkpoint
pub struct RxSnapshot {
    /// snapshot: identity — master seed of the run.
    pub seed: u64,
    /// snapshot: identity — offered load, exact f64 bits.
    pub load_kbps: f64,
    /// snapshot: identity — on-air body size, bytes.
    pub body_bytes: usize,
    /// snapshot: identity — carrier-sense arm of the timeline.
    pub carrier_sense: bool,
    /// snapshot: identity — simulated duration, exact f64 bits.
    pub duration_s: f64,
    /// snapshot: identity — delivery scheme under evaluation.
    pub scheme: DeliveryScheme,
    /// snapshot: identity — postamble decoding arm.
    pub postamble: bool,
    /// snapshot: identity — symbol-trace collection arm.
    pub collect_symbols: bool,
    /// snapshot: identity — [`timeline_fingerprint`] of the run's
    /// timeline (restore refuses a different one).
    pub timeline_fp: u64,
    /// snapshot: identity — [`env_fingerprint`] of the frozen gains.
    pub env_fp: u64,
    /// snapshot: provenance — active kernel selection
    /// (`ppr_phy::simd::active_kernel_signature`) of the saving
    /// process; recorded, never validated (kernels are bit-identical).
    pub kernel_signature: Vec<u8>,
    /// snapshot: serialized — scheduled events, keys verbatim.
    pub queue: Vec<(EventKey, SimEvent)>,
    /// snapshot: serialized — the queue's push counter.
    pub next_seq: u64,
    /// snapshot: serialized — events dispatched so far.
    pub dispatched: u64,
    /// snapshot: serialized — per-receiver busy horizon of the
    /// sequential busy/idle fold.
    pub busy_until: Vec<u64>,
    /// snapshot: serialized — per-receiver next output slot.
    pub next_slot: Vec<usize>,
    /// snapshot: serialized — decoded receptions, receiver-major slots
    /// (undecoded slots are `None`).
    pub out: Vec<Option<Reception>>,
    /// snapshot: serialized — captures awaiting their completion event.
    pub in_flight: Vec<InFlightRx>,
}
// ppr-lint: region(snapshot-state) end

impl RxSnapshot {
    /// Serializes to the versioned byte format (kind [`KIND_RX`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new(KIND_RX);
        w.u64(self.seed);
        w.f64(self.load_kbps);
        w.usize(self.body_bytes);
        w.bool(self.carrier_sense);
        w.f64(self.duration_s);
        encode_scheme(&mut w, &self.scheme);
        w.bool(self.postamble);
        w.bool(self.collect_symbols);
        w.u64(self.timeline_fp);
        w.u64(self.env_fp);
        w.bytes(&self.kernel_signature);
        w.usize(self.queue.len());
        for (key, ev) in &self.queue {
            encode_event(&mut w, *key, ev);
        }
        w.u64(self.next_seq);
        w.u64(self.dispatched);
        w.usize(self.busy_until.len());
        for &b in &self.busy_until {
            w.u64(b);
        }
        w.usize(self.next_slot.len());
        for &s in &self.next_slot {
            w.usize(s);
        }
        w.usize(self.out.len());
        for slot in &self.out {
            match slot {
                None => w.bool(false),
                Some(rec) => {
                    w.bool(true);
                    encode_reception(&mut w, rec);
                }
            }
        }
        w.usize(self.in_flight.len());
        for f in &self.in_flight {
            w.usize(f.receiver);
            w.usize(f.tx_index);
            w.usize(f.slot);
            for &s in &f.rng {
                w.u64(s);
            }
            w.bool(f.idle);
        }
        w.finish()
    }

    /// Deserializes from the versioned byte format, validating the
    /// fingerprint trailer, header and structural bounds. Identity
    /// validation against actual run inputs happens in
    /// [`crate::network::ReceptionDriver::restore`].
    pub fn from_bytes(bytes: &[u8]) -> Result<RxSnapshot, SnapError> {
        let mut r = SnapReader::new(bytes, KIND_RX)?;
        let seed = r.u64()?;
        let load_kbps = r.f64()?;
        let body_bytes = r.usize()?;
        let carrier_sense = r.bool()?;
        let duration_s = r.f64()?;
        let scheme = decode_scheme(&mut r)?;
        let postamble = r.bool()?;
        let collect_symbols = r.bool()?;
        let timeline_fp = r.u64()?;
        let env_fp = r.u64()?;
        let kernel_signature = r.bytes()?;
        let nq = r.usize()?;
        let mut queue = Vec::with_capacity(nq.min(1 << 24));
        for _ in 0..nq {
            queue.push(decode_event(&mut r)?);
        }
        let next_seq = r.u64()?;
        let dispatched = r.u64()?;
        let nb = r.usize()?;
        let mut busy_until = Vec::with_capacity(nb.min(1 << 24));
        for _ in 0..nb {
            busy_until.push(r.u64()?);
        }
        let ns = r.usize()?;
        let mut next_slot = Vec::with_capacity(ns.min(1 << 24));
        for _ in 0..ns {
            next_slot.push(r.usize()?);
        }
        let no = r.usize()?;
        let mut out = Vec::with_capacity(no.min(1 << 24));
        for _ in 0..no {
            out.push(if r.bool()? {
                Some(decode_reception(&mut r)?)
            } else {
                None
            });
        }
        let nf = r.usize()?;
        let mut in_flight = Vec::with_capacity(nf.min(1 << 24));
        for _ in 0..nf {
            let receiver = r.usize()?;
            let tx_index = r.usize()?;
            let slot = r.usize()?;
            let mut rng = [0u64; 4];
            for s in &mut rng {
                *s = r.u64()?;
            }
            let idle = r.bool()?;
            in_flight.push(InFlightRx {
                receiver,
                tx_index,
                slot,
                rng,
                idle,
            });
        }
        r.finish()?;
        Ok(RxSnapshot {
            seed,
            load_kbps,
            body_bytes,
            carrier_sense,
            duration_s,
            scheme,
            postamble,
            collect_symbols,
            timeline_fp,
            env_fp,
            kernel_signature,
            queue,
            next_seq,
            dispatched,
            busy_until,
            next_slot,
            out,
            in_flight,
        })
    }
}

/// One node's protocol state in a mesh snapshot — the per-link PP-ARQ
/// session state of the flood (byte-correct mask + timer/recovery
/// flags). The chunking DP's `ChunkScratch` is deliberately absent:
/// it is reconstructed whenever a repair is planned.
#[derive(Debug, Clone, PartialEq, Eq)]
// ppr-lint: region(snapshot-state) begin mesh per-node ARQ session state
pub struct MeshNodeSnapshot {
    /// snapshot: serialized — byte-correct bitmask over the payload.
    pub mask: Vec<u64>,
    /// snapshot: serialized — correct-byte count (cached popcount).
    pub correct: usize,
    /// snapshot: serialized — full payload recovered.
    pub recovered: bool,
    /// snapshot: serialized — rebroadcast already scheduled.
    pub rebroadcasted: bool,
    /// snapshot: serialized — a PP-ARQ timer is armed.
    pub timer_armed: bool,
    /// snapshot: serialized — node is up (fault injection can crash and
    /// restart nodes mid-run).
    pub alive: bool,
}
// ppr-lint: region(snapshot-state) end

/// One transmission of a mesh snapshot. Frame bytes are reconstructed
/// on restore: a flood frame carries the ground-truth payload, a repair
/// frame carries exactly the bytes its spans name.
#[derive(Debug, Clone, PartialEq, Eq)]
// ppr-lint: region(snapshot-state) begin mesh transmission store
pub struct MeshTxSnapshot {
    /// snapshot: serialized — transmitting node.
    pub sender: usize,
    /// snapshot: serialized — link-layer destination (broadcast or the
    /// repair requester).
    pub dst: u16,
    /// snapshot: serialized — start chip.
    pub start: u64,
    /// snapshot: serialized — repair spans in payload coordinates
    /// (`None` for flood frames); the frame body is reconstructed from
    /// them. Spans are `(start, end)` byte ranges.
    pub spans: Option<Vec<(usize, usize)>>,
}
// ppr-lint: region(snapshot-state) end

/// A checkpoint of the mesh flood driver
/// ([`crate::experiments::mesh::MeshDriver`]) at an event boundary.
/// The pending decode batch is serialized as-is — a checkpoint never
/// forces an early flush, so batch statistics (and therefore the
/// rendered report) are bit-identical to an uninterrupted run.
#[derive(Debug, Clone, PartialEq)]
// ppr-lint: region(snapshot-state) begin mesh flood driver checkpoint
pub struct MeshSnapshot {
    /// snapshot: identity — node count.
    pub nodes: usize,
    /// snapshot: identity — expected neighbor density, exact f64 bits.
    pub density: f64,
    /// snapshot: identity — master seed (placement + corruption).
    pub seed: u64,
    /// snapshot: identity — PPR delivery threshold η.
    pub eta: u8,
    /// snapshot: identity — flooded frame body bytes.
    pub body_bytes: usize,
    /// snapshot: provenance — active kernel selection of the saving
    /// process (recorded, never validated).
    pub kernel_signature: Vec<u8>,
    /// snapshot: serialized — per-node ARQ session state.
    pub states: Vec<MeshNodeSnapshot>,
    /// snapshot: serialized — the transmission store (frames
    /// reconstructed from spans + ground truth).
    pub txs: Vec<MeshTxSnapshot>,
    /// snapshot: serialized — tx ids whose TxStart already dispatched,
    /// in dispatch order (rebuilds the per-sender half-duplex lists).
    pub started: Vec<usize>,
    /// snapshot: serialized — scheduled events, keys verbatim.
    pub queue: Vec<(EventKey, SimEvent)>,
    /// snapshot: serialized — the queue's push counter.
    pub next_seq: u64,
    /// snapshot: serialized — events dispatched so far.
    pub dispatched: u64,
    /// snapshot: serialized — completed-but-undecoded receptions, in
    /// pop order, as (tx index, receiver).
    pub pending: Vec<(usize, usize)>,
    /// snapshot: serialized — flush deadline of the pending batch.
    pub pending_deadline: u64,
    /// snapshot: serialized — chip time of the last dispatched event.
    pub last_time: u64,
    /// snapshot: serialized — every deterministic counter, flat in
    /// [`crate::experiments::mesh::MeshStats`] field order.
    pub stats: Vec<u64>,
    /// snapshot: identity — the jammer's wire identity
    /// ([`crate::adversary::JammerSpec::identity_words`]: kind tag plus
    /// two parameter words); restore refuses a different jammer.
    pub jammer: (u8, u64, u64),
    /// snapshot: identity — crash/restart churn rate, exact f64 bits.
    pub churn: f64,
    /// snapshot: identity — PP-ARQ retry budget.
    pub arq_retries: u8,
    /// snapshot: identity — PP-ARQ backoff multiplier in exact integer
    /// milli-units (the [`ppr_mac::BackoffPolicy`] representation).
    pub arq_backoff_milli: u64,
    /// snapshot: serialized — the jammer's xoshiro256++ stream position
    /// (`StdRng::state`).
    pub adv_rng: [u64; 4],
    /// snapshot: serialized — the reactive jammer's busy horizon (it
    /// cannot re-trigger while a burst is on the air).
    pub adv_busy_until: u64,
    /// snapshot: serialized — sweep-position counter (which diagonal
    /// step the next burst is emitted from).
    pub adv_sweep_idx: u64,
    /// snapshot: serialized — reactive bursts committed (sensed and
    /// scheduled) but not yet recorded, as `(start, end)` chip pairs.
    pub adv_scheduled: Vec<(u64, u64)>,
    /// snapshot: serialized — every burst emitted so far, as
    /// `(start, end, x bits, y bits)` with the emitter position frozen
    /// at emission time.
    pub adv_bursts: Vec<(u64, u64, u64, u64)>,
}
// ppr-lint: region(snapshot-state) end

impl MeshSnapshot {
    /// Serializes to the versioned byte format (kind [`KIND_MESH`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new(KIND_MESH);
        w.usize(self.nodes);
        w.f64(self.density);
        w.u64(self.seed);
        w.u8(self.eta);
        w.usize(self.body_bytes);
        w.bytes(&self.kernel_signature);
        w.usize(self.states.len());
        for st in &self.states {
            w.usize(st.mask.len());
            for &m in &st.mask {
                w.u64(m);
            }
            w.usize(st.correct);
            w.bool(st.recovered);
            w.bool(st.rebroadcasted);
            w.bool(st.timer_armed);
            w.bool(st.alive);
        }
        w.usize(self.txs.len());
        for t in &self.txs {
            w.usize(t.sender);
            w.u16(t.dst);
            w.u64(t.start);
            match &t.spans {
                None => w.bool(false),
                Some(spans) => {
                    w.bool(true);
                    w.usize(spans.len());
                    for &(s, e) in spans {
                        w.usize(s);
                        w.usize(e);
                    }
                }
            }
        }
        w.usize(self.started.len());
        for &id in &self.started {
            w.usize(id);
        }
        w.usize(self.queue.len());
        for (key, ev) in &self.queue {
            encode_event(&mut w, *key, ev);
        }
        w.u64(self.next_seq);
        w.u64(self.dispatched);
        w.usize(self.pending.len());
        for &(t, r) in &self.pending {
            w.usize(t);
            w.usize(r);
        }
        w.u64(self.pending_deadline);
        w.u64(self.last_time);
        w.usize(self.stats.len());
        for &s in &self.stats {
            w.u64(s);
        }
        let (jtag, jw0, jw1) = self.jammer;
        w.u8(jtag);
        w.u64(jw0);
        w.u64(jw1);
        w.f64(self.churn);
        w.u8(self.arq_retries);
        w.u64(self.arq_backoff_milli);
        for &s in &self.adv_rng {
            w.u64(s);
        }
        w.u64(self.adv_busy_until);
        w.u64(self.adv_sweep_idx);
        w.usize(self.adv_scheduled.len());
        for &(s, e) in &self.adv_scheduled {
            w.u64(s);
            w.u64(e);
        }
        w.usize(self.adv_bursts.len());
        for &(s, e, x, y) in &self.adv_bursts {
            w.u64(s);
            w.u64(e);
            w.u64(x);
            w.u64(y);
        }
        w.finish()
    }

    /// Deserializes from the versioned byte format.
    pub fn from_bytes(bytes: &[u8]) -> Result<MeshSnapshot, SnapError> {
        let mut r = SnapReader::new(bytes, KIND_MESH)?;
        let nodes = r.usize()?;
        let density = r.f64()?;
        let seed = r.u64()?;
        let eta = r.u8()?;
        let body_bytes = r.usize()?;
        let kernel_signature = r.bytes()?;
        let nstates = r.usize()?;
        let mut states = Vec::with_capacity(nstates.min(1 << 24));
        for _ in 0..nstates {
            let nm = r.usize()?;
            let mut mask = Vec::with_capacity(nm.min(1 << 24));
            for _ in 0..nm {
                mask.push(r.u64()?);
            }
            states.push(MeshNodeSnapshot {
                mask,
                correct: r.usize()?,
                recovered: r.bool()?,
                rebroadcasted: r.bool()?,
                timer_armed: r.bool()?,
                alive: r.bool()?,
            });
        }
        let ntx = r.usize()?;
        let mut txs = Vec::with_capacity(ntx.min(1 << 24));
        for _ in 0..ntx {
            let sender = r.usize()?;
            let dst = r.u16()?;
            let start = r.u64()?;
            let spans = if r.bool()? {
                let n = r.usize()?;
                let mut spans = Vec::with_capacity(n.min(1 << 24));
                for _ in 0..n {
                    let s = r.usize()?;
                    let e = r.usize()?;
                    spans.push((s, e));
                }
                Some(spans)
            } else {
                None
            };
            txs.push(MeshTxSnapshot {
                sender,
                dst,
                start,
                spans,
            });
        }
        let nstart = r.usize()?;
        let mut started = Vec::with_capacity(nstart.min(1 << 24));
        for _ in 0..nstart {
            started.push(r.usize()?);
        }
        let nq = r.usize()?;
        let mut queue = Vec::with_capacity(nq.min(1 << 24));
        for _ in 0..nq {
            queue.push(decode_event(&mut r)?);
        }
        let next_seq = r.u64()?;
        let dispatched = r.u64()?;
        let np = r.usize()?;
        let mut pending = Vec::with_capacity(np.min(1 << 24));
        for _ in 0..np {
            let t = r.usize()?;
            let rc = r.usize()?;
            pending.push((t, rc));
        }
        let pending_deadline = r.u64()?;
        let last_time = r.u64()?;
        let nstats = r.usize()?;
        let mut stats = Vec::with_capacity(nstats.min(1 << 16));
        for _ in 0..nstats {
            stats.push(r.u64()?);
        }
        let jammer = (r.u8()?, r.u64()?, r.u64()?);
        let churn = r.f64()?;
        let arq_retries = r.u8()?;
        let arq_backoff_milli = r.u64()?;
        let mut adv_rng = [0u64; 4];
        for s in &mut adv_rng {
            *s = r.u64()?;
        }
        let adv_busy_until = r.u64()?;
        let adv_sweep_idx = r.u64()?;
        let nsched = r.usize()?;
        let mut adv_scheduled = Vec::with_capacity(nsched.min(1 << 24));
        for _ in 0..nsched {
            let s = r.u64()?;
            let e = r.u64()?;
            adv_scheduled.push((s, e));
        }
        let nbursts = r.usize()?;
        let mut adv_bursts = Vec::with_capacity(nbursts.min(1 << 24));
        for _ in 0..nbursts {
            let s = r.u64()?;
            let e = r.u64()?;
            let x = r.u64()?;
            let y = r.u64()?;
            adv_bursts.push((s, e, x, y));
        }
        r.finish()?;
        Ok(MeshSnapshot {
            nodes,
            density,
            seed,
            eta,
            body_bytes,
            kernel_signature,
            states,
            txs,
            started,
            queue,
            next_seq,
            dispatched,
            pending,
            pending_deadline,
            last_time,
            stats,
            jammer,
            churn,
            arq_retries,
            arq_backoff_milli,
            adv_rng,
            adv_busy_until,
            adv_sweep_idx,
            adv_scheduled,
            adv_bursts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip_primitives() {
        let mut w = SnapWriter::new(KIND_RX);
        w.u8(7);
        w.bool(true);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.usize(12345);
        w.f64(13.8);
        w.bytes(b"ppr");
        let bytes = w.finish();

        let mut r = SnapReader::new(&bytes, KIND_RX).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap(), 13.8);
        assert_eq!(r.bytes().unwrap(), b"ppr");
        r.finish().unwrap();
    }

    #[test]
    fn corruption_is_rejected_by_the_fingerprint() {
        let mut w = SnapWriter::new(KIND_RX);
        w.u64(42);
        let mut bytes = w.finish();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        match SnapReader::new(&bytes, KIND_RX) {
            Err(SnapError::BadFingerprint { .. }) => {}
            other => panic!("corrupt bytes accepted: {other:?}"),
        }
    }

    #[test]
    fn header_mismatches_are_named() {
        let w = SnapWriter::new(KIND_RX);
        let bytes = w.finish();
        assert_eq!(
            SnapReader::new(&bytes, KIND_MESH).unwrap_err(),
            SnapError::BadKind(KIND_RX)
        );
        assert_eq!(
            SnapReader::new(&bytes[..10], KIND_RX).unwrap_err(),
            SnapError::Truncated
        );

        // A wrong version must be refused even with a valid trailer.
        let mut vbytes = bytes.clone();
        vbytes[8] = 99; // version LSB
        let body_len = vbytes.len() - 8;
        let fp = fingerprint(&vbytes[..body_len]).to_le_bytes();
        vbytes[body_len..].copy_from_slice(&fp);
        assert_eq!(
            SnapReader::new(&vbytes, KIND_RX).unwrap_err(),
            SnapError::BadVersion(99)
        );
    }

    #[test]
    fn events_round_trip_with_keys_verbatim() {
        let cases = [
            (
                EventKey {
                    time: 1,
                    priority: 2,
                    seq: 3,
                },
                SimEvent::TrafficArrival { sender: 4 },
            ),
            (
                EventKey {
                    time: u64::MAX,
                    priority: 0,
                    seq: 9,
                },
                SimEvent::ReceptionComplete {
                    tx: 7,
                    receiver: 8,
                    slot: 900,
                },
            ),
            (
                EventKey {
                    time: 5,
                    priority: 5,
                    seq: 5,
                },
                SimEvent::ArqTimer { node: 11, round: 2 },
            ),
            (
                EventKey {
                    time: 6,
                    priority: 6,
                    seq: 6,
                },
                SimEvent::JamBurst { jammer: 0 },
            ),
            (
                EventKey {
                    time: 7,
                    priority: 7,
                    seq: 7,
                },
                SimEvent::NodeFault {
                    node: 13,
                    up: false,
                },
            ),
        ];
        let mut w = SnapWriter::new(KIND_RX);
        for (k, e) in &cases {
            encode_event(&mut w, *k, e);
        }
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes, KIND_RX).unwrap();
        for (k, e) in &cases {
            let (dk, de) = decode_event(&mut r).unwrap();
            assert_eq!(dk, *k);
            assert_eq!(de, *e);
        }
        r.finish().unwrap();
    }

    #[test]
    fn schemes_round_trip() {
        for scheme in [
            DeliveryScheme::PacketCrc,
            DeliveryScheme::FragmentedCrc { frag_payload: 50 },
            DeliveryScheme::Ppr { eta: 6 },
        ] {
            let mut w = SnapWriter::new(KIND_RX);
            encode_scheme(&mut w, &scheme);
            let bytes = w.finish();
            let mut r = SnapReader::new(&bytes, KIND_RX).unwrap();
            assert_eq!(decode_scheme(&mut r).unwrap(), scheme);
        }
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let mut w = SnapWriter::new(KIND_RX);
        w.u64(1);
        w.u64(2);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes, KIND_RX).unwrap();
        assert_eq!(r.u64().unwrap(), 1);
        assert!(matches!(r.finish(), Err(SnapError::Corrupt(_))));
    }
}
