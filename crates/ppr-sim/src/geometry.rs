//! The testbed floor plan (paper Fig. 7).
//!
//! 27 nodes over nine rooms of an indoor office floor roughly
//! 100 ft × 50 ft (30.5 m × 15.2 m): 23 CC2420 senders and four GNU Radio
//! receivers R1–R4 deployed among them. The exact coordinates in the
//! paper are not published; this layout reproduces the published
//! structure — a 3 × 3 room grid, senders clustered 2–3 per room,
//! receivers spread so each hears 4–8 senders at usable strength with
//! link qualities from near-perfect to marginal.

/// A planar position in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// x coordinate, meters (long axis of the floor).
    pub x: f64,
    /// y coordinate, meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point, meters.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Floor dimensions, meters (≈ 100 ft × 50 ft).
pub const FLOOR_X_M: f64 = 30.5;
/// Floor depth, meters.
pub const FLOOR_Y_M: f64 = 15.2;

/// Number of sender nodes (Telos motes).
pub const NUM_SENDERS: usize = 23;
/// Number of receiver nodes (GNU Radios R1–R4).
pub const NUM_RECEIVERS: usize = 4;

/// The testbed: sender and receiver positions.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Sender positions, index = sender id.
    pub senders: Vec<Point>,
    /// Receiver positions, index = receiver id (R1..R4).
    pub receivers: Vec<Point>,
}

impl Testbed {
    /// The Fig. 7-style layout: senders spread 2–3 per room over a 3×3
    /// room grid, receivers placed between room clusters.
    pub fn fig7() -> Testbed {
        // Room grid: 3 columns × 3 rows, each room ~10.2 m × 5.1 m.
        // Senders are placed at deterministic offsets inside rooms.
        let mut senders = Vec::with_capacity(NUM_SENDERS);
        let offsets = [(2.0, 1.2), (6.5, 3.8), (8.9, 1.8)];
        let mut count = 0;
        'outer: for row in 0..3 {
            for col in 0..3 {
                let room_x = col as f64 * (FLOOR_X_M / 3.0);
                let room_y = row as f64 * (FLOOR_Y_M / 3.0);
                for &(ox, oy) in &offsets {
                    if count == NUM_SENDERS {
                        break 'outer;
                    }
                    senders.push(Point::new(room_x + ox, room_y + oy * (FLOOR_Y_M / 15.2)));
                    count += 1;
                }
            }
        }
        // Receivers R1–R4 spread along the floor between room clusters.
        let receivers = vec![
            Point::new(5.5, 7.6),
            Point::new(13.0, 4.0),
            Point::new(18.5, 11.0),
            Point::new(26.0, 6.5),
        ];
        Testbed { senders, receivers }
    }

    /// Distance from sender `s` to receiver `r`, meters.
    pub fn sender_receiver_distance(&self, s: usize, r: usize) -> f64 {
        self.senders[s].distance(&self.receivers[r])
    }

    /// Distance between two senders (for carrier sensing), meters.
    pub fn sender_sender_distance(&self, a: usize, b: usize) -> f64 {
        self.senders[a].distance(&self.senders[b])
    }

    /// Room-grid coordinates `(col, row)` of a point (3 × 3 grid).
    pub fn room_of(p: &Point) -> (usize, usize) {
        let col = ((p.x / (FLOOR_X_M / 3.0)) as usize).min(2);
        let row = ((p.y / (FLOOR_Y_M / 3.0)) as usize).min(2);
        (col, row)
    }

    /// Approximate number of interior walls a straight path between two
    /// points crosses: the Manhattan distance between their room-grid
    /// cells. Wall attenuation is what keeps each sink hearing only the
    /// 4–8 nearby senders of the paper's testbed instead of the whole
    /// floor.
    pub fn walls_between(a: &Point, b: &Point) -> usize {
        let (ac, ar) = Self::room_of(a);
        let (bc, br) = Self::room_of(b);
        ac.abs_diff(bc) + ar.abs_diff(br)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_has_paper_node_counts() {
        let tb = Testbed::fig7();
        assert_eq!(tb.senders.len(), NUM_SENDERS);
        assert_eq!(tb.receivers.len(), NUM_RECEIVERS);
    }

    #[test]
    fn all_nodes_inside_floor() {
        let tb = Testbed::fig7();
        for p in tb.senders.iter().chain(&tb.receivers) {
            assert!(p.x >= 0.0 && p.x <= FLOOR_X_M, "{p:?}");
            assert!(p.y >= 0.0 && p.y <= FLOOR_Y_M, "{p:?}");
        }
    }

    #[test]
    fn senders_are_distinct_positions() {
        let tb = Testbed::fig7();
        for i in 0..tb.senders.len() {
            for j in (i + 1)..tb.senders.len() {
                assert!(
                    tb.senders[i].distance(&tb.senders[j]) > 0.5,
                    "senders {i},{j}"
                );
            }
        }
    }

    #[test]
    fn link_distances_span_near_and_far() {
        // The layout must produce both short (< 6 m) and long (> 15 m)
        // sender→receiver links: the diversity every result depends on.
        let tb = Testbed::fig7();
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for s in 0..NUM_SENDERS {
            for r in 0..NUM_RECEIVERS {
                let d = tb.sender_receiver_distance(s, r);
                min = min.min(d);
                max = max.max(d);
            }
        }
        assert!(min < 6.0, "closest link {min}");
        assert!(max > 15.0, "farthest link {max}");
    }

    #[test]
    fn distance_is_symmetric() {
        let tb = Testbed::fig7();
        assert_eq!(
            tb.sender_sender_distance(0, 5),
            tb.sender_sender_distance(5, 0)
        );
        assert_eq!(tb.sender_sender_distance(3, 3), 0.0);
    }
}
