//! The testbed floor plan (paper Fig. 7).
//!
//! 27 nodes over nine rooms of an indoor office floor roughly
//! 100 ft × 50 ft (30.5 m × 15.2 m): 23 CC2420 senders and four GNU Radio
//! receivers R1–R4 deployed among them. The exact coordinates in the
//! paper are not published; this layout reproduces the published
//! structure — a 3 × 3 room grid, senders clustered 2–3 per room,
//! receivers spread so each hears 4–8 senders at usable strength with
//! link qualities from near-perfect to marginal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A planar position in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// x coordinate, meters (long axis of the floor).
    pub x: f64,
    /// y coordinate, meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point, meters.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Floor dimensions, meters (≈ 100 ft × 50 ft).
pub const FLOOR_X_M: f64 = 30.5;
/// Floor depth, meters.
pub const FLOOR_Y_M: f64 = 15.2;

/// Number of sender nodes (Telos motes).
pub const NUM_SENDERS: usize = 23;
/// Number of receiver nodes (GNU Radios R1–R4).
pub const NUM_RECEIVERS: usize = 4;

/// The testbed: sender and receiver positions.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Sender positions, index = sender id.
    pub senders: Vec<Point>,
    /// Receiver positions, index = receiver id (R1..R4).
    pub receivers: Vec<Point>,
    /// Apply the 3 × 3 room-grid wall attenuation
    /// ([`Testbed::walls_between`])? True for the office layouts
    /// (`fig7`, `grid` — the walls are the floor's), false for the
    /// open-plan synthetic topologies (`random_geometric`, `mesh`).
    pub wall_attenuation: bool,
}

impl Testbed {
    /// The Fig. 7-style layout: senders spread 2–3 per room over a 3×3
    /// room grid, receivers placed between room clusters.
    pub fn fig7() -> Testbed {
        // Room grid: 3 columns × 3 rows, each room ~10.2 m × 5.1 m.
        // Senders are placed at deterministic offsets inside rooms.
        let mut senders = Vec::with_capacity(NUM_SENDERS);
        let offsets = [(2.0, 1.2), (6.5, 3.8), (8.9, 1.8)];
        let mut count = 0;
        'outer: for row in 0..3 {
            for col in 0..3 {
                let room_x = col as f64 * (FLOOR_X_M / 3.0);
                let room_y = row as f64 * (FLOOR_Y_M / 3.0);
                for &(ox, oy) in &offsets {
                    if count == NUM_SENDERS {
                        break 'outer;
                    }
                    senders.push(Point::new(room_x + ox, room_y + oy * (FLOOR_Y_M / 15.2)));
                    count += 1;
                }
            }
        }
        // Receivers R1–R4 spread along the floor between room clusters.
        let receivers = vec![
            Point::new(5.5, 7.6),
            Point::new(13.0, 4.0),
            Point::new(18.5, 11.0),
            Point::new(26.0, 6.5),
        ];
        Testbed {
            senders,
            receivers,
            wall_attenuation: true,
        }
    }

    /// A regular `cols × rows` sender grid over the same office floor
    /// (cell centers), with the four Fig. 7 receivers — a controlled
    /// topology for density sweeps where every sender spacing is known.
    pub fn grid(cols: usize, rows: usize) -> Testbed {
        assert!(cols >= 1 && rows >= 1, "grid needs at least one cell");
        let mut senders = Vec::with_capacity(cols * rows);
        for row in 0..rows {
            for col in 0..cols {
                senders.push(Point::new(
                    (col as f64 + 0.5) * FLOOR_X_M / cols as f64,
                    (row as f64 + 0.5) * FLOOR_Y_M / rows as f64,
                ));
            }
        }
        Testbed {
            senders,
            receivers: Testbed::fig7().receivers,
            wall_attenuation: true,
        }
    }

    /// A random-geometric layout: [`NUM_SENDERS`] senders and
    /// [`NUM_RECEIVERS`] receivers placed uniformly on a square sized so
    /// the expected number of senders within `comm_radius_m` of a point
    /// is `density` — the standard random-geometric-graph construction.
    /// Open plan (no wall attenuation): the square is synthetic, not the
    /// Fig. 7 floor.
    pub fn random_geometric(seed: u64, density: f64, comm_radius_m: f64) -> Testbed {
        let mut tb = Self::mesh(seed, NUM_SENDERS, density, comm_radius_m);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xC2B2_AE3D).wrapping_add(11));
        let side = tb.side_hint();
        tb.receivers = (0..NUM_RECEIVERS)
            .map(|_| Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
            .collect();
        tb
    }

    /// A mesh layout for the event-driven flood experiments: `nodes`
    /// positions drawn uniformly on a square sized for an expected
    /// `density` neighbors within `comm_radius_m`, with **senders and
    /// receivers being the same node set** (every node both transmits
    /// and receives). Open plan, no wall attenuation.
    pub fn mesh(seed: u64, nodes: usize, density: f64, comm_radius_m: f64) -> Testbed {
        assert!(nodes >= 2, "a mesh needs at least two nodes");
        assert!(
            density > 0.0 && comm_radius_m > 0.0,
            "density and radius must be positive"
        );
        // Expected neighbors in a disk: n·πr²/A = density  ⇒
        // side = r·√(nπ/density).
        let side = comm_radius_m * (nodes as f64 * std::f64::consts::PI / density).sqrt();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x1656_67B1).wrapping_add(5));
        let senders: Vec<Point> = (0..nodes)
            .map(|_| Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
            .collect();
        Testbed {
            receivers: senders.clone(),
            senders,
            wall_attenuation: false,
        }
    }

    /// The bounding-square side the synthetic layouts were drawn on
    /// (max coordinate; 0 for an empty testbed).
    fn side_hint(&self) -> f64 {
        self.senders
            .iter()
            .flat_map(|p| [p.x, p.y])
            .fold(0.0f64, f64::max)
    }

    /// Distance from sender `s` to receiver `r`, meters.
    pub fn sender_receiver_distance(&self, s: usize, r: usize) -> f64 {
        self.senders[s].distance(&self.receivers[r])
    }

    /// Distance between two senders (for carrier sensing), meters.
    pub fn sender_sender_distance(&self, a: usize, b: usize) -> f64 {
        self.senders[a].distance(&self.senders[b])
    }

    /// Room-grid coordinates `(col, row)` of a point (3 × 3 grid).
    pub fn room_of(p: &Point) -> (usize, usize) {
        let col = ((p.x / (FLOOR_X_M / 3.0)) as usize).min(2);
        let row = ((p.y / (FLOOR_Y_M / 3.0)) as usize).min(2);
        (col, row)
    }

    /// Approximate number of interior walls a straight path between two
    /// points crosses: the Manhattan distance between their room-grid
    /// cells. Wall attenuation is what keeps each sink hearing only the
    /// 4–8 nearby senders of the paper's testbed instead of the whole
    /// floor.
    pub fn walls_between(a: &Point, b: &Point) -> usize {
        let (ac, ar) = Self::room_of(a);
        let (bc, br) = Self::room_of(b);
        ac.abs_diff(bc) + ar.abs_diff(br)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_has_paper_node_counts() {
        let tb = Testbed::fig7();
        assert_eq!(tb.senders.len(), NUM_SENDERS);
        assert_eq!(tb.receivers.len(), NUM_RECEIVERS);
    }

    #[test]
    fn all_nodes_inside_floor() {
        let tb = Testbed::fig7();
        for p in tb.senders.iter().chain(&tb.receivers) {
            assert!(p.x >= 0.0 && p.x <= FLOOR_X_M, "{p:?}");
            assert!(p.y >= 0.0 && p.y <= FLOOR_Y_M, "{p:?}");
        }
    }

    #[test]
    fn senders_are_distinct_positions() {
        let tb = Testbed::fig7();
        for i in 0..tb.senders.len() {
            for j in (i + 1)..tb.senders.len() {
                assert!(
                    tb.senders[i].distance(&tb.senders[j]) > 0.5,
                    "senders {i},{j}"
                );
            }
        }
    }

    #[test]
    fn link_distances_span_near_and_far() {
        // The layout must produce both short (< 6 m) and long (> 15 m)
        // sender→receiver links: the diversity every result depends on.
        let tb = Testbed::fig7();
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for s in 0..NUM_SENDERS {
            for r in 0..NUM_RECEIVERS {
                let d = tb.sender_receiver_distance(s, r);
                min = min.min(d);
                max = max.max(d);
            }
        }
        assert!(min < 6.0, "closest link {min}");
        assert!(max > 15.0, "farthest link {max}");
    }

    #[test]
    fn grid_layout_covers_floor_evenly() {
        let tb = Testbed::grid(6, 4);
        assert_eq!(tb.senders.len(), 24);
        assert_eq!(tb.receivers.len(), NUM_RECEIVERS);
        assert!(tb.wall_attenuation);
        for p in &tb.senders {
            assert!(p.x > 0.0 && p.x < FLOOR_X_M);
            assert!(p.y > 0.0 && p.y < FLOOR_Y_M);
        }
        // Neighboring grid senders are exactly one pitch apart.
        let pitch = FLOOR_X_M / 6.0;
        assert!((tb.senders[0].distance(&tb.senders[1]) - pitch).abs() < 1e-12);
    }

    #[test]
    fn random_geometric_is_seed_stable_and_scaled() {
        let a = Testbed::random_geometric(7, 10.0, 30.0);
        let b = Testbed::random_geometric(7, 10.0, 30.0);
        assert_eq!(a.senders, b.senders);
        assert_eq!(a.receivers, b.receivers);
        assert!(!a.wall_attenuation);
        let c = Testbed::random_geometric(8, 10.0, 30.0);
        assert_ne!(a.senders, c.senders);
        // Higher density ⇒ smaller square.
        let dense = Testbed::random_geometric(7, 20.0, 30.0);
        assert!(dense.side_hint() < a.side_hint());
    }

    #[test]
    fn mesh_nodes_are_both_senders_and_receivers() {
        let tb = Testbed::mesh(3, 500, 12.0, 35.0);
        assert_eq!(tb.senders.len(), 500);
        assert_eq!(tb.senders, tb.receivers);
        // Mean degree within the comm radius lands near the target
        // density (Poisson-ish; generous tolerance, minus edge effects).
        let r = 35.0;
        let mut degree = 0usize;
        for i in 0..tb.senders.len() {
            for j in 0..tb.senders.len() {
                if i != j && tb.senders[i].distance(&tb.senders[j]) <= r {
                    degree += 1;
                }
            }
        }
        let mean = degree as f64 / tb.senders.len() as f64;
        assert!((6.0..=14.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn distance_is_symmetric() {
        let tb = Testbed::fig7();
        assert_eq!(
            tb.sender_sender_distance(0, 5),
            tb.sender_sender_distance(5, 0)
        );
        assert_eq!(tb.sender_sender_distance(3, 3), 0.0);
    }
}
