//! Traffic generation: Poisson packet processes at a configured offered
//! load.
//!
//! The paper drives every sender at a constant offered load (3.5, 6.9 or
//! 13.8 kbit/s/node). We model packet *arrivals* as a Poisson process
//! whose rate makes the mean offered bit rate equal the target: for a
//! payload of `P` bits, the mean inter-arrival time is `P / load`.

use ppr_phy::chips::CHIP_RATE_HZ;
use rand::Rng;

/// Converts seconds to chips on the 2 Mchip/s clock.
pub fn secs_to_chips(s: f64) -> u64 {
    (s * CHIP_RATE_HZ as f64).round() as u64
}

/// Converts chips to seconds.
pub fn chips_to_secs(c: u64) -> f64 {
    c as f64 / CHIP_RATE_HZ as f64
}

/// A Poisson arrival process for one sender.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    /// Mean inter-arrival time, chips.
    mean_gap_chips: f64,
    /// Next arrival time, chips.
    next: u64,
}

impl PoissonArrivals {
    /// Creates a process offering `load_kbps` kilobits/s of payload with
    /// `payload_bytes` per packet. The first arrival is randomized within
    /// one mean gap so senders do not start in phase.
    pub fn new<R: Rng>(load_kbps: f64, payload_bytes: usize, rng: &mut R) -> Self {
        assert!(load_kbps > 0.0 && payload_bytes > 0);
        let bits = payload_bytes as f64 * 8.0;
        let gap_s = bits / (load_kbps * 1000.0);
        let mean_gap_chips = gap_s * CHIP_RATE_HZ as f64;
        let first = (rng.gen::<f64>() * mean_gap_chips) as u64;
        PoissonArrivals {
            mean_gap_chips,
            next: first,
        }
    }

    /// Time of the next arrival, chips.
    pub fn peek(&self) -> u64 {
        self.next
    }

    /// Consumes the next arrival and schedules the following one with an
    /// exponential gap.
    pub fn pop<R: Rng>(&mut self, rng: &mut R) -> u64 {
        let now = self.next;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let gap = -u.ln() * self.mean_gap_chips;
        self.next = now + gap.max(1.0) as u64;
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chips_seconds_roundtrip() {
        assert_eq!(secs_to_chips(1.0), 2_000_000);
        assert!((chips_to_secs(secs_to_chips(3.25)) - 3.25).abs() < 1e-9);
    }

    #[test]
    fn mean_rate_matches_offered_load() {
        let mut rng = StdRng::seed_from_u64(11);
        // 3.5 kbit/s with 1500 B packets → 1 packet / 3.4286 s.
        let mut p = PoissonArrivals::new(3.5, 1500, &mut rng);
        let horizon = secs_to_chips(2000.0);
        let mut count = 0usize;
        while p.peek() < horizon {
            p.pop(&mut rng);
            count += 1;
        }
        let expected = 2000.0 / (1500.0 * 8.0 / 3500.0);
        let ratio = count as f64 / expected;
        assert!(
            (ratio - 1.0).abs() < 0.1,
            "count {count} expected {expected}"
        );
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut p = PoissonArrivals::new(13.8, 250, &mut rng);
        let mut prev = 0;
        for _ in 0..1000 {
            let t = p.pop(&mut rng);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn gaps_look_exponential() {
        // Coefficient of variation of exponential gaps ≈ 1.
        let mut rng = StdRng::seed_from_u64(13);
        let mut p = PoissonArrivals::new(6.9, 1500, &mut rng);
        let mut gaps = Vec::new();
        let mut prev = p.pop(&mut rng);
        for _ in 0..20_000 {
            let t = p.pop(&mut rng);
            gaps.push((t - prev) as f64);
            prev = t;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }
}
