//! The testbed network simulator.
//!
//! Three stages, mirroring the paper's method (§7.1–7.2):
//!
//! 1. **Radio environment** ([`RadioEnv`]): the Fig. 7 floor plan plus
//!    log-distance path loss with per-link frozen shadowing gives every
//!    (sender → receiver) and (sender → sender) pair a static received
//!    power.
//! 2. **Timeline generation** ([`generate_timeline`]): every sender
//!    offers Poisson packet traffic at the configured load; carrier
//!    sense (when enabled) defers transmissions that would start while
//!    an audible transmission is on the air.
//! 3. **Reception processing** ([`process_receptions`]): every
//!    transmission is evaluated at every receiver that can plausibly
//!    hear it — concurrent transmissions become interference spans, chip
//!    errors are drawn, and the frame goes through delimiter checks and
//!    the `ppr-mac` decode pipeline under a chosen delivery scheme and
//!    postamble arm.
//!
//! Chip corruption for a given (transmission, receiver) pair is seeded by
//! `(seed, tx id, receiver)`, so different schemes and postamble arms see
//! *identical* channel noise — the paper's "same trace, post-processed"
//! methodology.
//!
//! Both stages now run over the discrete-event core ([`crate::event`]):
//! the timeline generator schedules arrival/attempt events, and
//! [`process_receptions`] drives transmission-start / reception-complete
//! events through a [`crate::event::BinaryHeapQueue`]. The legacy
//! implementations are kept verbatim as pinned references —
//! [`generate_timeline_reference`] (the inline heap) and
//! [`process_receptions_timestep`] (the time-stepped batch loop) — and
//! `tests/event_parity.rs` holds all of them bit-identical.
//!
//! ## Determinism contract of the parallel reception loop
//!
//! [`process_receptions`] fans per-(transmission, receiver) work across
//! `std::thread::scope` workers. Results are bit-identical to the
//! sequential reference ([`process_receptions_reference`]) regardless of
//! worker count or scheduling because:
//!
//! 1. every reception draws its channel noise from its own RNG stream
//!    seeded by `(seed, tx id, receiver)` — no RNG is shared between
//!    work items;
//! 2. the only cross-reception state — a receiver's busy/idle window —
//!    depends solely on earlier preamble hits at that receiver, which is
//!    resolved in a cheap sequential pass between the parallel
//!    prepare/decode phases, in event-pop order (= timeline order per
//!    receiver);
//! 3. outputs are collected in (receiver, timeline-order) slots, not in
//!    completion order;
//! 4. event dispatch itself is totally ordered by the
//!    `(time, priority, seq)` key of [`crate::event::EventKey`].
//!
//! `PPR_THREADS=1` forces the parallel structure onto one worker (still
//! the packed path); `tests/packed_parity.rs` pins both equalities.

use crate::event::{prio, priority, BinaryHeapQueue, EventQueue, SimEvent};
use crate::geometry::Testbed;
use crate::rxpath::{Acquisition, FastRx};
use crate::snapshot::{env_fingerprint, timeline_fingerprint, InFlightRx, RxSnapshot, SnapError};
use crate::traffic::{secs_to_chips, PoissonArrivals};
use ppr_channel::chip_channel::{corrupt_chip_words_in_place, corrupt_chips, ErrorProfile};
use ppr_channel::overlap::{interference_profile, HeardTx};
use ppr_channel::pathloss::PathLossModel;
use ppr_mac::frame::Frame;
use ppr_mac::schemes::{correct_delivered_bytes, DeliveryScheme};
use ppr_phy::chips::ChipWords;
use ppr_phy::spread::bytes_to_symbols;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BinaryHeap};

/// Simulation parameters for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Offered load per sender, kbit/s (paper: 3.5, 6.9, 13.8).
    pub load_kbps: f64,
    /// Fixed over-the-air body size, bytes (paper: 1500 for capacity
    /// experiments, 250 for PP-ARQ).
    pub body_bytes: usize,
    /// Carrier sense before transmitting (Fig. 8 on, Figs. 9–12 off).
    pub carrier_sense: bool,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            load_kbps: 3.5,
            body_bytes: 1500,
            carrier_sense: false,
            duration_s: 60.0,
            seed: 0x50_50_52, // "PPR"
        }
    }
}

/// The static radio environment: node positions and frozen link gains.
#[derive(Debug, Clone)]
pub struct RadioEnv {
    /// The floor plan.
    pub testbed: Testbed,
    /// The propagation model.
    pub model: PathLossModel,
    /// Received power at receiver `r` from sender `s`: `s2r_mw[s][r]`.
    pub s2r_mw: Vec<Vec<f64>>,
    /// Received power at sender `b` from sender `a`: `s2s_mw[a][b]`
    /// (symmetric; used for carrier sensing).
    pub s2s_mw: Vec<Vec<f64>>,
}

/// Indoor model tuned so the testbed reproduces the paper's link-quality
/// mix: most audible links comfortably above the noise floor (the
/// paper's errors are "mostly due to collisions", §3.2, so thermal chip
/// errors must be rare on typical links) with a thin shadowed tail of
/// marginal ones.
pub fn office_model() -> PathLossModel {
    PathLossModel {
        tx_power_dbm: 0.0,
        pl0_db: 47.0,
        exponent: 3.2,
        shadow_sigma_db: 8.0,
        noise_floor_dbm: -101.0,
    }
}

/// Attenuation per interior wall crossed, dB. With the 3 × 3 room grid
/// this is what limits each sink to hearing the paper's "between 4 and
/// 8 sender nodes" instead of the entire floor.
pub const WALL_LOSS_DB: f64 = 16.0;

/// Receiver sensitivity squelch: below this clean-channel SNR (linear)
/// the radio does not attempt acquisition at all (CC2420-style
/// sensitivity floor, ≈ 4 dB chip SNR). Links below it are "inaudible";
/// links above it fail predominantly because of *collisions*, matching
/// the paper's observation that "our bit errors were mostly due to
/// collisions" (§3.2).
pub const SQUELCH_SNR: f64 = 2.5;

impl RadioEnv {
    /// Builds the Fig. 7 environment with shadowing frozen from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::with_testbed(seed, Testbed::fig7())
    }

    /// Builds the environment over an explicit floor plan ([`Testbed`]
    /// constructor = the scenario `topology` axis). Wall attenuation
    /// applies only when the testbed says so; the shadowing draw order
    /// is identical either way, so `fig7` gains are unchanged from the
    /// historical single-topology constructor.
    pub fn with_testbed(seed: u64, testbed: Testbed) -> Self {
        let model = office_model();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let ns = testbed.senders.len();
        let nr = testbed.receivers.len();
        let walls_of = |a: &crate::geometry::Point, b: &crate::geometry::Point| -> usize {
            if testbed.wall_attenuation {
                Testbed::walls_between(a, b)
            } else {
                0
            }
        };
        let mut s2r_mw = vec![vec![0.0; nr]; ns];
        for (s, row) in s2r_mw.iter_mut().enumerate() {
            for (r, p) in row.iter_mut().enumerate() {
                let d = testbed.sender_receiver_distance(s, r);
                let walls = walls_of(&testbed.senders[s], &testbed.receivers[r]);
                let shadow = model.draw_shadowing_db(&mut rng) + walls as f64 * WALL_LOSS_DB;
                *p = model.rx_power_mw(d, shadow);
            }
        }
        let mut s2s_mw = vec![vec![0.0; ns]; ns];
        #[allow(clippy::needless_range_loop)] // symmetric fill needs both indices
        for a in 0..ns {
            for b in (a + 1)..ns {
                let d = testbed.sender_sender_distance(a, b);
                let walls = walls_of(&testbed.senders[a], &testbed.senders[b]);
                let shadow = model.draw_shadowing_db(&mut rng) + walls as f64 * WALL_LOSS_DB;
                let p = model.rx_power_mw(d, shadow);
                s2s_mw[a][b] = p;
                s2s_mw[b][a] = p;
            }
        }
        RadioEnv {
            testbed,
            model,
            s2r_mw,
            s2s_mw,
        }
    }

    /// Clean-channel SNR (linear) of link `s → r`.
    pub fn link_snr(&self, s: usize, r: usize) -> f64 {
        self.s2r_mw[s][r] / self.model.noise_mw()
    }

    /// Is `s → r` a usable link (clean-channel SNR above the receiver
    /// squelch)? This is the link set the per-link CDFs report,
    /// mirroring "each sink had between 4 and 8 sender nodes that it
    /// could hear".
    pub fn is_link(&self, s: usize, r: usize) -> bool {
        self.link_snr(s, r) >= SQUELCH_SNR
    }

    /// All usable links as (sender, receiver) pairs.
    pub fn links(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for s in 0..self.testbed.senders.len() {
            for r in 0..self.testbed.receivers.len() {
                if self.is_link(s, r) {
                    out.push((s, r));
                }
            }
        }
        out
    }
}

/// One scheduled transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// Unique id (also the corruption-seed component).
    pub id: u64,
    /// Sender index.
    pub sender: usize,
    /// Link-layer sequence number (per sender).
    pub seq: u16,
    /// Start time on the chip clock.
    pub start_chip: u64,
    /// Frame length, chips.
    pub len_chips: u64,
}

impl Transmission {
    /// Exclusive end time.
    pub fn end_chip(&self) -> u64 {
        self.start_chip + self.len_chips
    }
}

/// CC2420-style CSMA backoff: 1–8 slots of 320 µs.
fn csma_backoff_chips<R: Rng>(rng: &mut R) -> u64 {
    let slots = rng.gen_range(1..=8u64);
    slots * 640 // 320 µs × 2 Mchip/s
}

/// Carrier-sense threshold: −77 dBm (CC2420 CCA).
fn cca_threshold_mw() -> f64 {
    10f64.powf(-77.0 / 10.0)
}

/// Event kinds in the timeline generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A new packet arrives at the sender's queue.
    Arrival,
    /// The sender tries to transmit the head of its queue.
    Attempt,
}

/// Generates the transmission timeline for one run.
///
/// Each sender holds a FIFO of arrived-but-unsent packets. An arrival
/// enqueues a packet (and, if the queue was idle, schedules a send
/// attempt); an attempt either transmits the head packet — when the
/// radio is free and carrier sense (if enabled) reads idle — or
/// reschedules itself after a CSMA backoff. Exactly one transmission is
/// produced per arrival inside the horizon (queues drain in order; no
/// packet is duplicated or dropped).
///
/// Runs over the discrete-event core: arrivals and attempts are
/// [`SimEvent`]s in a [`BinaryHeapQueue`], with the priority word
/// encoding `(class, sender)` so the pop order reproduces the legacy
/// `(time, Ev, sender)` heap key exactly —
/// [`generate_timeline_reference`] is the pinned legacy implementation
/// and `tests/event_parity.rs` holds the two bit-identical (the
/// generator shares one RNG across senders, so pop *order* is
/// bit-visible in the output).
pub fn generate_timeline(env: &RadioEnv, cfg: &SimConfig) -> Vec<Transmission> {
    let ns = env.testbed.senders.len();
    let frame_chips = Frame::chips_len_for_body(cfg.body_bytes) as u64;
    let horizon = secs_to_chips(cfg.duration_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0xA24B_AED4).wrapping_add(7));

    // Payload rate excludes frame overhead: offered load counts payload
    // bytes, as the paper's per-node rates do.
    let mut arrivals: Vec<PoissonArrivals> = (0..ns)
        .map(|_| PoissonArrivals::new(cfg.load_kbps, cfg.body_bytes, &mut rng))
        .collect();
    let mut backlog = vec![0u32; ns];
    let mut attempt_scheduled = vec![false; ns];
    let mut next_free = vec![0u64; ns];
    let mut seqs = vec![0u16; ns];

    let mut q: BinaryHeapQueue<SimEvent> = BinaryHeapQueue::with_capacity(2 * ns);
    for (s, a) in arrivals.iter().enumerate() {
        q.schedule(
            a.peek(),
            priority(prio::ARRIVAL, s as u32),
            SimEvent::TrafficArrival { sender: s },
        );
    }

    let mut timeline: Vec<Transmission> = Vec::new();
    let mut next_id = 0u64;

    while let Some((key, ev)) = q.pop() {
        let t = key.time;
        if t >= horizon {
            // Arrivals beyond the horizon end the sender's stream; late
            // attempts for already-queued packets are abandoned too (the
            // run is over).
            continue;
        }
        match ev {
            SimEvent::TrafficArrival { sender: s } => {
                backlog[s] += 1;
                arrivals[s].pop(&mut rng);
                q.schedule(
                    arrivals[s].peek(),
                    priority(prio::ARRIVAL, s as u32),
                    SimEvent::TrafficArrival { sender: s },
                );
                if !attempt_scheduled[s] {
                    attempt_scheduled[s] = true;
                    let at = t.max(next_free[s]);
                    q.schedule(
                        at,
                        priority(prio::ATTEMPT, s as u32),
                        SimEvent::TxAttempt { sender: s },
                    );
                }
            }
            SimEvent::TxAttempt { sender: s } => {
                debug_assert!(backlog[s] > 0);
                let at = t.max(next_free[s]);
                if at > t {
                    q.schedule(
                        at,
                        priority(prio::ATTEMPT, s as u32),
                        SimEvent::TxAttempt { sender: s },
                    );
                    continue;
                }
                if cfg.carrier_sense && channel_busy(env, &timeline, s, at, frame_chips) {
                    let retry = at + csma_backoff_chips(&mut rng);
                    q.schedule(
                        retry,
                        priority(prio::ATTEMPT, s as u32),
                        SimEvent::TxAttempt { sender: s },
                    );
                    continue;
                }
                timeline.push(Transmission {
                    id: next_id,
                    sender: s,
                    seq: seqs[s],
                    start_chip: at,
                    len_chips: frame_chips,
                });
                next_id += 1;
                seqs[s] = seqs[s].wrapping_add(1);
                next_free[s] = at + frame_chips + 320; // 160 µs turnaround
                backlog[s] -= 1;
                if backlog[s] > 0 {
                    q.schedule(
                        next_free[s],
                        priority(prio::ATTEMPT, s as u32),
                        SimEvent::TxAttempt { sender: s },
                    );
                } else {
                    attempt_scheduled[s] = false;
                }
            }
            _ => unreachable!("timeline generator schedules only arrivals and attempts"),
        }
    }
    timeline.sort_by_key(|t| t.start_chip);
    timeline
}

/// The legacy inline-heap timeline generator, kept verbatim as the
/// pinned reference for [`generate_timeline`]'s event-core rework
/// (`tests/event_parity.rs` holds the two bit-identical).
pub fn generate_timeline_reference(env: &RadioEnv, cfg: &SimConfig) -> Vec<Transmission> {
    let ns = env.testbed.senders.len();
    let frame_chips = Frame::chips_len_for_body(cfg.body_bytes) as u64;
    let horizon = secs_to_chips(cfg.duration_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0xA24B_AED4).wrapping_add(7));

    let mut arrivals: Vec<PoissonArrivals> = (0..ns)
        .map(|_| PoissonArrivals::new(cfg.load_kbps, cfg.body_bytes, &mut rng))
        .collect();
    let mut backlog = vec![0u32; ns];
    let mut attempt_scheduled = vec![false; ns];
    let mut next_free = vec![0u64; ns];
    let mut seqs = vec![0u16; ns];

    // Min-heap of (time, event, sender) via Reverse ordering. The event
    // kind is part of the key so ordering is fully deterministic.
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, Ev, usize)>> = BinaryHeap::new();
    for (s, a) in arrivals.iter().enumerate() {
        heap.push(std::cmp::Reverse((a.peek(), Ev::Arrival, s)));
    }

    let mut timeline: Vec<Transmission> = Vec::new();
    let mut next_id = 0u64;

    while let Some(std::cmp::Reverse((t, ev, s))) = heap.pop() {
        if t >= horizon {
            continue;
        }
        match ev {
            Ev::Arrival => {
                backlog[s] += 1;
                arrivals[s].pop(&mut rng);
                heap.push(std::cmp::Reverse((arrivals[s].peek(), Ev::Arrival, s)));
                if !attempt_scheduled[s] {
                    attempt_scheduled[s] = true;
                    let at = t.max(next_free[s]);
                    heap.push(std::cmp::Reverse((at, Ev::Attempt, s)));
                }
            }
            Ev::Attempt => {
                debug_assert!(backlog[s] > 0);
                let at = t.max(next_free[s]);
                if at > t {
                    heap.push(std::cmp::Reverse((at, Ev::Attempt, s)));
                    continue;
                }
                if cfg.carrier_sense && channel_busy(env, &timeline, s, at, frame_chips) {
                    let retry = at + csma_backoff_chips(&mut rng);
                    heap.push(std::cmp::Reverse((retry, Ev::Attempt, s)));
                    continue;
                }
                timeline.push(Transmission {
                    id: next_id,
                    sender: s,
                    seq: seqs[s],
                    start_chip: at,
                    len_chips: frame_chips,
                });
                next_id += 1;
                seqs[s] = seqs[s].wrapping_add(1);
                next_free[s] = at + frame_chips + 320; // 160 µs turnaround
                backlog[s] -= 1;
                if backlog[s] > 0 {
                    heap.push(std::cmp::Reverse((next_free[s], Ev::Attempt, s)));
                } else {
                    attempt_scheduled[s] = false;
                }
            }
        }
    }
    timeline.sort_by_key(|t| t.start_chip);
    timeline
}

/// Does sender `s` hear an ongoing transmission at time `t`?
fn channel_busy(
    env: &RadioEnv,
    timeline: &[Transmission],
    s: usize,
    t: u64,
    frame_chips: u64,
) -> bool {
    let threshold = cca_threshold_mw();
    let mut total = 0.0;
    for tx in timeline.iter().rev() {
        if tx.start_chip + frame_chips <= t {
            break; // transmissions are start-ordered with equal length
        }
        if tx.start_chip <= t && tx.sender != s {
            total += env.s2s_mw[tx.sender][s];
            if total >= threshold {
                return true;
            }
        }
    }
    false
}

/// Receiver-side evaluation arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxArm {
    /// Delivery scheme under test.
    pub scheme: DeliveryScheme,
    /// Postamble decoding enabled?
    pub postamble: bool,
    /// Collect per-symbol hint/correctness traces (Figs. 3, 13–15)?
    pub collect_symbols: bool,
}

/// The outcome of one (transmission, receiver) evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reception {
    /// Transmission id.
    pub tx_id: u64,
    /// Sender index.
    pub sender: usize,
    /// Receiver index.
    pub receiver: usize,
    /// How the frame was acquired (or lost).
    pub acquisition: Acquisition,
    /// Scheme payload bytes carried by this frame.
    pub payload_len: usize,
    /// Bytes delivered to higher layers *and* correct.
    pub delivered_correct: usize,
    /// Bytes delivered (correct or not — PPR misses included).
    pub delivered_claimed: usize,
    /// Whole-packet CRC verdict.
    pub crc_ok: bool,
    /// Per-body-symbol hints (when collected).
    pub symbol_hints: Vec<u8>,
    /// Per-body-symbol ground-truth correctness (when collected).
    pub symbol_correct: Vec<bool>,
}

/// Deterministic known test pattern for (sender, seq), as the paper's
/// known-payload method requires.
pub fn payload_pattern(sender: usize, seq: u16, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0x7EA7_0000 ^ ((sender as u64) << 32) ^ seq as u64);
    (0..len).map(|_| rng.gen()).collect()
}

/// Builds the scheme body for a payload, padded with filler to exactly
/// `body_bytes` so every scheme occupies identical airtime.
pub fn build_body_padded(scheme: &DeliveryScheme, payload: &[u8], body_bytes: usize) -> Vec<u8> {
    let mut body = scheme.build_body(payload);
    assert!(body.len() <= body_bytes, "scheme body overflows frame");
    body.resize(body_bytes, 0xEE);
    body
}

/// One unit of reception work: the transmission at `timeline[idx]`
/// evaluated at receiver `r`.
#[derive(Debug, Clone, Copy)]
struct RxJob {
    r: usize,
    idx: usize,
    /// Position in the receiver-major reference output order — where
    /// this reception's result lands regardless of evaluation order.
    slot: usize,
}

/// Phase-A output for one job: everything a reception needs that does
/// not depend on the receiver's busy/idle state.
struct PreparedRx {
    frame: Frame,
    payload: Vec<u8>,
    corrupted: ChipWords,
    pre_hit: bool,
}

/// Worker-thread count for the reception loop: the process-wide
/// [`crate::env::threads_from_env`] ceiling (the `PPR_THREADS`
/// override, else available parallelism), capped by the job count.
fn worker_threads(jobs: usize) -> usize {
    crate::env::threads_from_env().min(jobs).max(1)
}

/// Maps `jobs` through `f` on `workers` scoped threads, preserving input
/// order in the output. Falls back to an inline loop when one worker (or
/// one job) makes spawning pointless.
pub(crate) fn fan_out<J: Sync, T: Send>(
    workers: usize,
    jobs: &[J],
    f: impl Fn(&J) -> T + Sync,
) -> Vec<T> {
    if workers <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(&f).collect();
    }
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(jobs.len(), || None);
    let chunk = jobs.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (job_chunk, out_chunk) in jobs.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (job, slot) in job_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(job));
                }
            });
        }
    });
    out.into_iter()
        .map(|t| t.expect("every slot filled by its worker"))
        .collect()
}

/// Default prepare/decode batch size per worker: each in-flight batch
/// holds `workers × BATCH_PER_WORKER` prepared captures. Swept in
/// `bench_packed` (schema v5 `..._b{4,8,16,32}` rows); 8 stays the
/// default — the sweep is flat within noise on the measured hardware,
/// and 8 keeps peak memory lowest (see docs/PERF.md).
pub const BATCH_PER_WORKER: usize = 8;

/// Evaluates every transmission at every receiver under one arm.
///
/// This is the event-driven fast path: transmission starts and
/// reception completions flow through a [`BinaryHeapQueue`] (total
/// `(time, priority, seq)` order), chip streams are bit-packed
/// [`ChipWords`] end to end, and per-(transmission, receiver) work runs
/// on scoped worker threads (see the module docs for the determinism
/// contract). Output is bit-identical to both the time-stepped batch
/// loop ([`process_receptions_timestep`]) and the sequential reference
/// ([`process_receptions_reference`]).
pub fn process_receptions(
    env: &RadioEnv,
    cfg: &SimConfig,
    timeline: &[Transmission],
    arm: &RxArm,
) -> Vec<Reception> {
    process_receptions_with_workers(env, cfg, timeline, arm, None)
}

/// [`process_receptions`] with an explicit worker count (`None` = the
/// `PPR_THREADS`/available-parallelism default). Public so the parity
/// harness can exercise the threaded fan-out deterministically even on
/// single-core machines, where the default would fall back to the
/// inline path.
pub fn process_receptions_with_workers(
    env: &RadioEnv,
    cfg: &SimConfig,
    timeline: &[Transmission],
    arm: &RxArm,
    workers: Option<usize>,
) -> Vec<Reception> {
    process_receptions_tuned(env, cfg, timeline, arm, workers, BATCH_PER_WORKER)
}

/// The event-driven reception driver with every knob exposed: worker
/// count and per-worker batch length (the `bench_packed` tuning
/// surface). Results are invariant to both knobs — they only move work
/// between batches, never reorder the sequential busy/idle fold or the
/// output slots.
pub fn process_receptions_tuned(
    env: &RadioEnv,
    cfg: &SimConfig,
    timeline: &[Transmission],
    arm: &RxArm,
    workers: Option<usize>,
    batch_per_worker: usize,
) -> Vec<Reception> {
    ReceptionDriver::new(env, cfg, timeline, arm, workers, batch_per_worker).run_to_end()
}

/// [`process_receptions`] with a checkpoint in the middle: the run is
/// driven to the `checkpoint_events` dispatch boundary, serialized to
/// the versioned snapshot byte format, restored from those bytes into a
/// fresh driver, and completed. Output is bit-identical to the
/// uninterrupted run (`tests/snapshot_roundtrip.rs` pins this for every
/// registry experiment) — the scenario `checkpoint` axis routes here.
pub fn process_receptions_checkpointed(
    env: &RadioEnv,
    cfg: &SimConfig,
    timeline: &[Transmission],
    arm: &RxArm,
    workers: Option<usize>,
    checkpoint_events: u64,
) -> Vec<Reception> {
    let bytes = snapshot_after_events(env, cfg, timeline, arm, workers, checkpoint_events);
    let snap = RxSnapshot::from_bytes(&bytes).expect("snapshot bytes round-trip");
    ReceptionDriver::restore(env, cfg, timeline, arm, workers, BATCH_PER_WORKER, &snap)
        .expect("snapshot restores against its own run inputs")
        .run_to_end()
}

/// Runs the event-driven reception driver to the `events` dispatch
/// boundary and returns the serialized checkpoint — the shared frozen
/// state the differential harness hands to every backend.
pub fn snapshot_after_events(
    env: &RadioEnv,
    cfg: &SimConfig,
    timeline: &[Transmission],
    arm: &RxArm,
    workers: Option<usize>,
    events: u64,
) -> Vec<u8> {
    let mut driver = ReceptionDriver::new(env, cfg, timeline, arm, workers, BATCH_PER_WORKER);
    driver.run_events(events);
    driver.save().to_bytes()
}

/// The event-driven reception loop as a resumable state machine: run it
/// to completion ([`ReceptionDriver::run_to_end`]), or to an event
/// boundary ([`ReceptionDriver::run_events`]), checkpoint it
/// ([`ReceptionDriver::save`]) and continue later — in this process or
/// another — via [`ReceptionDriver::restore`]. A checkpointed run is
/// bit-identical to an uninterrupted one: a save flushes the pending
/// prepare/decode batches, which only moves work between batches — the
/// sequential busy/idle fold stays in event-pop order (= timeline order
/// per receiver), completion keys keep their relative `seq` order
/// within the `(time, priority)` class, and output slots are fixed by
/// the receiver-major job table. Batch boundaries are already pinned as
/// result-invariant by `tests/event_parity.rs`.
pub struct ReceptionDriver<'a> {
    // ppr-lint: region(snapshot-state) begin testbed reception driver state
    /// snapshot: rebuilt — the shared pipeline stages are pure functions
    /// of the run inputs (environment, config, timeline, arm).
    pipe: RxPipeline<'a>,
    /// snapshot: rebuilt — squelch-passing receiver set per sender,
    /// derived from the frozen link gains.
    receivers_of: Vec<Vec<usize>>,
    /// snapshot: rebuilt — execution knob (thread count), never
    /// simulation state; results are invariant to it.
    workers: usize,
    /// snapshot: rebuilt — execution knob (batch sizing), never
    /// simulation state; results are invariant to it.
    batch_len: usize,
    /// snapshot: serialized — every scheduled event with its key
    /// verbatim, plus the queue's push/dispatch counters.
    q: BinaryHeapQueue<SimEvent>,
    /// snapshot: serialized — decoded receptions in their fixed
    /// receiver-major slots (undecoded slots travel as absent).
    out: Vec<Option<Reception>>,
    /// snapshot: serialized — per-receiver busy horizon of the
    /// sequential busy/idle fold.
    busy_until: Vec<u64>,
    /// snapshot: serialized — per-receiver next output slot.
    next_slot: Vec<usize>,
    /// snapshot: serialized — captures awaiting their completion event,
    /// as (receiver, timeline index, slot, RNG stream position, idle);
    /// the prepared frame and corrupted chips are reconstructed on
    /// restore from the stored stream position.
    in_flight: BTreeMap<usize, (RxJob, PreparedRx, bool)>,
    /// snapshot: drained — a save flushes the prepare batch first
    /// (result-invariant; see the type docs), so it is always empty in
    /// the byte format.
    prep_batch: Vec<RxJob>,
    /// snapshot: drained — a save flushes the decode batch into `out`
    /// first, so it is always empty in the byte format.
    decode_batch: Vec<(RxJob, PreparedRx, bool)>,
    // ppr-lint: region(snapshot-state) end
}

impl<'a> ReceptionDriver<'a> {
    /// Builds a driver at event zero (nothing dispatched, the full
    /// timeline scheduled). `workers`/`batch_per_worker` are the
    /// [`process_receptions_tuned`] knobs.
    pub fn new(
        env: &'a RadioEnv,
        cfg: &'a SimConfig,
        timeline: &'a [Transmission],
        arm: &'a RxArm,
        workers: Option<usize>,
        batch_per_worker: usize,
    ) -> Self {
        let pipe = RxPipeline::new(env, cfg, timeline, arm);
        let nr = env.testbed.receivers.len();
        let ns = env.testbed.senders.len();

        // The squelch-passing receiver set of each sender — what event
        // dispatch enumerates per TxStart instead of every receiver (at
        // mesh scale this is where [`crate::spatial::SpatialIndex`]
        // prunes; at testbed scale the gain row is the whole story).
        let receivers_of: Vec<Vec<usize>> = (0..ns)
            .map(|s| {
                (0..nr)
                    .filter(|&r| env.s2r_mw[s][r] / pipe.noise >= SQUELCH_SNR)
                    .collect()
            })
            .collect();

        // Receiver-major output slots: slot bases per receiver, filled
        // in timeline order as TxStart events pop — the reference
        // evaluation order, independent of batch boundaries and worker
        // count.
        let mut count = vec![0usize; nr];
        for tx in timeline {
            for &r in &receivers_of[tx.sender] {
                count[r] += 1;
            }
        }
        let mut base = vec![0usize; nr + 1];
        for r in 0..nr {
            base[r + 1] = base[r] + count[r];
        }
        let total_jobs = base[nr];
        let next_slot: Vec<usize> = base[..nr].to_vec();

        let workers = workers
            .unwrap_or_else(|| worker_threads(total_jobs))
            .clamp(1, total_jobs.max(1));
        let batch_len = (workers * batch_per_worker).max(1);

        // Timeline is (start_chip, id)-ordered, so scheduling in index
        // order makes `seq` reproduce timeline order at equal start
        // chips.
        let mut q: BinaryHeapQueue<SimEvent> = BinaryHeapQueue::with_capacity(timeline.len());
        for (idx, tx) in timeline.iter().enumerate() {
            q.schedule(
                tx.start_chip,
                priority(prio::TX_START, 0),
                SimEvent::TxStart { tx: idx },
            );
        }

        let mut out: Vec<Option<Reception>> = Vec::new();
        out.resize_with(total_jobs, || None);
        ReceptionDriver {
            pipe,
            receivers_of,
            workers,
            batch_len,
            q,
            out,
            busy_until: vec![0u64; nr],
            next_slot,
            // Captures awaiting their completion event, keyed by output
            // slot. Bounded by what is actually on the air plus one
            // batch — the event-driven analogue of the time-stepped
            // loop's batch bound.
            in_flight: BTreeMap::new(),
            prep_batch: Vec::with_capacity(batch_len),
            decode_batch: Vec::with_capacity(batch_len),
        }
    }

    /// Parallel prepare, then the sequential busy/idle fold in
    /// event-pop order (= timeline order per receiver), then schedule
    /// completions.
    fn flush_prepare(&mut self) {
        let prepared = fan_out(self.workers, &self.prep_batch, |j| self.pipe.prepare(j));
        let timeline = self.pipe.timeline;
        for (&job, prep) in self.prep_batch.iter().zip(prepared) {
            let tx = &timeline[job.idx];
            let idle = self.busy_until[job.r] <= tx.start_chip;
            if idle && prep.pre_hit {
                self.busy_until[job.r] = tx.end_chip();
            }
            self.q.schedule(
                tx.end_chip(),
                priority(prio::RECEPTION, 0),
                SimEvent::ReceptionComplete {
                    tx: job.idx,
                    receiver: job.r,
                    slot: job.slot,
                },
            );
            self.in_flight.insert(job.slot, (job, prep, idle));
        }
        self.prep_batch.clear();
    }

    /// Parallel decode into the fixed output slots.
    fn flush_decode(&mut self) {
        let done = fan_out(self.workers, &self.decode_batch, |(job, prep, idle)| {
            self.pipe.finish(job, prep, *idle)
        });
        for ((job, _, _), rec) in self.decode_batch.iter().zip(done) {
            self.out[job.slot] = Some(rec);
        }
        self.decode_batch.clear();
    }

    /// Dispatches the next event (or, once the queue drains, performs a
    /// final batch flush). Returns `false` when the run is complete.
    fn step(&mut self) -> bool {
        match self.q.pop() {
            Some((_, SimEvent::TxStart { tx: idx })) => {
                for &r in &self.receivers_of[self.pipe.timeline[idx].sender] {
                    let slot = self.next_slot[r];
                    self.next_slot[r] += 1;
                    self.prep_batch.push(RxJob { r, idx, slot });
                }
                if self.prep_batch.len() >= self.batch_len {
                    self.flush_prepare();
                }
            }
            Some((_, SimEvent::ReceptionComplete { slot, .. })) => {
                let entry = self
                    .in_flight
                    .remove(&slot)
                    .expect("completion event for an in-flight reception");
                self.decode_batch.push(entry);
                if self.decode_batch.len() >= self.batch_len {
                    self.flush_decode();
                }
            }
            Some((_, ev)) => unreachable!("unexpected {ev:?} in the testbed driver"),
            None => {
                if !self.prep_batch.is_empty() {
                    self.flush_prepare();
                    return true; // the flush scheduled completion events
                }
                if !self.decode_batch.is_empty() {
                    self.flush_decode();
                }
                return false;
            }
        }
        true
    }

    /// Total events dispatched so far — the checkpoint epoch counter.
    pub fn dispatched(&self) -> u64 {
        self.q.dispatched()
    }

    /// Drives the run until `events` total dispatches (a stable epoch
    /// boundary: the count is invariant to workers and batching) or
    /// until the run completes, whichever is first.
    pub fn run_events(&mut self, events: u64) {
        while self.q.dispatched() < events {
            if !self.step() {
                break;
            }
        }
    }

    /// Runs to completion and returns the receptions in receiver-major
    /// reference order.
    pub fn run_to_end(mut self) -> Vec<Reception> {
        while self.step() {}
        self.out
            .into_iter()
            .map(|r| r.expect("every slot decoded by its completion event"))
            .collect()
    }

    /// Checkpoints the driver. Flushes the pending batches first (see
    /// the type docs for why that is bit-identical), so the snapshot
    /// carries only queue + slots + busy horizons + in-flight captures.
    pub fn save(&mut self) -> RxSnapshot {
        if !self.prep_batch.is_empty() {
            self.flush_prepare();
        }
        if !self.decode_batch.is_empty() {
            self.flush_decode();
        }
        let (queue, next_seq, dispatched) = self.q.save_state();
        let cfg = self.pipe.cfg;
        let in_flight = self
            .in_flight
            .values()
            .map(|(job, _, idle)| {
                let tx = &self.pipe.timeline[job.idx];
                let rng = StdRng::seed_from_u64(reception_rng_seed(cfg.seed, tx.id, job.r));
                InFlightRx {
                    receiver: job.r,
                    tx_index: job.idx,
                    slot: job.slot,
                    rng: rng.state(),
                    idle: *idle,
                }
            })
            .collect();
        RxSnapshot {
            seed: cfg.seed,
            load_kbps: cfg.load_kbps,
            body_bytes: cfg.body_bytes,
            carrier_sense: cfg.carrier_sense,
            duration_s: cfg.duration_s,
            scheme: self.pipe.arm.scheme,
            postamble: self.pipe.arm.postamble,
            collect_symbols: self.pipe.arm.collect_symbols,
            timeline_fp: timeline_fingerprint(self.pipe.timeline),
            env_fp: env_fingerprint(self.pipe.env),
            kernel_signature: ppr_phy::simd::active_kernel_signature().into_bytes(),
            queue,
            next_seq,
            dispatched,
            busy_until: self.busy_until.clone(),
            next_slot: self.next_slot.clone(),
            out: self.out.clone(),
            in_flight,
        }
    }

    /// Rebuilds a driver from a checkpoint, validating the snapshot's
    /// identity fields against the run inputs and reconstructing every
    /// in-flight capture from its stored RNG stream position.
    pub fn restore(
        env: &'a RadioEnv,
        cfg: &'a SimConfig,
        timeline: &'a [Transmission],
        arm: &'a RxArm,
        workers: Option<usize>,
        batch_per_worker: usize,
        snap: &RxSnapshot,
    ) -> Result<Self, SnapError> {
        validate_rx_identity(env, cfg, timeline, arm, snap)?;
        let mut driver = ReceptionDriver::new(env, cfg, timeline, arm, workers, batch_per_worker);
        let nr = env.testbed.receivers.len();
        let total_jobs = driver.out.len();
        if snap.busy_until.len() != nr || snap.next_slot.len() != nr {
            return Err(SnapError::Corrupt(format!(
                "per-receiver tables sized {}/{} for {nr} receivers",
                snap.busy_until.len(),
                snap.next_slot.len()
            )));
        }
        if snap.out.len() != total_jobs {
            return Err(SnapError::Corrupt(format!(
                "slot table holds {} slots, run inputs produce {total_jobs}",
                snap.out.len()
            )));
        }
        for (key, ev) in &snap.queue {
            let ok = match *ev {
                SimEvent::TxStart { tx } => tx < timeline.len(),
                SimEvent::ReceptionComplete { tx, receiver, slot } => {
                    tx < timeline.len() && receiver < nr && slot < total_jobs
                }
                _ => false,
            };
            if !ok || key.seq >= snap.next_seq {
                return Err(SnapError::Corrupt(format!(
                    "queue entry {key:?} {ev:?} out of bounds"
                )));
            }
        }
        for f in &snap.in_flight {
            if f.receiver >= nr || f.tx_index >= timeline.len() || f.slot >= total_jobs {
                return Err(SnapError::Corrupt(format!(
                    "in-flight capture ({}, {}, {}) out of bounds",
                    f.receiver, f.tx_index, f.slot
                )));
            }
        }
        driver.q = BinaryHeapQueue::from_state(snap.queue.clone(), snap.next_seq, snap.dispatched);
        driver.busy_until = snap.busy_until.clone();
        driver.next_slot = snap.next_slot.clone();
        driver.out = snap.out.clone();
        // Reconstruct the in-flight captures: physics from the run
        // inputs, chip noise from the stored stream positions.
        let prepared = fan_out(driver.workers, &snap.in_flight, |f| {
            let job = RxJob {
                r: f.receiver,
                idx: f.tx_index,
                slot: f.slot,
            };
            (
                job,
                driver.pipe.prepare_with(&job, StdRng::from_state(f.rng)),
            )
        });
        for (f, (job, prep)) in snap.in_flight.iter().zip(prepared) {
            driver.in_flight.insert(job.slot, (job, prep, f.idle));
        }
        Ok(driver)
    }
}

/// Rejects a snapshot whose identity fields (seed, config, arm, or the
/// timeline/environment fingerprints) disagree with the run inputs the
/// caller is restoring into. Float fields compare by exact bits.
fn validate_rx_identity(
    env: &RadioEnv,
    cfg: &SimConfig,
    timeline: &[Transmission],
    arm: &RxArm,
    snap: &RxSnapshot,
) -> Result<(), SnapError> {
    if cfg.seed != snap.seed
        || cfg.load_kbps.to_bits() != snap.load_kbps.to_bits()
        || cfg.body_bytes != snap.body_bytes
        || cfg.carrier_sense != snap.carrier_sense
        || cfg.duration_s.to_bits() != snap.duration_s.to_bits()
    {
        return Err(SnapError::IdentityMismatch(
            "SimConfig differs from the snapshot's".into(),
        ));
    }
    if arm.scheme != snap.scheme
        || arm.postamble != snap.postamble
        || arm.collect_symbols != snap.collect_symbols
    {
        return Err(SnapError::IdentityMismatch(
            "RxArm differs from the snapshot's".into(),
        ));
    }
    let tfp = timeline_fingerprint(timeline);
    if tfp != snap.timeline_fp {
        return Err(SnapError::IdentityMismatch(format!(
            "timeline fingerprint {tfp:#018x} != snapshot {:#018x}",
            snap.timeline_fp
        )));
    }
    let efp = env_fingerprint(env);
    if efp != snap.env_fp {
        return Err(SnapError::IdentityMismatch(format!(
            "environment fingerprint {efp:#018x} != snapshot {:#018x}",
            snap.env_fp
        )));
    }
    Ok(())
}

/// The time-stepped batch loop that was the production path before the
/// event core (PR 2–7), kept as a pinned reference for driver parity
/// (`tests/event_parity.rs`) and selectable via the scenario
/// `driver=timestep` axis: it walks the receiver-major job list in
/// fixed-size batches with no event queue at all.
pub fn process_receptions_timestep(
    env: &RadioEnv,
    cfg: &SimConfig,
    timeline: &[Transmission],
    arm: &RxArm,
    workers: Option<usize>,
) -> Vec<Reception> {
    let pipe = RxPipeline::new(env, cfg, timeline, arm);
    let nr = env.testbed.receivers.len();

    // Job list in the reference evaluation order: receiver-major, then
    // timeline order. Below-squelch links never acquire; skip them here
    // exactly as the reference loop does.
    let mut jobs: Vec<RxJob> = (0..nr)
        .flat_map(|r| {
            timeline
                .iter()
                .enumerate()
                .filter(move |(_, tx)| env.s2r_mw[tx.sender][r] / pipe.noise >= SQUELCH_SNR)
                .map(move |(idx, _)| RxJob { r, idx, slot: 0 })
        })
        .collect();
    for (i, job) in jobs.iter_mut().enumerate() {
        job.slot = i;
    }

    let workers = workers
        .unwrap_or_else(|| worker_threads(jobs.len()))
        .clamp(1, jobs.len().max(1));

    // Batches bound peak memory: each prepared job holds a full packed
    // capture (~12 KB at 1500 B bodies), so only workers ×
    // BATCH_PER_WORKER of them are alive at once. Phase B — the
    // busy/idle chain — is the cheap sequential seam between the two
    // parallel phases.
    let mut out: Vec<Reception> = Vec::with_capacity(jobs.len());
    let mut busy_until = vec![0u64; nr];
    let batch_len = workers * BATCH_PER_WORKER;
    for batch in jobs.chunks(batch_len.max(1)) {
        let prepared = fan_out(workers, batch, |j| pipe.prepare(j));
        let resolved: Vec<(RxJob, PreparedRx, bool)> = batch
            .iter()
            .zip(prepared)
            .map(|(&job, prep)| {
                let tx = &timeline[job.idx];
                let idle = busy_until[job.r] <= tx.start_chip;
                if idle && prep.pre_hit {
                    busy_until[job.r] = tx.end_chip();
                }
                (job, prep, idle)
            })
            .collect();
        out.extend(fan_out(workers, &resolved, |(job, prep, idle)| {
            pipe.finish(job, prep, *idle)
        }));
    }
    out
}

/// A reception job paired with its snapshot capture, when the
/// checkpoint caught it in flight: the stored RNG stream words and the
/// already-resolved busy/idle verdict.
type ResumeJob = (RxJob, Option<([u64; 4], bool)>);

/// Completes a checkpointed run under the *time-stepped* driver: walks
/// the receiver-major job list in fixed-size batches, copying slots the
/// snapshot already decoded, replaying in-flight captures from their
/// stored RNG stream positions (with the busy/idle verdict the snapshot
/// resolved), and evaluating everything else exactly as
/// [`process_receptions_timestep`] would — continuing each receiver's
/// busy fold from the snapshot's horizon. The differential harness
/// ([`crate::diff`]) holds this bit-identical to the event driver's
/// resume.
pub fn resume_receptions_timestep(
    env: &RadioEnv,
    cfg: &SimConfig,
    timeline: &[Transmission],
    arm: &RxArm,
    snap: &RxSnapshot,
    workers: Option<usize>,
) -> Result<Vec<Reception>, SnapError> {
    validate_rx_identity(env, cfg, timeline, arm, snap)?;
    let pipe = RxPipeline::new(env, cfg, timeline, arm);
    let nr = env.testbed.receivers.len();

    let mut jobs: Vec<RxJob> = (0..nr)
        .flat_map(|r| {
            timeline
                .iter()
                .enumerate()
                .filter(move |(_, tx)| env.s2r_mw[tx.sender][r] / pipe.noise >= SQUELCH_SNR)
                .map(move |(idx, _)| RxJob { r, idx, slot: 0 })
        })
        .collect();
    for (i, job) in jobs.iter_mut().enumerate() {
        job.slot = i;
    }

    if snap.out.len() != jobs.len() || snap.busy_until.len() != nr {
        return Err(SnapError::Corrupt(format!(
            "slot table holds {} slots / {} horizons, run inputs produce {} / {nr}",
            snap.out.len(),
            snap.busy_until.len(),
            jobs.len()
        )));
    }
    let mut inflight: BTreeMap<usize, &InFlightRx> = BTreeMap::new();
    for f in &snap.in_flight {
        let job = jobs.get(f.slot).ok_or_else(|| {
            SnapError::Corrupt(format!(
                "in-flight capture at slot {} out of bounds",
                f.slot
            ))
        })?;
        if job.r != f.receiver || job.idx != f.tx_index {
            return Err(SnapError::IdentityMismatch(format!(
                "in-flight capture ({}, {}) at slot {} does not match the job table",
                f.receiver, f.tx_index, f.slot
            )));
        }
        inflight.insert(f.slot, f);
    }

    let workers = workers
        .unwrap_or_else(|| worker_threads(jobs.len()))
        .clamp(1, jobs.len().max(1));
    let batch_len = (workers * BATCH_PER_WORKER).max(1);

    let mut out: Vec<Option<Reception>> = snap.out.clone();
    let mut busy = snap.busy_until.clone();
    let todo: Vec<ResumeJob> = jobs
        .iter()
        .filter(|j| out[j.slot].is_none())
        .map(|&j| (j, inflight.get(&j.slot).map(|f| (f.rng, f.idle))))
        .collect();
    for batch in todo.chunks(batch_len) {
        let prepared = fan_out(workers, batch, |(job, src)| match src {
            Some((rng, _)) => pipe.prepare_with(job, StdRng::from_state(*rng)),
            None => pipe.prepare(job),
        });
        let resolved: Vec<(RxJob, PreparedRx, bool)> = batch
            .iter()
            .zip(prepared)
            .map(|(&(job, src), prep)| {
                let idle = match src {
                    // The snapshot resolved (and folded) this verdict
                    // before the checkpoint.
                    Some((_, idle)) => idle,
                    None => {
                        let tx = &timeline[job.idx];
                        let idle = busy[job.r] <= tx.start_chip;
                        if idle && prep.pre_hit {
                            busy[job.r] = tx.end_chip();
                        }
                        idle
                    }
                };
                (job, prep, idle)
            })
            .collect();
        let done = fan_out(workers, &resolved, |(job, prep, idle)| {
            pipe.finish(job, prep, *idle)
        });
        for ((job, _, _), rec) in resolved.iter().zip(done) {
            out[job.slot] = Some(rec);
        }
    }
    Ok(out
        .into_iter()
        .map(|r| r.expect("every slot decoded on resume"))
        .collect())
}

/// Completes a checkpointed run under the sequential `&[bool]`
/// *reference* implementation — the executable specification — with the
/// same slot semantics as [`resume_receptions_timestep`]. This is the
/// strongest leg of the differential harness: a restored snapshot must
/// finish identically under the packed SIMD pipeline and the plain
/// bool-vector spec.
pub fn resume_receptions_reference(
    env: &RadioEnv,
    cfg: &SimConfig,
    timeline: &[Transmission],
    arm: &RxArm,
    snap: &RxSnapshot,
) -> Result<Vec<Reception>, SnapError> {
    validate_rx_identity(env, cfg, timeline, arm, snap)?;
    let fast = FastRx::new(arm.postamble);
    let noise = env.model.noise_mw();
    let payload_len = arm.scheme.payload_len(cfg.body_bytes);
    let nr = env.testbed.receivers.len();
    if snap.busy_until.len() != nr {
        return Err(SnapError::Corrupt(format!(
            "{} busy horizons for {nr} receivers",
            snap.busy_until.len()
        )));
    }
    let inflight: BTreeMap<usize, &InFlightRx> =
        snap.in_flight.iter().map(|f| (f.slot, f)).collect();

    let mut out = Vec::with_capacity(snap.out.len());
    let mut slot = 0usize;
    for r in 0..nr {
        let heard: Vec<HeardTx> = timeline
            .iter()
            .map(|tx| HeardTx {
                id: tx.id,
                start_chip: tx.start_chip,
                len_chips: tx.len_chips,
                power_mw: env.s2r_mw[tx.sender][r],
            })
            .collect();

        let mut busy_until = snap.busy_until[r];
        for (i, tx) in timeline.iter().enumerate() {
            let signal = env.s2r_mw[tx.sender][r];
            if signal / noise < SQUELCH_SNR {
                continue;
            }
            let this_slot = slot;
            slot += 1;
            match snap.out.get(this_slot) {
                Some(Some(rec)) => {
                    out.push(rec.clone());
                    continue;
                }
                Some(None) => {}
                None => {
                    return Err(SnapError::Corrupt(format!(
                        "slot table holds {} slots, run inputs produce more",
                        snap.out.len()
                    )));
                }
            }

            let payload = payload_pattern(tx.sender, tx.seq, payload_len);
            let body = build_body_padded(&arm.scheme, &payload, cfg.body_bytes);
            let frame = Frame::new(r as u16, tx.sender as u16, tx.seq, body.clone());
            let chips = frame.chips();
            let profile_spans = interference_profile(&heard[i], &heard);
            let profile = ErrorProfile::from_interference(signal, noise, &profile_spans);

            let resolved_idle = match inflight.get(&this_slot) {
                Some(f) => {
                    if f.receiver != r || f.tx_index != i {
                        return Err(SnapError::IdentityMismatch(format!(
                            "in-flight capture ({}, {}) at slot {this_slot} does not match \
                             the job table",
                            f.receiver, f.tx_index
                        )));
                    }
                    Some((f.rng, f.idle))
                }
                None => None,
            };
            let mut rng = match resolved_idle {
                Some((state, _)) => StdRng::from_state(state),
                None => StdRng::seed_from_u64(reception_rng_seed(cfg.seed, tx.id, r)),
            };
            let corrupted = corrupt_chips(&chips, &profile, &mut rng);
            let idle = match resolved_idle {
                Some((_, idle)) => idle,
                None => busy_until <= tx.start_chip,
            };
            let (acq, rx_frame) = fast.receive(&frame, &corrupted, idle);
            // The snapshot already folded in-flight verdicts into the
            // busy horizon; only fresh evaluations advance it here.
            if resolved_idle.is_none() && acq == Acquisition::Preamble {
                busy_until = tx.end_chip();
            }

            let mut rec = Reception {
                tx_id: tx.id,
                sender: tx.sender,
                receiver: r,
                acquisition: acq,
                payload_len,
                delivered_correct: 0,
                delivered_claimed: 0,
                crc_ok: false,
                symbol_hints: Vec::new(),
                symbol_correct: Vec::new(),
            };
            if let Some(rx) = rx_frame {
                rec.crc_ok = rx.pkt_crc_ok();
                let delivered = arm.scheme.deliver(&rx);
                rec.delivered_claimed = delivered.iter().map(|d| d.bytes.len()).sum();
                rec.delivered_correct = correct_delivered_bytes(&delivered, &payload);
                if arm.collect_symbols {
                    if let (Some(hints), Some(g)) = (rx.body_symbol_hints(), rx.geometry()) {
                        let tx_symbols = bytes_to_symbols(&body);
                        let body_range = g.body();
                        let rx_syms =
                            rx.link_symbol_range(body_range.start * 2..body_range.end * 2);
                        rec.symbol_correct = rx_syms
                            .iter()
                            .zip(&tx_symbols)
                            .map(|(a, b)| a.symbol == *b)
                            .collect();
                        rec.symbol_hints = hints;
                    }
                }
            }
            out.push(rec);
        }
    }
    if slot != snap.out.len() {
        return Err(SnapError::Corrupt(format!(
            "slot table holds {} slots, run inputs produce {slot}",
            snap.out.len()
        )));
    }
    Ok(out)
}

/// The shared per-(transmission, receiver) pipeline stages: everything
/// both reception drivers do identically, so driver parity is about
/// *orchestration* (event order, batching, slots) and never about the
/// physics.
struct RxPipeline<'a> {
    env: &'a RadioEnv,
    cfg: &'a SimConfig,
    timeline: &'a [Transmission],
    arm: &'a RxArm,
    fast: FastRx,
    noise: f64,
    payload_len: usize,
    /// Per-receiver interference views of the whole timeline.
    heard: Vec<Vec<HeardTx>>,
}

impl<'a> RxPipeline<'a> {
    fn new(
        env: &'a RadioEnv,
        cfg: &'a SimConfig,
        timeline: &'a [Transmission],
        arm: &'a RxArm,
    ) -> Self {
        let nr = env.testbed.receivers.len();
        let heard: Vec<Vec<HeardTx>> = (0..nr)
            .map(|r| {
                timeline
                    .iter()
                    .map(|tx| HeardTx {
                        id: tx.id,
                        start_chip: tx.start_chip,
                        len_chips: tx.len_chips,
                        power_mw: env.s2r_mw[tx.sender][r],
                    })
                    .collect()
            })
            .collect();
        RxPipeline {
            env,
            cfg,
            timeline,
            arm,
            fast: FastRx::new(arm.postamble),
            noise: env.model.noise_mw(),
            payload_len: arm.scheme.payload_len(cfg.body_bytes),
            heard,
        }
    }

    /// Phase A: everything independent of the receiver's busy state.
    fn prepare(&self, job: &RxJob) -> PreparedRx {
        let tx = &self.timeline[job.idx];
        let rng = StdRng::seed_from_u64(reception_rng_seed(self.cfg.seed, tx.id, job.r));
        self.prepare_with(job, rng)
    }

    /// [`RxPipeline::prepare`] with an explicit RNG stream position —
    /// the restore path replays an in-flight capture from the position
    /// its snapshot recorded instead of re-deriving it from the seed.
    fn prepare_with(&self, job: &RxJob, mut rng: StdRng) -> PreparedRx {
        let tx = &self.timeline[job.idx];
        let signal = self.env.s2r_mw[tx.sender][job.r];
        let payload = payload_pattern(tx.sender, tx.seq, self.payload_len);
        let body = build_body_padded(&self.arm.scheme, &payload, self.cfg.body_bytes);
        let frame = Frame::new(job.r as u16, tx.sender as u16, tx.seq, body);
        let mut corrupted = frame.chip_words();
        let profile_spans = interference_profile(&self.heard[job.r][job.idx], &self.heard[job.r]);
        let profile = ErrorProfile::from_interference(signal, self.noise, &profile_spans);
        corrupt_chip_words_in_place(&mut corrupted, &profile, &mut rng);
        let pre_hit = self.fast.preamble_hit_words(&corrupted);
        PreparedRx {
            frame,
            payload,
            corrupted,
            pre_hit,
        }
    }

    /// Phase C: decode + delivery under the resolved idle flag.
    fn finish(&self, job: &RxJob, prep: &PreparedRx, idle: bool) -> Reception {
        let tx = &self.timeline[job.idx];
        let (acq, rx_frame) = self.fast.receive_words(&prep.frame, &prep.corrupted, idle);
        let mut rec = Reception {
            tx_id: tx.id,
            sender: tx.sender,
            receiver: job.r,
            acquisition: acq,
            payload_len: self.payload_len,
            delivered_correct: 0,
            delivered_claimed: 0,
            crc_ok: false,
            symbol_hints: Vec::new(),
            symbol_correct: Vec::new(),
        };
        if let Some(rx) = rx_frame {
            rec.crc_ok = rx.pkt_crc_ok();
            let delivered = self.arm.scheme.deliver(&rx);
            rec.delivered_claimed = delivered.iter().map(|d| d.bytes.len()).sum();
            rec.delivered_correct = correct_delivered_bytes(&delivered, &prep.payload);
            if self.arm.collect_symbols {
                if let (Some(hints), Some(g)) = (rx.body_symbol_hints(), rx.geometry()) {
                    let tx_symbols = bytes_to_symbols(&prep.frame.body);
                    let body_range = g.body();
                    let rx_syms = rx.link_symbol_range(body_range.start * 2..body_range.end * 2);
                    rec.symbol_correct = rx_syms
                        .iter()
                        .zip(&tx_symbols)
                        .map(|(a, b)| a.symbol == *b)
                        .collect();
                    rec.symbol_hints = hints;
                }
            }
        }
        rec
    }
}

/// The per-reception RNG seed: `(master seed, transmission id, receiver)`
/// — one independent noise stream per (transmission, receiver) pair,
/// which is what makes the parallel loop bit-identical to the sequential
/// one.
pub(crate) fn reception_rng_seed(seed: u64, tx_id: u64, receiver: usize) -> u64 {
    seed ^ (tx_id.wrapping_mul(0x2545_F491_4F6C_DD1D)) ^ ((receiver as u64) << 56)
}

/// Sequential `&[bool]` reference implementation of
/// [`process_receptions`] — the executable specification the packed
/// parallel path is tested against (`tests/packed_parity.rs`). Kept
/// simple on purpose; use [`process_receptions`] everywhere else.
pub fn process_receptions_reference(
    env: &RadioEnv,
    cfg: &SimConfig,
    timeline: &[Transmission],
    arm: &RxArm,
) -> Vec<Reception> {
    let fast = FastRx::new(arm.postamble);
    let noise = env.model.noise_mw();
    let payload_len = arm.scheme.payload_len(cfg.body_bytes);
    let mut out = Vec::new();

    for r in 0..env.testbed.receivers.len() {
        // Everything on the air contributes interference at r.
        let heard: Vec<HeardTx> = timeline
            .iter()
            .map(|tx| HeardTx {
                id: tx.id,
                start_chip: tx.start_chip,
                len_chips: tx.len_chips,
                power_mw: env.s2r_mw[tx.sender][r],
            })
            .collect();

        let mut busy_until = 0u64;
        for (i, tx) in timeline.iter().enumerate() {
            let signal = env.s2r_mw[tx.sender][r];
            // Below the sensitivity squelch the radio never acquires;
            // skip (the transmission still interferes with others via
            // `heard`).
            if signal / noise < SQUELCH_SNR {
                continue;
            }

            let payload = payload_pattern(tx.sender, tx.seq, payload_len);
            let body = build_body_padded(&arm.scheme, &payload, cfg.body_bytes);
            let frame = Frame::new(r as u16, tx.sender as u16, tx.seq, body.clone());
            let chips = frame.chips();

            // Interference profile over this frame at this receiver.
            let profile_spans = interference_profile(&heard[i], &heard);
            let profile = ErrorProfile::from_interference(signal, noise, &profile_spans);
            let mut rng = StdRng::seed_from_u64(reception_rng_seed(cfg.seed, tx.id, r));
            let corrupted = corrupt_chips(&chips, &profile, &mut rng);

            let idle = busy_until <= tx.start_chip;
            let (acq, rx_frame) = fast.receive(&frame, &corrupted, idle);
            if acq == Acquisition::Preamble {
                busy_until = tx.end_chip();
            }

            let mut rec = Reception {
                tx_id: tx.id,
                sender: tx.sender,
                receiver: r,
                acquisition: acq,
                payload_len,
                delivered_correct: 0,
                delivered_claimed: 0,
                crc_ok: false,
                symbol_hints: Vec::new(),
                symbol_correct: Vec::new(),
            };

            if let Some(rx) = rx_frame {
                rec.crc_ok = rx.pkt_crc_ok();
                let delivered = arm.scheme.deliver(&rx);
                rec.delivered_claimed = delivered.iter().map(|d| d.bytes.len()).sum();
                rec.delivered_correct = correct_delivered_bytes(&delivered, &payload);
                if arm.collect_symbols {
                    if let (Some(hints), Some(g)) = (rx.body_symbol_hints(), rx.geometry()) {
                        let tx_symbols = bytes_to_symbols(&body);
                        let body_range = g.body();
                        let rx_syms =
                            rx.link_symbol_range(body_range.start * 2..body_range.end * 2);
                        rec.symbol_correct = rx_syms
                            .iter()
                            .zip(&tx_symbols)
                            .map(|(a, b)| a.symbol == *b)
                            .collect();
                        rec.symbol_hints = hints;
                    }
                }
            }
            out.push(rec);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            load_kbps: 13.8,
            body_bytes: 200,
            carrier_sense: false,
            duration_s: 3.0,
            seed: 42,
        }
    }

    #[test]
    fn environment_has_link_diversity() {
        let env = RadioEnv::new(1);
        let links = env.links();
        assert!(links.len() >= 12, "only {} links", links.len());
        // Every receiver hears at least a few senders.
        for r in 0..4 {
            let n = links.iter().filter(|&&(_, rr)| rr == r).count();
            assert!(n >= 2, "receiver {r} hears {n}");
        }
        // Some links are strong (> 20 dB), some weaker (< 10 dB): the
        // wall-attenuated environment is nearly bimodal — weak links
        // mostly fall below the squelch entirely, as in the paper where
        // each sink hears only its 4-8 neighbors.
        let snrs: Vec<f64> = links.iter().map(|&(s, r)| env.link_snr(s, r)).collect();
        assert!(snrs.iter().any(|&x| x > 100.0), "no strong links");
        assert!(snrs.iter().any(|&x| x < 10.0), "no sub-10dB links");
        // Each sink hears a small neighborhood, not the whole floor.
        for r in 0..4 {
            let n = links.iter().filter(|&&(_, rr)| rr == r).count();
            assert!(n <= 12, "receiver {r} hears {n} senders — walls too thin");
        }
    }

    #[test]
    fn timeline_respects_own_radio_serialization() {
        let env = RadioEnv::new(1);
        let cfg = tiny_cfg();
        let timeline = generate_timeline(&env, &cfg);
        assert!(!timeline.is_empty());
        let mut last_end: Vec<u64> = vec![0; env.testbed.senders.len()];
        for tx in &timeline {
            assert!(
                tx.start_chip >= last_end[tx.sender],
                "sender {} overlaps itself",
                tx.sender
            );
            last_end[tx.sender] = tx.end_chip();
        }
    }

    #[test]
    fn timeline_is_deterministic() {
        let env = RadioEnv::new(1);
        let cfg = tiny_cfg();
        assert_eq!(generate_timeline(&env, &cfg), generate_timeline(&env, &cfg));
    }

    #[test]
    fn carrier_sense_reduces_overlap() {
        let env = RadioEnv::new(1);
        let mut cfg = tiny_cfg();
        cfg.duration_s = 5.0;
        cfg.load_kbps = 13.8;
        let no_cs = generate_timeline(&env, &cfg);
        cfg.carrier_sense = true;
        let cs = generate_timeline(&env, &cfg);
        let overlap = |tl: &[Transmission]| -> usize {
            let mut n = 0;
            for i in 0..tl.len() {
                for j in (i + 1)..tl.len() {
                    if tl[j].start_chip >= tl[i].end_chip() {
                        break;
                    }
                    n += 1;
                }
            }
            n
        };
        let (a, b) = (overlap(&no_cs), overlap(&cs));
        assert!(b < a, "CS overlaps {b} !< no-CS overlaps {a}");
    }

    #[test]
    fn receptions_deliver_on_clean_links() {
        let env = RadioEnv::new(1);
        let cfg = SimConfig {
            load_kbps: 3.5,
            duration_s: 6.0,
            ..tiny_cfg()
        };
        let timeline = generate_timeline(&env, &cfg);
        let arm = RxArm {
            scheme: DeliveryScheme::PacketCrc,
            postamble: true,
            collect_symbols: false,
        };
        let recs = process_receptions(&env, &cfg, &timeline, &arm);
        assert!(!recs.is_empty());
        // At light load the strongest links deliver complete packets.
        let full = recs.iter().filter(|r| r.crc_ok).count();
        assert!(
            full > 0,
            "no packet ever delivered over {} receptions",
            recs.len()
        );
        // Delivered-correct never exceeds the payload.
        for r in &recs {
            assert!(r.delivered_correct <= r.payload_len);
            assert!(r.delivered_claimed >= r.delivered_correct);
        }
    }

    #[test]
    fn identical_seeds_give_identical_receptions() {
        let env = RadioEnv::new(1);
        let cfg = tiny_cfg();
        let timeline = generate_timeline(&env, &cfg);
        let arm = RxArm {
            scheme: DeliveryScheme::Ppr { eta: 6 },
            postamble: true,
            collect_symbols: false,
        };
        let a = process_receptions(&env, &cfg, &timeline, &arm);
        let b = process_receptions(&env, &cfg, &timeline, &arm);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.delivered_correct, y.delivered_correct);
            assert_eq!(x.acquisition, y.acquisition);
        }
    }

    #[test]
    fn payload_pattern_is_stable_and_distinct() {
        assert_eq!(payload_pattern(3, 7, 100), payload_pattern(3, 7, 100));
        assert_ne!(payload_pattern(3, 7, 100), payload_pattern(3, 8, 100));
        assert_ne!(payload_pattern(2, 7, 100), payload_pattern(3, 7, 100));
    }

    #[test]
    fn body_padding_reaches_exact_size() {
        for scheme in [
            DeliveryScheme::PacketCrc,
            DeliveryScheme::FragmentedCrc { frag_payload: 50 },
            DeliveryScheme::FragmentedCrc { frag_payload: 5 },
            DeliveryScheme::Ppr { eta: 6 },
        ] {
            let payload_len = scheme.payload_len(1500);
            let payload = payload_pattern(0, 0, payload_len);
            let body = build_body_padded(&scheme, &payload, 1500);
            assert_eq!(body.len(), 1500, "{scheme:?}");
        }
    }
}
