//! Plain-text output helpers: aligned tables and gnuplot-style series,
//! so every experiment binary prints rows directly comparable to the
//! paper's tables and figures.

use std::fmt::Write as _;

/// A simple fixed-width table printer.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[c]);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Renders a named (x, y) series as two aligned columns — the text
/// equivalent of one curve in a paper figure.
pub fn series(name: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("# {name}\n");
    for (x, y) in points {
        let _ = writeln!(out, "{x:>10.4}  {y:>10.6}");
    }
    out
}

/// Formats a float compactly for table cells.
pub fn fmt(v: f64) -> String {
    if v.is_nan() {
        "n/a".to_string()
    } else if v == 0.0 || (v.abs() >= 0.01 && v.abs() < 10_000.0) {
        format!("{v:.3}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["scheme", "median"]);
        t.row(&["PPR".into(), "0.93".into()]);
        t.row(&["Packet CRC".into(), "0.41".into()]);
        let r = t.render();
        assert!(r.contains("scheme"));
        assert!(r.contains("Packet CRC"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn series_has_header_and_rows() {
        let s = series("fig-x", &[(0.0, 0.5), (1.0, 1.0)]);
        assert!(s.starts_with("# fig-x\n"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn fmt_handles_extremes() {
        assert_eq!(fmt(f64::NAN), "n/a");
        assert_eq!(fmt(0.5), "0.500");
        assert!(fmt(1e-6).contains('e'));
        assert!(fmt(1e9).contains('e'));
    }
}
