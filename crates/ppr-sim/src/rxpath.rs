//! Fast per-packet receive path for network-scale simulation.
//!
//! The full `ppr-mac` pipeline slides a 128-chip correlator over the
//! entire capture — faithful, but O(len × pattern) per packet. The
//! simulator already knows where each frame sits on the receiver's chip
//! clock, and the workspace tests establish that false delimiter locks in
//! noise are (by construction of the 7σ threshold) negligible. So the
//! fast path checks delimiter integrity *at the true offsets only* and
//! reuses the public `ppr-mac` decode entry points for everything else —
//! the decoded bits, hints, geometry and rollback logic are byte-for-byte
//! the ones the sliding pipeline produces (pinned by
//! `tests/fastpath_parity.rs` at the workspace root).

use ppr_mac::frame::Frame;
use ppr_mac::rx::{FrameReceiver, RxFrame};
use ppr_phy::chips::{ChipWords, CHIPS_PER_SYMBOL};
use ppr_phy::sync::{
    SyncPattern, DEFAULT_SYNC_THRESHOLD, POSTAMBLE_ZERO_SYMBOLS, PREAMBLE_ZERO_SYMBOLS,
};

/// How a packet was (or wasn't) acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquisition {
    /// Preamble intact and receiver idle: normal decode.
    Preamble,
    /// Preamble missed but postamble intact: rollback decode.
    Postamble,
    /// Neither delimiter usable: the packet is lost.
    None,
}

impl Acquisition {
    /// Wire tag for the snapshot format (stable across releases: the
    /// values are part of the versioned byte layout in
    /// [`crate::snapshot`], not an in-memory discriminant).
    pub fn to_tag(self) -> u8 {
        match self {
            Acquisition::Preamble => 0,
            Acquisition::Postamble => 1,
            Acquisition::None => 2,
        }
    }

    /// Inverse of [`Acquisition::to_tag`]; `None` for unknown tags
    /// (a corrupt or future-version snapshot).
    pub fn from_tag(tag: u8) -> Option<Acquisition> {
        match tag {
            0 => Some(Acquisition::Preamble),
            1 => Some(Acquisition::Postamble),
            2 => Some(Acquisition::None),
            _ => None,
        }
    }
}

/// Per-packet receiver: delimiter checks at known offsets + `ppr-mac`
/// decode.
#[derive(Debug, Clone)]
pub struct FastRx {
    preamble: SyncPattern,
    postamble: SyncPattern,
    receiver: FrameReceiver,
    threshold: u32,
    /// Whether the postamble correlator is enabled (experiment arm).
    pub postamble_decoding: bool,
}

impl FastRx {
    /// Creates the fast path; `postamble_decoding` selects the
    /// experiment arm.
    pub fn new(postamble_decoding: bool) -> Self {
        FastRx {
            preamble: SyncPattern::preamble(),
            postamble: SyncPattern::postamble(),
            receiver: FrameReceiver::default(),
            threshold: DEFAULT_SYNC_THRESHOLD,
            postamble_decoding,
        }
    }

    /// Chip offset (within a frame's chips) where the preamble *scan
    /// pattern* begins: the last two zero symbols before the SFD.
    pub fn preamble_pattern_offset() -> usize {
        (PREAMBLE_ZERO_SYMBOLS - 2) * CHIPS_PER_SYMBOL
    }

    /// Chip offset within the frame where the postamble scan pattern
    /// begins, given the total frame length in chips.
    pub fn postamble_pattern_offset(frame_chips: usize) -> usize {
        let post_len = ppr_phy::sync::tx_postamble_chips().len();
        frame_chips - post_len + (POSTAMBLE_ZERO_SYMBOLS - 2) * CHIPS_PER_SYMBOL
    }

    /// Attempts to receive one frame from its corrupted chip capture.
    ///
    /// `receiver_idle` reports whether the receiver was free to lock when
    /// this frame's preamble arrived (false while it is mid-decode of an
    /// earlier frame — the undesirable-capture scenario postambles
    /// rescue).
    pub fn receive(
        &self,
        frame: &Frame,
        corrupted_chips: &[bool],
        receiver_idle: bool,
    ) -> (Acquisition, Option<RxFrame>) {
        let pre_off = Self::preamble_pattern_offset();
        let preamble_ok =
            receiver_idle && self.preamble.distance_at(corrupted_chips, pre_off) <= self.threshold;
        if preamble_ok {
            let data_start = (pre_off + self.preamble.len_chips()) as i64;
            let rx = self
                .receiver
                .decode_from_preamble(corrupted_chips, data_start);
            return (Acquisition::Preamble, Some(rx));
        }
        if self.postamble_decoding {
            let post_off = Self::postamble_pattern_offset(frame.chips_len());
            if self.postamble.distance_at(corrupted_chips, post_off) <= self.threshold {
                if let Some(rx) = self
                    .receiver
                    .decode_from_postamble(corrupted_chips, post_off)
                {
                    return (Acquisition::Postamble, Some(rx));
                }
            }
        }
        (Acquisition::None, None)
    }

    /// Does the preamble pattern of a packed capture survive within the
    /// sync threshold? This is the only per-reception fact the busy/idle
    /// chain of a receiver needs, so the parallel reception loop can
    /// resolve acquisition order without decoding anything.
    pub fn preamble_hit_words(&self, corrupted_chips: &ChipWords) -> bool {
        self.preamble
            .distance_at_words(corrupted_chips, Self::preamble_pattern_offset())
            <= self.threshold
    }

    /// Word-wise equivalent of [`Self::receive`] over a packed capture;
    /// bit-identical acquisition and decode output (pinned by
    /// `tests/packed_parity.rs`).
    pub fn receive_words(
        &self,
        frame: &Frame,
        corrupted_chips: &ChipWords,
        receiver_idle: bool,
    ) -> (Acquisition, Option<RxFrame>) {
        let pre_off = Self::preamble_pattern_offset();
        let preamble_ok = receiver_idle
            && self.preamble.distance_at_words(corrupted_chips, pre_off) <= self.threshold;
        if preamble_ok {
            let data_start = (pre_off + self.preamble.len_chips()) as i64;
            let rx = self
                .receiver
                .decode_from_preamble_words(corrupted_chips, data_start);
            return (Acquisition::Preamble, Some(rx));
        }
        if self.postamble_decoding {
            let post_off = Self::postamble_pattern_offset(frame.chips_len());
            if self.postamble.distance_at_words(corrupted_chips, post_off) <= self.threshold {
                if let Some(rx) = self
                    .receiver
                    .decode_from_postamble_words(corrupted_chips, post_off)
                {
                    return (Acquisition::Postamble, Some(rx));
                }
            }
        }
        (Acquisition::None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn clean_frame_acquired_via_preamble() {
        let frame = Frame::new(1, 2, 3, vec![0xAB; 100]);
        let chips = frame.chips();
        let fast = FastRx::new(true);
        let (acq, rx) = fast.receive(&frame, &chips, true);
        assert_eq!(acq, Acquisition::Preamble);
        let rx = rx.unwrap();
        assert_eq!(rx.header, Some(frame.header));
        assert!(rx.pkt_crc_ok());
    }

    #[test]
    fn busy_receiver_falls_back_to_postamble() {
        let frame = Frame::new(1, 2, 3, vec![0xCD; 80]);
        let chips = frame.chips();
        let fast = FastRx::new(true);
        let (acq, rx) = fast.receive(&frame, &chips, false);
        assert_eq!(acq, Acquisition::Postamble);
        assert!(rx.unwrap().pkt_crc_ok());
    }

    #[test]
    fn busy_receiver_without_postamble_loses_frame() {
        let frame = Frame::new(1, 2, 3, vec![0xCD; 80]);
        let chips = frame.chips();
        let fast = FastRx::new(false);
        let (acq, rx) = fast.receive(&frame, &chips, false);
        assert_eq!(acq, Acquisition::None);
        assert!(rx.is_none());
    }

    #[test]
    fn destroyed_preamble_recovered_by_postamble_arm_only() {
        let frame = Frame::new(4, 5, 6, vec![0x11; 60]);
        let mut chips = frame.chips();
        let mut rng = StdRng::seed_from_u64(1);
        let pre_len = ppr_phy::sync::tx_preamble_chips().len();
        for c in chips.iter_mut().take(pre_len) {
            *c = rng.gen();
        }
        let (acq_on, rx_on) = FastRx::new(true).receive(&frame, &chips, true);
        assert_eq!(acq_on, Acquisition::Postamble);
        assert_eq!(rx_on.unwrap().body_bytes().unwrap(), vec![0x11; 60]);
        let (acq_off, _) = FastRx::new(false).receive(&frame, &chips, true);
        assert_eq!(acq_off, Acquisition::None);
    }

    #[test]
    fn fully_jammed_frame_is_lost() {
        let frame = Frame::new(4, 5, 6, vec![0x11; 60]);
        let mut rng = StdRng::seed_from_u64(2);
        let chips: Vec<bool> = (0..frame.chips_len()).map(|_| rng.gen()).collect();
        let (acq, _) = FastRx::new(true).receive(&frame, &chips, true);
        assert_eq!(acq, Acquisition::None);
    }

    #[test]
    fn receive_words_matches_reference_across_scenarios() {
        let frame = Frame::new(2, 5, 9, vec![0x6B; 120]);
        let mut rng = StdRng::seed_from_u64(33);
        for scenario in 0..4 {
            let mut chips = frame.chips();
            match scenario {
                0 => {} // clean
                1 => {
                    // destroyed preamble
                    let pre_len = ppr_phy::sync::tx_preamble_chips().len();
                    for c in chips.iter_mut().take(pre_len) {
                        *c = rng.gen();
                    }
                }
                2 => {
                    // fully jammed
                    for c in chips.iter_mut() {
                        *c = rng.gen();
                    }
                }
                _ => {
                    // scattered errors
                    for _ in 0..500 {
                        let i = rng.gen_range(0..chips.len());
                        chips[i] = !chips[i];
                    }
                }
            }
            let packed = ChipWords::from_bools(&chips);
            for postamble in [false, true] {
                let fast = FastRx::new(postamble);
                for idle in [false, true] {
                    let (acq_a, rx_a) = fast.receive(&frame, &chips, idle);
                    let (acq_b, rx_b) = fast.receive_words(&frame, &packed, idle);
                    assert_eq!(acq_a, acq_b, "scenario {scenario} idle {idle}");
                    assert_eq!(rx_a, rx_b, "scenario {scenario} idle {idle}");
                    assert_eq!(
                        acq_b == Acquisition::Preamble,
                        idle && fast.preamble_hit_words(&packed)
                    );
                }
            }
        }
    }

    #[test]
    fn pattern_offsets_match_frame_layout() {
        let frame = Frame::new(0, 0, 0, vec![0; 10]);
        let chips = frame.chips();
        let pre = SyncPattern::preamble();
        let post = SyncPattern::postamble();
        assert_eq!(
            pre.distance_at(&chips, FastRx::preamble_pattern_offset()),
            0
        );
        assert_eq!(
            post.distance_at(&chips, FastRx::postamble_pattern_offset(chips.len())),
            0
        );
    }
}
