//! # `ppr-sim` — the 27-node testbed as a deterministic simulation
//!
//! Reproduces the paper's experimental apparatus (§6–7): the Fig. 7
//! indoor floor plan, Poisson traffic at the published offered loads,
//! carrier-sense arms, and the full receive pipeline per (transmission,
//! receiver) pair — then one experiment module per table and figure.
//!
//! Everything is seeded: the same [`network::SimConfig`] always produces
//! the same timeline, the same chip errors and the same numbers, across
//! schemes and postamble arms (the paper's trace post-processing
//! methodology).
//!
//! * [`geometry`] — the floor plan.
//! * [`traffic`] — Poisson packet arrivals.
//! * [`network`] — timeline generation + reception processing.
//! * [`rxpath`] — known-offset delimiter checks + `ppr-mac` decode.
//! * [`metrics`] — CDF/CCDF and hint-statistics collectors.
//! * [`experiments`] — Fig. 3 through Fig. 16 and Tables 1–2.
//! * [`report`] — plain-text tables/series matching the paper's plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod geometry;
pub mod metrics;
pub mod network;
pub mod report;
pub mod rxpath;
pub mod traffic;

pub use geometry::{Point, Testbed};
pub use metrics::{Cdf, HintHistogram, MissRunHistogram};
pub use network::{
    generate_timeline, process_receptions, RadioEnv, Reception, RxArm, SimConfig, Transmission,
};
pub use rxpath::{Acquisition, FastRx};
