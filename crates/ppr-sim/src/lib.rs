//! # `ppr-sim` — the 27-node testbed as a deterministic simulation
//!
//! Reproduces the paper's experimental apparatus (§6–7): the Fig. 7
//! indoor floor plan, Poisson traffic at the published offered loads,
//! carrier-sense arms, and the full receive pipeline per (transmission,
//! receiver) pair — then one experiment module per table and figure.
//!
//! Everything is seeded: the same [`network::SimConfig`] always produces
//! the same timeline, the same chip errors and the same numbers, across
//! schemes and postamble arms (the paper's trace post-processing
//! methodology).
//!
//! * [`adversary`] — deterministic jammer and fault-injection actors
//!   (pulse / random / sweeping / reactive jamming, node churn, link
//!   degradation) for the robustness experiments.
//! * [`geometry`] — the floor plan, plus grid / random-geometric / mesh
//!   layouts.
//! * [`event`] — the deterministic discrete-event core
//!   (`(time, priority, seq)`-keyed queue).
//! * [`spatial`] — uniform-grid interference sharding for mesh-scale
//!   dispatch.
//! * [`traffic`] — Poisson packet arrivals.
//! * [`network`] — timeline generation + reception processing (event
//!   driven, with the time-stepped loop kept as a pinned reference).
//! * [`rxpath`] — known-offset delimiter checks + `ppr-mac` decode.
//! * [`metrics`] — CDF/CCDF and hint-statistics collectors.
//! * [`env`](mod@env) — `PPR_DURATION` / `PPR_THREADS` parsing, in one
//!   place.
//! * [`scenario`] — every experiment knob, with builder > env > default
//!   precedence.
//! * [`snapshot`] — versioned binary checkpoints of simulator state
//!   (resume bit-identically, in this process or another).
//! * [`diff`] — the differential harness: restore one checkpoint under
//!   every backend/driver combination and diff the reception streams.
//! * [`results`] — typed experiment results with text and JSON
//!   rendering.
//! * [`experiments`] — Fig. 3 through Fig. 16 and Tables 1–2, each an
//!   [`experiments::Experiment`] in the registry.
//! * [`report`] — plain-text tables/series matching the paper's plots.
//!
//! ## Running experiments
//!
//! The `ppr-cli` binary drives the registry (`ppr-cli run --all`,
//! `ppr-cli --list`). Programmatically:
//!
//! ```
//! use ppr_sim::experiments::{find, registry};
//! use ppr_sim::scenario::ScenarioBuilder;
//!
//! let scenario = ScenarioBuilder::new().duration_s(1.0).build();
//! let exp = find("fig15").expect("registered");
//! let result = exp.run(&scenario);
//! assert_eq!(result.id, "fig15");
//! assert!(!result.render_text().is_empty());
//! assert!(registry().len() >= 14);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod diff;
pub mod env;
pub mod event;
pub mod experiments;
pub mod geometry;
pub mod metrics;
pub mod network;
pub mod report;
pub mod results;
pub mod rxpath;
pub mod scenario;
pub mod snapshot;
pub mod spatial;
pub mod traffic;

pub use adversary::{AdversaryState, FaultPlan, JammerSpec};
pub use diff::{DiffBackend, Divergence};
pub use event::{BinaryHeapQueue, EventKey, EventQueue, SimEvent};
pub use experiments::{find, registry, Experiment};
pub use geometry::{Point, Testbed};
pub use metrics::{Cdf, HintHistogram, MissRunHistogram};
pub use network::{
    generate_timeline, process_receptions, RadioEnv, Reception, RxArm, SimConfig, Transmission,
};
pub use results::{Block, Cell, ExperimentResult, Json, TableBlock};
pub use rxpath::{Acquisition, FastRx};
pub use scenario::{Backend, Scenario, ScenarioBuilder};
pub use snapshot::{MeshSnapshot, RxSnapshot, SnapError};
pub use spatial::SpatialIndex;
