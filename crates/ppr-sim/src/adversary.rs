//! Deterministic adversary actors: jammers and fault injection.
//!
//! Everything hostile in a run lives here — and plugs into the same
//! event core and channel path as legitimate traffic, so adversarial
//! runs inherit the determinism contract wholesale (no `HashMap`, no
//! wall clock, no `thread_rng`; the ppr-lint `determinism` rule covers
//! this module like every other sim module):
//!
//! * **Jammers** ([`JammerSpec`], [`AdversaryState`]) are event-driven
//!   actors. Each burst is a `SimEvent::JamBurst` dispatched through
//!   the queue; at pop time the actor records the burst's chip
//!   interval and (for the self-clocked types) schedules its successor
//!   up to [`ADVERSARY_HORIZON`]. Recorded bursts become ordinary
//!   [`ppr_channel::overlap::HeardTx`] interferers at decode flush —
//!   corruption flows through the existing interference → error-profile
//!   → chip-corruption path, never a side channel.
//!
//!   Four types: **pulse** (periodic, leading `duty` fraction of each
//!   period jammed), **rand** (Bernoulli duty-cycle per
//!   [`RAND_SLOT`]-chip slot, drawn from the jammer's own RNG stream),
//!   **sweep** (a pulse train whose emitter position walks the
//!   deployment diagonal), and **react** (senses frame starts it can
//!   hear — same squelch rule as a receiver — and jams the remainder
//!   of the sensed frame after a configurable sense→jam turnaround
//!   delay, one burst in flight at a time).
//!
//! * **RNG stream slots**: the jammer draws from
//!   [`adversary_seed`]`(seed, slot 0)`; the fault planner from slot 1;
//!   link-degradation windows from slot 2. Like the per-reception
//!   streams, each actor owns its stream, so no evaluation order can
//!   perturb another actor's draws.
//!
//! * **Fault injection** ([`FaultPlan`]): node crash/restart churn as
//!   pre-planned `SimEvent::NodeFault` events (a crash at `t`, its
//!   restart at `t + downtime`), plus link-degradation windows (a
//!   node's noise floor multiplied for an interval). The plan is a
//!   pure function of `(seed, churn rate)` — drivers recompute it on
//!   restore instead of serializing it.
//!
//! Burst timing is safe by construction: a reception's decode flush
//! happens at or after its completion time, and a `JamBurst` event for
//! a burst starting at `t` pops at `t` — before any reception ending
//! after `t` can flush. So the grow-only burst list is always complete
//! for the receptions being decoded.

use crate::geometry::Point;
use ppr_channel::jamming::Burst;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How far past chip 0 the self-clocked jammers keep emitting, chips
/// (2²² ≈ 2.1 s at 2 Mchip/s — comfortably past any mesh flood's
/// repair tail). Without a horizon the event queue would never drain.
pub const ADVERSARY_HORIZON: u64 = 1 << 22;

/// Slot length of the random (Bernoulli duty-cycle) jammer, chips.
pub const RAND_SLOT: u64 = 1 << 15;

/// Steps of the sweeping jammer's walk along the deployment diagonal.
pub const SWEEP_STEPS: u64 = 16;

/// Downtime bounds for a crashed node, chips.
pub const DOWNTIME_MIN: u64 = 1 << 16;
/// Upper downtime bound, chips.
pub const DOWNTIME_MAX: u64 = 1 << 18;

/// Length bounds of one link-degradation window, chips.
pub const DEGRADE_MIN: u64 = 1 << 17;
/// Upper degradation-window bound, chips.
pub const DEGRADE_MAX: u64 = 1 << 19;

/// Noise-floor multiplier inside a degradation window (≈ 6 dB).
pub const DEGRADE_FACTOR: f64 = 4.0;

/// Seed of an adversary actor's RNG stream: `(master seed, stream
/// slot)`. Same construction as the per-reception streams — one
/// independent stream per actor, so no actor's draws can perturb
/// another's.
pub fn adversary_seed(seed: u64, slot: u64) -> u64 {
    seed ^ slot.wrapping_mul(0x9E6C_63D0_976A_8CA7) ^ 0x4A4D_4D45_5253 // "JMMERS"
}

/// The jammer configuration, parsed from the `jammer` scenario axis.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum JammerSpec {
    /// No jammer (the default; adversarial machinery fully disabled).
    #[default]
    Off,
    /// Periodic pulse: the leading `duty` fraction of every `period`
    /// chips is jammed.
    Pulse {
        /// Pulse period, chips.
        period: u64,
        /// Jammed fraction of each period, `(0, 1]`.
        duty: f64,
    },
    /// Bernoulli duty-cycle: each [`RAND_SLOT`]-chip slot is jammed
    /// with probability `duty`, drawn from the jammer's RNG stream.
    Rand {
        /// Per-slot jamming probability, `(0, 1]`.
        duty: f64,
    },
    /// A pulse train whose emitter walks the deployment diagonal one
    /// step per burst ([`SWEEP_STEPS`] steps, then wraps).
    Sweep {
        /// Pulse period, chips.
        period: u64,
        /// Jammed fraction of each period, `(0, 1]`.
        duty: f64,
    },
    /// Reactive: senses frame starts it can hear and jams the rest of
    /// the sensed frame after `delay` chips of sense→jam turnaround.
    React {
        /// Sense→jam turnaround delay, chips.
        delay: u64,
    },
}

impl JammerSpec {
    /// The axis value name of the variant.
    pub fn name(&self) -> &'static str {
        match self {
            JammerSpec::Off => "off",
            JammerSpec::Pulse { .. } => "pulse",
            JammerSpec::Rand { .. } => "rand",
            JammerSpec::Sweep { .. } => "sweep",
            JammerSpec::React { .. } => "react",
        }
    }

    /// The axis-value rendering (inverse of [`JammerSpec::parse`]).
    pub fn render(&self) -> String {
        match *self {
            JammerSpec::Off => "off".into(),
            JammerSpec::Pulse { period, duty } => format!("pulse:{period}:{duty}"),
            JammerSpec::Rand { duty } => format!("rand:{duty}"),
            JammerSpec::Sweep { period, duty } => format!("sweep:{period}:{duty}"),
            JammerSpec::React { delay } => format!("react:{delay}"),
        }
    }

    /// Parses a `jammer` axis value:
    /// `off | pulse:PERIOD:DUTY | rand:DUTY | sweep:PERIOD:DUTY |
    /// react:DELAY` (periods/delays in chips, duty in `(0, 1]`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let err = || {
            format!(
                "unknown jammer {s:?} (want off | pulse:PERIOD:DUTY | rand:DUTY | \
                 sweep:PERIOD:DUTY | react:DELAY)"
            )
        };
        let parts: Vec<&str> = s.split(':').collect();
        let period = |v: &str| v.parse::<u64>().ok().filter(|&p| p >= 64);
        let duty = |v: &str| v.parse::<f64>().ok().filter(|d| *d > 0.0 && *d <= 1.0);
        match parts.as_slice() {
            ["off"] => Ok(JammerSpec::Off),
            ["pulse", p, d] => match (period(p), duty(d)) {
                (Some(period), Some(duty)) => Ok(JammerSpec::Pulse { period, duty }),
                _ => Err(err()),
            },
            ["rand", d] => duty(d)
                .map(|duty| JammerSpec::Rand { duty })
                .ok_or_else(err),
            ["sweep", p, d] => match (period(p), duty(d)) {
                (Some(period), Some(duty)) => Ok(JammerSpec::Sweep { period, duty }),
                _ => Err(err()),
            },
            ["react", v] => v
                .parse::<u64>()
                .ok()
                .map(|delay| JammerSpec::React { delay })
                .ok_or_else(err),
            _ => Err(err()),
        }
    }

    /// Identity words for snapshot validation: a variant tag plus the
    /// two parameter slots (unused slots zero; duties as `f64` bits).
    pub fn identity_words(&self) -> (u8, u64, u64) {
        match *self {
            JammerSpec::Off => (0, 0, 0),
            JammerSpec::Pulse { period, duty } => (1, period, duty.to_bits()),
            JammerSpec::Rand { duty } => (2, duty.to_bits(), 0),
            JammerSpec::Sweep { period, duty } => (3, period, duty.to_bits()),
            JammerSpec::React { delay } => (4, delay, 0),
        }
    }
}

/// One recorded jamming burst: the chip interval plus the emitter's
/// position when it fired (the sweep jammer moves between bursts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JamBurstRec {
    /// First jammed chip.
    pub start: u64,
    /// One-past-last jammed chip.
    pub end: u64,
    /// Emitter x position, meters.
    pub x: f64,
    /// Emitter y position, meters.
    pub y: f64,
}

impl JamBurstRec {
    /// The burst as a channel-layer interval.
    pub fn burst(&self) -> Burst {
        Burst {
            start: self.start,
            end: self.end,
        }
    }

    /// The emitter position.
    pub fn pos(&self) -> Point {
        Point::new(self.x, self.y)
    }
}

/// A pre-planned fault event: at `time`, `node` goes down
/// (`up == false`) or comes back (`up == true`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Chip time of the fault.
    pub time: u64,
    /// Affected node.
    pub node: usize,
    /// Restart (`true`) or crash (`false`).
    pub up: bool,
}

/// A link-degradation window: `node`'s noise floor is multiplied by
/// [`DEGRADE_FACTOR`] over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeWindow {
    /// Affected node.
    pub node: usize,
    /// First degraded chip.
    pub start: u64,
    /// One-past-last degraded chip.
    pub end: u64,
}

/// The full fault-injection plan: crash/restart churn events plus
/// link-degradation windows. A pure function of `(seed, churn rate,
/// node count, protected node)` — see [`FaultPlan::generate`] — so
/// restore recomputes it instead of deserializing it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Crash/restart events, in generation order (each crash is
    /// immediately followed by its restart; times are not sorted —
    /// the event queue orders them).
    pub faults: Vec<FaultEvent>,
    /// Link-degradation windows, in generation order.
    pub degrade: Vec<DegradeWindow>,
}

impl FaultPlan {
    /// Plans `churn` crashes per simulated second over the adversary
    /// horizon (and as many degradation windows), never touching
    /// `protect` (the flood source — crashing it would trivially kill
    /// every run). Deterministic: stream slots 1 (churn) and 2
    /// (degradation) of `seed`.
    pub fn generate(seed: u64, churn: f64, nodes: usize, protect: usize) -> FaultPlan {
        let mut plan = FaultPlan::default();
        if churn <= 0.0 || nodes < 2 {
            return plan;
        }
        let horizon_s = ADVERSARY_HORIZON as f64 / ppr_phy::chips::CHIP_RATE_HZ as f64;
        let count = (churn * horizon_s).round() as usize;
        let mut crng = StdRng::seed_from_u64(adversary_seed(seed, 1));
        for _ in 0..count {
            let mut node = (crng.gen::<u64>() % nodes as u64) as usize;
            if node == protect {
                node = (node + 1) % nodes;
            }
            let at = crng.gen::<u64>() % ADVERSARY_HORIZON;
            let down = DOWNTIME_MIN + crng.gen::<u64>() % (DOWNTIME_MAX - DOWNTIME_MIN);
            plan.faults.push(FaultEvent {
                time: at,
                node,
                up: false,
            });
            plan.faults.push(FaultEvent {
                time: at + down,
                node,
                up: true,
            });
        }
        let mut drng = StdRng::seed_from_u64(adversary_seed(seed, 2));
        for _ in 0..count {
            let mut node = (drng.gen::<u64>() % nodes as u64) as usize;
            if node == protect {
                node = (node + 1) % nodes;
            }
            let at = drng.gen::<u64>() % ADVERSARY_HORIZON;
            let len = DEGRADE_MIN + drng.gen::<u64>() % (DEGRADE_MAX - DEGRADE_MIN);
            plan.degrade.push(DegradeWindow {
                node,
                start: at,
                end: at + len,
            });
        }
        plan
    }

    /// Noise multiplier for `node` over the reception window
    /// `[from, to)`: [`DEGRADE_FACTOR`] when any degradation window
    /// overlaps it, 1.0 otherwise.
    pub fn noise_factor(&self, node: usize, from: u64, to: u64) -> f64 {
        let hit = self
            .degrade
            .iter()
            .any(|w| w.node == node && w.start < to && from < w.end);
        if hit {
            DEGRADE_FACTOR
        } else {
            1.0
        }
    }
}

/// The jammer actor: one emitter driven by `SimEvent::JamBurst` events.
///
/// Stateful fields live under the snapshot contract — a checkpoint in
/// the middle of a burst train (or with a reactive burst in flight)
/// must resume bit-identically, so the RNG words, the busy horizon,
/// the sweep step, the scheduled-burst FIFO and the grow-only record
/// are all serialized; the emitter's *base* position is derived from
/// the deployment side and rebuilt.
// ppr-lint: region(snapshot-state) begin adversary jammer actor state
pub struct AdversaryState {
    /// snapshot: identity — the jammer spec, validated on restore.
    spec: JammerSpec,
    /// snapshot: rebuilt — deployment square side, derived from the
    /// placement (which is itself seed-derived).
    side: f64,
    /// snapshot: serialized — the jammer's own RNG stream (slot 0)
    /// as its four xoshiro state words.
    rng: StdRng,
    /// snapshot: serialized — earliest chip the reactive jammer may
    /// schedule its next burst (sense→jam pipeline is depth one).
    busy_until: u64,
    /// snapshot: serialized — the sweep jammer's walk step.
    sweep_idx: u64,
    /// snapshot: serialized — reactive bursts scheduled but not yet
    /// popped, in schedule (= chip) order.
    scheduled: Vec<(u64, u64)>,
    /// snapshot: serialized — every burst emitted so far, in pop
    /// order (grow-only; decode flushes read it).
    bursts: Vec<JamBurstRec>,
}
// ppr-lint: region(snapshot-state) end

impl AdversaryState {
    /// Builds the actor for a deployment square of side `side` meters.
    /// The emitter sits at the square's center (maximum reach); the
    /// sweep variant walks the diagonal from there.
    pub fn new(spec: JammerSpec, seed: u64, side: f64) -> Self {
        AdversaryState {
            spec,
            side,
            rng: StdRng::seed_from_u64(adversary_seed(seed, 0)),
            busy_until: 0,
            sweep_idx: 0,
            scheduled: Vec::new(),
            bursts: Vec::new(),
        }
    }

    /// The configured spec.
    pub fn spec(&self) -> JammerSpec {
        self.spec
    }

    /// Is there a jammer at all?
    pub fn active(&self) -> bool {
        self.spec != JammerSpec::Off
    }

    /// Every burst emitted so far.
    pub fn bursts(&self) -> &[JamBurstRec] {
        &self.bursts
    }

    /// Chip time of the first `JamBurst` event to schedule at driver
    /// init (`None` for `Off` and for the purely reactive jammer).
    pub fn initial_burst_time(&self) -> Option<u64> {
        match self.spec {
            JammerSpec::Off | JammerSpec::React { .. } => None,
            JammerSpec::Pulse { .. } | JammerSpec::Rand { .. } | JammerSpec::Sweep { .. } => {
                Some(0)
            }
        }
    }

    /// The emitter position at sweep step `idx`: the square's center
    /// for the stationary types, a diagonal walk for sweep.
    fn pos_at(&self, idx: u64) -> Point {
        match self.spec {
            JammerSpec::Sweep { .. } => {
                let f = (idx % SWEEP_STEPS) as f64 / SWEEP_STEPS as f64;
                Point::new(f * self.side, f * self.side)
            }
            _ => Point::new(self.side / 2.0, self.side / 2.0),
        }
    }

    /// The emitter's current position (for sensing-range checks).
    pub fn pos(&self) -> Point {
        self.pos_at(self.sweep_idx)
    }

    /// Handles a popped `JamBurst` event at chip `now`. Records the
    /// burst (if this slot jams) and returns the time of the next
    /// self-scheduled `JamBurst`, if any. The caller owns the queue;
    /// the actor only names times.
    pub fn on_jam_burst(&mut self, now: u64) -> Option<u64> {
        match self.spec {
            JammerSpec::Off => None,
            JammerSpec::Pulse { period, duty } => {
                let on = ((period as f64 * duty) as u64).clamp(1, period);
                self.record(now, now + on);
                let next = now + period;
                (next < ADVERSARY_HORIZON).then_some(next)
            }
            JammerSpec::Sweep { period, duty } => {
                let on = ((period as f64 * duty) as u64).clamp(1, period);
                self.record(now, now + on);
                self.sweep_idx += 1;
                let next = now + period;
                (next < ADVERSARY_HORIZON).then_some(next)
            }
            JammerSpec::Rand { duty } => {
                // One Bernoulli(duty) draw per slot, always consumed,
                // so the stream position is a pure function of the
                // slot index.
                let jam = self.rng.gen::<f64>() < duty;
                if jam {
                    self.record(now, now + RAND_SLOT);
                }
                let next = now + RAND_SLOT;
                (next < ADVERSARY_HORIZON).then_some(next)
            }
            JammerSpec::React { .. } => {
                // The burst was fixed at sense time; pop it in FIFO
                // order and record it.
                if !self.scheduled.is_empty() {
                    let (start, end) = self.scheduled.remove(0);
                    debug_assert_eq!(start, now, "reactive burst pops at its start");
                    self.record(start, end);
                }
                None
            }
        }
    }

    /// Reactive sensing hook: a frame from a sender the jammer can
    /// hear (`sense_ok`, the driver's squelch verdict at the jammer's
    /// position) starts at `start` and ends at `end`. Returns the chip
    /// time of the `JamBurst` to schedule, or `None` when the jammer
    /// is off-type, deaf to this frame, still busy, or too slow (the
    /// frame ends before sense→jam turnaround completes).
    pub fn on_tx_start(&mut self, start: u64, end: u64, sense_ok: bool) -> Option<u64> {
        let JammerSpec::React { delay } = self.spec else {
            return None;
        };
        if !sense_ok || self.busy_until > start {
            return None;
        }
        let jam_from = start + delay;
        if jam_from >= end {
            return None;
        }
        self.scheduled.push((jam_from, end));
        // Turnaround again before the next sense can fire.
        self.busy_until = end + delay;
        Some(jam_from)
    }

    /// All recorded bursts overlapping `[from, to)`.
    pub fn bursts_overlapping(&self, from: u64, to: u64) -> impl Iterator<Item = &JamBurstRec> {
        self.bursts
            .iter()
            .filter(move |b| b.start < to && from < b.end)
    }

    fn record(&mut self, start: u64, end: u64) {
        let p = self.pos();
        self.bursts.push(JamBurstRec {
            start,
            end,
            x: p.x,
            y: p.y,
        });
    }

    /// Total chips jammed so far (bursts may not overlap — pulse/rand
    /// trains are disjoint by construction, reactive is depth-one).
    pub fn jam_chips(&self) -> u64 {
        self.bursts.iter().map(|b| b.end - b.start).sum()
    }

    /// Serializes the actor's dynamic state:
    /// `(rng words, busy_until, sweep_idx, scheduled, bursts)`.
    #[allow(clippy::type_complexity)]
    pub fn save_state(
        &self,
    ) -> (
        [u64; 4],
        u64,
        u64,
        Vec<(u64, u64)>,
        Vec<(u64, u64, u64, u64)>,
    ) {
        (
            self.rng.state(),
            self.busy_until,
            self.sweep_idx,
            self.scheduled.clone(),
            self.bursts
                .iter()
                .map(|b| (b.start, b.end, b.x.to_bits(), b.y.to_bits()))
                .collect(),
        )
    }

    /// Restores the dynamic state captured by
    /// [`AdversaryState::save_state`] into a freshly built actor.
    #[allow(clippy::type_complexity)]
    pub fn restore_state(
        &mut self,
        (rng, busy_until, sweep_idx, scheduled, bursts): (
            [u64; 4],
            u64,
            u64,
            Vec<(u64, u64)>,
            Vec<(u64, u64, u64, u64)>,
        ),
    ) {
        self.rng = StdRng::from_state(rng);
        self.busy_until = busy_until;
        self.sweep_idx = sweep_idx;
        self.scheduled = scheduled;
        self.bursts = bursts
            .into_iter()
            .map(|(start, end, x, y)| JamBurstRec {
                start,
                end,
                x: f64::from_bits(x),
                y: f64::from_bits(y),
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jammer_spec_parses_and_round_trips() {
        for s in [
            "off",
            "pulse:32768:0.2",
            "rand:0.35",
            "sweep:65536:0.5",
            "react:4096",
        ] {
            let spec = JammerSpec::parse(s).unwrap();
            assert_eq!(spec.render(), s, "{s}");
            assert_eq!(JammerSpec::parse(&spec.render()).unwrap(), spec);
        }
        assert_eq!(JammerSpec::parse("off").unwrap().name(), "off");
        assert_eq!(JammerSpec::parse("react:10").unwrap().name(), "react");
    }

    #[test]
    fn jammer_spec_rejects_malformed_values() {
        for bad in [
            "",
            "nope",
            "pulse",
            "pulse:0:0.5",
            "pulse:4096:0",
            "pulse:4096:1.5",
            "rand:-0.1",
            "rand:nan",
            "sweep:big:0.2",
            "react:",
            "react:-3",
            "pulse:16:0.5",
        ] {
            assert!(JammerSpec::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn pulse_jammer_self_schedules_to_the_horizon() {
        let mut j = AdversaryState::new(
            JammerSpec::Pulse {
                period: 1 << 20,
                duty: 0.25,
            },
            7,
            100.0,
        );
        let mut t = j.initial_burst_time().unwrap();
        let mut hops = 0;
        while let Some(next) = j.on_jam_burst(t) {
            assert_eq!(next, t + (1 << 20));
            t = next;
            hops += 1;
        }
        assert_eq!(hops, 3, "2^22 horizon / 2^20 period = 4 bursts");
        assert_eq!(j.bursts().len(), 4);
        for b in j.bursts() {
            assert_eq!(b.end - b.start, 1 << 18, "25% duty of a 2^20 period");
            assert_eq!((b.x, b.y), (50.0, 50.0), "stationary at center");
        }
        assert_eq!(j.jam_chips(), 4 << 18);
    }

    #[test]
    fn rand_jammer_is_deterministic_and_duty_bounded() {
        let run = |seed| {
            let mut j = AdversaryState::new(JammerSpec::Rand { duty: 0.4 }, seed, 50.0);
            let mut t = j.initial_burst_time().unwrap();
            while let Some(next) = j.on_jam_burst(t) {
                t = next;
            }
            j.bursts().to_vec()
        };
        let a = run(11);
        assert_eq!(a, run(11), "same seed, same bursts");
        assert_ne!(a, run(12), "seed-sensitive");
        let slots = ADVERSARY_HORIZON / RAND_SLOT;
        let frac = a.len() as f64 / slots as f64;
        assert!(
            (0.2..=0.6).contains(&frac),
            "duty 0.4 → jammed fraction {frac}"
        );
    }

    #[test]
    fn sweep_jammer_walks_the_diagonal() {
        let mut j = AdversaryState::new(
            JammerSpec::Sweep {
                period: 1 << 17,
                duty: 0.5,
            },
            3,
            80.0,
        );
        let mut t = j.initial_burst_time().unwrap();
        while let Some(next) = j.on_jam_burst(t) {
            t = next;
        }
        let xs: Vec<f64> = j.bursts().iter().map(|b| b.x).collect();
        assert!(xs.len() > SWEEP_STEPS as usize, "walk wraps");
        assert_eq!(xs[0], 0.0);
        assert!((xs[1] - 5.0).abs() < 1e-12, "80 m / 16 steps");
        assert_eq!(xs[SWEEP_STEPS as usize], 0.0, "wraps to the start");
        for b in j.bursts() {
            assert_eq!(b.x, b.y, "diagonal walk");
        }
    }

    #[test]
    fn reactive_jammer_senses_turns_around_and_backs_off() {
        let mut j = AdversaryState::new(JammerSpec::React { delay: 100 }, 5, 60.0);
        assert_eq!(j.initial_burst_time(), None, "purely reactive");
        // Deaf to frames it cannot hear.
        assert_eq!(j.on_tx_start(1_000, 20_000, false), None);
        // Hears this one: jam from start+delay to frame end.
        assert_eq!(j.on_tx_start(1_000, 20_000, true), Some(1_100));
        // Busy until frame end + turnaround: the overlapping second
        // frame is not jammed.
        assert_eq!(j.on_tx_start(5_000, 24_000, true), None);
        // Pop the burst at its start.
        assert_eq!(j.on_jam_burst(1_100), None);
        assert_eq!(
            j.bursts(),
            &[JamBurstRec {
                start: 1_100,
                end: 20_000,
                x: 30.0,
                y: 30.0
            }]
        );
        // After the turnaround window it can sense again...
        assert_eq!(j.on_tx_start(20_100, 40_000, true), Some(20_200));
        // ...but a frame that ends before the turnaround completes is
        // not worth jamming.
        let mut k = AdversaryState::new(JammerSpec::React { delay: 5_000 }, 5, 60.0);
        assert_eq!(k.on_tx_start(0, 4_000, true), None);
    }

    #[test]
    fn burst_overlap_query_filters_by_interval() {
        let mut j = AdversaryState::new(
            JammerSpec::Pulse {
                period: 1 << 20,
                duty: 0.25,
            },
            7,
            100.0,
        );
        let mut t = j.initial_burst_time().unwrap();
        while let Some(next) = j.on_jam_burst(t) {
            t = next;
        }
        // Bursts at [0, 2^18), [2^20, 2^20+2^18), ...
        assert_eq!(j.bursts_overlapping(0, 1).count(), 1);
        assert_eq!(j.bursts_overlapping(1 << 18, 1 << 20).count(), 0);
        assert_eq!(j.bursts_overlapping(0, ADVERSARY_HORIZON).count(), 4);
    }

    #[test]
    fn adversary_state_round_trips_through_save_restore() {
        let mut j = AdversaryState::new(JammerSpec::Rand { duty: 0.5 }, 9, 40.0);
        let mut t = j.initial_burst_time().unwrap();
        for _ in 0..10 {
            if let Some(next) = j.on_jam_burst(t) {
                t = next;
            }
        }
        let state = j.save_state();
        let mut k = AdversaryState::new(JammerSpec::Rand { duty: 0.5 }, 9, 40.0);
        k.restore_state(state);
        // Driving both from here must produce identical bursts.
        for _ in 0..10 {
            let a = j.on_jam_burst(t);
            let b = k.on_jam_burst(t);
            assert_eq!(a, b);
            assert_eq!(j.bursts(), k.bursts());
            if let Some(next) = a {
                t = next;
            }
        }
    }

    #[test]
    fn fault_plan_is_deterministic_and_protects_the_source() {
        let a = FaultPlan::generate(5, 3.0, 100, 42);
        assert_eq!(a, FaultPlan::generate(5, 3.0, 100, 42));
        assert_ne!(a, FaultPlan::generate(6, 3.0, 100, 42));
        assert!(!a.faults.is_empty());
        // ~3 crashes/s over a ~2.1 s horizon → ~6 crash+restart pairs.
        assert_eq!(a.faults.len() % 2, 0);
        assert!(
            (4..=8).contains(&(a.faults.len() / 2)),
            "{}",
            a.faults.len()
        );
        for f in &a.faults {
            assert_ne!(f.node, 42, "the protected node never faults");
            assert!(f.node < 100);
        }
        // Each crash is paired with a later restart of the same node.
        for pair in a.faults.chunks(2) {
            assert!(!pair[0].up && pair[1].up);
            assert_eq!(pair[0].node, pair[1].node);
            let down = pair[1].time - pair[0].time;
            assert!((DOWNTIME_MIN..DOWNTIME_MAX).contains(&down));
        }
        assert_eq!(a.degrade.len(), a.faults.len() / 2);
        assert!(FaultPlan::generate(5, 0.0, 100, 0).faults.is_empty());
    }

    #[test]
    fn degradation_windows_multiply_noise_only_inside() {
        let plan = FaultPlan {
            faults: vec![],
            degrade: vec![DegradeWindow {
                node: 3,
                start: 1_000,
                end: 2_000,
            }],
        };
        assert_eq!(plan.noise_factor(3, 1_500, 1_600), DEGRADE_FACTOR);
        assert_eq!(plan.noise_factor(3, 0, 1_001), DEGRADE_FACTOR);
        assert_eq!(plan.noise_factor(3, 2_000, 3_000), 1.0, "end is exclusive");
        assert_eq!(plan.noise_factor(4, 1_500, 1_600), 1.0, "other node");
    }
}
