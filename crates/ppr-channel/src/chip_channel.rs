//! Fast chip-level channel backend.
//!
//! For network-scale experiments the sample-level DSP path is three orders
//! of magnitude too slow (23 senders × minutes of airtime × 8 samples per
//! chip). This backend keeps the exact chip/codeword geometry — every chip
//! of every frame is individually flipped or preserved — but replaces the
//! waveform with the analytic chip-error probability of the matched-filter
//! receiver ([`crate::ber::chip_error_prob`]).
//!
//! `tests/channel_parity.rs` (workspace root) verifies the two backends
//! agree on codeword error statistics, which is what every higher layer
//! consumes.

use crate::ber::{chip_error_prob, chip_error_prob_dominant, sinr};
use crate::overlap::InterferenceSpan;
use ppr_phy::chips::ChipWords;
use rand::Rng;

/// Per-chip error-probability profile of one packet at one receiver:
/// piecewise-constant spans tiling the frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorProfile {
    spans: Vec<(u64, u64, f64)>, // (start, end, chip error prob)
    len_chips: u64,
}

impl ErrorProfile {
    /// Builds the profile from the target's received power, the
    /// interference profile over it, and the receiver noise floor.
    ///
    /// The strongest interferer of each span is modeled with the exact
    /// two-mass collision statistics
    /// ([`chip_error_prob_dominant`]); only the residual interference is
    /// Gaussian-approximated.
    pub fn from_interference(
        signal_mw: f64,
        noise_mw: f64,
        interference: &[InterferenceSpan],
    ) -> Self {
        let mut spans = Vec::with_capacity(interference.len());
        let mut len = 0;
        for s in interference {
            let residual = (s.interference_mw - s.dominant_mw).max(0.0);
            let p = chip_error_prob_dominant(signal_mw, s.dominant_mw, residual, noise_mw);
            spans.push((s.start, s.end, p));
            len = s.end;
        }
        ErrorProfile {
            spans,
            len_chips: len,
        }
    }

    /// Like [`Self::from_interference`] but with every interferer
    /// Gaussian-approximated — the simpler textbook model, kept for the
    /// collision-model ablation.
    pub fn from_interference_gaussian(
        signal_mw: f64,
        noise_mw: f64,
        interference: &[InterferenceSpan],
    ) -> Self {
        let mut spans = Vec::with_capacity(interference.len());
        let mut len = 0;
        for s in interference {
            let p = chip_error_prob(sinr(signal_mw, s.interference_mw, noise_mw));
            spans.push((s.start, s.end, p));
            len = s.end;
        }
        ErrorProfile {
            spans,
            len_chips: len,
        }
    }

    /// A uniform profile (single SINR for the whole frame).
    pub fn uniform(len_chips: u64, chip_error: f64) -> Self {
        ErrorProfile {
            spans: vec![(0, len_chips, chip_error)],
            len_chips,
        }
    }

    /// A profile from explicit `(start, end, chip_error)` pieces, in
    /// order. Used by scenario builders that specify error rates
    /// directly rather than deriving them from interference powers.
    pub fn from_pieces(pieces: Vec<(u64, u64, f64)>) -> Self {
        let len_chips = pieces.last().map(|&(_, e, _)| e).unwrap_or(0);
        ErrorProfile {
            spans: pieces,
            len_chips,
        }
    }

    /// Frame length covered, in chips.
    pub fn len_chips(&self) -> u64 {
        self.len_chips
    }

    /// Chip error probability at a given chip offset (0 outside spans).
    pub fn prob_at(&self, chip: u64) -> f64 {
        self.spans
            .iter()
            .find(|(s, e, _)| *s <= chip && chip < *e)
            .map(|(_, _, p)| *p)
            .unwrap_or(0.0)
    }

    /// The raw spans (start, end, chip error probability).
    pub fn spans(&self) -> &[(u64, u64, f64)] {
        &self.spans
    }

    /// Expected number of chip errors over the whole frame.
    pub fn expected_errors(&self) -> f64 {
        self.spans.iter().map(|(s, e, p)| (e - s) as f64 * p).sum()
    }
}

/// Applies an error profile to a transmitted chip stream, flipping each
/// chip independently with its span's probability.
///
/// `chips.len()` may be shorter than the profile (truncated receptions);
/// extra profile coverage is ignored.
///
/// This is the reference implementation; [`corrupt_chip_words`] is the
/// packed fast path. Both consume the RNG under the **same draw
/// contract** so their outputs are bit-identical for a given seed
/// (pinned by `tests/packed_parity.rs`):
///
/// * spans clipped to nothing, or with `p < 1e-12`, draw nothing;
/// * a jammed span (`p ≥ 0.5`) draws one `u64` per 64-aligned chip block
///   it touches, in ascending block order, and chip `j` takes bit
///   `j % 64` of its block's draw;
/// * a collision-grade span (`BLOCK_FLIP_MIN_P ≤ p < 0.5`) draws one
///   `bernoulli_mask64` flip mask per 64-aligned block it touches, in
///   ascending block order;
/// * a sparse span draws one `f64` per geometric skip.
pub fn corrupt_chips<R: Rng>(chips: &[bool], profile: &ErrorProfile, rng: &mut R) -> Vec<bool> {
    let mut out = chips.to_vec();
    for &(start, end, p) in profile.spans() {
        // Below 1e-12 the expected error count over even a maximal frame
        // (~10^5 chips) is < 10^-7: treat as error-free. This also guards
        // the geometric sampler below: for p < 2^-53, ln(1-p) rounds to
        // 0 and the skip length would diverge.
        if p < 1e-12 {
            continue;
        }
        let lo = start.min(out.len() as u64) as usize;
        let hi = end.min(out.len() as u64) as usize;
        if lo >= hi {
            continue;
        }
        if p >= 0.5 {
            // Fully jammed span: each chip is an independent coin flip,
            // 64 chips per RNG word as the draw contract specifies.
            for_each_block(lo, hi, |_, block_lo, block_hi| {
                let draw = rng.next_u64();
                for (j, c) in out[block_lo..block_hi].iter_mut().enumerate() {
                    *c = (draw >> ((block_lo + j) % 64)) & 1 == 1;
                }
            });
            continue;
        }
        if p >= BLOCK_FLIP_MIN_P {
            // Collision-grade span: lane-parallel Bernoulli flip masks,
            // ~7 RNG words per 64 chips instead of one log() per flip.
            let p_bits = bernoulli_p_bits(p);
            for_each_block(lo, hi, |_, block_lo, block_hi| {
                let mask = bernoulli_mask64(p_bits, rng);
                for (j, c) in out[block_lo..block_hi].iter_mut().enumerate() {
                    if (mask >> ((block_lo + j) % 64)) & 1 == 1 {
                        *c = !*c;
                    }
                }
            });
            continue;
        }
        // Sparse span: geometric skips.
        for_each_geometric_flip(lo, hi, p, rng, |i| out[i] = !out[i]);
    }
    out
}

/// Packed fast path of [`corrupt_chips`]: identical chip flips for a
/// given seed (the shared draw contract), but jammed spans overwrite
/// whole 64-chip lanes with one RNG word, collision-grade spans XOR one
/// flip mask per lane, and sparse spans make one in-bounds 64-bit XOR
/// per flip — no per-chip `Vec<bool>` traffic, no per-flip assert
/// formatting or tail re-masking.
pub fn corrupt_chip_words<R: Rng>(
    chips: &ChipWords,
    profile: &ErrorProfile,
    rng: &mut R,
) -> ChipWords {
    let mut out = chips.clone();
    corrupt_chip_words_in_place(&mut out, profile, rng);
    out
}

/// In-place form of [`corrupt_chip_words`] for callers that own their
/// chip buffer (the reception pipeline corrupts a freshly rendered frame
/// it never reads clean again) — same draw contract, zero clone traffic.
pub fn corrupt_chip_words_in_place<R: Rng>(
    out: &mut ChipWords,
    profile: &ErrorProfile,
    rng: &mut R,
) {
    let len = out.len();
    for &(start, end, p) in profile.spans() {
        if p < 1e-12 {
            continue;
        }
        let lo = start.min(len as u64) as usize;
        let hi = end.min(len as u64) as usize;
        if lo >= hi {
            continue;
        }
        if p >= 0.5 {
            // Jammed span: one RNG word per touched 64-chip lane.
            for_each_block(lo, hi, |w, block_lo, block_hi| {
                let draw = rng.next_u64();
                out.apply_mask64(w, block_mask(w, block_lo, block_hi), draw);
            });
            continue;
        }
        if p >= BLOCK_FLIP_MIN_P {
            // Collision-grade span: XOR one Bernoulli flip mask per lane.
            let p_bits = bernoulli_p_bits(p);
            for_each_block(lo, hi, |w, block_lo, block_hi| {
                let flips = bernoulli_mask64(p_bits, rng) & block_mask(w, block_lo, block_hi);
                out.xor_word(w, flips);
            });
            continue;
        }
        // Sparse span: geometric skips, one unconditioned 64-bit XOR
        // per flip. Batching flips into a per-lane mask flushed on lane
        // change was measured *slower* here: at p ≈ 0.01 roughly a
        // quarter of consecutive flips land in the same lane, so the
        // lane-change branch mispredicts (~+6 ns/flip) while saving no
        // work — see docs/PERF.md §Channel corruption. The sampler
        // guarantees `i < hi ≤ len`, so the in-bounds toggle applies.
        let mut flips = GeometricFlips::new(lo, hi, p);
        while let Some(i) = flips.next(rng) {
            out.toggle_in_bounds(i);
        }
    }
}

/// Geometric-skip sampler of the sparse regime: yields each flipped chip
/// index of `[lo, hi)` under per-chip error probability `p`, jumping
/// straight to the next error instead of rolling a Bernoulli per chip —
/// for good links (p ~ 1e-6) this is what makes minutes of simulated
/// airtime cheap. One `f64` draw per skip; single-sourced here so the
/// reference and packed corruption paths cannot drift apart.
///
/// The running index is accumulated in `i64`, not `f64`: with the
/// `p ≥ 1e-12` guard the largest possible skip is
/// `ln(f64::MIN_POSITIVE)/ln(1-p) ≈ 745/1e-12 < 2^53`, so every skip is
/// an exactly representable integer-valued f64 and integer accumulation
/// visits bit-identical indices while keeping the hot loop free of f64
/// compare/convert traffic. The `(u.ln() / q).floor()` expression itself
/// is part of the draw contract and must not be rearranged (e.g. into a
/// reciprocal multiply).
struct GeometricFlips {
    idx: i64,
    hi: i64,
    q: f64, // ln(1 - p), accurate for small p via ln_1p
}

impl GeometricFlips {
    fn new(lo: usize, hi: usize, p: f64) -> Self {
        GeometricFlips {
            // Start one position before the span so the first chip can err.
            idx: lo as i64 - 1,
            hi: hi as i64,
            q: (-p).ln_1p(),
        }
    }

    #[inline]
    fn next<R: Rng>(&mut self, rng: &mut R) -> Option<usize> {
        loop {
            let u: f64 = rng.gen();
            if u <= f64::MIN_POSITIVE {
                continue;
            }
            self.idx += (u.ln() / self.q).floor() as i64 + 1;
            if self.idx >= self.hi {
                return None;
            }
            return Some(self.idx as usize);
        }
    }
}

/// Reference-path driver over [`GeometricFlips`], kept as a named seam
/// for the edge-case proptests in `tests/packed_parity.rs`.
fn for_each_geometric_flip<R: Rng>(
    lo: usize,
    hi: usize,
    p: f64,
    rng: &mut R,
    mut flip: impl FnMut(usize),
) {
    let mut flips = GeometricFlips::new(lo, hi, p);
    while let Some(i) = flips.next(rng) {
        flip(i);
    }
}

/// Lower edge of the block-Bernoulli regime. Below this the expected
/// flips per 64-chip block (< ~1.3) make the geometric sampler cheaper;
/// above it the per-flip `ln()` of the geometric sampler loses to the
/// ~7 expected RNG words of [`bernoulli_mask64`].
///
/// Re-measured 2026-08 against the reworked sparse path (PR 7) by
/// sweeping `corrupt_chip_words` over p at 100k chips (repro:
/// `docs/PERF.md` §Channel corruption): the geometric path costs
/// ~15 ns per expected flip (one f64 draw + `ln` + divide), i.e.
/// ~15·p ns/chip, while the mask path is flat at ~0.43 ns/chip
/// (~7.3 RNG words per 64-chip lane), putting the true crossover near
/// p ≈ 0.029. The boundary nevertheless stays at 0.02: it is part of
/// the RNG draw contract (which regime draws for a given p), and moving
/// it re-randomizes every experiment with spans in p ∈ [0.02, 0.03) —
/// verified to break the golden registry fingerprint. The cost curves
/// are within ~30% of each other across that band, so the pinned
/// boundary gives up little.
const BLOCK_FLIP_MIN_P: f64 = 0.02;

/// Binary expansion of a probability `p ∈ [0, 1)` as a 64-bit fraction
/// (bit 63 = 1/2, bit 62 = 1/4, …), the fixed-point form
/// [`bernoulli_mask64`] compares uniform bits against.
fn bernoulli_p_bits(p: f64) -> u64 {
    // 2^64 as f64; the product rounds to 53 significant bits, which is
    // already f64's own precision for p.
    (p * 18_446_744_073_709_551_616.0) as u64
}

/// Draws 64 independent Bernoulli(`p_bits`/2⁶⁴) lanes as a bit mask.
///
/// Each lane compares its own uniform bit stream against the binary
/// expansion of p, most significant bit first; a lane is decided the
/// first time its bit differs from p's. Expected RNG words consumed:
/// ~7.3 (each word decides half the remaining lanes); worst case 64.
/// Draw count is part of the shared corruption contract — both the
/// reference and packed paths call exactly this function.
fn bernoulli_mask64<R: Rng>(p_bits: u64, rng: &mut R) -> u64 {
    let mut undecided = u64::MAX;
    let mut mask = 0u64;
    let mut j = 63u32;
    loop {
        let r = rng.next_u64();
        if (p_bits >> j) & 1 == 1 {
            // Lanes whose uniform bit is 0 here are < p: flip.
            mask |= undecided & !r;
            undecided &= r;
        } else {
            // Lanes whose uniform bit is 1 here are > p: no flip.
            undecided &= !r;
        }
        if undecided == 0 || j == 0 {
            break;
        }
        j -= 1;
        // All remaining p bits zero: no lane can still go below p.
        if p_bits & ((1u64 << j << 1) - 1) == 0 {
            break;
        }
    }
    mask
}

/// Visits each 64-aligned block of `[lo, hi)` in ascending order as
/// `(word_idx, block_lo, block_hi)` with `block_lo..block_hi` the chip
/// range of `[lo, hi)` inside that block.
fn for_each_block(lo: usize, hi: usize, mut f: impl FnMut(usize, usize, usize)) {
    let mut w = lo / 64;
    while w * 64 < hi {
        f(w, (w * 64).max(lo), (w * 64 + 64).min(hi));
        w += 1;
    }
}

/// Lane mask selecting chips `block_lo..block_hi` of word `w`.
fn block_mask(w: usize, block_lo: usize, block_hi: usize) -> u64 {
    let a = block_lo - w * 64;
    let width = block_hi - block_lo;
    if width == 64 {
        u64::MAX
    } else {
        ((1u64 << width) - 1) << a
    }
}

/// Counts chip errors per 32-chip codeword between a transmitted and a
/// received chip stream — ground truth for SoftPHY hint evaluation.
pub fn codeword_flip_counts(tx: &[bool], rx: &[bool]) -> Vec<u8> {
    tx.chunks(32)
        .zip(rx.chunks(32))
        .map(|(a, b)| a.iter().zip(b).filter(|(x, y)| x != y).count() as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_error_profile_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let chips: Vec<bool> = (0..4096).map(|i| i % 3 == 0).collect();
        let profile = ErrorProfile::uniform(4096, 0.0);
        assert_eq!(corrupt_chips(&chips, &profile, &mut rng), chips);
    }

    #[test]
    fn uniform_error_rate_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let chips = vec![false; n];
        let p = 0.03;
        let profile = ErrorProfile::uniform(n as u64, p);
        let rx = corrupt_chips(&chips, &profile, &mut rng);
        let errors = rx.iter().filter(|&&c| c).count();
        let rate = errors as f64 / n as f64;
        assert!((rate - p).abs() < 0.003, "rate {rate}");
    }

    #[test]
    fn jammed_span_is_random() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let chips = vec![false; n];
        let profile = ErrorProfile::uniform(n as u64, 0.5);
        let rx = corrupt_chips(&chips, &profile, &mut rng);
        let ones = rx.iter().filter(|&&c| c).count() as f64 / n as f64;
        assert!((ones - 0.5).abs() < 0.03, "ones {ones}");
    }

    #[test]
    fn errors_respect_span_boundaries() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 3000u64;
        let chips = vec![false; n as usize];
        // Only the middle third is noisy.
        let profile = ErrorProfile {
            spans: vec![(0, 1000, 0.0), (1000, 2000, 0.3), (2000, 3000, 0.0)],
            len_chips: n,
        };
        let rx = corrupt_chips(&chips, &profile, &mut rng);
        assert!(rx[..1000].iter().all(|&c| !c));
        assert!(rx[2000..].iter().all(|&c| !c));
        let mid = rx[1000..2000].iter().filter(|&&c| c).count();
        assert!(mid > 200 && mid < 400, "mid errors {mid}");
    }

    #[test]
    fn truncated_chip_stream_is_handled() {
        let mut rng = StdRng::seed_from_u64(5);
        let chips = vec![true; 100];
        let profile = ErrorProfile::uniform(1000, 0.1);
        let rx = corrupt_chips(&chips, &profile, &mut rng);
        assert_eq!(rx.len(), 100);
    }

    #[test]
    fn profile_from_interference_maps_sinr() {
        use crate::overlap::InterferenceSpan;
        let signal = 1e-7; // -40 dBm
        let noise = 1e-10; // -70 dBm → SNR 30 dB, error ~0
        let jam = 1e-6; // 10 dB above signal → SINR ≈ -10 dB
        let profile = ErrorProfile::from_interference(
            signal,
            noise,
            &[
                InterferenceSpan {
                    start: 0,
                    end: 100,
                    interference_mw: 0.0,
                    dominant_mw: 0.0,
                },
                InterferenceSpan {
                    start: 100,
                    end: 200,
                    interference_mw: jam,
                    dominant_mw: jam,
                },
            ],
        );
        assert!(profile.prob_at(50) < 1e-9);
        assert!(profile.prob_at(150) > 0.2);
        assert_eq!(profile.len_chips(), 200);
    }

    #[test]
    fn expected_errors_matches_simulation() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 100_000u64;
        let profile = ErrorProfile {
            spans: vec![(0, 50_000, 0.01), (50_000, 100_000, 0.2)],
            len_chips: n,
        };
        let chips = vec![false; n as usize];
        let expect = profile.expected_errors();
        let mut total = 0usize;
        let trials = 5;
        for _ in 0..trials {
            let rx = corrupt_chips(&chips, &profile, &mut rng);
            total += rx.iter().filter(|&&c| c).count();
        }
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} expect {expect}"
        );
    }

    #[test]
    fn packed_corruption_is_bit_identical() {
        // Spans exercising every regime: skipped, sparse, dense, and a
        // span running past the truncated reception.
        let profile = ErrorProfile::from_pieces(vec![
            (0, 500, 0.0),
            (500, 1500, 0.02),
            (1500, 2500, 0.7),
            (2500, 3000, 0.3),
            (3000, 5000, 0.9),
        ]);
        let chips: Vec<bool> = (0..4000).map(|i| i % 5 == 0).collect();
        let packed = ChipWords::from_bools(&chips);
        for seed in 0..8 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let reference = corrupt_chips(&chips, &profile, &mut rng_a);
            let fast = corrupt_chip_words(&packed, &profile, &mut rng_b);
            assert_eq!(fast, ChipWords::from_bools(&reference), "seed {seed}");
        }
    }

    #[test]
    fn flip_counts_ground_truth() {
        let tx = vec![false; 96];
        let mut rx = tx.clone();
        rx[0] = true; // codeword 0: 1 flip
        rx[40] = true; // codeword 1: 2 flips
        rx[41] = true;
        let counts = codeword_flip_counts(&tx, &rx);
        assert_eq!(counts, vec![1, 2, 0]);
    }
}
