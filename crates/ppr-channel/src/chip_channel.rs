//! Fast chip-level channel backend.
//!
//! For network-scale experiments the sample-level DSP path is three orders
//! of magnitude too slow (23 senders × minutes of airtime × 8 samples per
//! chip). This backend keeps the exact chip/codeword geometry — every chip
//! of every frame is individually flipped or preserved — but replaces the
//! waveform with the analytic chip-error probability of the matched-filter
//! receiver ([`crate::ber::chip_error_prob`]).
//!
//! `tests/channel_parity.rs` (workspace root) verifies the two backends
//! agree on codeword error statistics, which is what every higher layer
//! consumes.

use crate::ber::{chip_error_prob, chip_error_prob_dominant, sinr};
use crate::overlap::InterferenceSpan;
use rand::Rng;

/// Per-chip error-probability profile of one packet at one receiver:
/// piecewise-constant spans tiling the frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorProfile {
    spans: Vec<(u64, u64, f64)>, // (start, end, chip error prob)
    len_chips: u64,
}

impl ErrorProfile {
    /// Builds the profile from the target's received power, the
    /// interference profile over it, and the receiver noise floor.
    ///
    /// The strongest interferer of each span is modeled with the exact
    /// two-mass collision statistics
    /// ([`chip_error_prob_dominant`]); only the residual interference is
    /// Gaussian-approximated.
    pub fn from_interference(
        signal_mw: f64,
        noise_mw: f64,
        interference: &[InterferenceSpan],
    ) -> Self {
        let mut spans = Vec::with_capacity(interference.len());
        let mut len = 0;
        for s in interference {
            let residual = (s.interference_mw - s.dominant_mw).max(0.0);
            let p = chip_error_prob_dominant(signal_mw, s.dominant_mw, residual, noise_mw);
            spans.push((s.start, s.end, p));
            len = s.end;
        }
        ErrorProfile {
            spans,
            len_chips: len,
        }
    }

    /// Like [`Self::from_interference`] but with every interferer
    /// Gaussian-approximated — the simpler textbook model, kept for the
    /// collision-model ablation.
    pub fn from_interference_gaussian(
        signal_mw: f64,
        noise_mw: f64,
        interference: &[InterferenceSpan],
    ) -> Self {
        let mut spans = Vec::with_capacity(interference.len());
        let mut len = 0;
        for s in interference {
            let p = chip_error_prob(sinr(signal_mw, s.interference_mw, noise_mw));
            spans.push((s.start, s.end, p));
            len = s.end;
        }
        ErrorProfile {
            spans,
            len_chips: len,
        }
    }

    /// A uniform profile (single SINR for the whole frame).
    pub fn uniform(len_chips: u64, chip_error: f64) -> Self {
        ErrorProfile {
            spans: vec![(0, len_chips, chip_error)],
            len_chips,
        }
    }

    /// A profile from explicit `(start, end, chip_error)` pieces, in
    /// order. Used by scenario builders that specify error rates
    /// directly rather than deriving them from interference powers.
    pub fn from_pieces(pieces: Vec<(u64, u64, f64)>) -> Self {
        let len_chips = pieces.last().map(|&(_, e, _)| e).unwrap_or(0);
        ErrorProfile {
            spans: pieces,
            len_chips,
        }
    }

    /// Frame length covered, in chips.
    pub fn len_chips(&self) -> u64 {
        self.len_chips
    }

    /// Chip error probability at a given chip offset (0 outside spans).
    pub fn prob_at(&self, chip: u64) -> f64 {
        self.spans
            .iter()
            .find(|(s, e, _)| *s <= chip && chip < *e)
            .map(|(_, _, p)| *p)
            .unwrap_or(0.0)
    }

    /// The raw spans (start, end, chip error probability).
    pub fn spans(&self) -> &[(u64, u64, f64)] {
        &self.spans
    }

    /// Expected number of chip errors over the whole frame.
    pub fn expected_errors(&self) -> f64 {
        self.spans.iter().map(|(s, e, p)| (e - s) as f64 * p).sum()
    }
}

/// Applies an error profile to a transmitted chip stream, flipping each
/// chip independently with its span's probability.
///
/// `chips.len()` may be shorter than the profile (truncated receptions);
/// extra profile coverage is ignored.
pub fn corrupt_chips<R: Rng>(chips: &[bool], profile: &ErrorProfile, rng: &mut R) -> Vec<bool> {
    let mut out = chips.to_vec();
    for &(start, end, p) in profile.spans() {
        // Below 1e-12 the expected error count over even a maximal frame
        // (~10^5 chips) is < 10^-7: treat as error-free. This also guards
        // the geometric sampler below: for p < 2^-53, ln(1-p) rounds to
        // 0 and the skip length would diverge.
        if p < 1e-12 {
            continue;
        }
        let lo = start.min(out.len() as u64) as usize;
        let hi = end.min(out.len() as u64) as usize;
        if p >= 0.5 {
            // Fully jammed span: each chip is an independent coin flip.
            for c in &mut out[lo..hi] {
                *c = rng.gen();
            }
            continue;
        }
        // Geometric skipping: jump straight to the next error instead of
        // rolling a Bernoulli per chip. For good links (p ~ 1e-6) this is
        // what makes minutes of simulated airtime cheap.
        let q = (-p).ln_1p(); // ln(1 - p), accurate for small p
                              // Start one position before the span so the first chip can err.
        let mut idx = lo as f64 - 1.0;
        loop {
            let u: f64 = rng.gen();
            if u <= f64::MIN_POSITIVE {
                continue;
            }
            idx += (u.ln() / q).floor() + 1.0;
            if idx >= hi as f64 {
                break;
            }
            let i = idx as usize;
            out[i] = !out[i];
        }
    }
    out
}

/// Counts chip errors per 32-chip codeword between a transmitted and a
/// received chip stream — ground truth for SoftPHY hint evaluation.
pub fn codeword_flip_counts(tx: &[bool], rx: &[bool]) -> Vec<u8> {
    tx.chunks(32)
        .zip(rx.chunks(32))
        .map(|(a, b)| a.iter().zip(b).filter(|(x, y)| x != y).count() as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_error_profile_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let chips: Vec<bool> = (0..4096).map(|i| i % 3 == 0).collect();
        let profile = ErrorProfile::uniform(4096, 0.0);
        assert_eq!(corrupt_chips(&chips, &profile, &mut rng), chips);
    }

    #[test]
    fn uniform_error_rate_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let chips = vec![false; n];
        let p = 0.03;
        let profile = ErrorProfile::uniform(n as u64, p);
        let rx = corrupt_chips(&chips, &profile, &mut rng);
        let errors = rx.iter().filter(|&&c| c).count();
        let rate = errors as f64 / n as f64;
        assert!((rate - p).abs() < 0.003, "rate {rate}");
    }

    #[test]
    fn jammed_span_is_random() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let chips = vec![false; n];
        let profile = ErrorProfile::uniform(n as u64, 0.5);
        let rx = corrupt_chips(&chips, &profile, &mut rng);
        let ones = rx.iter().filter(|&&c| c).count() as f64 / n as f64;
        assert!((ones - 0.5).abs() < 0.03, "ones {ones}");
    }

    #[test]
    fn errors_respect_span_boundaries() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 3000u64;
        let chips = vec![false; n as usize];
        // Only the middle third is noisy.
        let profile = ErrorProfile {
            spans: vec![(0, 1000, 0.0), (1000, 2000, 0.3), (2000, 3000, 0.0)],
            len_chips: n,
        };
        let rx = corrupt_chips(&chips, &profile, &mut rng);
        assert!(rx[..1000].iter().all(|&c| !c));
        assert!(rx[2000..].iter().all(|&c| !c));
        let mid = rx[1000..2000].iter().filter(|&&c| c).count();
        assert!(mid > 200 && mid < 400, "mid errors {mid}");
    }

    #[test]
    fn truncated_chip_stream_is_handled() {
        let mut rng = StdRng::seed_from_u64(5);
        let chips = vec![true; 100];
        let profile = ErrorProfile::uniform(1000, 0.1);
        let rx = corrupt_chips(&chips, &profile, &mut rng);
        assert_eq!(rx.len(), 100);
    }

    #[test]
    fn profile_from_interference_maps_sinr() {
        use crate::overlap::InterferenceSpan;
        let signal = 1e-7; // -40 dBm
        let noise = 1e-10; // -70 dBm → SNR 30 dB, error ~0
        let jam = 1e-6; // 10 dB above signal → SINR ≈ -10 dB
        let profile = ErrorProfile::from_interference(
            signal,
            noise,
            &[
                InterferenceSpan {
                    start: 0,
                    end: 100,
                    interference_mw: 0.0,
                    dominant_mw: 0.0,
                },
                InterferenceSpan {
                    start: 100,
                    end: 200,
                    interference_mw: jam,
                    dominant_mw: jam,
                },
            ],
        );
        assert!(profile.prob_at(50) < 1e-9);
        assert!(profile.prob_at(150) > 0.2);
        assert_eq!(profile.len_chips(), 200);
    }

    #[test]
    fn expected_errors_matches_simulation() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 100_000u64;
        let profile = ErrorProfile {
            spans: vec![(0, 50_000, 0.01), (50_000, 100_000, 0.2)],
            len_chips: n,
        };
        let chips = vec![false; n as usize];
        let expect = profile.expected_errors();
        let mut total = 0usize;
        let trials = 5;
        for _ in 0..trials {
            let rx = corrupt_chips(&chips, &profile, &mut rng);
            total += rx.iter().filter(|&&c| c).count();
        }
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} expect {expect}"
        );
    }

    #[test]
    fn flip_counts_ground_truth() {
        let tx = vec![false; 96];
        let mut rx = tx.clone();
        rx[0] = true; // codeword 0: 1 flip
        rx[40] = true; // codeword 1: 2 flips
        rx[41] = true;
        let counts = codeword_flip_counts(&tx, &rx);
        assert_eq!(counts, vec![1, 2, 0]);
    }
}
