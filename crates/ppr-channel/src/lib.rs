//! # `ppr-channel` — indoor radio propagation and interference models
//!
//! The channel substrate of the PPR reproduction. The paper ran on real
//! radios in a nine-room office floor; this crate replaces the building
//! with the standard indoor propagation stack while preserving exactly the
//! statistics PPR's mechanisms react to:
//!
//! * **Link diversity** — [`pathloss`]: log-distance path loss with
//!   frozen per-link lognormal shadowing produces the mix of perfect and
//!   marginal links of the paper's Fig. 7 testbed.
//! * **Collisions** — [`overlap`]: concurrent transmissions become
//!   piecewise-constant interference-power spans over a victim frame, so
//!   errors arrive in contiguous bursts, as they do when packets collide.
//! * **Chip errors** — [`ber`]: the matched-filter MSK chip error
//!   probability `Q(√(2·SINR))` ties both backends together.
//! * **Jamming** — [`jamming`]: duty-cycled burst placement and
//!   interval clipping for the adversarial experiments; bursts corrupt
//!   chips through the same overlap/error-profile path as collisions.
//!
//! Two interchangeable backends realize the corruption:
//!
//! * [`chip_channel`] — fast: flips individual chips per their span's
//!   error probability (geometric skipping makes clean links ~free).
//!   Used by all network-scale experiments.
//! * [`sample_channel`] — full DSP: superposed MSK waveforms + complex
//!   AWGN, demodulated by `ppr-phy`'s matched filter. Used by the
//!   collision-anatomy experiment and to calibrate the fast backend
//!   (see `tests/channel_parity.rs` at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
pub mod chip_channel;
pub mod jamming;
pub mod math;
pub mod overlap;
pub mod pathloss;
pub mod sample_channel;

pub use ber::{chip_error_prob, sinr};
pub use chip_channel::{
    codeword_flip_counts, corrupt_chip_words, corrupt_chip_words_in_place, corrupt_chips,
    ErrorProfile,
};
pub use jamming::{clip_bursts, cover_fraction, pulse_burst, pulse_bursts_in, Burst};
pub use overlap::{interference_profile, HeardTx, InterferenceSpan};
pub use pathloss::{Link, PathLossModel};
pub use sample_channel::{render, render_single, WaveformTx};
