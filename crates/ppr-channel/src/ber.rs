//! Chip error rate of the MSK receiver as a function of SINR.
//!
//! MSK with coherent matched-filter detection is antipodal signaling per
//! chip, so the chip error probability in Gaussian noise (plus
//! Gaussian-approximated interference) is
//!
//! `p = Q( √(2·SINR) )`
//!
//! where SINR is the per-chip signal-to-interference-plus-noise power
//! ratio. Interference from concurrent 802.15.4 transmissions is treated
//! as additional Gaussian noise — the standard approximation, reasonable
//! here because interferer chips are pseudo-random and chip-asynchronous.
//!
//! The function below is the *only* place the fast chip-level channel and
//! the sample-level DSP channel need to agree; `tests/channel_parity.rs`
//! at the workspace root pins that agreement.

use crate::math::q_function;

/// Chip error probability for a given linear SINR (all interference
/// Gaussian-approximated).
#[inline]
pub fn chip_error_prob(sinr_linear: f64) -> f64 {
    if sinr_linear <= 0.0 {
        return 0.5;
    }
    q_function((2.0 * sinr_linear).sqrt()).clamp(0.0, 0.5)
}

/// Chip error probability with the strongest interferer modeled
/// *exactly* and only the residue Gaussian-approximated.
///
/// A colliding DSSS transmission is not noise: each of its chips either
/// opposes or reinforces the victim's chip with equal probability, so
/// the matched-filter output is a two-mass mixture:
///
/// `p = ½ · [ Q((√Pₛ − √P_d)/σ) + Q((√Pₛ + √P_d)/σ) ]`,   `σ = √((N + P_r)/2)`
///
/// with signal power `Pₛ`, dominant interferer power `P_d`, residual
/// interference `P_r` and noise `N`. Limits: `P_d → 0` recovers
/// [`chip_error_prob`]; `P_d ≈ Pₛ` gives p ≈ 0.25 (half the chips
/// contested, half of those lost); `P_d ≫ Pₛ` gives p → 0.5.
pub fn chip_error_prob_dominant(
    signal_mw: f64,
    dominant_mw: f64,
    residual_mw: f64,
    noise_mw: f64,
) -> f64 {
    let sigma = ((noise_mw + residual_mw) / 2.0).sqrt();
    if sigma <= 0.0 {
        // No noise at all: errors occur only when the dominant
        // interferer opposes and overpowers the signal.
        return if dominant_mw > signal_mw { 0.5 } else { 0.0 };
    }
    let a_s = signal_mw.sqrt();
    let a_d = dominant_mw.sqrt();
    let p = 0.5 * (q_function((a_s - a_d) / sigma) + q_function((a_s + a_d) / sigma));
    p.clamp(0.0, 0.5)
}

/// Linear SINR from signal, interference and noise powers (all mW).
#[inline]
pub fn sinr(signal_mw: f64, interference_mw: f64, noise_mw: f64) -> f64 {
    signal_mw / (interference_mw + noise_mw)
}

/// Probability that a 32-chip codeword decodes *incorrectly* under
/// independent chip errors with probability `p`, estimated via the
/// nearest-codeword union bound with minimum distance 12.
///
/// Used for analytics and sanity tests only — simulations flip actual
/// chips and decode, they never shortcut through this bound.
pub fn codeword_error_upper_bound(p: f64) -> f64 {
    // A decoding error requires ≥ 6 chip errors (half the minimum
    // distance); bound by P[Binomial(32, p) ≥ 6] × 15 neighbors, clamped.
    let tail = binomial_tail(32, p, 6);
    (15.0 * tail).min(1.0)
}

/// `P[Binomial(n, p) ≥ k]`.
pub fn binomial_tail(n: u32, p: f64, k: u32) -> f64 {
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return 1.0;
    }
    let mut total = 0.0;
    for i in k..=n {
        total += binomial_pmf(n, p, i);
    }
    total.min(1.0)
}

/// `P[Binomial(n, p) = k]`, computed in log space for stability.
pub fn binomial_pmf(n: u32, p: f64, k: u32) -> f64 {
    let ln = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln.exp()
}

fn ln_choose(n: u32, k: u32) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

fn ln_factorial(n: u32) -> f64 {
    (2..=n as u64).map(|i| (i as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_error_prob_limits() {
        assert_eq!(chip_error_prob(0.0), 0.5);
        assert_eq!(chip_error_prob(-1.0), 0.5);
        assert!(chip_error_prob(1e6) < 1e-12);
    }

    #[test]
    fn chip_error_prob_reference_points() {
        // SINR = 0 dB (1.0): Q(√2) ≈ 0.0786
        assert!((chip_error_prob(1.0) - 0.0786).abs() < 1e-3);
        // SINR = 3 dB (2.0): Q(2) ≈ 0.02275
        assert!((chip_error_prob(2.0) - 0.02275).abs() < 5e-4);
        // SINR = -10 dB (0.1): Q(0.447) ≈ 0.327
        assert!((chip_error_prob(0.1) - 0.327).abs() < 2e-3);
    }

    #[test]
    fn chip_error_prob_is_monotone_in_sinr() {
        let mut prev = 0.6;
        for i in 0..60 {
            let s = 10f64.powf(-2.0 + i as f64 * 0.1);
            let p = chip_error_prob(s);
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn dominant_model_limits() {
        let noise = 1e-9;
        let s = 1e-6;
        // No dominant interferer: reduces to the Gaussian model.
        let p0 = chip_error_prob_dominant(s, 0.0, 0.0, noise);
        assert!((p0 - chip_error_prob(s / noise)).abs() < 1e-12);
        // Equal-power collision: ~quarter of chips lost.
        let p_eq = chip_error_prob_dominant(s, s, 0.0, noise);
        assert!((p_eq - 0.25).abs() < 0.01, "equal-power p = {p_eq}");
        // Overwhelming interferer: coin flip.
        let p_hi = chip_error_prob_dominant(s, 100.0 * s, 0.0, noise);
        assert!(p_hi > 0.49, "dominant p = {p_hi}");
        // Zero noise edge cases.
        assert_eq!(chip_error_prob_dominant(s, 2.0 * s, 0.0, 0.0), 0.5);
        assert_eq!(chip_error_prob_dominant(s, 0.5 * s, 0.0, 0.0), 0.0);
    }

    #[test]
    fn dominant_model_is_monotone_in_interferer_power() {
        let noise = 1e-9;
        let s = 1e-6;
        let mut prev = 0.0;
        for k in 0..40 {
            let d = s * 10f64.powf(-2.0 + k as f64 * 0.1);
            let p = chip_error_prob_dominant(s, d, 0.0, noise);
            assert!(p >= prev - 1e-12, "dip at k={k}");
            prev = p;
        }
    }

    #[test]
    fn dominant_is_harsher_than_gaussian_near_equal_power() {
        // The whole point of the two-mass model: a comparable-power
        // collider does far more damage than its Gaussian equivalent.
        let noise = 1e-9;
        let s = 1e-6;
        let gaussian = chip_error_prob(sinr(s, s, noise));
        let two_mass = chip_error_prob_dominant(s, s, 0.0, noise);
        assert!(
            two_mass > 2.0 * gaussian,
            "two-mass {two_mass} vs gaussian {gaussian}"
        );
    }

    #[test]
    fn sinr_composes_noise_and_interference() {
        assert!((sinr(1.0, 0.0, 0.5) - 2.0).abs() < 1e-12);
        assert!((sinr(1.0, 0.5, 0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &p in &[0.01, 0.3, 0.77] {
            let total: f64 = (0..=32).map(|k| binomial_pmf(32, p, k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "p={p} total={total}");
        }
    }

    #[test]
    fn binomial_tail_edges() {
        assert_eq!(binomial_tail(32, 0.0, 0), 1.0);
        assert_eq!(binomial_tail(32, 0.0, 1), 0.0);
        assert_eq!(binomial_tail(32, 1.0, 32), 1.0);
        assert!((binomial_tail(10, 0.5, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn codeword_bound_tracks_chip_error_rate() {
        assert!(codeword_error_upper_bound(1e-4) < 1e-10);
        let mid = codeword_error_upper_bound(0.05);
        assert!(mid > 1e-5 && mid < 0.5, "mid {mid}");
        assert_eq!(codeword_error_upper_bound(0.5), 1.0);
    }
}
