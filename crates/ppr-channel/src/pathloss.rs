//! Indoor radio propagation: log-distance path loss with lognormal
//! shadowing.
//!
//! The paper's testbed spans nine rooms of an office floor (Fig. 7); link
//! qualities there range from near-perfect to marginal, and that diversity
//! is what every PPR result feeds on. The standard indoor model that
//! produces it is
//!
//! `PL(d) = PL(d₀) + 10·n·log₁₀(d/d₀) + X_σ`
//!
//! with path-loss exponent `n ≈ 3` for through-wall office links and a
//! per-link lognormal shadowing term `X_σ` (σ ≈ 6 dB) drawn once per link
//! (walls don't move during an experiment).

use crate::math::dbm_to_mw;
use rand::Rng;

/// Parameters of the propagation environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLossModel {
    /// Transmit power in dBm (CC2420 maximum: 0 dBm).
    pub tx_power_dbm: f64,
    /// Path loss at the reference distance `d₀ = 1 m`, in dB
    /// (≈ 40 dB at 2.4 GHz free space).
    pub pl0_db: f64,
    /// Path-loss exponent `n` (2 = free space; ~3 for indoor office).
    pub exponent: f64,
    /// Standard deviation of lognormal shadowing, dB.
    pub shadow_sigma_db: f64,
    /// Receiver noise floor in dBm over the 2 MHz channel
    /// (−174 dBm/Hz + 10 dB noise figure + 63 dB bandwidth ≈ −101 dBm).
    pub noise_floor_dbm: f64,
}

impl Default for PathLossModel {
    fn default() -> Self {
        PathLossModel {
            tx_power_dbm: 0.0,
            pl0_db: 40.0,
            exponent: 3.0,
            shadow_sigma_db: 6.0,
            noise_floor_dbm: -101.0,
        }
    }
}

impl PathLossModel {
    /// Mean path loss at distance `d` meters (no shadowing).
    pub fn mean_path_loss_db(&self, d_meters: f64) -> f64 {
        let d = d_meters.max(0.1);
        self.pl0_db + 10.0 * self.exponent * d.log10()
    }

    /// Draws the static shadowing offset for one link, in dB.
    pub fn draw_shadowing_db<R: Rng>(&self, rng: &mut R) -> f64 {
        sample_normal(rng) * self.shadow_sigma_db
    }

    /// Received power in dBm over a link of distance `d` with a given
    /// (pre-drawn) shadowing offset.
    pub fn rx_power_dbm(&self, d_meters: f64, shadowing_db: f64) -> f64 {
        self.tx_power_dbm - self.mean_path_loss_db(d_meters) - shadowing_db
    }

    /// Received power in milliwatts.
    pub fn rx_power_mw(&self, d_meters: f64, shadowing_db: f64) -> f64 {
        dbm_to_mw(self.rx_power_dbm(d_meters, shadowing_db))
    }

    /// Noise floor in milliwatts.
    pub fn noise_mw(&self) -> f64 {
        dbm_to_mw(self.noise_floor_dbm)
    }

    /// Signal-to-noise ratio (linear) for a link, no interference.
    pub fn snr(&self, d_meters: f64, shadowing_db: f64) -> f64 {
        self.rx_power_mw(d_meters, shadowing_db) / self.noise_mw()
    }

    /// The distance (meters) at which the *mean* received power falls to
    /// `snr_linear` times the noise floor — the inversion of
    /// [`Self::mean_path_loss_db`]:
    ///
    /// `d = 10^((tx − noise − 10·log₁₀(snr) − PL₀) / (10·n))`.
    ///
    /// Shadowing is not included: with `shadow_sigma_db > 0` individual
    /// links can exceed the mean, so this is a *mean-power* range, exact
    /// only when shadowing is disabled.
    pub fn range_at_snr_m(&self, snr_linear: f64) -> f64 {
        assert!(snr_linear > 0.0, "SNR threshold must be positive");
        let budget_db =
            self.tx_power_dbm - self.noise_floor_dbm - 10.0 * snr_linear.log10() - self.pl0_db;
        10f64.powf(budget_db / (10.0 * self.exponent)).max(0.1)
    }

    /// The interference radius: the distance at which the mean received
    /// power equals the noise floor (SNR = 1). Beyond it a transmitter
    /// contributes less than the ever-present thermal noise, so spatial
    /// dispatch folds it into the noise floor instead of enumerating it.
    /// Exact (a true upper bound on audibility) only when
    /// `shadow_sigma_db == 0`.
    pub fn interference_radius_m(&self) -> f64 {
        self.range_at_snr_m(1.0)
    }
}

/// One sender→receiver link with its frozen shadowing draw: yields the
/// static received power used for every packet on that link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Link distance, meters.
    pub distance_m: f64,
    /// Frozen shadowing offset, dB.
    pub shadowing_db: f64,
    /// Received power in mW, precomputed.
    pub rx_power_mw: f64,
}

impl Link {
    /// Builds a link, drawing its shadowing from `rng`.
    pub fn new<R: Rng>(model: &PathLossModel, distance_m: f64, rng: &mut R) -> Self {
        let shadowing_db = model.draw_shadowing_db(rng);
        Link {
            distance_m,
            shadowing_db,
            rx_power_mw: model.rx_power_mw(distance_m, shadowing_db),
        }
    }

    /// Builds a link with explicit shadowing (deterministic tests).
    pub fn with_shadowing(model: &PathLossModel, distance_m: f64, shadowing_db: f64) -> Self {
        Link {
            distance_m,
            shadowing_db,
            rx_power_mw: model.rx_power_mw(distance_m, shadowing_db),
        }
    }

    /// Linear SNR of this link against a noise floor in mW.
    pub fn snr(&self, noise_mw: f64) -> f64 {
        self.rx_power_mw / noise_mw
    }
}

/// Free-space reference loss at 1 m for a carrier frequency in GHz:
/// `20 log₁₀(4π d f / c)`.
pub fn fspl_at_1m_db(freq_ghz: f64) -> f64 {
    20.0 * (4.0 * std::f64::consts::PI * freq_ghz * 1e9 / 299_792_458.0).log10()
}

/// Draws one sample from the standard normal `N(0, 1)` via Box–Muller.
///
/// Shared by shadowing draws and the sample-level AWGN generator; local
/// because the workspace avoids numerics crates.
pub fn sample_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::ratio_to_db;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_loss_increases_with_distance() {
        let m = PathLossModel::default();
        let mut prev = f64::NEG_INFINITY;
        for d in [1.0, 2.0, 5.0, 10.0, 30.0] {
            let pl = m.mean_path_loss_db(d);
            assert!(pl > prev);
            prev = pl;
        }
    }

    #[test]
    fn exponent_controls_slope() {
        let m = PathLossModel {
            exponent: 3.0,
            ..Default::default()
        };
        // Doubling distance adds 10·n·log10(2) ≈ 9.03 dB at n=3.
        let delta = m.mean_path_loss_db(20.0) - m.mean_path_loss_db(10.0);
        assert!((delta - 9.0309).abs() < 1e-3);
    }

    #[test]
    fn fspl_reference_value() {
        // ~40 dB at 1 m, 2.4 GHz.
        assert!((fspl_at_1m_db(2.4) - 40.05).abs() < 0.1);
    }

    #[test]
    fn snr_is_positive_db_at_short_range() {
        let m = PathLossModel::default();
        // 3 m link, no shadowing: PL ≈ 40 + 30·log10(3) ≈ 54.3 dB,
        // RX ≈ −54 dBm, SNR ≈ 47 dB.
        let snr_db = ratio_to_db(m.snr(3.0, 0.0));
        assert!(snr_db > 40.0 && snr_db < 55.0, "snr {snr_db} dB");
    }

    #[test]
    fn shadowing_is_zero_mean_and_spreads() {
        let m = PathLossModel::default();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| m.draw_shadowing_db(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!(
            (var.sqrt() - m.shadow_sigma_db).abs() < 0.2,
            "sigma {}",
            var.sqrt()
        );
    }

    #[test]
    fn link_freezes_shadowing() {
        let m = PathLossModel::default();
        let l = Link::with_shadowing(&m, 10.0, 3.0);
        assert!((l.rx_power_mw - m.rx_power_mw(10.0, 3.0)).abs() < 1e-15);
        assert!(l.snr(m.noise_mw()) > 0.0);
    }

    #[test]
    fn range_inverts_mean_path_loss() {
        let m = PathLossModel {
            shadow_sigma_db: 0.0,
            ..Default::default()
        };
        for snr in [1.0, 2.5, 10.0, 100.0] {
            let d = m.range_at_snr_m(snr);
            // At the returned distance the mean-power SNR equals the
            // threshold (round trip through the log-distance model).
            assert!((m.snr(d, 0.0) - snr).abs() / snr < 1e-9, "snr {snr}: d {d}");
        }
        // Higher thresholds shrink the range; the interference radius
        // (SNR = 1) is the largest of them.
        assert!(m.range_at_snr_m(2.5) < m.interference_radius_m());
        assert!(m.range_at_snr_m(100.0) < m.range_at_snr_m(10.0));
    }

    #[test]
    fn clamps_tiny_distances() {
        let m = PathLossModel::default();
        assert!(m.mean_path_loss_db(0.0).is_finite());
        assert!(m.mean_path_loss_db(1e-9).is_finite());
    }
}
