//! Sample-level DSP channel backend.
//!
//! The full-fidelity path: every transmission is modulated to an MSK
//! waveform, scaled to its received amplitude, shifted to its arrival
//! time, superposed with every concurrent waveform and buried in complex
//! AWGN — exactly what a USRP front end hands to the GNU Radio receiver in
//! the paper's testbed. Used by the collision-anatomy experiment (Fig. 13)
//! and by the parity tests that calibrate the fast chip backend.

use crate::pathloss::sample_normal;
use ppr_phy::complex::Complex32;
use ppr_phy::modem::MskModem;
use ppr_phy::simd::DspKernel;
use rand::Rng;

/// One transmission to superpose at a receiver.
#[derive(Debug, Clone)]
pub struct WaveformTx {
    /// Chip stream of the frame (preamble through postamble).
    pub chips: Vec<bool>,
    /// Arrival time of the first sample, in samples on the receiver clock.
    pub start_sample: usize,
    /// Received *power* at the receiver, mW. Amplitude is `√power`.
    pub power_mw: f64,
    /// Static carrier phase offset of this transmitter, radians.
    pub phase: f32,
}

/// Renders the received waveform: superposed transmissions plus complex
/// AWGN of total power `noise_mw` (split evenly between I and Q).
///
/// The returned buffer covers `[0, duration_samples)` on the receiver
/// clock; transmissions extending beyond it are clipped.
pub fn render<R: Rng>(
    modem: &MskModem,
    txs: &[WaveformTx],
    duration_samples: usize,
    noise_mw: f64,
    rng: &mut R,
) -> Vec<Complex32> {
    let mut out = vec![Complex32::ZERO; duration_samples];
    // Noise first: σ² per rail = noise_mw / 2. This loop stays scalar
    // on purpose — each sample draws two sequential Box–Muller values,
    // so vectorizing it would reorder the RNG stream and change every
    // downstream result.
    if noise_mw > 0.0 {
        let sigma = (noise_mw / 2.0).sqrt() as f32;
        for s in &mut out {
            s.re += sigma * sample_normal(rng) as f32;
            s.im += sigma * sample_normal(rng) as f32;
        }
    }
    let kernel = DspKernel::active();
    for tx in txs {
        let amp = (tx.power_mw as f32).sqrt();
        let rot = Complex32::from_polar(1.0, tx.phase);
        let wave = modem.modulate(&tx.chips);
        if tx.start_sample >= duration_samples {
            continue;
        }
        // Clip to the buffer, then superpose `out += (wave · rot) · amp`
        // with the active DSP kernel (bit-identical across kernels).
        let n = wave.len().min(duration_samples - tx.start_sample);
        kernel.axpy_rotated(
            &mut out[tx.start_sample..tx.start_sample + n],
            &wave[..n],
            rot,
            amp,
        );
    }
    out
}

/// Renders a single transmission over AWGN with no interferers —
/// convenience for BER calibration.
pub fn render_single<R: Rng>(
    modem: &MskModem,
    chips: &[bool],
    power_mw: f64,
    noise_mw: f64,
    rng: &mut R,
) -> Vec<Complex32> {
    let duration = modem.samples_for_chips(chips.len());
    render(
        modem,
        &[WaveformTx {
            chips: chips.to_vec(),
            start_sample: 0,
            power_mw,
            phase: 0.0,
        }],
        duration,
        noise_mw,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::chip_error_prob;
    use ppr_phy::modem::unpack_chip_words;
    use ppr_phy::spread::spread_bytes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_render_roundtrips() {
        let modem = MskModem::new(4);
        let chips = unpack_chip_words(&spread_bytes(b"waveform"));
        let mut rng = StdRng::seed_from_u64(1);
        let samples = render_single(&modem, &chips, 1.0, 0.0, &mut rng);
        let rx = modem.demodulate_hard(&samples, 0, chips.len(), true);
        assert_eq!(rx, chips);
    }

    #[test]
    fn amplitude_scales_with_power() {
        let modem = MskModem::new(4);
        let chips = unpack_chip_words(&spread_bytes(b"pw"));
        let mut rng = StdRng::seed_from_u64(2);
        let s1 = render_single(&modem, &chips, 1.0, 0.0, &mut rng);
        let s4 = render_single(&modem, &chips, 4.0, 0.0, &mut rng);
        let p1: f32 = s1.iter().map(|s| s.norm_sqr()).sum::<f32>() / s1.len() as f32;
        let p4: f32 = s4.iter().map(|s| s.norm_sqr()).sum::<f32>() / s4.len() as f32;
        assert!((p4 / p1 - 4.0).abs() < 0.01, "ratio {}", p4 / p1);
    }

    #[test]
    fn noise_power_is_calibrated() {
        let modem = MskModem::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        let noise_mw = 0.25;
        let samples = render(&modem, &[], 100_000, noise_mw, &mut rng);
        let measured: f64 =
            samples.iter().map(|s| s.norm_sqr() as f64).sum::<f64>() / samples.len() as f64;
        assert!(
            (measured - noise_mw).abs() / noise_mw < 0.02,
            "measured {measured}"
        );
    }

    #[test]
    fn measured_chip_error_rate_matches_analytic() {
        // The load-bearing calibration: the DSP path's chip error rate at
        // a given SNR must match ber::chip_error_prob, since the fast
        // backend is built on that function.
        let modem = MskModem::new(4);
        let mut rng = StdRng::seed_from_u64(4);
        let n_chips = 64_000;
        let chips: Vec<bool> = (0..n_chips).map(|_| rng.gen()).collect();
        for snr_db in [0.0f64, 3.0, 6.0] {
            let snr = 10f64.powf(snr_db / 10.0);
            // Signal power 1 mW; matched filter over one chip has
            // processing s.t. soft value noise σ² = noise_mw/(2·E_pulse)
            // … rather than re-derive, measure: set noise so that
            // per-chip SNR = snr. For half-sine MSK with our normalized
            // matched filter, chip SNR = E_chip/N0_effective =
            // power · E_pulse / noise_mw (per rail noise σ² = noise/2,
            // filter gain E_pulse/2 per rail) — verified empirically
            // against chip_error_prob by this very test.
            let e_pulse = 4.0; // pulse energy at sps=4 is 2·sps/2 = sps
            let noise_mw = e_pulse / snr;
            let samples = render_single(&modem, &chips, 1.0, noise_mw, &mut rng);
            let rx = modem.demodulate_hard(&samples, 0, chips.len(), true);
            let errors = rx.iter().zip(&chips).filter(|(a, b)| a != b).count();
            let measured = errors as f64 / n_chips as f64;
            let analytic = chip_error_prob(snr);
            assert!(
                (measured - analytic).abs() < 0.15 * analytic + 0.002,
                "snr {snr_db} dB: measured {measured:.4} analytic {analytic:.4}"
            );
        }
    }

    #[test]
    fn phase_rotation_preserves_single_tx_power() {
        let modem = MskModem::new(4);
        let chips = unpack_chip_words(&spread_bytes(b"ph"));
        let mut rng = StdRng::seed_from_u64(5);
        let tx = WaveformTx {
            chips: chips.clone(),
            start_sample: 0,
            power_mw: 1.0,
            phase: 1.1,
        };
        let samples = render(
            &modem,
            &[tx],
            modem.samples_for_chips(chips.len()),
            0.0,
            &mut rng,
        );
        let p: f32 = samples.iter().map(|s| s.norm_sqr()).sum::<f32>() / samples.len() as f32;
        assert!(p > 0.5, "power {p}");
    }

    #[test]
    fn overlapping_transmissions_superpose() {
        let modem = MskModem::new(4);
        let a = unpack_chip_words(&spread_bytes(b"aaaa"));
        let b = unpack_chip_words(&spread_bytes(b"bbbb"));
        let mut rng = StdRng::seed_from_u64(6);
        let txs = vec![
            WaveformTx {
                chips: a.clone(),
                start_sample: 0,
                power_mw: 1.0,
                phase: 0.0,
            },
            WaveformTx {
                chips: b,
                start_sample: 40,
                power_mw: 1.0,
                phase: 0.9,
            },
        ];
        let dur = modem.samples_for_chips(a.len()) + 400;
        let samples = render(&modem, &txs, dur, 0.0, &mut rng);
        // The head of `a` (before sample 40) decodes cleanly; the
        // collided middle does not decode error-free.
        let rx = modem.demodulate_hard(&samples, 0, a.len(), true);
        let head_errors = rx[..8].iter().zip(&a[..8]).filter(|(x, y)| x != y).count();
        assert_eq!(head_errors, 0);
        let body_errors = rx[12..]
            .iter()
            .zip(&a[12..])
            .filter(|(x, y)| x != y)
            .count();
        assert!(body_errors > 0, "equal-power collision must corrupt chips");
    }
}
