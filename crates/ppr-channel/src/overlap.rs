//! Interference span computation for concurrent transmissions.
//!
//! Every packet a receiver hears competes with whatever else is on the air
//! during (parts of) its flight (paper Fig. 5). This module turns a set of
//! concurrent transmissions into, for one *target* transmission, a
//! piecewise-constant interference-power profile over the target's chips.
//! Each piece then maps to one chip-error probability in the fast channel.

/// A transmission as seen by one receiver: absolute chip-clock start, chip
/// length of the whole frame, and received power at that receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeardTx {
    /// Identifier of the transmission (simulator-assigned).
    pub id: u64,
    /// Absolute chip index when the first chip of the frame arrives.
    pub start_chip: u64,
    /// Frame length in chips (preamble through postamble).
    pub len_chips: u64,
    /// Received power at the receiver, mW.
    pub power_mw: f64,
}

impl HeardTx {
    /// Exclusive end of the transmission on the chip clock.
    #[inline]
    pub fn end_chip(&self) -> u64 {
        self.start_chip + self.len_chips
    }

    /// Does this transmission overlap `[from, to)` on the chip clock?
    #[inline]
    pub fn overlaps(&self, from: u64, to: u64) -> bool {
        self.start_chip < to && from < self.end_chip()
    }
}

/// One piece of the interference profile, in chip offsets *relative to the
/// target transmission's first chip*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceSpan {
    /// First chip (inclusive) of the span, relative to the target.
    pub start: u64,
    /// One-past-last chip of the span, relative to the target.
    pub end: u64,
    /// Total interference power from all overlapping transmissions, mW.
    pub interference_mw: f64,
    /// Power of the single strongest interferer in this span, mW.
    ///
    /// A DSSS collision is not Gaussian: each interferer chip either
    /// opposes or reinforces the signal chip, so the chip error
    /// probability is bimodal in the dominant interferer's amplitude.
    /// The chip channel models the strongest interferer exactly and
    /// only Gaussian-approximates the residue
    /// (`interference_mw − dominant_mw`).
    pub dominant_mw: f64,
}

impl InterferenceSpan {
    /// Number of chips covered.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the span covers no chips.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Computes the piecewise-constant interference profile over `target`,
/// given all transmissions the receiver hears (the target itself is
/// skipped by id). Spans tile `[0, target.len_chips)` exactly, in order,
/// with zero-interference gaps included.
pub fn interference_profile(target: &HeardTx, heard: &[HeardTx]) -> Vec<InterferenceSpan> {
    // Collect the clipped intervals and power-change events.
    let mut clipped: Vec<(u64, u64, f64)> = Vec::new();
    let mut events: Vec<(u64, f64)> = Vec::new(); // (relative chip, power delta)
    for tx in heard {
        if tx.id == target.id || !tx.overlaps(target.start_chip, target.end_chip()) {
            continue;
        }
        let from = tx.start_chip.max(target.start_chip) - target.start_chip;
        let to = tx.end_chip().min(target.end_chip()) - target.start_chip;
        if from < to {
            clipped.push((from, to, tx.power_mw));
            events.push((from, tx.power_mw));
            events.push((to, -tx.power_mw));
        }
    }
    events.sort_by_key(|a| a.0);

    let mut spans = Vec::new();
    let mut cursor = 0u64;
    let mut level = 0.0f64;
    let mut i = 0;
    let mut push = |start: u64, end: u64, level: f64| {
        let dominant = clipped
            .iter()
            .filter(|&&(f, t, _)| f < end && start < t)
            .map(|&(_, _, p)| p)
            .fold(0.0f64, f64::max);
        spans.push(InterferenceSpan {
            start,
            end,
            interference_mw: level.max(0.0),
            dominant_mw: dominant.min(level.max(0.0)),
        });
    };
    while i < events.len() {
        let at = events[i].0;
        if at > cursor {
            push(cursor, at, level);
            cursor = at;
        }
        // Apply all events at this chip index.
        while i < events.len() && events[i].0 == at {
            level += events[i].1;
            i += 1;
        }
    }
    if cursor < target.len_chips {
        push(cursor, target.len_chips, level);
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(id: u64, start: u64, len: u64, power: f64) -> HeardTx {
        HeardTx {
            id,
            start_chip: start,
            len_chips: len,
            power_mw: power,
        }
    }

    #[test]
    fn no_interferers_single_zero_span() {
        let target = tx(1, 100, 50, 1.0);
        let spans = interference_profile(&target, &[target]);
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (0, 50));
        assert_eq!(spans[0].interference_mw, 0.0);
    }

    #[test]
    fn partial_overlap_produces_three_spans() {
        let target = tx(1, 100, 100, 1.0);
        let other = tx(2, 140, 30, 0.5);
        let spans = interference_profile(&target, &[target, other]);
        assert_eq!(
            spans,
            vec![
                InterferenceSpan {
                    start: 0,
                    end: 40,
                    interference_mw: 0.0,
                    dominant_mw: 0.0
                },
                InterferenceSpan {
                    start: 40,
                    end: 70,
                    interference_mw: 0.5,
                    dominant_mw: 0.5
                },
                InterferenceSpan {
                    start: 70,
                    end: 100,
                    interference_mw: 0.0,
                    dominant_mw: 0.0
                },
            ]
        );
    }

    #[test]
    fn overlapping_interferers_sum_power() {
        let target = tx(1, 0, 100, 1.0);
        let a = tx(2, 10, 50, 0.3); // covers [10, 60)
        let b = tx(3, 40, 100, 0.7); // covers [40, 100)
        let spans = interference_profile(&target, &[a, b, target]);
        assert_eq!(spans.len(), 4);
        assert!((spans[1].interference_mw - 0.3).abs() < 1e-12); // [10,40)
        assert!((spans[2].interference_mw - 1.0).abs() < 1e-12); // [40,60)
        assert!((spans[3].interference_mw - 0.7).abs() < 1e-12); // [60,100)
    }

    #[test]
    fn interferer_straddling_start_is_clipped() {
        let target = tx(1, 1000, 80, 1.0);
        let early = tx(2, 900, 150, 0.2); // ends at 1050 → covers [0, 50)
        let spans = interference_profile(&target, &[early]);
        assert_eq!(
            spans[0],
            InterferenceSpan {
                start: 0,
                end: 50,
                interference_mw: 0.2,
                dominant_mw: 0.2
            }
        );
        assert_eq!(
            spans[1],
            InterferenceSpan {
                start: 50,
                end: 80,
                interference_mw: 0.0,
                dominant_mw: 0.0
            }
        );
    }

    #[test]
    fn spans_tile_target_exactly() {
        let target = tx(1, 0, 1000, 1.0);
        let heard: Vec<HeardTx> = (0..20)
            .map(|i| tx(i + 2, i * 37, 113, 0.1 * (i as f64 + 1.0)))
            .collect();
        let spans = interference_profile(&target, &heard);
        let mut cursor = 0;
        for s in &spans {
            assert_eq!(s.start, cursor, "gap before {s:?}");
            assert!(s.end > s.start);
            cursor = s.end;
        }
        assert_eq!(cursor, 1000);
    }

    #[test]
    fn non_overlapping_tx_ignored() {
        let target = tx(1, 100, 50, 1.0);
        let before = tx(2, 0, 100, 9.0); // ends exactly at target start
        let after = tx(3, 150, 10, 9.0); // begins exactly at target end
        let spans = interference_profile(&target, &[before, after]);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].interference_mw, 0.0);
    }

    #[test]
    fn identical_interval_interferers_merge() {
        let target = tx(1, 0, 64, 1.0);
        let a = tx(2, 16, 16, 0.25);
        let b = tx(3, 16, 16, 0.75);
        let spans = interference_profile(&target, &[a, b]);
        assert_eq!(spans.len(), 3);
        assert!((spans[1].interference_mw - 1.0).abs() < 1e-12);
        // Power level returns to zero after both end (no float residue
        // big enough to create a phantom span).
        assert_eq!(spans[2].interference_mw, 0.0);
    }
}
