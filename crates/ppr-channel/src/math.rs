//! Small numeric helpers: dB conversions and the Gaussian Q-function.
//!
//! Implemented locally (the workspace avoids numerics crates): `erfc` uses
//! the Abramowitz & Stegun 7.1.26 rational approximation, accurate to
//! ~1.5 × 10⁻⁷ absolute error — far below anything a chip-error-rate model
//! can resolve.

/// Converts dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts milliwatts to dBm. Returns `-inf` for 0 mW.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// Converts a power ratio to decibels.
#[inline]
pub fn ratio_to_db(r: f64) -> f64 {
    10.0 * r.log10()
}

/// Converts decibels to a power ratio.
#[inline]
pub fn db_to_ratio(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// The error function, via Abramowitz & Stegun 7.1.26.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The complementary error function.
#[inline]
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// The Gaussian tail probability `Q(x) = P[N(0,1) > x]`.
#[inline]
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_conversions_roundtrip() {
        for dbm in [-100.0, -30.0, 0.0, 17.5] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
        assert!((db_to_ratio(3.0103) - 2.0).abs() < 1e-3);
        assert!((ratio_to_db(10.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn erf_reference_values() {
        // erf(0)=0, erf(1)≈0.8427008, erf(2)≈0.9953223. The A&S 7.1.26
        // approximation carries ~1.5e-7 absolute error.
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427008).abs() < 2e-6);
        assert!((erf(2.0) - 0.9953223).abs() < 2e-6);
        assert!((erf(-1.0) + 0.8427008).abs() < 2e-6);
    }

    #[test]
    fn q_function_reference_values() {
        // Q(0)=0.5, Q(1)≈0.158655, Q(3)≈0.0013499
        assert!((q_function(0.0) - 0.5).abs() < 1e-9);
        assert!((q_function(1.0) - 0.158655).abs() < 1e-5);
        assert!((q_function(3.0) - 0.0013499).abs() < 1e-5);
    }

    #[test]
    fn q_function_is_monotonically_decreasing() {
        let mut prev = 1.0;
        for i in 0..100 {
            let q = q_function(i as f64 * 0.1);
            assert!(q <= prev);
            prev = q;
        }
    }
}
