//! Jamming-burst geometry: pure chip-clock math shared by the
//! link-level `jam` experiment and the mesh adversary actors.
//!
//! A jammer is, to the channel, just another emitter: a set of
//! `[start, end)` chip intervals during which extra power is on the
//! air. This module owns the *placement* math — duty-cycled pulse
//! trains, interval intersection against a victim frame's window —
//! while the corruption itself flows through the existing
//! [`crate::overlap`]/[`crate::chip_channel`] path. Keeping the
//! placement here (dependency-free, integer-only) lets both the
//! single-link experiment and the 10k-node mesh share one definition
//! of "what a duty cycle means", and makes the schedule trivially
//! deterministic: same parameters, same bursts, on every backend.

/// One jamming burst on the absolute chip clock: `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// First jammed chip (inclusive).
    pub start: u64,
    /// One-past-last jammed chip.
    pub end: u64,
}

impl Burst {
    /// Number of chips jammed.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True when the burst covers no chips.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Does this burst overlap `[from, to)`?
    #[inline]
    pub fn overlaps(&self, from: u64, to: u64) -> bool {
        self.start < to && from < self.end
    }
}

/// The burst a periodic pulse jammer emits in the period starting at
/// `period_index * period`: the first `duty` fraction of the period is
/// jammed. `duty` is clamped to `[0, 1]`; a zero duty yields an empty
/// burst. Burst length is computed in integer chips (floor), so every
/// period jams exactly the same number of chips.
pub fn pulse_burst(period: u64, duty: f64, period_index: u64) -> Burst {
    let start = period_index.saturating_mul(period);
    let on = (period as f64 * duty.clamp(0.0, 1.0)) as u64;
    Burst {
        start,
        end: start + on.min(period),
    }
}

/// All pulse bursts of a `(period, duty)` train that overlap the chip
/// window `[from, to)`, clipped to the window. Empty for `duty == 0`.
pub fn pulse_bursts_in(period: u64, duty: f64, from: u64, to: u64) -> Vec<Burst> {
    let mut out = Vec::new();
    if period == 0 || duty <= 0.0 || to <= from {
        return out;
    }
    let first = from / period;
    let mut idx = first;
    while idx.saturating_mul(period) < to {
        let b = pulse_burst(period, duty, idx);
        if b.overlaps(from, to) {
            out.push(Burst {
                start: b.start.max(from),
                end: b.end.min(to),
            });
        }
        idx += 1;
    }
    out
}

/// Intersects a burst list with the window `[from, to)` and returns
/// the covered intervals *relative to `from`* — the shape
/// [`crate::chip_channel::ErrorProfile::from_pieces`] wants. Input
/// bursts need not be sorted; output is sorted and non-overlapping
/// (overlapping inputs are merged).
pub fn clip_bursts(bursts: &[Burst], from: u64, to: u64) -> Vec<(u64, u64)> {
    let mut clipped: Vec<(u64, u64)> = bursts
        .iter()
        .filter(|b| b.overlaps(from, to))
        .map(|b| (b.start.max(from) - from, b.end.min(to) - from))
        .collect();
    clipped.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(clipped.len());
    for (s, e) in clipped {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Fraction of the window `[from, to)` covered by the bursts.
pub fn cover_fraction(bursts: &[Burst], from: u64, to: u64) -> f64 {
    if to <= from {
        return 0.0;
    }
    let covered: u64 = clip_bursts(bursts, from, to)
        .iter()
        .map(|&(s, e)| e - s)
        .sum();
    covered as f64 / (to - from) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_burst_jams_leading_duty_fraction() {
        let b = pulse_burst(1000, 0.25, 3);
        assert_eq!(
            b,
            Burst {
                start: 3000,
                end: 3250
            }
        );
        assert_eq!(b.len(), 250);
        assert!(pulse_burst(1000, 0.0, 5).is_empty());
        // Duty clamps: 1.5 jams the whole period, never more.
        assert_eq!(
            pulse_burst(1000, 1.5, 0),
            Burst {
                start: 0,
                end: 1000
            }
        );
    }

    #[test]
    fn pulse_bursts_in_cover_expected_fraction() {
        // 10 periods of 1000 chips, duty 0.3 → 3000 of 10000 jammed.
        let bursts = pulse_bursts_in(1000, 0.3, 0, 10_000);
        assert_eq!(bursts.len(), 10);
        let f = cover_fraction(&bursts, 0, 10_000);
        assert!((f - 0.3).abs() < 1e-12, "{f}");
    }

    #[test]
    fn pulse_bursts_clip_at_window_edges() {
        // Window starts mid-burst: period 100, duty 0.5 jams [0,50),
        // [100,150)... A window [25, 130) sees [25,50) and [100,130).
        let bursts = pulse_bursts_in(100, 0.5, 25, 130);
        assert_eq!(
            bursts,
            vec![
                Burst { start: 25, end: 50 },
                Burst {
                    start: 100,
                    end: 130
                }
            ]
        );
    }

    #[test]
    fn degenerate_trains_are_empty() {
        assert!(pulse_bursts_in(0, 0.5, 0, 100).is_empty());
        assert!(pulse_bursts_in(100, 0.0, 0, 100).is_empty());
        assert!(pulse_bursts_in(100, 0.5, 50, 50).is_empty());
    }

    #[test]
    fn clip_bursts_merges_and_sorts() {
        let bursts = [
            Burst {
                start: 80,
                end: 120,
            },
            Burst { start: 10, end: 30 },
            Burst { start: 25, end: 40 },
            Burst {
                start: 300,
                end: 400,
            }, // outside window
        ];
        let clipped = clip_bursts(&bursts, 0, 200);
        assert_eq!(clipped, vec![(10, 40), (80, 120)]);
    }

    #[test]
    fn cover_fraction_handles_overlap_without_double_counting() {
        let bursts = [
            Burst { start: 0, end: 60 },
            Burst {
                start: 40,
                end: 100,
            },
        ];
        let f = cover_fraction(&bursts, 0, 100);
        assert!((f - 1.0).abs() < 1e-12);
        assert_eq!(cover_fraction(&bursts, 100, 100), 0.0);
    }
}
