//! CRC-32 (IEEE 802.3) and CRC-16 (CCITT) — table-driven, from scratch.
//!
//! CRC-32 protects whole packets and fragments (the paper's packet-CRC
//! and fragmented-CRC schemes both use 32-bit checks, §7.2); CRC-16
//! protects the short header/trailer records and PP-ARQ's per-run
//! verification checksums, where 4 bytes of check over ~10 bytes of data
//! would be disproportionate.
//!
//! [`crc32`] dispatches between two kernels: buffers of 64 bytes and
//! up use the PCLMULQDQ folding kernel in [`crate::clmul`] when the
//! CPU has it; everything else runs [`crc32_slice16`] — `const
//! fn`-generated shift tables folding a whole block of input per step
//! (one table lookup per byte, but the lookups within a block are
//! independent — no serial 8-bit shift chain between them), which is
//! what makes the 1500 B packet-CRC check cheap enough to no longer
//! dominate a demand-driven frame decode. The table generator is
//! block-size-generic; the shipped kernel slices 16 bytes (slice-by-8
//! measured ~3.7× over the byte-at-a-time loop on the CI container —
//! halving the serial chain again clears 4×). The classic 1-table
//! byte-at-a-time form is kept as [`crc32_1table`], the pinned
//! reference the parity tests and the `crc32_*` bench rows compare
//! against.

// ppr-lint: region(no-float) begin — CRC table generation and folding
// are pure integer paths; a float anywhere here could only mean a unit
// mix-up (and floats in a `const fn` table would not even build).
/// Generates the `N` CRC-32 lookup tables for the reflected IEEE 802.3
/// polynomial `0xEDB88320`. `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][b]` is the CRC of byte `b` followed by `k` zero
/// bytes, which lets slice-by-`N` process `N` bytes with `N` independent
/// lookups.
const fn crc32_tables<const N: usize>() -> [[u32; 256]; N] {
    let mut tables = [[0u32; 256]; N];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < N {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// Generates the CRC-16 lookup table for the CCITT polynomial `0x1021`
/// (non-reflected).
const fn crc16_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u16) << 8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

pub(crate) const CRC32_TABLES: [[u32; 256]; 16] = crc32_tables();
const CRC16_TABLE: [u16; 256] = crc16_table();

/// CRC-32/ISO-HDLC (the "zlib" CRC): reflected, init `0xFFFFFFFF`, final
/// XOR `0xFFFFFFFF`.
///
/// Dispatches once per call on buffer size: packets of 64 bytes and up
/// go through the PCLMULQDQ folding kernel
/// ([`crc32_clmul`](crate::clmul::crc32_clmul)) when the CPU supports
/// it and `PPR_NO_SIMD=1` is not set; everything else (and every
/// pre-SSE4.1 machine) takes the sliced table kernel
/// [`crc32_slice16`]. All paths are bit-identical.
pub fn crc32(data: &[u8]) -> u32 {
    if data.len() >= 64 && crate::clmul::available() {
        return crate::clmul::crc32_clmul(data);
    }
    crc32_slice16(data)
}

/// The slice-by-16 table kernel — the pinned portable reference the
/// CLMUL kernel is parity-tested against, and the CRC every target
/// without `pclmulqdq` computes. Bit-identical to [`crc32_1table`].
pub fn crc32_slice16(data: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(16);
    for c in &mut chunks {
        // Two 64-bit loads per block; the running CRC folds into the
        // low word. All sixteen lookups depend only on (w1, w2), so they
        // issue in parallel instead of serializing on a per-byte shift
        // chain — the only loop-carried dependency is one XOR tree per
        // 16 bytes.
        let w1 = u64::from_le_bytes(c[..8].try_into().expect("16-byte chunk")) ^ crc as u64;
        let w2 = u64::from_le_bytes(c[8..].try_into().expect("16-byte chunk"));
        crc = t[15][(w1 & 0xFF) as usize]
            ^ t[14][((w1 >> 8) & 0xFF) as usize]
            ^ t[13][((w1 >> 16) & 0xFF) as usize]
            ^ t[12][((w1 >> 24) & 0xFF) as usize]
            ^ t[11][((w1 >> 32) & 0xFF) as usize]
            ^ t[10][((w1 >> 40) & 0xFF) as usize]
            ^ t[9][((w1 >> 48) & 0xFF) as usize]
            ^ t[8][(w1 >> 56) as usize]
            ^ t[7][(w2 & 0xFF) as usize]
            ^ t[6][((w2 >> 8) & 0xFF) as usize]
            ^ t[5][((w2 >> 16) & 0xFF) as usize]
            ^ t[4][((w2 >> 24) & 0xFF) as usize]
            ^ t[3][((w2 >> 32) & 0xFF) as usize]
            ^ t[2][((w2 >> 40) & 0xFF) as usize]
            ^ t[1][((w2 >> 48) & 0xFF) as usize]
            ^ t[0][(w2 >> 56) as usize];
    }
    for &b in chunks.remainder() {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ t[0][idx];
    }
    crc ^ 0xFFFF_FFFF
}

/// The byte-at-a-time 1-table CRC-32: the reference implementation the
/// slice-by-16 [`crc32`] is parity-tested against (and the baseline row
/// of the `crc32_*` bench ladder).
pub fn crc32_1table(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLES[0][idx];
    }
    crc ^ 0xFFFF_FFFF
}

/// CRC-16/CCITT-FALSE: poly `0x1021`, init `0xFFFF`, no reflection, no
/// final XOR.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc = 0xFFFFu16;
    for &b in data {
        let idx = (((crc >> 8) ^ b as u16) & 0xFF) as usize;
        crc = (crc << 8) ^ CRC16_TABLE[idx];
    }
    crc
}

/// Verifies a buffer whose last four bytes are its little-endian CRC-32.
pub fn verify_crc32_trailer(buf: &[u8]) -> bool {
    if buf.len() < 4 {
        return false;
    }
    let (data, tail) = buf.split_at(buf.len() - 4);
    crc32(data) == u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]])
}

/// Appends the little-endian CRC-32 of `data` to it.
pub fn append_crc32(data: &mut Vec<u8>) {
    let c = crc32(data);
    data.extend_from_slice(&c.to_le_bytes());
}
// ppr-lint: region(no-float) end

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The canonical CRC-32 check: "123456789" → 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_1table(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn sliced_crc32_matches_1table_on_random_buffers() {
        // Every length from 0 to 64 (hitting all remainder phases of the
        // 16-byte main loop) plus large buffers, on pseudo-random bytes.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        };
        for len in (0usize..=64).chain([100, 1023, 1500, 4096]) {
            let buf: Vec<u8> = (0..len).map(|_| next()).collect();
            assert_eq!(crc32_slice16(&buf), crc32_1table(&buf), "len {len}");
            // The public dispatcher (whatever kernel it picks) agrees.
            assert_eq!(crc32(&buf), crc32_1table(&buf), "len {len}");
        }
    }

    #[test]
    fn sliced_crc32_matches_1table_on_existing_vectors() {
        // The buffers the rest of this module pins, plus edge patterns.
        for buf in [
            &b""[..],
            b"123456789",
            b"partial packet recovery",
            b"payload bytes",
            &[0xA5u8; 64],
            &[0x00u8; 33],
            &[0xFFu8; 17],
        ] {
            assert_eq!(crc32(buf), crc32_1table(buf));
        }
    }

    #[test]
    fn crc16_check_value() {
        // CRC-16/CCITT-FALSE check: "123456789" → 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(&[]), 0);
        assert_eq!(crc16(&[]), 0xFFFF);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = b"partial packet recovery".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                assert_ne!(crc32(&d), base, "flip at {byte}.{bit} undetected");
                assert_ne!(
                    crc16(&d),
                    crc16(&data),
                    "crc16 flip at {byte}.{bit} undetected"
                );
            }
        }
    }

    #[test]
    fn trailer_roundtrip() {
        let mut buf = b"payload bytes".to_vec();
        append_crc32(&mut buf);
        assert!(verify_crc32_trailer(&buf));
        // Corruption anywhere breaks verification.
        for i in 0..buf.len() {
            let mut b = buf.clone();
            b[i] ^= 0x40;
            assert!(!verify_crc32_trailer(&b), "corruption at {i} passed");
        }
    }

    #[test]
    fn trailer_verify_rejects_short_buffers() {
        assert!(!verify_crc32_trailer(&[]));
        assert!(!verify_crc32_trailer(&[1, 2, 3]));
    }

    #[test]
    fn burst_errors_detected() {
        // CRC-32 detects all burst errors up to 32 bits; spot-check a few.
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for start in [0usize, 13, 60] {
            let mut d = data.clone();
            for i in 0..4.min(d.len() - start) {
                d[start + i] ^= 0xFF;
            }
            assert_ne!(crc32(&d), base);
        }
    }
}
