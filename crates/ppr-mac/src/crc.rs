//! CRC-32 (IEEE 802.3) and CRC-16 (CCITT) — table-driven, from scratch.
//!
//! CRC-32 protects whole packets and fragments (the paper's packet-CRC
//! and fragmented-CRC schemes both use 32-bit checks, §7.2); CRC-16
//! protects the short header/trailer records and PP-ARQ's per-run
//! verification checksums, where 4 bytes of check over ~10 bytes of data
//! would be disproportionate.

/// Generates the CRC-32 lookup table for the reflected IEEE 802.3
/// polynomial `0xEDB88320`.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Generates the CRC-16 lookup table for the CCITT polynomial `0x1021`
/// (non-reflected).
const fn crc16_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u16) << 8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();
const CRC16_TABLE: [u16; 256] = crc16_table();

/// CRC-32/ISO-HDLC (the "zlib" CRC): reflected, init `0xFFFFFFFF`, final
/// XOR `0xFFFFFFFF`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE[idx];
    }
    crc ^ 0xFFFF_FFFF
}

/// CRC-16/CCITT-FALSE: poly `0x1021`, init `0xFFFF`, no reflection, no
/// final XOR.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc = 0xFFFFu16;
    for &b in data {
        let idx = (((crc >> 8) ^ b as u16) & 0xFF) as usize;
        crc = (crc << 8) ^ CRC16_TABLE[idx];
    }
    crc
}

/// Verifies a buffer whose last four bytes are its little-endian CRC-32.
pub fn verify_crc32_trailer(buf: &[u8]) -> bool {
    if buf.len() < 4 {
        return false;
    }
    let (data, tail) = buf.split_at(buf.len() - 4);
    crc32(data) == u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]])
}

/// Appends the little-endian CRC-32 of `data` to it.
pub fn append_crc32(data: &mut Vec<u8>) {
    let c = crc32(data);
    data.extend_from_slice(&c.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The canonical CRC-32 check: "123456789" → 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc16_check_value() {
        // CRC-16/CCITT-FALSE check: "123456789" → 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(&[]), 0);
        assert_eq!(crc16(&[]), 0xFFFF);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = b"partial packet recovery".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                assert_ne!(crc32(&d), base, "flip at {byte}.{bit} undetected");
                assert_ne!(
                    crc16(&d),
                    crc16(&data),
                    "crc16 flip at {byte}.{bit} undetected"
                );
            }
        }
    }

    #[test]
    fn trailer_roundtrip() {
        let mut buf = b"payload bytes".to_vec();
        append_crc32(&mut buf);
        assert!(verify_crc32_trailer(&buf));
        // Corruption anywhere breaks verification.
        for i in 0..buf.len() {
            let mut b = buf.clone();
            b[i] ^= 0x40;
            assert!(!verify_crc32_trailer(&b), "corruption at {i} passed");
        }
    }

    #[test]
    fn trailer_verify_rejects_short_buffers() {
        assert!(!verify_crc32_trailer(&[]));
        assert!(!verify_crc32_trailer(&[1, 2, 3]));
    }

    #[test]
    fn burst_errors_detected() {
        // CRC-32 detects all burst errors up to 32 bits; spot-check a few.
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for start in [0usize, 13, 60] {
            let mut d = data.clone();
            for i in 0..4.min(d.len() - start) {
                d[start + i] ^= 0xFF;
            }
            assert_ne!(crc32(&d), base);
        }
    }
}
