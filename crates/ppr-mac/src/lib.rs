//! # `ppr-mac` — link-layer framing, CRCs, carrier sense and delivery
//! schemes
//!
//! The link/MAC substrate of the PPR reproduction, sitting between the
//! `ppr-phy` modem and the `ppr-core` PP-ARQ protocol:
//!
//! * [`crc`] — table-driven CRC-32 (IEEE) and CRC-16 (CCITT), built from
//!   scratch.
//! * [`clmul`] — PCLMULQDQ CRC-32 folding for packet-sized buffers,
//!   with compile-time-derived constants; the workspace's second
//!   `unsafe`-allowlisted module (see `ppr-lint.toml`).
//! * [`frame`] — the Fig. 2 frame: header (`len`,`dst`,`src`,`seq` +
//!   CRC-16), body, packet CRC-32, and a **trailer replicating the
//!   header** so the frame is decodable from either end.
//! * [`rx`] — the receive pipeline: preamble decoding, postamble
//!   **rollback** through the trailer (§4), and SoftPHY-annotated frame
//!   reconstruction with explicit never-received padding.
//! * [`schemes`] — the §7.2 trio: packet CRC, fragmented CRC and PPR
//!   (hint-threshold) delivery.
//! * [`csma`] — the carrier-sense rule toggled across experiments.
//! * [`arq_policy`] — bounded-retry backoff schedules and
//!   graceful-degradation outcomes for ARQ under adversity.

// `deny`, not `forbid`: the `clmul` module carries a scoped
// `#[allow(unsafe_code)]` for its `core::arch` intrinsics, exactly like
// `ppr_phy::simd`. The unsafe-containment lint enforces that no other
// module does.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arq_policy;
pub mod clmul;
pub mod crc;
pub mod csma;
pub mod frame;
pub mod rx;
pub mod schemes;

pub use arq_policy::{BackoffPolicy, DeliveryOutcome};
pub use crc::{crc16, crc32};
pub use csma::CarrierSense;
pub use frame::{Addr, Frame, FrameGeometry, Header, HEADER_BYTES, PKT_CRC_BYTES};
pub use rx::{FrameReceiver, RxConfig, RxFrame, HINT_NEVER_RECEIVED};
pub use schemes::{correct_delivered_bytes, Delivered, DeliveryScheme, DEFAULT_ETA};
