//! Bounded-retry ARQ policy: deterministic exponential backoff with
//! jitter, and graceful-degradation outcome reporting.
//!
//! PP-ARQ's chunk planner decides *what* to retransmit; this module
//! decides *when to stop asking* and *how long to wait* between
//! attempts. Everything here is pure integer arithmetic over sim-time
//! chip counts — no RNG objects, no wall clock — so a retry schedule
//! computed by any worker, driver or backend is bit-identical:
//!
//! * [`BackoffPolicy`] — a bounded retry budget plus an exponential
//!   delay ladder. The multiplier is a milli-fixed-point integer
//!   (`1500` = ×1.5) so the ladder never touches floats; `1000` is an
//!   exact identity, which is how the mesh driver preserves its
//!   pre-adversary timing when the `arq_backoff` axis is unset.
//! * [`BackoffPolicy::delay_with_jitter`] — adds a SplitMix64-hashed
//!   jitter drawn from the caller's identity words, the same stateless
//!   construction the mesh driver uses for rebroadcast staggering.
//! * [`DeliveryOutcome`] — what a transfer degraded to when the budget
//!   ran out: complete, partial (with the delivered fraction), or
//!   failed. A fully-jammed link must land here cleanly instead of
//!   looping.

/// SplitMix64 finalizer: a stateless avalanche hash used for
/// deterministic jitter. Identical constants to `ppr_sim`'s
/// `jitter_hash`, duplicated here so the MAC layer stays free of sim
/// dependencies.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A bounded-retry exponential-backoff schedule in sim-time units
/// (chips, for the mesh driver; abstract ticks elsewhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Maximum retry rounds before the transfer gives up.
    pub max_retries: u8,
    /// Delay before the first retry (round 0).
    pub base_delay: u64,
    /// Per-round delay multiplier in milli-units: `1000` = ×1.0
    /// (constant backoff, exact), `2000` = doubling.
    pub multiplier_milli: u64,
    /// Jitter window added on top of the deterministic delay;
    /// `0` disables jitter entirely.
    pub jitter_span: u64,
}

impl BackoffPolicy {
    /// A constant-delay policy (multiplier ×1.0, no jitter): the
    /// schedule every pre-adversary caller implicitly used.
    pub fn constant(max_retries: u8, base_delay: u64) -> Self {
        BackoffPolicy {
            max_retries,
            base_delay,
            multiplier_milli: 1000,
            jitter_span: 0,
        }
    }

    /// May round `round` (0-based) still be attempted under the budget?
    pub fn allows(&self, round: u8) -> bool {
        round < self.max_retries
    }

    /// The deterministic (jitter-free) delay before retry `round`.
    ///
    /// Computed by integer repeated multiplication so every caller —
    /// any worker count, any driver — lands on the same chip count:
    /// `base · (multiplier_milli/1000)^round`, floor-divided each step.
    pub fn delay(&self, round: u8) -> u64 {
        let mut d = self.base_delay;
        for _ in 0..round {
            d = d.saturating_mul(self.multiplier_milli) / 1000;
        }
        d
    }

    /// [`Self::delay`] plus a stateless jitter in `[0, jitter_span)`
    /// hashed from `identity` (caller-chosen: node id, seed, round —
    /// anything stable across replays). No RNG object is consumed, so
    /// the schedule cannot depend on evaluation order.
    pub fn delay_with_jitter(&self, round: u8, identity: u64) -> u64 {
        let jitter = if self.jitter_span == 0 {
            0
        } else {
            splitmix64(identity ^ ((round as u64) << 56)) % self.jitter_span
        };
        self.delay(round) + jitter
    }
}

/// How a bounded-retry transfer ended: the graceful-degradation report
/// the adversarial experiments aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// Every byte verified within the retry budget.
    Complete {
        /// Retry rounds consumed (0 = clean first transmission).
        rounds: u8,
    },
    /// Budget exhausted with some — but not all — bytes verified.
    Partial {
        /// Retry rounds consumed (the full budget).
        rounds: u8,
        /// Bytes verified when the budget ran out.
        delivered_bytes: usize,
        /// Total payload bytes.
        total_bytes: usize,
    },
    /// Budget exhausted with nothing verified.
    Failed {
        /// Retry rounds consumed (the full budget).
        rounds: u8,
    },
}

impl DeliveryOutcome {
    /// Classifies a finished transfer. `delivered_bytes` counts
    /// verified bytes only; a completed transfer always reports
    /// `Complete` regardless of the byte count handed in.
    pub fn classify(
        completed: bool,
        rounds: u8,
        delivered_bytes: usize,
        total_bytes: usize,
    ) -> Self {
        if completed {
            DeliveryOutcome::Complete { rounds }
        } else if delivered_bytes == 0 {
            DeliveryOutcome::Failed { rounds }
        } else {
            DeliveryOutcome::Partial {
                rounds,
                delivered_bytes: delivered_bytes.min(total_bytes),
                total_bytes,
            }
        }
    }

    /// Fraction of payload bytes delivered: 1.0 for `Complete`, 0.0
    /// for `Failed`, the verified fraction for `Partial`.
    pub fn delivered_fraction(&self) -> f64 {
        match *self {
            DeliveryOutcome::Complete { .. } => 1.0,
            DeliveryOutcome::Failed { .. } => 0.0,
            DeliveryOutcome::Partial {
                delivered_bytes,
                total_bytes,
                ..
            } => {
                if total_bytes == 0 {
                    0.0
                } else {
                    delivered_bytes as f64 / total_bytes as f64
                }
            }
        }
    }

    /// Retry rounds consumed.
    pub fn rounds(&self) -> u8 {
        match *self {
            DeliveryOutcome::Complete { rounds }
            | DeliveryOutcome::Partial { rounds, .. }
            | DeliveryOutcome::Failed { rounds } => rounds,
        }
    }

    /// Did the budget run out before completion?
    pub fn exhausted(&self) -> bool {
        !matches!(self, DeliveryOutcome::Complete { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplier_is_exact_at_every_round() {
        let p = BackoffPolicy::constant(8, 65_536);
        for r in 0..8 {
            assert_eq!(p.delay(r), 65_536, "round {r}");
        }
    }

    #[test]
    fn doubling_multiplier_doubles() {
        let p = BackoffPolicy {
            max_retries: 5,
            base_delay: 1_000,
            multiplier_milli: 2000,
            jitter_span: 0,
        };
        assert_eq!(p.delay(0), 1_000);
        assert_eq!(p.delay(1), 2_000);
        assert_eq!(p.delay(2), 4_000);
        assert_eq!(p.delay(4), 16_000);
    }

    #[test]
    fn fractional_multiplier_floors_per_step() {
        let p = BackoffPolicy {
            max_retries: 4,
            base_delay: 1_001,
            multiplier_milli: 1500,
            jitter_span: 0,
        };
        // 1001 -> 1001*1500/1000 = 1501 -> 1501*1500/1000 = 2251 (floor).
        assert_eq!(p.delay(1), 1_501);
        assert_eq!(p.delay(2), 2_251);
    }

    #[test]
    fn delay_saturates_instead_of_overflowing() {
        let p = BackoffPolicy {
            max_retries: u8::MAX,
            base_delay: u64::MAX / 2,
            multiplier_milli: 4000,
            jitter_span: 0,
        };
        // Must not panic; saturating ladder stays at a huge value.
        assert!(p.delay(200) > 0);
    }

    #[test]
    fn jitter_is_stateless_bounded_and_identity_sensitive() {
        let p = BackoffPolicy {
            max_retries: 3,
            base_delay: 100,
            multiplier_milli: 1000,
            jitter_span: 64,
        };
        let a = p.delay_with_jitter(1, 0xAB);
        let b = p.delay_with_jitter(1, 0xAB);
        assert_eq!(a, b, "same identity, same delay");
        assert!((100..164).contains(&a));
        // Different identities or rounds should (generically) differ.
        let c = p.delay_with_jitter(1, 0xAC);
        let d = p.delay_with_jitter(2, 0xAB);
        assert!(a != c || a != d, "jitter must depend on its inputs");
        // jitter_span == 0 is exactly the deterministic ladder.
        let q = BackoffPolicy {
            jitter_span: 0,
            ..p
        };
        assert_eq!(q.delay_with_jitter(1, 0xAB), q.delay(1));
    }

    #[test]
    fn allows_enforces_the_bound() {
        let p = BackoffPolicy::constant(3, 10);
        assert!(p.allows(0) && p.allows(2));
        assert!(!p.allows(3) && !p.allows(200));
    }

    #[test]
    fn classify_covers_all_three_outcomes() {
        let c = DeliveryOutcome::classify(true, 2, 500, 500);
        assert_eq!(c, DeliveryOutcome::Complete { rounds: 2 });
        assert_eq!(c.delivered_fraction(), 1.0);
        assert!(!c.exhausted());

        let p = DeliveryOutcome::classify(false, 4, 250, 1000);
        assert_eq!(
            p,
            DeliveryOutcome::Partial {
                rounds: 4,
                delivered_bytes: 250,
                total_bytes: 1000
            }
        );
        assert_eq!(p.delivered_fraction(), 0.25);
        assert!(p.exhausted());
        assert_eq!(p.rounds(), 4);

        let f = DeliveryOutcome::classify(false, 4, 0, 1000);
        assert_eq!(f, DeliveryOutcome::Failed { rounds: 4 });
        assert_eq!(f.delivered_fraction(), 0.0);
    }

    #[test]
    fn classify_clamps_overdelivery_and_handles_empty() {
        let p = DeliveryOutcome::classify(false, 1, 700, 500);
        assert_eq!(p.delivered_fraction(), 1.0);
        let z = DeliveryOutcome::classify(false, 1, 0, 0);
        assert_eq!(z, DeliveryOutcome::Failed { rounds: 1 });
        assert_eq!(z.delivered_fraction(), 0.0);
    }
}
