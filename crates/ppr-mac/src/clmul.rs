//! Carry-less-multiplication CRC-32 folding (PCLMULQDQ).
//!
//! The slice-by-16 [`crc32`](crate::crc::crc32) still walks a 16 KiB
//! table at one lookup per byte; on x86-64 the `pclmulqdq` instruction
//! computes 64×64-bit carry-less products directly, which turns the CRC
//! into the classic Intel folding scheme: four 128-bit accumulators eat
//! 64 bytes per step, a merge chain collapses them, a 16-byte loop
//! drains the mid tail, and a Barrett reduction maps the final 128-bit
//! residue to the 32-bit CRC. Every fold constant is **derived at
//! compile time from the polynomial itself** (`x^n mod P` and
//! `⌊x^64 / P⌋` over GF(2)) rather than pasted from a reference table,
//! and the tests below pin the derived values against the published
//! Intel white-paper constants anyway.
//!
//! Bit-identical to the table kernels by construction — the fold is an
//! exact ring computation, not an approximation — and proven by parity
//! tests against [`crc32_1table`](crate::crc::crc32_1table) across all
//! remainder phases.
//!
//! ## Kernel selection
//!
//! [`available`] detects `pclmulqdq` + SSE4.1 once per process;
//! `PPR_NO_SIMD=1` forces the sliced table path, mirroring the
//! `ppr_phy::simd` escape hatch. On non-x86-64 targets this module
//! exports only the constants (for the tests) and `available()` is
//! `false`.
//!
//! This is the second `unsafe`-allowlisted module in the workspace
//! (after `ppr_phy::simd`; see `ppr-lint.toml`): every unsafe block is
//! a `core::arch` intrinsic call guarded by the runtime feature check
//! at dispatch time, with a `// SAFETY:` justification on each site.

use std::sync::OnceLock;

/// The CRC-32 generator polynomial in normal (MSB-first) form, without
/// the implicit `x^32` term.
const POLY: u32 = 0x04C1_1DB7;

/// `x^n mod P` over GF(2), in normal form, for `n ≥ 32`.
const fn xn_mod_p(n: u32) -> u32 {
    assert!(n >= 32);
    let mut r: u32 = POLY; // x^32 mod P
    let mut i = 32;
    while i < n {
        let hi = r & 0x8000_0000 != 0;
        r <<= 1;
        if hi {
            r ^= POLY;
        }
        i += 1;
    }
    r
}

/// Fold constant for a shift of `n` bits in the reflected domain:
/// `reflect32(x^n mod P) · x` — the extra `· x` (left shift) aligns the
/// 32-bit reflected remainder for the 64×64 carry-less multiply.
const fn rk(n: u32) -> u64 {
    (xn_mod_p(n).reverse_bits() as u64) << 1
}

/// `⌊x^64 / P⌋` over GF(2) (33 bits, degree 32) — the Barrett constant
/// in normal form.
const fn x64_div_p() -> u64 {
    let p: u128 = (1u128 << 32) | POLY as u128;
    let mut rem: u128 = 1u128 << 64;
    let mut q: u64 = 0;
    let mut shift = 32;
    loop {
        if (rem >> (shift + 32)) & 1 == 1 {
            q |= 1 << shift;
            rem ^= p << shift;
        }
        if shift == 0 {
            break;
        }
        shift -= 1;
    }
    q
}

/// Reflects a 33-bit polynomial (degree-32 leading term becomes bit 0).
const fn reflect33(v: u64) -> u64 {
    (((v as u32).reverse_bits() as u64) << 1) | (v >> 32)
}

// Fold distances: shifting an accumulator across `d` data bits means
// multiplying by `x^d`, split per qword. In the reflected frame the low
// qword holds the higher-degree half and the 64×33 carry-less product
// lands 32 bits low in the 128-bit frame, so the low qword pairs with
// `x^(d+32)` and the high qword with `x^(d−32)` — the classic
// `4·128±32` / `128±32` exponents of the Intel white paper.

/// Low-qword fold constant for a 4-block (512-bit) shift.
const K1: u64 = rk(4 * 128 + 32);
/// High-qword fold constant for a 4-block (512-bit) shift.
const K2: u64 = rk(4 * 128 - 32);
/// Low-qword fold constant for a 1-block shift (merge chain, 16 B loop).
const K3: u64 = rk(128 + 32);
/// High-qword fold constant for a 1-block shift.
const K4: u64 = rk(128 - 32);
/// 64-bit-shift fold constant for the final 128 → 64 reduction.
const K5: u64 = rk(64);
/// The reflected 33-bit generator polynomial.
const P_X: u64 = reflect33((1u64 << 32) | POLY as u64);
/// The reflected Barrett constant `reflect33(⌊x^64 / P⌋)`.
const U_PRIME: u64 = reflect33(x64_div_p());

/// True when this process may run the CLMUL kernel: the CPU has
/// `pclmulqdq` + SSE4.1 and `PPR_NO_SIMD=1` is not set. Detected once
/// and cached, like the `ppr_phy::simd` kernels.
pub fn available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        // ppr-lint: allow(env-hygiene) — the documented kernel escape
        // hatch; read once per process and cached, so it cannot make
        // two CRC calls in one run disagree.
        if std::env::var_os("PPR_NO_SIMD").is_some_and(|v| v == "1") {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            is_x86_feature_detected!("pclmulqdq") && is_x86_feature_detected!("sse4.1")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// CRC-32/ISO-HDLC over `data` with the folding kernel. Requires
/// [`available`] (callers dispatch on it) and `data.len() ≥ 64`; the
/// sub-16-byte tail runs through the classic table loop.
///
/// # Panics
/// Panics if `data.len() < 64` (the four accumulators need one full
/// 64-byte block) or if the CPU lacks the required features.
#[cfg(target_arch = "x86_64")]
pub fn crc32_clmul(data: &[u8]) -> u32 {
    assert!(data.len() >= 64, "folding needs at least one 64-byte block");
    x86::run(data)
}

/// Stub for non-x86-64 targets; never called because [`available`] is
/// `false` there.
#[cfg(not(target_arch = "x86_64"))]
pub fn crc32_clmul(_data: &[u8]) -> u32 {
    unreachable!("clmul kernel dispatched without pclmulqdq support")
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // core::arch intrinsics; dispatch checks features.
mod x86 {
    use super::{K1, K2, K3, K4, K5, P_X, U_PRIME};
    use core::arch::x86_64::*;

    /// Safe entry: re-asserts the features (cached atomic loads) so the
    /// `unsafe` call is locally justified, not dependent on the caller.
    pub(super) fn run(data: &[u8]) -> u32 {
        assert!(is_x86_feature_detected!("pclmulqdq") && is_x86_feature_detected!("sse4.1"));
        // SAFETY: feature presence checked on the line above.
        unsafe { crc32_fold(data) }
    }

    /// One fold step: shifts accumulator `a` by 128·`keys` bits and
    /// absorbs the next block `b`. In the reflected layout the low
    /// qword holds the higher-degree half, so it pairs with the larger
    /// constant (`keys` low = `K1`/`K3`, high = `K2`/`K4`).
    // SAFETY: caller must ensure PCLMULQDQ is available (`crc32_fold`'s
    // safe entry asserts it); pure register arithmetic.
    #[inline]
    #[target_feature(enable = "pclmulqdq,sse4.1")]
    unsafe fn reduce128(a: __m128i, b: __m128i, keys: __m128i) -> __m128i {
        let t1 = _mm_clmulepi64_si128(a, keys, 0x00);
        let t2 = _mm_clmulepi64_si128(a, keys, 0x11);
        _mm_xor_si128(_mm_xor_si128(b, t1), t2)
    }

    /// The full fold: init injection, 64-byte folding, merge, 16-byte
    /// folding, Barrett reduction, table-driven byte tail.
    // SAFETY: caller must ensure PCLMULQDQ + SSE4.1 are available
    // (`crc32_clmul` asserts both). All 16-byte loads are unaligned
    // `loadu` on `chunks_exact` slices, so every access is in bounds.
    #[target_feature(enable = "pclmulqdq,sse4.1")]
    unsafe fn crc32_fold_raw(mut crc: u32, data: &[u8]) -> u32 {
        debug_assert!(data.len() >= 64);
        let load = |c: &[u8]| _mm_loadu_si128(c.as_ptr() as *const __m128i);

        // Four accumulators over the first 64 bytes; the incoming CRC
        // state XORs into the first dword (reflected-domain identity).
        let mut blocks = data.chunks_exact(64);
        let first = blocks.next().expect("len >= 64");
        let mut x0 = _mm_xor_si128(load(&first[0..16]), _mm_set_epi32(0, 0, 0, crc as i32));
        let mut x1 = load(&first[16..32]);
        let mut x2 = load(&first[32..48]);
        let mut x3 = load(&first[48..64]);

        let k1k2 = _mm_set_epi64x(K2 as i64, K1 as i64);
        for block in &mut blocks {
            x0 = reduce128(x0, load(&block[0..16]), k1k2);
            x1 = reduce128(x1, load(&block[16..32]), k1k2);
            x2 = reduce128(x2, load(&block[32..48]), k1k2);
            x3 = reduce128(x3, load(&block[48..64]), k1k2);
        }

        // Merge the accumulators, then drain whole 16-byte chunks.
        let k3k4 = _mm_set_epi64x(K4 as i64, K3 as i64);
        let mut x = reduce128(x0, x1, k3k4);
        x = reduce128(x, x2, k3k4);
        x = reduce128(x, x3, k3k4);
        let mut tail16 = blocks.remainder().chunks_exact(16);
        for chunk in &mut tail16 {
            x = reduce128(x, load(chunk), k3k4);
        }

        // 128 → 64 bits: fold the low (higher-degree) qword across the
        // high one with K4, then fold the surviving low dword with K5.
        let low32 = _mm_set_epi64x(0, 0xFFFF_FFFF);
        let x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        let x = _mm_xor_si128(
            _mm_clmulepi64_si128(_mm_and_si128(x, low32), _mm_set_epi64x(0, K5 as i64), 0x00),
            _mm_srli_si128(x, 4),
        );
        // 64 → 32 bits: Barrett reduction with μ = ⌊x^64/P⌋ and P.
        let pu = _mm_set_epi64x(U_PRIME as i64, P_X as i64);
        let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, low32), pu, 0x10);
        let t2 = _mm_xor_si128(_mm_clmulepi64_si128(_mm_and_si128(t1, low32), pu, 0x00), x);
        crc = _mm_extract_epi32(t2, 1) as u32;

        // Sub-16-byte tail: the classic byte-at-a-time table loop.
        for &b in tail16.remainder() {
            let idx = ((crc ^ b as u32) & 0xFF) as usize;
            crc = (crc >> 8) ^ crate::crc::CRC32_TABLES[0][idx];
        }
        crc
    }

    /// Full CRC-32/ISO-HDLC (init + final XOR) over `data`.
    // SAFETY: caller must ensure PCLMULQDQ + SSE4.1 are available
    // (`crc32_clmul` asserts both before calling).
    #[target_feature(enable = "pclmulqdq,sse4.1")]
    pub(super) unsafe fn crc32_fold(data: &[u8]) -> u32 {
        crc32_fold_raw(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::{crc32, crc32_1table, crc32_slice16};

    #[test]
    fn derived_constants_match_intel_white_paper() {
        // The published constants for the reflected IEEE 802.3 CRC-32
        // (Intel, "Fast CRC Computation for Generic Polynomials Using
        // PCLMULQDQ", and the values shipped by zlib/crc32fast). Our
        // const-fn derivation must land on exactly these.
        assert_eq!(K1, 0x1_5444_2BD4);
        assert_eq!(K2, 0x1_C6E4_1596);
        assert_eq!(K3, 0x1_7519_97D0);
        assert_eq!(K4, 0x0_CCAA_009E);
        assert_eq!(K5, 0x1_63CD_6124);
        assert_eq!(P_X, 0x1_DB71_0641);
        assert_eq!(U_PRIME, 0x1_F701_1641);
    }

    #[test]
    fn clmul_matches_reference_on_all_tail_phases() {
        if !available() {
            eprintln!("skipping: pclmulqdq unavailable or PPR_NO_SIMD=1");
            return;
        }
        let mut state = 0xBAD5_EED0_1234_5678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        };
        // ≥ 64 required; sweep every remainder phase of both the 64-byte
        // and 16-byte loops, plus packet-sized buffers.
        for len in (64usize..=192).chain([1000, 1500, 4096, 9000]) {
            let buf: Vec<u8> = (0..len).map(|_| next()).collect();
            assert_eq!(crc32_clmul(&buf), crc32_1table(&buf), "len {len}");
            assert_eq!(crc32_clmul(&buf), crc32_slice16(&buf), "len {len}");
        }
    }

    #[test]
    fn clmul_check_value() {
        if !available() {
            return;
        }
        // "123456789" is too short for the kernel; use a 64-byte pad of
        // the canonical vector and cross-check against the reference.
        let mut buf = Vec::new();
        while buf.len() < 128 {
            buf.extend_from_slice(b"123456789");
        }
        assert_eq!(crc32_clmul(&buf), crc32_1table(&buf));
        // And the public dispatcher agrees with everything.
        assert_eq!(crc32(&buf), crc32_1table(&buf));
    }
}
