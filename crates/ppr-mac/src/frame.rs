//! PPR frame layout (paper Fig. 2).
//!
//! ```text
//! | preamble | SFD | header | body ... | CRC32 | trailer | postamble |
//!              PHY   10 B                 4 B     10 B      PHY
//! ```
//!
//! The **header** carries `len`, `dst`, `src`, `seq` plus its own CRC-16;
//! the **trailer** replicates it verbatim (same CRC), so a receiver that
//! only caught the postamble can recover the frame geometry by decoding
//! the trailer and *rolling back* `len`-dependent distance to the frame
//! start (§4). The CRC-32 covers header + body, giving the packet-CRC
//! delivery scheme its check.
//!
//! The `body` is scheme-dependent: a plain payload for packet-CRC and
//! PPR, or fragment/CRC pairs for fragmented CRC (see
//! [`crate::schemes`]).

use crate::crc::{crc16, crc32};
use ppr_phy::chips::{ChipWords, CHIPS_PER_SYMBOL};
use ppr_phy::spread::bytes_to_symbols;
use ppr_phy::sync::{
    tx_postamble_chips, tx_postamble_codewords, tx_preamble_chips, tx_preamble_codewords,
};

/// A link-layer address (16-bit short address, 802.15.4 style).
pub type Addr = u16;

/// Size of the encoded header (and of the identical trailer), bytes.
pub const HEADER_BYTES: usize = 10;

/// Size of the whole-packet CRC-32, bytes.
pub const PKT_CRC_BYTES: usize = 4;

/// Frame header: replicated verbatim as the trailer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Body length in bytes (scheme payload, before the packet CRC).
    pub len: u16,
    /// Destination short address.
    pub dst: Addr,
    /// Source short address.
    pub src: Addr,
    /// Link-layer sequence number (used by PP-ARQ).
    pub seq: u16,
}

impl Header {
    /// Encodes the header: four little-endian u16 fields + CRC-16 over
    /// them.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[0..2].copy_from_slice(&self.len.to_le_bytes());
        out[2..4].copy_from_slice(&self.dst.to_le_bytes());
        out[4..6].copy_from_slice(&self.src.to_le_bytes());
        out[6..8].copy_from_slice(&self.seq.to_le_bytes());
        let c = crc16(&out[0..8]);
        out[8..10].copy_from_slice(&c.to_le_bytes());
        out
    }

    /// Decodes and verifies a header record. Returns `None` when the
    /// CRC-16 fails — a corrupt header must never define frame geometry.
    pub fn decode(bytes: &[u8]) -> Option<Header> {
        if bytes.len() < HEADER_BYTES {
            return None;
        }
        let c = crc16(&bytes[0..8]);
        if c != u16::from_le_bytes([bytes[8], bytes[9]]) {
            return None;
        }
        Some(Header {
            len: u16::from_le_bytes([bytes[0], bytes[1]]),
            dst: u16::from_le_bytes([bytes[2], bytes[3]]),
            src: u16::from_le_bytes([bytes[4], bytes[5]]),
            seq: u16::from_le_bytes([bytes[6], bytes[7]]),
        })
    }
}

/// A fully laid-out frame, pre-PHY: all link-layer bytes in transmit
/// order, plus the chip-level rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The frame header (== trailer).
    pub header: Header,
    /// Scheme body (payload, or fragment/CRC pairs).
    pub body: Vec<u8>,
}

impl Frame {
    /// Builds a frame around a scheme body.
    ///
    /// # Panics
    /// Panics if the body exceeds `u16::MAX` bytes.
    pub fn new(dst: Addr, src: Addr, seq: u16, body: Vec<u8>) -> Frame {
        assert!(body.len() <= u16::MAX as usize, "body too large");
        Frame {
            header: Header {
                len: body.len() as u16,
                dst,
                src,
                seq,
            },
            body,
        }
    }

    /// All link-layer bytes in transmit order:
    /// `header · body · crc32(header·body) · trailer`.
    pub fn link_bytes(&self) -> Vec<u8> {
        let hdr = self.header.encode();
        let mut out = Vec::with_capacity(2 * HEADER_BYTES + self.body.len() + PKT_CRC_BYTES);
        out.extend_from_slice(&hdr);
        out.extend_from_slice(&self.body);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&hdr); // trailer replicates the header
        out
    }

    /// Chip-level rendering of the whole frame including preamble, SFD
    /// and postamble — what the radio emits.
    ///
    /// Reference (`Vec<bool>`) representation; the hot path uses
    /// [`Self::chip_words`], which is bit-identical.
    pub fn chips(&self) -> Vec<bool> {
        let mut chips = tx_preamble_chips();
        chips.extend(ppr_phy::modem::unpack_chip_words(&ppr_phy::spread::spread(
            &bytes_to_symbols(&self.link_bytes()),
        )));
        chips.extend(tx_postamble_chips());
        chips
    }

    /// Packed chip-level rendering of the whole frame: identical chips to
    /// [`Self::chips`], built straight from the 32-chip codewords into
    /// 64-chip lanes without materialising one `bool` per chip.
    pub fn chip_words(&self) -> ChipWords {
        let mut words = ChipWords::from_codewords(&tx_preamble_codewords());
        words.extend_codewords(&ppr_phy::spread::spread(&bytes_to_symbols(
            &self.link_bytes(),
        )));
        words.extend_codewords(&tx_postamble_codewords());
        words
    }

    /// Number of data symbols in the link-layer section (excluding
    /// pre/postamble).
    pub fn link_symbols(&self) -> usize {
        2 * self.link_bytes().len()
    }

    /// Total frame airtime in chips.
    pub fn chips_len(&self) -> usize {
        tx_preamble_chips().len()
            + self.link_symbols() * CHIPS_PER_SYMBOL
            + tx_postamble_chips().len()
    }

    /// Total frame airtime in chips for a frame with `body_len` body
    /// bytes — without building the frame.
    pub fn chips_len_for_body(body_len: usize) -> usize {
        let link_bytes = 2 * HEADER_BYTES + body_len + PKT_CRC_BYTES;
        tx_preamble_chips().len() + 2 * link_bytes * CHIPS_PER_SYMBOL + tx_postamble_chips().len()
    }

    /// Frame airtime in microseconds at the 802.15.4 chip rate.
    pub fn airtime_us(&self) -> u64 {
        self.chips_len() as u64 * 1_000_000 / ppr_phy::chips::CHIP_RATE_HZ
    }
}

/// Byte offsets of the frame sections inside the link-layer byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameGeometry {
    /// Body length, bytes.
    pub body_len: usize,
}

impl FrameGeometry {
    /// Geometry for a given body length (e.g. parsed from a header).
    pub fn for_body(body_len: usize) -> Self {
        FrameGeometry { body_len }
    }

    /// Byte range of the header.
    pub fn header(&self) -> std::ops::Range<usize> {
        0..HEADER_BYTES
    }

    /// Byte range of the body.
    pub fn body(&self) -> std::ops::Range<usize> {
        HEADER_BYTES..HEADER_BYTES + self.body_len
    }

    /// Byte range of the packet CRC-32.
    pub fn pkt_crc(&self) -> std::ops::Range<usize> {
        let s = HEADER_BYTES + self.body_len;
        s..s + PKT_CRC_BYTES
    }

    /// Byte range of the trailer.
    pub fn trailer(&self) -> std::ops::Range<usize> {
        let s = HEADER_BYTES + self.body_len + PKT_CRC_BYTES;
        s..s + HEADER_BYTES
    }

    /// Total link-layer bytes.
    pub fn total(&self) -> usize {
        2 * HEADER_BYTES + self.body_len + PKT_CRC_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            len: 1500,
            dst: 0xBEEF,
            src: 0x0102,
            seq: 77,
        };
        let enc = h.encode();
        assert_eq!(Header::decode(&enc), Some(h));
    }

    #[test]
    fn header_rejects_corruption() {
        let h = Header {
            len: 250,
            dst: 1,
            src: 2,
            seq: 3,
        };
        let enc = h.encode();
        for i in 0..HEADER_BYTES {
            for bit in 0..8 {
                let mut e = enc;
                e[i] ^= 1 << bit;
                assert_eq!(Header::decode(&e), None, "corruption at {i}.{bit} accepted");
            }
        }
    }

    #[test]
    fn header_rejects_short_input() {
        assert_eq!(Header::decode(&[0; 5]), None);
    }

    #[test]
    fn link_bytes_layout() {
        let f = Frame::new(10, 20, 1, vec![0xAB; 100]);
        let bytes = f.link_bytes();
        let g = FrameGeometry::for_body(100);
        assert_eq!(bytes.len(), g.total());
        // Header == trailer.
        assert_eq!(bytes[g.header()], bytes[g.trailer()]);
        // Body is where it should be.
        assert!(bytes[g.body()].iter().all(|&b| b == 0xAB));
        // Packet CRC verifies over header + body.
        let crc = crc32(&bytes[..g.pkt_crc().start]);
        assert_eq!(crc.to_le_bytes(), bytes[g.pkt_crc()], "packet CRC mismatch");
    }

    #[test]
    fn trailer_decodes_like_header() {
        let f = Frame::new(3, 4, 9, b"trailer test".to_vec());
        let bytes = f.link_bytes();
        let g = FrameGeometry::for_body(f.body.len());
        let t = Header::decode(&bytes[g.trailer()]).unwrap();
        assert_eq!(t, f.header);
    }

    #[test]
    fn chip_length_formula_matches_rendering() {
        for body_len in [0usize, 1, 50, 250, 1500] {
            let f = Frame::new(1, 2, 0, vec![0x5A; body_len]);
            assert_eq!(f.chips().len(), f.chips_len());
            assert_eq!(f.chips_len(), Frame::chips_len_for_body(body_len));
        }
    }

    #[test]
    fn packed_rendering_matches_reference() {
        for body_len in [0usize, 1, 33, 200] {
            let f = Frame::new(3, 9, 17, vec![0xC3; body_len]);
            assert_eq!(
                f.chip_words(),
                ChipWords::from_bools(&f.chips()),
                "body {body_len}"
            );
        }
    }

    #[test]
    fn airtime_scales_with_size() {
        let small = Frame::new(1, 2, 0, vec![0; 10]).airtime_us();
        let big = Frame::new(1, 2, 0, vec![0; 1000]).airtime_us();
        assert!(big > small);
        // 1000 B body ≈ 1024 B link-layer ≈ 2048 symbols × 16 µs ≈ 33 ms.
        assert!(big > 30_000 && big < 40_000, "airtime {big} µs");
    }
}
