//! Carrier sense (CSMA).
//!
//! The paper's senders "perform a carrier sense before transmitting each
//! packet" in some experiments (Fig. 8) and have it disabled in others
//! (Figs. 9–12). This module is the sensing rule: the channel is busy
//! when the total received power from ongoing transmissions exceeds a
//! threshold above the noise floor.

/// Carrier-sense configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarrierSense {
    /// Sensing threshold in mW: channel busy ⇔ total heard power ≥ this.
    /// The CC2420 CCA threshold is ≈ −77 dBm.
    pub threshold_mw: f64,
    /// Whether carrier sensing is enabled at all (experiment arm switch).
    pub enabled: bool,
}

impl CarrierSense {
    /// Carrier sense with the CC2420's default −77 dBm CCA threshold.
    pub fn enabled_default() -> Self {
        CarrierSense {
            threshold_mw: 10f64.powf(-77.0 / 10.0),
            enabled: true,
        }
    }

    /// Carrier sensing disabled: the channel always reads idle.
    pub fn disabled() -> Self {
        CarrierSense {
            threshold_mw: f64::INFINITY,
            enabled: false,
        }
    }

    /// Sensing decision: is the channel busy given the ongoing
    /// transmissions' received powers (mW) at the sensing node?
    pub fn busy<I: IntoIterator<Item = f64>>(&self, heard_powers_mw: I) -> bool {
        if !self.enabled {
            return false;
        }
        let total: f64 = heard_powers_mw.into_iter().sum();
        total >= self.threshold_mw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_busy() {
        let cs = CarrierSense::disabled();
        assert!(!cs.busy([1.0, 1.0, 1.0]));
        assert!(!cs.busy([]));
    }

    #[test]
    fn enabled_compares_total_power() {
        let cs = CarrierSense {
            threshold_mw: 1e-8,
            enabled: true,
        };
        assert!(!cs.busy([]));
        assert!(!cs.busy([1e-9]));
        assert!(cs.busy([1e-8]));
        // Sub-threshold transmitters add up.
        assert!(cs.busy([6e-9, 6e-9]));
    }

    #[test]
    fn default_threshold_is_minus_77_dbm() {
        let cs = CarrierSense::enabled_default();
        let dbm = 10.0 * cs.threshold_mw.log10();
        assert!((dbm + 77.0).abs() < 1e-9);
        assert!(cs.enabled);
    }
}
