//! The three delivery schemes compared throughout the evaluation (§7.2).
//!
//! * **Packet CRC** — the status quo: one CRC-32 over the packet; all or
//!   nothing.
//! * **Fragmented CRC** — §3.4's SoftPHY alternative: the body is a
//!   sequence of fragments each followed by its own CRC-32; fragments
//!   that verify are delivered, the rest discarded. Pays a per-fragment
//!   4-byte airtime tax (the Table 2 trade-off).
//! * **PPR** — delivers exactly those bytes whose SoftPHY hints pass the
//!   threshold rule `hint ≤ η`, with `η = 6` as in the paper.
//!
//! A scheme owns both sides of the story: how the transmitted body is
//! built (airtime cost) and which byte ranges of a reception are passed
//! to higher layers.

use crate::crc::{crc32, verify_crc32_trailer};
use crate::rx::RxFrame;

/// The paper's SoftPHY threshold, `η = 6` (§7.2).
pub const DEFAULT_ETA: u8 = 6;

/// A contiguous byte range delivered to higher layers, in *payload*
/// coordinates (fragment CRCs stripped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered {
    /// Offset of the first byte within the original payload.
    pub offset: usize,
    /// The delivered bytes.
    pub bytes: Vec<u8>,
}

/// One of the three §7.2 delivery schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryScheme {
    /// Whole-packet CRC-32; deliver all or nothing.
    PacketCrc,
    /// Per-fragment CRC-32 with `frag_payload` payload bytes per
    /// fragment; deliver verifying fragments.
    FragmentedCrc {
        /// Payload bytes per fragment (the paper's chunk size; 50 B is
        /// the Table 2 optimum).
        frag_payload: usize,
    },
    /// SoftPHY-hint thresholding at `eta`; deliver bytes labeled good.
    Ppr {
        /// The hint threshold `η`.
        eta: u8,
    },
}

impl DeliveryScheme {
    /// Builds the over-the-air body for a payload.
    pub fn build_body(&self, payload: &[u8]) -> Vec<u8> {
        match *self {
            DeliveryScheme::PacketCrc | DeliveryScheme::Ppr { .. } => payload.to_vec(),
            DeliveryScheme::FragmentedCrc { frag_payload } => {
                assert!(frag_payload > 0, "fragment size must be positive");
                let mut body =
                    Vec::with_capacity(payload.len() + 4 * payload.len().div_ceil(frag_payload));
                for frag in payload.chunks(frag_payload) {
                    body.extend_from_slice(frag);
                    body.extend_from_slice(&crc32(frag).to_le_bytes());
                }
                body
            }
        }
    }

    /// On-air body length for a payload of `payload_len` bytes.
    pub fn body_len(&self, payload_len: usize) -> usize {
        match *self {
            DeliveryScheme::PacketCrc | DeliveryScheme::Ppr { .. } => payload_len,
            DeliveryScheme::FragmentedCrc { frag_payload } => {
                payload_len + 4 * payload_len.div_ceil(frag_payload.max(1))
            }
        }
    }

    /// Inverse of [`Self::body_len`]: payload bytes carried by a body of
    /// `body_len` bytes (exact for bodies this scheme built).
    pub fn payload_len(&self, body_len: usize) -> usize {
        match *self {
            DeliveryScheme::PacketCrc | DeliveryScheme::Ppr { .. } => body_len,
            DeliveryScheme::FragmentedCrc { frag_payload } => {
                // Each full fragment occupies frag_payload + 4 bytes.
                let full = body_len / (frag_payload + 4);
                let rem = body_len % (frag_payload + 4);
                full * frag_payload + rem.saturating_sub(4)
            }
        }
    }

    /// Applies the scheme's acceptance rule to a reception, returning the
    /// delivered payload ranges.
    pub fn deliver(&self, rx: &RxFrame) -> Vec<Delivered> {
        let Some(body) = rx.body_bytes() else {
            return Vec::new();
        };
        match *self {
            DeliveryScheme::PacketCrc => {
                if rx.pkt_crc_ok() {
                    vec![Delivered {
                        offset: 0,
                        bytes: body,
                    }]
                } else {
                    Vec::new()
                }
            }
            DeliveryScheme::FragmentedCrc { frag_payload } => {
                let mut out = Vec::new();
                let mut body_pos = 0usize;
                let mut payload_pos = 0usize;
                while body_pos < body.len() {
                    let frag_len =
                        frag_payload.min(body.len().saturating_sub(body_pos).saturating_sub(4));
                    if frag_len == 0 {
                        break;
                    }
                    let end = body_pos + frag_len + 4;
                    if verify_crc32_trailer(&body[body_pos..end]) {
                        out.push(Delivered {
                            offset: payload_pos,
                            bytes: body[body_pos..body_pos + frag_len].to_vec(),
                        });
                    }
                    body_pos = end;
                    payload_pos += frag_len;
                }
                out
            }
            DeliveryScheme::Ppr { eta } => {
                let Some(hints) = rx.body_byte_hints() else {
                    return Vec::new();
                };
                let mut out: Vec<Delivered> = Vec::new();
                for (i, (&b, &h)) in body.iter().zip(&hints).enumerate() {
                    if h > eta {
                        continue;
                    }
                    match out.last_mut() {
                        Some(run) if run.offset + run.bytes.len() == i => run.bytes.push(b),
                        _ => out.push(Delivered {
                            offset: i,
                            bytes: vec![b],
                        }),
                    }
                }
                out
            }
        }
    }

    /// Total delivered bytes of a reception under this scheme.
    pub fn delivered_bytes(&self, rx: &RxFrame) -> usize {
        self.deliver(rx).iter().map(|d| d.bytes.len()).sum()
    }

    /// Short display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            DeliveryScheme::PacketCrc => "Packet CRC",
            DeliveryScheme::FragmentedCrc { .. } => "Fragmented CRC",
            DeliveryScheme::Ppr { .. } => "PPR",
        }
    }

    /// The three §7.2 schemes under one parameterization, in the
    /// paper's comparison order — the canonical construction for a
    /// scenario's (fragment size, η) knobs.
    pub fn standard_set(frag_payload: usize, eta: u8) -> [DeliveryScheme; 3] {
        [
            DeliveryScheme::PacketCrc,
            DeliveryScheme::FragmentedCrc { frag_payload },
            DeliveryScheme::Ppr { eta },
        ]
    }

    /// Constructs a scheme from its CLI/JSON name (`packet`, `frag`,
    /// `ppr`), taking the fragment size and η from the given
    /// parameterization.
    pub fn from_name(name: &str, frag_payload: usize, eta: u8) -> Option<DeliveryScheme> {
        match name {
            "packet" | "packet_crc" => Some(DeliveryScheme::PacketCrc),
            "frag" | "fragmented_crc" => Some(DeliveryScheme::FragmentedCrc { frag_payload }),
            "ppr" => Some(DeliveryScheme::Ppr { eta }),
            _ => None,
        }
    }
}

/// Counts how many delivered bytes are *correct* against the ground-truth
/// payload (misses deliver wrong bytes; the evaluation counts them out).
pub fn correct_delivered_bytes(delivered: &[Delivered], truth: &[u8]) -> usize {
    let mut correct = 0;
    for d in delivered {
        for (i, &b) in d.bytes.iter().enumerate() {
            if truth.get(d.offset + i) == Some(&b) {
                correct += 1;
            }
        }
    }
    correct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::rx::FrameReceiver;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 + 13) as u8).collect()
    }

    fn receive_one(frame: &Frame, corrupt: impl Fn(&mut Vec<bool>, &mut StdRng)) -> RxFrame {
        let mut rng = StdRng::seed_from_u64(99);
        let mut chips = frame.chips();
        corrupt(&mut chips, &mut rng);
        let mut stream: Vec<bool> = (0..200).map(|_| rng.gen()).collect();
        let frame_at = stream.len();
        stream.extend(chips);
        stream.extend((0..200).map(|_| rng.gen::<bool>()));
        let frames = FrameReceiver::default().receive(&stream);
        assert_eq!(frames.len(), 1, "frame_at {frame_at}");
        frames.into_iter().next().unwrap()
    }

    #[test]
    fn standard_set_and_from_name_agree() {
        let set = DeliveryScheme::standard_set(50, 6);
        assert_eq!(set[0], DeliveryScheme::PacketCrc);
        assert_eq!(set[1], DeliveryScheme::FragmentedCrc { frag_payload: 50 });
        assert_eq!(set[2], DeliveryScheme::Ppr { eta: 6 });
        for (name, want) in [("packet", set[0]), ("frag", set[1]), ("ppr", set[2])] {
            assert_eq!(DeliveryScheme::from_name(name, 50, 6), Some(want));
        }
        assert_eq!(DeliveryScheme::from_name("bogus", 50, 6), None);
    }

    #[test]
    fn packet_crc_delivers_all_on_clean_frame() {
        let p = payload(120);
        let scheme = DeliveryScheme::PacketCrc;
        let frame = Frame::new(1, 2, 0, scheme.build_body(&p));
        let rx = receive_one(&frame, |_, _| {});
        let d = scheme.deliver(&rx);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].bytes, p);
        assert_eq!(correct_delivered_bytes(&d, &p), 120);
    }

    #[test]
    fn packet_crc_delivers_nothing_on_one_bad_symbol() {
        let p = payload(120);
        let scheme = DeliveryScheme::PacketCrc;
        let frame = Frame::new(1, 2, 0, scheme.build_body(&p));
        let rx = receive_one(&frame, |chips, _| {
            // Flip 16 chips of one mid-body codeword → decode error.
            let mid = chips.len() / 2;
            for c in chips[mid..mid + 16].iter_mut() {
                *c = !*c;
            }
        });
        assert!(scheme.deliver(&rx).is_empty());
    }

    #[test]
    fn frag_crc_body_layout_and_lengths() {
        let p = payload(120);
        let scheme = DeliveryScheme::FragmentedCrc { frag_payload: 50 };
        let body = scheme.build_body(&p);
        // 50+4, 50+4, 20+4
        assert_eq!(body.len(), 120 + 3 * 4);
        assert_eq!(scheme.body_len(120), body.len());
        assert_eq!(scheme.payload_len(body.len()), 120);
        for scheme_len in [1usize, 49, 50, 51, 199, 200] {
            let s = DeliveryScheme::FragmentedCrc { frag_payload: 50 };
            assert_eq!(
                s.payload_len(s.body_len(scheme_len)),
                scheme_len,
                "{scheme_len}"
            );
        }
    }

    #[test]
    fn frag_crc_delivers_surviving_fragments() {
        let p = payload(150);
        let scheme = DeliveryScheme::FragmentedCrc { frag_payload: 50 };
        let frame = Frame::new(1, 2, 0, scheme.build_body(&p));
        // Corrupt the middle fragment only: body bytes 54..108 (frag 2
        // spans body [54, 104) + its CRC [104,108)). Body starts at byte
        // 10 of the link section → symbol 20+.
        let rx = receive_one(&frame, |chips, _| {
            let pre = ppr_phy::sync::tx_preamble_chips().len();
            // Byte 70 of body = link byte 80 = symbol 160.
            let start = pre + 160 * 32;
            for c in chips[start..start + 64].iter_mut() {
                *c = !*c; // destroy two codewords
            }
        });
        let d = scheme.deliver(&rx);
        // Fragments 1 (offset 0) and 3 (offset 100) survive.
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].offset, 0);
        assert_eq!(d[0].bytes, &p[0..50]);
        assert_eq!(d[1].offset, 100);
        assert_eq!(d[1].bytes, &p[100..150]);
        assert_eq!(correct_delivered_bytes(&d, &p), 100);
    }

    #[test]
    fn ppr_delivers_good_runs_only() {
        let p = payload(100);
        let scheme = DeliveryScheme::Ppr { eta: DEFAULT_ETA };
        let frame = Frame::new(1, 2, 0, scheme.build_body(&p));
        let rx = receive_one(&frame, |chips, rng| {
            let pre = ppr_phy::sync::tx_preamble_chips().len();
            // Jam body bytes 40..60 (link bytes 50..70 → symbols 100..140).
            let start = pre + 100 * 32;
            for c in chips[start..start + 40 * 32].iter_mut() {
                *c = rng.gen();
            }
        });
        let d = scheme.deliver(&rx);
        let total: usize = d.iter().map(|r| r.bytes.len()).sum();
        // ~80 of 100 bytes survive with good hints.
        assert!((70..=90).contains(&total), "delivered {total}");
        // All delivered bytes must be correct (no misses in this jam).
        assert_eq!(correct_delivered_bytes(&d, &p), total);
        // Delivered ranges exclude the jammed region's core.
        for r in &d {
            assert!(
                r.offset + r.bytes.len() <= 42 || r.offset >= 58,
                "range {:?}",
                r.offset
            );
        }
    }

    #[test]
    fn ppr_beats_frag_crc_beats_packet_crc_on_burst_loss() {
        // The paper's central ordering, in miniature.
        let p = payload(200);
        let corrupt = |chips: &mut Vec<bool>, rng: &mut StdRng| {
            let pre = ppr_phy::sync::tx_preamble_chips().len();
            let start = pre + 150 * 32;
            for c in chips[start..start + 600].iter_mut() {
                *c = rng.gen();
            }
        };
        let mut delivered = Vec::new();
        for scheme in [
            DeliveryScheme::PacketCrc,
            DeliveryScheme::FragmentedCrc { frag_payload: 50 },
            DeliveryScheme::Ppr { eta: DEFAULT_ETA },
        ] {
            let frame = Frame::new(1, 2, 0, scheme.build_body(&p));
            let rx = receive_one(&frame, corrupt);
            let d = scheme.deliver(&rx);
            delivered.push(correct_delivered_bytes(&d, &p));
        }
        assert!(delivered[0] < delivered[1], "frag > packet: {delivered:?}");
        assert!(delivered[1] < delivered[2], "ppr > frag: {delivered:?}");
    }

    #[test]
    fn scheme_names() {
        assert_eq!(DeliveryScheme::PacketCrc.name(), "Packet CRC");
        assert_eq!(
            DeliveryScheme::FragmentedCrc { frag_payload: 50 }.name(),
            "Fragmented CRC"
        );
        assert_eq!(DeliveryScheme::Ppr { eta: 6 }.name(), "PPR");
    }
}
