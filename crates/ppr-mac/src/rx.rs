//! Receive pipeline: chip stream → synchronized, SoftPHY-annotated frames.
//!
//! This is where preamble decoding, postamble rollback (§4) and frame
//! parsing meet. For every sync hit the pipeline reconstructs the frame's
//! byte geometry — from the header when the preamble was caught, from the
//! *trailer* when only the postamble was — and exposes the link-layer
//! section as a [`SymbolView`] with per-symbol Hamming hints.
//!
//! Despreading is **demand-driven** on the packed (`ChipWords`) path:
//! synchronizing a frame decodes only the 8-byte header (or trailer)
//! probe; the body despreads when — and only for the symbol ranges — a
//! consumer asks ([`RxFrame::body_bytes`], [`RxFrame::body_byte_range`],
//! hint extraction, the packet-CRC check). The reference `&[bool]` path
//! stays eager and both produce bit-identical symbols (workspace
//! `tests/packed_parity.rs` and `tests/lazy_parity.rs`).
//!
//! Missing symbols (reception started after the frame began, or ended
//! before it did) are represented explicitly with the sentinel hint
//! [`HINT_NEVER_RECEIVED`], so downstream consumers see a frame-shaped
//! span whose absent parts are maximally un-confident rather than
//! silently shortened.

use crate::frame::{FrameGeometry, Header, HEADER_BYTES};
use ppr_phy::chips::{ChipWords, CHIPS_PER_SYMBOL};
use ppr_phy::frame_rx::ChipReceiver;
use ppr_phy::softphy::{SoftSpan, SoftSymbol};
use ppr_phy::sync::{SyncKind, POSTAMBLE_ZERO_SYMBOLS};
use ppr_phy::view::SymbolView;

/// Hint value assigned to symbols that were never received (outside the
/// captured chip stream). One past the worst real Hamming distance, so
/// every threshold rule labels them bad.
pub const HINT_NEVER_RECEIVED: u8 = 33;

/// The padding symbol for never-received positions.
const ABSENT: SoftSymbol = SoftSymbol {
    symbol: 0,
    hint: HINT_NEVER_RECEIVED,
};

/// A frame reconstructed from one sync hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxFrame {
    /// How the receiver synchronized onto this frame.
    pub sync: SyncKind,
    /// The verified header (from the header on a preamble sync, from the
    /// trailer on a postamble sync). `None` when neither record verified —
    /// such receptions carry no usable geometry and deliver nothing.
    pub header: Option<Header>,
    /// Chip offset (in the receiver's stream) where the link-layer
    /// section starts, when known.
    pub link_start_chip: Option<i64>,
    /// The full link-layer section, one [`SoftSymbol`] per transmitted
    /// symbol, padded with [`HINT_NEVER_RECEIVED`] where the reception is
    /// missing. Empty when `header` is `None`. Lazy on the packed path:
    /// symbols despread when a consumer reads them.
    link: SymbolView,
}

impl RxFrame {
    /// Frame geometry, when the header/trailer verified.
    pub fn geometry(&self) -> Option<FrameGeometry> {
        self.header.map(|h| FrameGeometry::for_body(h.len as usize))
    }

    /// Number of symbols in the link-layer section (0 when no header
    /// verified). Does not despread anything.
    pub fn link_len(&self) -> usize {
        self.link.len()
    }

    /// The lazy symbol view over the link-layer section — the
    /// demand-driven access point for consumers that read sub-ranges
    /// (PP-ARQ chunk requests, relays probing specific fields).
    pub fn link_view(&self) -> &SymbolView {
        &self.link
    }

    /// The full link-layer section (forces a complete despread).
    pub fn link_symbols(&self) -> Vec<SoftSymbol> {
        self.link.all()
    }

    /// Symbols `range` of the link-layer section, despreading only the
    /// blocks that range touches.
    pub fn link_symbol_range(&self, range: std::ops::Range<usize>) -> Vec<SoftSymbol> {
        self.link.range(range)
    }

    /// Reassembled link-layer bytes (best effort; bad symbols included).
    /// Forces a complete despread.
    pub fn link_bytes(&self) -> Vec<u8> {
        SoftSpan {
            symbols: self.link.all(),
        }
        .to_bytes()
    }

    /// The body bytes (scheme payload), when geometry is known.
    /// Despreads the body range only.
    pub fn body_bytes(&self) -> Option<Vec<u8>> {
        let g = self.geometry()?;
        self.body_byte_range(0..g.body().len())
    }

    /// Bytes `range` of the body (offsets in body coordinates), when
    /// geometry is known and the range is inside the body. Despreads
    /// only the symbol blocks the range touches — the chunk-request
    /// primitive for demand-driven consumers.
    pub fn body_byte_range(&self, range: std::ops::Range<usize>) -> Option<Vec<u8>> {
        let g = self.geometry()?;
        if self.link.len() < 2 * g.total() || range.end > g.body().len() {
            return None;
        }
        let start = g.body().start + range.start;
        Some(self.byte_range_unchecked(start..start + range.len()))
    }

    /// Per-byte hints over the body (max of the two nibble hints).
    /// Despreads the body range only.
    pub fn body_byte_hints(&self) -> Option<Vec<u8>> {
        let g = self.geometry()?;
        self.body_hint_range(0..g.body().len())
    }

    /// Per-byte hints for body bytes `range` (body coordinates) — the
    /// hint-extraction counterpart of [`Self::body_byte_range`].
    pub fn body_hint_range(&self, range: std::ops::Range<usize>) -> Option<Vec<u8>> {
        let g = self.geometry()?;
        if self.link.len() < 2 * g.total() || range.end > g.body().len() {
            return None;
        }
        let start = g.body().start + range.start;
        let span = SoftSpan {
            symbols: self.link.range(2 * start..2 * (start + range.len())),
        };
        Some(span.byte_hints())
    }

    /// Per-symbol hints over the body region (two per byte).
    pub fn body_symbol_hints(&self) -> Option<Vec<u8>> {
        let g = self.geometry()?;
        let body = g.body();
        let (s, e) = (body.start * 2, body.end * 2);
        if self.link.len() < e {
            return None;
        }
        Some(self.link.range(s..e).iter().map(|s| s.hint).collect())
    }

    /// Whole-packet CRC-32 verification (header + body against the CRC
    /// field) — the status-quo acceptance test. Despreads header through
    /// CRC field; the replicated trailer never participates and stays
    /// undecoded.
    pub fn pkt_crc_ok(&self) -> bool {
        let Some(g) = self.geometry() else {
            return false;
        };
        if self.link.len() < 2 * g.total() {
            return false;
        }
        let bytes = self.byte_range_unchecked(0..g.pkt_crc().end);
        let crc = crate::crc::crc32(&bytes[..g.pkt_crc().start]);
        bytes[g.pkt_crc().start..] == crc.to_le_bytes()
    }

    /// Bytes `range` (link-section byte coordinates); caller guarantees
    /// the range is within the link section.
    fn byte_range_unchecked(&self, range: std::ops::Range<usize>) -> Vec<u8> {
        SoftSpan {
            symbols: self.link.range(2 * range.start..2 * range.end),
        }
        .to_bytes()
    }
}

/// Receive-pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct RxConfig {
    /// Enable postamble synchronization and trailer rollback. Disabled
    /// reproduces the status quo receiver for the "no postamble
    /// decoding" experiment arms.
    pub postamble_decoding: bool,
    /// Largest acceptable body length (guards the rollback against a
    /// corrupt-but-CRC-passing trailer asking for an absurd rollback).
    pub max_body_len: usize,
}

impl Default for RxConfig {
    fn default() -> Self {
        RxConfig {
            postamble_decoding: true,
            max_body_len: 2048,
        }
    }
}

/// The frame receive pipeline.
#[derive(Debug, Clone, Default)]
pub struct FrameReceiver {
    chip_rx: ChipReceiver,
    config: RxConfig,
}

impl FrameReceiver {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: RxConfig) -> Self {
        FrameReceiver {
            chip_rx: ChipReceiver::default(),
            config,
        }
    }

    /// The underlying chip-level receiver.
    pub fn chip_receiver(&self) -> &ChipReceiver {
        &self.chip_rx
    }

    /// Processes a captured chip stream, returning every frame that could
    /// be synchronized (preamble or postamble), in stream order.
    ///
    /// Receiver realism: once locked on a preamble with a verified
    /// header, the receiver is *busy* decoding that frame and does not
    /// search for further preambles until it ends — exactly the status
    /// quo behavior (§4). This also suppresses false preamble locks on
    /// packet data that happens to resemble the delimiter. The postamble
    /// correlator keeps running throughout (it is a separate matcher in
    /// the paper's design), and false postamble locks are rejected by the
    /// trailer CRC-16.
    ///
    /// A frame heard via *both* delimiters is reported once, via its
    /// preamble (the postamble duplicate is suppressed by frame-start
    /// matching).
    pub fn receive(&self, chips: &[bool]) -> Vec<RxFrame> {
        let hits = self.chip_rx.scan(chips);
        let mut frames: Vec<RxFrame> = Vec::new();
        // A frame is identified by (link start, link length): two
        // different frames may share a start chip (e.g. two senders
        // keying up simultaneously), so the start alone is not enough to
        // deduplicate preamble- and postamble-synced views of one frame.
        let mut claimed: Vec<(i64, usize)> = Vec::new();
        let mut busy_until: i64 = i64::MIN;

        for hit in &hits {
            match hit.kind {
                SyncKind::Preamble => {
                    if (hit.chip_offset as i64) < busy_until {
                        continue; // still decoding an earlier frame
                    }
                    let data_start = self.chip_rx.data_start_after(hit) as i64;
                    let frame = self.decode_from_preamble(chips, data_start);
                    if let Some(s) = frame.link_start_chip {
                        claimed.push((s, frame.link_len()));
                        busy_until = s
                            + (frame.link_len() * CHIPS_PER_SYMBOL) as i64
                            + ppr_phy::sync::tx_postamble_chips().len() as i64;
                    }
                    frames.push(frame);
                }
                SyncKind::Postamble if self.config.postamble_decoding => {
                    if let Some(frame) = self.decode_from_postamble(chips, hit.chip_offset) {
                        match frame.link_start_chip {
                            Some(s) if claimed.contains(&(s, frame.link_len())) => {} // dup
                            _ => frames.push(frame),
                        }
                    }
                }
                SyncKind::Postamble => {}
            }
        }
        frames
    }

    /// Preamble path: header first, then geometry, then the full section.
    ///
    /// `data_start` is the chip offset of the first header symbol.
    /// Public so that simulators which already know where a frame starts
    /// (and have verified delimiter integrity themselves) can skip the
    /// sliding sync scan.
    pub fn decode_from_preamble(&self, chips: &[bool], data_start: i64) -> RxFrame {
        self.preamble_frame(
            chips.len(),
            |off, n| self.chip_rx.despread(chips, off, n),
            data_start,
        )
    }

    /// Word-wise equivalent of [`Self::decode_from_preamble`] over a
    /// packed chip stream; bit-identical output, but **demand-driven**:
    /// only the header probe despreads here. The body waits for a
    /// consumer to read it through the returned frame's [`SymbolView`]
    /// accessors.
    pub fn decode_from_preamble_words(&self, chips: &ChipWords, data_start: i64) -> RxFrame {
        let probe = SymbolView::lazy(chips, data_start, 2 * HEADER_BYTES, ABSENT);
        let header_bytes = SoftSpan {
            symbols: probe.all(),
        }
        .to_bytes();
        let header = self.accept_header(&header_bytes);
        let link = match header {
            Some(h) => {
                let g = FrameGeometry::for_body(h.len as usize);
                SymbolView::lazy(chips, data_start, 2 * g.total(), ABSENT)
            }
            None => SymbolView::eager(Vec::new()),
        };
        RxFrame {
            sync: SyncKind::Preamble,
            header,
            link_start_chip: header.map(|_| data_start),
            link,
        }
    }

    /// Postamble path (§4): decode the trailer just before the postamble,
    /// verify it, then roll back the full frame length.
    ///
    /// `hit_offset` is the chip offset where the postamble *scan pattern*
    /// matched (two zero symbols into the postamble). Public for the same
    /// reason as [`Self::decode_from_preamble`].
    pub fn decode_from_postamble(&self, chips: &[bool], hit_offset: usize) -> Option<RxFrame> {
        self.postamble_frame(
            chips.len(),
            |off, n| self.chip_rx.despread(chips, off, n),
            hit_offset,
        )
    }

    /// Word-wise equivalent of [`Self::decode_from_postamble`] over a
    /// packed chip stream; bit-identical output, but **demand-driven**:
    /// only the trailer probe despreads here (see
    /// [`Self::decode_from_preamble_words`]).
    pub fn decode_from_postamble_words(
        &self,
        chips: &ChipWords,
        hit_offset: usize,
    ) -> Option<RxFrame> {
        let (postamble_start, trailer_start) = postamble_rollback_offsets(hit_offset);
        let probe = SymbolView::lazy(chips, trailer_start, 2 * HEADER_BYTES, ABSENT);
        let trailer_bytes = SoftSpan {
            symbols: probe.all(),
        }
        .to_bytes();
        let header = self.accept_header(&trailer_bytes)?;

        let g = FrameGeometry::for_body(header.len as usize);
        let link_start = postamble_start - (2 * g.total() * CHIPS_PER_SYMBOL) as i64;
        let link = SymbolView::lazy(chips, link_start, 2 * g.total(), ABSENT);
        Some(RxFrame {
            sync: SyncKind::Postamble,
            header: Some(header),
            link_start_chip: Some(link_start),
            link,
        })
    }

    /// Decodes and accepts a header/trailer record: the CRC-16 must
    /// verify (inside [`Header::decode`]) and the claimed body length
    /// must be plausible. The single acceptance rule for all four
    /// decode constructors, eager and lazy alike.
    fn accept_header(&self, bytes: &[u8]) -> Option<Header> {
        Header::decode(bytes).filter(|h| (h.len as usize) <= self.config.max_body_len)
    }

    /// Shared preamble-path logic over any chip-stream representation:
    /// `despread(chip_offset, n_symbols)` supplies the symbols. This is
    /// the eager reference construction — the packed path overrides it
    /// with lazy views.
    fn preamble_frame(
        &self,
        stream_len: usize,
        despread: impl Fn(usize, usize) -> SoftSpan,
        data_start: i64,
    ) -> RxFrame {
        let header_span = despread_clamped(stream_len, &despread, data_start, 2 * HEADER_BYTES);
        let header_bytes = SoftSpan {
            symbols: header_span.clone(),
        }
        .to_bytes();
        let header = self.accept_header(&header_bytes);

        let link_symbols = match header {
            Some(h) => {
                let g = FrameGeometry::for_body(h.len as usize);
                despread_clamped(stream_len, &despread, data_start, 2 * g.total())
            }
            None => Vec::new(),
        };
        RxFrame {
            sync: SyncKind::Preamble,
            header,
            link_start_chip: header.map(|_| data_start),
            link: SymbolView::eager(link_symbols),
        }
    }

    /// Shared postamble-path logic over any chip-stream representation
    /// (eager reference construction, like [`Self::preamble_frame`]).
    fn postamble_frame(
        &self,
        stream_len: usize,
        despread: impl Fn(usize, usize) -> SoftSpan,
        hit_offset: usize,
    ) -> Option<RxFrame> {
        let (postamble_start, trailer_start) = postamble_rollback_offsets(hit_offset);
        let trailer_span = despread_clamped(stream_len, &despread, trailer_start, 2 * HEADER_BYTES);
        let trailer_bytes = SoftSpan {
            symbols: trailer_span,
        }
        .to_bytes();
        let header = self.accept_header(&trailer_bytes)?;

        let g = FrameGeometry::for_body(header.len as usize);
        let link_start = postamble_start - (2 * g.total() * CHIPS_PER_SYMBOL) as i64;
        let link_symbols = despread_clamped(stream_len, &despread, link_start, 2 * g.total());
        Some(RxFrame {
            sync: SyncKind::Postamble,
            header: Some(header),
            link_start_chip: Some(link_start),
            link: SymbolView::eager(link_symbols),
        })
    }
}

/// Rollback geometry shared by both postamble decode paths: given the
/// chip offset where the postamble *scan pattern* matched (two
/// zero-symbols into the postamble), returns the chip offsets where the
/// postamble itself and the trailer record begin.
fn postamble_rollback_offsets(hit_offset: usize) -> (i64, i64) {
    let pattern_lead = (POSTAMBLE_ZERO_SYMBOLS - 2) * CHIPS_PER_SYMBOL;
    let postamble_start = hit_offset as i64 - pattern_lead as i64;
    let trailer_start = postamble_start - (2 * HEADER_BYTES * CHIPS_PER_SYMBOL) as i64;
    (postamble_start, trailer_start)
}

/// Despreads `n_symbols` from `chip_offset` (which may be negative or
/// extend past the stream), padding missing symbols with
/// [`HINT_NEVER_RECEIVED`] so the result always has exactly `n_symbols`
/// entries.
fn despread_clamped(
    stream_len: usize,
    despread: impl Fn(usize, usize) -> SoftSpan,
    chip_offset: i64,
    n_symbols: usize,
) -> Vec<SoftSymbol> {
    let absent = SoftSymbol {
        symbol: 0,
        hint: HINT_NEVER_RECEIVED,
    };
    let mut out = Vec::with_capacity(n_symbols);

    // Leading symbols before the captured stream.
    let missing_lead = if chip_offset < 0 {
        ((-chip_offset) as usize)
            .div_ceil(CHIPS_PER_SYMBOL)
            .min(n_symbols)
    } else {
        0
    };
    out.extend(std::iter::repeat_n(absent, missing_lead));

    let start = chip_offset + (missing_lead * CHIPS_PER_SYMBOL) as i64;
    let remaining = n_symbols - missing_lead;
    if remaining > 0 && (start as usize) < stream_len {
        let span = despread(start as usize, remaining);
        out.extend(span.symbols);
    }
    // Trailing symbols past the captured stream.
    out.extend(std::iter::repeat_n(absent, n_symbols - out.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noise(rng: &mut StdRng, n: usize) -> Vec<bool> {
        (0..n).map(|_| rng.gen()).collect()
    }

    fn clean_capture(frame: &Frame, rng: &mut StdRng) -> Vec<bool> {
        let mut chips = noise(rng, 400);
        chips.extend(frame.chips());
        chips.extend(noise(rng, 300));
        chips
    }

    #[test]
    fn clean_frame_decodes_via_preamble() {
        let mut rng = StdRng::seed_from_u64(1);
        let frame = Frame::new(7, 3, 42, b"hello partial world".to_vec());
        let chips = clean_capture(&frame, &mut rng);
        let frames = FrameReceiver::default().receive(&chips);
        assert_eq!(frames.len(), 1);
        let rx = &frames[0];
        assert_eq!(rx.sync, SyncKind::Preamble);
        assert_eq!(rx.header, Some(frame.header));
        assert_eq!(rx.body_bytes().unwrap(), frame.body);
        assert!(rx.pkt_crc_ok());
        assert!(rx.body_byte_hints().unwrap().iter().all(|&h| h == 0));
    }

    #[test]
    fn destroyed_preamble_recovers_via_postamble() {
        let mut rng = StdRng::seed_from_u64(2);
        let frame = Frame::new(9, 1, 5, b"postamble rollback payload".to_vec());
        let mut chips = clean_capture(&frame, &mut rng);
        // Clobber the preamble + SFD region (first 320 chips of frame,
        // which starts at offset 400).
        for c in chips[400..400 + 320].iter_mut() {
            *c = rng.gen();
        }
        let frames = FrameReceiver::default().receive(&chips);
        assert_eq!(frames.len(), 1);
        let rx = &frames[0];
        assert_eq!(rx.sync, SyncKind::Postamble);
        assert_eq!(rx.header, Some(frame.header));
        assert_eq!(rx.body_bytes().unwrap(), frame.body);
        assert!(rx.pkt_crc_ok(), "body arrived intact, CRC must verify");
    }

    #[test]
    fn postamble_decoding_off_loses_preamble_less_frame() {
        let mut rng = StdRng::seed_from_u64(3);
        let frame = Frame::new(9, 1, 5, b"status quo receiver".to_vec());
        let mut chips = clean_capture(&frame, &mut rng);
        for c in chips[400..400 + 320].iter_mut() {
            *c = rng.gen();
        }
        let rx = FrameReceiver::new(RxConfig {
            postamble_decoding: false,
            max_body_len: 2048,
        });
        assert!(rx.receive(&chips).is_empty());
    }

    #[test]
    fn frame_heard_twice_reported_once() {
        let mut rng = StdRng::seed_from_u64(4);
        let frame = Frame::new(2, 8, 1, vec![0x42; 64]);
        let chips = clean_capture(&frame, &mut rng);
        let frames = FrameReceiver::default().receive(&chips);
        assert_eq!(frames.len(), 1, "preamble + postamble must merge");
        assert_eq!(frames[0].sync, SyncKind::Preamble);
    }

    #[test]
    fn reception_starting_mid_frame_pads_head() {
        let mut rng = StdRng::seed_from_u64(5);
        let frame = Frame::new(4, 4, 2, vec![0x11; 80]);
        let full = frame.chips();
        // Receiver wakes up two-thirds into the frame: preamble long gone.
        let cut = 2 * full.len() / 3;
        let mut chips = full[cut..].to_vec();
        chips.extend(noise(&mut rng, 200));
        let frames = FrameReceiver::default().receive(&chips);
        assert_eq!(frames.len(), 1);
        let rx = &frames[0];
        assert_eq!(rx.sync, SyncKind::Postamble);
        assert_eq!(rx.header, Some(frame.header));
        // Head symbols are flagged never-received; tail decodes clean.
        let hints = rx.body_symbol_hints().unwrap();
        assert_eq!(hints.len(), 160);
        assert!(hints.first().unwrap() == &HINT_NEVER_RECEIVED);
        assert_eq!(*hints.last().unwrap(), 0);
        assert!(!rx.pkt_crc_ok(), "missing head must fail whole-packet CRC");
    }

    #[test]
    fn packed_decode_paths_match_reference() {
        let mut rng = StdRng::seed_from_u64(21);
        let frame = Frame::new(6, 2, 11, vec![0x3E; 90]);
        let mut chips = clean_capture(&frame, &mut rng);
        // Light corruption so hints vary.
        for _ in 0..150 {
            let i = rng.gen_range(0..chips.len());
            chips[i] = !chips[i];
        }
        let packed = ChipWords::from_bools(&chips);
        let rx = FrameReceiver::default();

        let data_start = (400 + ppr_phy::sync::tx_preamble_chips().len()) as i64;
        assert_eq!(
            rx.decode_from_preamble(&chips, data_start),
            rx.decode_from_preamble_words(&packed, data_start)
        );
        // Postamble pattern offset inside the capture.
        let post_off = 400 + frame.chips_len() - ppr_phy::sync::tx_postamble_chips().len()
            + (POSTAMBLE_ZERO_SYMBOLS - 2) * CHIPS_PER_SYMBOL;
        assert_eq!(
            rx.decode_from_postamble(&chips, post_off),
            rx.decode_from_postamble_words(&packed, post_off)
        );
        // Truncated reception (frame runs off the end of the capture).
        let cut = 400 + frame.chips_len() / 2;
        let truncated = &chips[..cut];
        let packed_truncated = ChipWords::from_bools(truncated);
        assert_eq!(
            rx.decode_from_preamble(truncated, data_start),
            rx.decode_from_preamble_words(&packed_truncated, data_start)
        );
    }

    #[test]
    fn corrupt_header_and_trailer_yields_no_geometry() {
        let mut rng = StdRng::seed_from_u64(6);
        let frame = Frame::new(1, 2, 3, vec![0x77; 40]);
        let mut chips = clean_capture(&frame, &mut rng);
        // Destroy both header and trailer completely (a strong collision
        // over those spans), leaving the delimiters intact. Note partial
        // corruption (e.g. 25 % of chips) would NOT suffice: hard-decision
        // DSSS frequently decodes through it — that robustness is the
        // point of spreading.
        let data_start = 400 + ppr_phy::sync::tx_preamble_chips().len();
        let hdr_chips = 2 * HEADER_BYTES * CHIPS_PER_SYMBOL;
        for i in 0..hdr_chips {
            chips[data_start + i] = rng.gen();
        }
        let g = FrameGeometry::for_body(40);
        let trailer_chip0 = data_start + 2 * g.pkt_crc().end * CHIPS_PER_SYMBOL;
        for i in 0..hdr_chips {
            chips[trailer_chip0 + i] = rng.gen();
        }
        let frames = FrameReceiver::default().receive(&chips);
        // Sync may fire (delimiters intact) but no frame carries geometry.
        for f in &frames {
            assert!(f.header.is_none());
            assert!(f.body_bytes().is_none());
            assert!(!f.pkt_crc_ok());
        }
    }

    #[test]
    fn implausible_trailer_length_is_rejected() {
        // A trailer claiming a huge len must not trigger a giant rollback.
        let rx = FrameReceiver::new(RxConfig {
            postamble_decoding: true,
            max_body_len: 100,
        });
        let frame = Frame::new(1, 2, 3, vec![0x99; 200]); // exceeds max
        let mut rng = StdRng::seed_from_u64(7);
        let chips = clean_capture(&frame, &mut rng);
        let frames = rx.receive(&chips);
        for f in &frames {
            assert!(f.header.is_none(), "oversized frame must be rejected");
        }
    }

    #[test]
    fn corrupted_body_keeps_honest_hints() {
        let mut rng = StdRng::seed_from_u64(8);
        let frame = Frame::new(5, 6, 7, vec![0xAA; 100]);
        let mut chips = clean_capture(&frame, &mut rng);
        // Corrupt a mid-body burst: chips 60..70 symbols worth.
        let data_start = 400 + ppr_phy::sync::tx_preamble_chips().len();
        let burst_start = data_start + 80 * CHIPS_PER_SYMBOL;
        for i in 0..(20 * CHIPS_PER_SYMBOL) {
            if i % 2 == 0 {
                chips[burst_start + i] = rng.gen();
            }
        }
        let frames = FrameReceiver::default().receive(&chips);
        assert_eq!(frames.len(), 1);
        let rx = &frames[0];
        assert!(!rx.pkt_crc_ok());
        let hints = rx.body_symbol_hints().unwrap();
        // Symbols inside the burst carry large hints; the rest are clean.
        // Burst covers symbols 80..100 of the link section; body starts
        // at symbol 20, so body symbols 60..80.
        let in_burst = &hints[60..80];
        assert!(
            in_burst.iter().filter(|&&h| h > 6).count() > 10,
            "{in_burst:?}"
        );
        assert!(hints[..55].iter().all(|&h| h <= 2));
    }
}
