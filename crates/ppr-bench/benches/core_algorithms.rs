//! Criterion micro-benches for PPR's hot algorithmic paths:
//!
//! * the chunking-DP planner ladder (`O(L³)` interval reference vs the
//!   `O(L²)` and `O(L)` partition planners, up to L = 4096),
//! * nearest-codeword despreading (the per-codeword receive cost),
//! * the fast chip channel (geometric skipping vs dense Bernoulli),
//! * sparse corruption across the geometric/mask crossover
//!   (`corrupt_sparse`),
//! * the DSP and CRC kernel ladders, tier by tier (`dsp_kernels`),
//! * the feedback codec,
//! * a full PP-ARQ session over a perfect pipe.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ppr_core::arq::{run_session, PerfectChannel, PpArqConfig};
use ppr_core::dp::{
    plan_chunks_interval, plan_chunks_monotone_with, plan_chunks_quadratic_with, ChunkScratch,
    CostModel,
};
use ppr_core::feedback::Feedback;
use ppr_core::runs::{RunLengths, UnitRange};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn labels_with_l_bad_runs(l: usize, total: usize) -> Vec<bool> {
    // Evenly spaced bad runs of length 3 across `total` units.
    let mut labels = vec![true; total];
    for i in 0..l {
        let start = (i * total) / l;
        for j in 0..3.min(total - start) {
            labels[start + j] = false;
        }
    }
    labels
}

/// The planner ladder: the `O(L³)` interval reference is capped at
/// L = 128 (it is already ~700 µs/iter there and cubic beyond); the
/// partition planners run to L = 4096, the regime the interval DP made
/// infeasible. All three produce identical plans (see
/// `tests/properties.rs`).
fn bench_chunking_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunking_dp");
    let mut scratch = ChunkScratch::new();
    for l in [4usize, 16, 64, 128, 1024, 4096] {
        let total = (8 * l).max(1500);
        let labels = labels_with_l_bad_runs(l, total);
        let rl = RunLengths::from_labels(&labels);
        let cost = CostModel::bytes(total);
        assert_eq!(rl.l(), l, "bench labels must produce exactly L runs");
        if l <= 128 {
            group.bench_with_input(BenchmarkId::new("interval", l), &l, |b, _| {
                b.iter(|| plan_chunks_interval(black_box(&rl), black_box(&cost)))
            });
        }
        group.bench_with_input(BenchmarkId::new("quadratic", l), &l, |b, _| {
            b.iter(|| {
                plan_chunks_quadratic_with(black_box(&rl), black_box(&cost), &mut scratch).cost_bits
            })
        });
        group.bench_with_input(BenchmarkId::new("monotone", l), &l, |b, _| {
            b.iter(|| {
                plan_chunks_monotone_with(black_box(&rl), black_box(&cost), &mut scratch).cost_bits
            })
        });
    }
    group.finish();
}

fn bench_despreading(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let words: Vec<u32> = (0..3000).map(|_| rng.gen()).collect();
    c.bench_function("despread_hard_3000_codewords", |b| {
        b.iter(|| ppr_phy::spread::despread_hard(black_box(&words)))
    });
    // The same scan, pinned to each kernel this CPU offers: the
    // scalar-vs-SIMD ladder (despread_hard uses the widest by default).
    let mut group = c.benchmark_group("despread_kernels_3000");
    for kernel in ppr_phy::simd::DespreadKernel::available() {
        let mut out = Vec::with_capacity(words.len());
        group.bench_function(kernel.name(), |b| {
            b.iter(|| {
                out.clear();
                kernel.decide_into(black_box(&words), &mut out);
            })
        });
    }
    group.finish();
}

fn bench_lazy_decode(c: &mut Criterion) {
    // Demand-driven decode of a clean 1500 B frame: sync-only (header
    // probe), packet-CRC check, and full link-section read.
    let frame = ppr_mac::frame::Frame::new(1, 2, 3, vec![0xA7; 1500]);
    let words = frame.chip_words();
    let receiver = ppr_mac::rx::FrameReceiver::default();
    let data_start = ppr_phy::sync::tx_preamble_chips().len() as i64;
    let mut group = c.benchmark_group("lazy_decode_1500B");
    group.bench_function("sync_only", |b| {
        b.iter(|| receiver.decode_from_preamble_words(black_box(&words), data_start))
    });
    group.bench_function("crc_check", |b| {
        b.iter(|| {
            let rx = receiver.decode_from_preamble_words(black_box(&words), data_start);
            rx.pkt_crc_ok()
        })
    });
    group.bench_function("full_read", |b| {
        b.iter(|| {
            let rx = receiver.decode_from_preamble_words(black_box(&words), data_start);
            rx.link_bytes()
        })
    });
    group.finish();
}

fn bench_chip_channel(c: &mut Criterion) {
    let chips = vec![false; 100_000];
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("chip_channel_100k");
    for (name, p) in [
        ("clean_1e-6", 1e-6),
        ("marginal_0.05", 0.05),
        ("jammed_0.5", 0.5),
    ] {
        let profile = ppr_channel::chip_channel::ErrorProfile::uniform(100_000, p);
        group.bench_function(name, |b| {
            b.iter(|| {
                ppr_channel::chip_channel::corrupt_chips(
                    black_box(&chips),
                    black_box(&profile),
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

/// Packed (`ChipWords`) vs reference (`Vec<bool>`) chip pipeline at
/// L ∈ {1k, 10k, 100k} chips: corruption in the sparse and jammed
/// regimes, and full-stream despreading.
fn bench_packed_vs_bool(c: &mut Criterion) {
    use ppr_channel::chip_channel::{corrupt_chip_words, corrupt_chips, ErrorProfile};
    use ppr_phy::chips::ChipWords;
    use ppr_phy::frame_rx::ChipReceiver;

    let mut rng = StdRng::seed_from_u64(3);
    for l in [1_000usize, 10_000, 100_000] {
        let chips: Vec<bool> = (0..l).map(|_| rng.gen()).collect();
        let packed = ChipWords::from_bools(&chips);
        let mut group = c.benchmark_group(format!("packed_vs_bool_{l}"));
        for (regime, p) in [
            ("sparse_0.01", 0.01),
            ("collision_0.2", 0.2),
            ("jammed_0.5", 0.5),
        ] {
            let profile = ErrorProfile::uniform(l as u64, p);
            group.bench_function(format!("corrupt_bool_{regime}"), |b| {
                b.iter(|| corrupt_chips(black_box(&chips), black_box(&profile), &mut rng))
            });
            group.bench_function(format!("corrupt_packed_{regime}"), |b| {
                b.iter(|| corrupt_chip_words(black_box(&packed), black_box(&profile), &mut rng))
            });
        }
        let rx = ChipReceiver::default();
        let n_symbols = l / 32;
        group.bench_function("despread_bool", |b| {
            b.iter(|| rx.despread(black_box(&chips), 0, n_symbols))
        });
        group.bench_function("despread_packed", |b| {
            b.iter(|| rx.despread_words(black_box(&packed), 0, n_symbols))
        });
        group.finish();
    }
    // Frame rendering at a representative body size.
    let frame = ppr_mac::frame::Frame::new(1, 2, 3, vec![0xA7; 1500]);
    c.bench_function("frame_chips_bool_1500B", |b| b.iter(|| frame.chips()));
    c.bench_function("frame_chips_packed_1500B", |b| {
        b.iter(|| frame.chip_words())
    });
}

/// Sparse corruption around the geometric/mask crossover: the packed
/// sampler (one RNG draw per flip, geometric chip skipping) against the
/// dense per-chip Bernoulli mask, at probabilities bracketing the
/// measured p ≈ 0.029 break-even, plus the allocation-free in-place
/// entry the feedback path uses.
fn bench_corrupt_sparse(c: &mut Criterion) {
    use ppr_channel::chip_channel::{
        corrupt_chip_words, corrupt_chip_words_in_place, corrupt_chips, ErrorProfile,
    };
    use ppr_phy::chips::ChipWords;

    let mut rng = StdRng::seed_from_u64(5);
    let l = 100_000usize;
    let chips: Vec<bool> = (0..l).map(|_| rng.gen()).collect();
    let packed = ChipWords::from_bools(&chips);
    let mut group = c.benchmark_group("corrupt_sparse_100k");
    for p in [0.001f64, 0.01, 0.02, 0.029, 0.05] {
        let profile = ErrorProfile::uniform(l as u64, p);
        group.bench_with_input(BenchmarkId::new("bool", p), &p, |b, _| {
            b.iter(|| corrupt_chips(black_box(&chips), black_box(&profile), &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("packed", p), &p, |b, _| {
            b.iter(|| corrupt_chip_words(black_box(&packed), black_box(&profile), &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("packed_inplace", p), &p, |b, _| {
            b.iter(|| {
                let mut w = packed.clone();
                corrupt_chip_words_in_place(&mut w, black_box(&profile), &mut rng);
                w
            })
        });
    }
    group.finish();
}

/// The DSP backend kernel ladder (superposition, matched-filter bank,
/// SOVA trellis — each tier this CPU offers vs the scalar reference it
/// must bit-match) and the CRC-32 kernel ladder on a 1500 B packet.
fn bench_dsp_kernels(c: &mut Criterion) {
    use ppr_phy::complex::Complex32;
    use ppr_phy::pulse::HalfSine;
    use ppr_phy::simd::DspKernel;
    use ppr_phy::sova;

    let mut rng = StdRng::seed_from_u64(6);
    let cpx = |n: usize, rng: &mut StdRng| -> Vec<Complex32> {
        (0..n)
            .map(|_| Complex32 {
                re: rng.gen_range(-1.0f32..1.0),
                im: rng.gen_range(-1.0f32..1.0),
            })
            .collect()
    };

    let wave = cpx(4096, &mut rng);
    let rot = Complex32 { re: 0.6, im: -0.8 };
    let mut group = c.benchmark_group("dsp_axpy_4096");
    for kernel in DspKernel::available() {
        let mut out = cpx(wave.len(), &mut rng);
        group.bench_function(kernel.name(), |b| {
            b.iter(|| kernel.axpy_rotated(&mut out, black_box(&wave), rot, 0.5))
        });
    }
    group.finish();

    let sps = 4usize;
    let pulse = HalfSine::new(sps);
    let n_chips = 1000usize;
    let samples = cpx(n_chips * sps + pulse.len(), &mut rng);
    let mut group = c.benchmark_group("dsp_demod_1000chips");
    for kernel in DspKernel::available() {
        let mut soft = Vec::with_capacity(n_chips);
        group.bench_function(kernel.name(), |b| {
            b.iter(|| {
                soft.clear();
                kernel.demod_full_windows(
                    black_box(&samples),
                    pulse.samples(),
                    pulse.energy(),
                    0,
                    sps,
                    n_chips,
                    true,
                    &mut soft,
                );
            })
        });
    }
    group.finish();

    let bits: Vec<bool> = (0..500).map(|_| rng.gen()).collect();
    let mut soft = sova::modulate_coded(&bits);
    for s in &mut soft {
        *s += rng.gen_range(-0.5f32..0.5);
    }
    let mut group = c.benchmark_group("dsp_sova_500bits");
    for kernel in DspKernel::available() {
        group.bench_function(kernel.name(), |b| {
            b.iter(|| kernel.sova_decode(black_box(&soft)))
        });
    }
    group.finish();

    let buf: Vec<u8> = (0..1500).map(|_| rng.gen()).collect();
    let mut group = c.benchmark_group("crc32_1500B");
    group.bench_function("1table", |b| {
        b.iter(|| ppr_mac::crc::crc32_1table(black_box(&buf)))
    });
    group.bench_function("slice16", |b| {
        b.iter(|| ppr_mac::crc::crc32_slice16(black_box(&buf)))
    });
    if ppr_mac::clmul::available() {
        group.bench_function("clmul", |b| {
            b.iter(|| ppr_mac::clmul::crc32_clmul(black_box(&buf)))
        });
    }
    group.finish();
}

fn bench_feedback_codec(c: &mut Criterion) {
    let bytes = vec![0xA5u8; 1500];
    let chunks: Vec<UnitRange> = (0..12)
        .map(|i| UnitRange::new(i * 120, i * 120 + 40))
        .collect();
    let fb = Feedback::from_plan(1, &bytes, chunks);
    let encoded = fb.encode();
    c.bench_function("feedback_encode", |b| b.iter(|| black_box(&fb).encode()));
    c.bench_function("feedback_decode", |b| {
        b.iter(|| Feedback::decode(black_box(&encoded)).unwrap())
    });
}

fn bench_pparq_session(c: &mut Criterion) {
    let payload = vec![0x5Au8; 250];
    c.bench_function("pparq_session_clean_250B", |b| {
        b.iter(|| {
            run_session(
                black_box(&payload),
                PpArqConfig::default(),
                &mut PerfectChannel,
            )
        })
    });
}

fn bench_modem(c: &mut Criterion) {
    let modem = ppr_phy::modem::MskModem::new(4);
    let chips = ppr_phy::modem::unpack_chip_words(&ppr_phy::spread::spread_bytes(&[0xA7; 125]));
    let samples = modem.modulate(&chips);
    c.bench_function("msk_modulate_1000_chips", |b| {
        b.iter(|| modem.modulate(black_box(&chips[..1000])))
    });
    c.bench_function("msk_demodulate_1000_chips", |b| {
        b.iter(|| modem.demodulate(black_box(&samples), 0, 1000, true))
    });
}

criterion_group!(
    benches,
    bench_chunking_dp,
    bench_despreading,
    bench_lazy_decode,
    bench_chip_channel,
    bench_packed_vs_bool,
    bench_corrupt_sparse,
    bench_dsp_kernels,
    bench_feedback_codec,
    bench_pparq_session,
    bench_modem,
);
criterion_main!(benches);
