//! # `ppr-bench` — ablation/profiling binaries and criterion benches
//!
//! The paper's figure and table experiments live in the `ppr-sim`
//! experiment registry and run through the `ppr-cli` driver:
//!
//! ```text
//! cargo run --release -p ppr-cli -- --list
//! cargo run --release -p ppr-cli -- run --all
//! cargo run --release -p ppr-cli -- run fig10 --set load=3.5,6.9,13.8 --json out/
//! ```
//!
//! What stays here are the binaries that are *not* registry
//! experiments: the ablations (`ablation_eta`, `ablation_hints`,
//! `ablation_arq_strategies`, `ablation_collision_model`), the §9
//! spreading-factor sweep (`conclusion_rate`), the development probes
//! (`profile_sim`, `profile_stages`), the `bench_packed` perf
//! snapshot, plus criterion micro-benches for the hot algorithmic
//! paths (the chunking DP, the despreader, the chip channel).
//!
//! Set `PPR_DURATION=<seconds>` to shorten/lengthen the simulated
//! duration (default 90 s) — or use `--set duration=<s>` on `ppr-cli`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a standard experiment banner.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("PPR reproduction — {title}");
    println!("{}", "=".repeat(72));
}
