//! # `ppr-bench` — experiment binaries and criterion benches
//!
//! One binary per paper table/figure (see `src/bin/`), each printing the
//! rows/series the paper reports, plus criterion micro-benches for the
//! hot algorithmic paths (the chunking DP, the despreader, the chip
//! channel).
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p ppr-bench --bin all_experiments
//! ```
//!
//! Individual figures: `fig03_hint_cdf`, `fig08_fdr_cs`,
//! `fig09_fdr_nocs`, `fig10_fdr_highload`, `fig11_throughput_cdf`,
//! `fig12_throughput_scatter`, `fig13_collision_anatomy`,
//! `fig14_miss_lengths`, `fig15_false_alarms`, `fig16_pparq_sizes`,
//! `table2_fragcrc_chunks`, and the ablations `ablation_eta`,
//! `ablation_hints`, `ablation_arq_strategies`.
//!
//! Set `PPR_DURATION=<seconds>` to shorten/lengthen the simulated
//! duration (default 90 s).

/// Prints a standard experiment banner.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("PPR reproduction — {title}");
    println!("{}", "=".repeat(72));
}
