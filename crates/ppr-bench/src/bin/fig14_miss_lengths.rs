//! Figure 14: CCDF of contiguous miss lengths at η ∈ {1,2,3,4}.

use ppr_sim::experiments::{common::default_duration, fig14};

fn main() {
    ppr_bench::banner("Figure 14: contiguous miss lengths");
    let hist = fig14::collect(default_duration());
    print!("{}", fig14::render(&hist));
}
