//! Ablation: collision chip-error models vs the DSP ground truth.
//!
//! During a collision the interferer is another DSSS signal, not
//! Gaussian noise: each interferer chip either opposes or reinforces the
//! victim's chip. This ablation sweeps the signal-to-interferer ratio
//! and compares, against the sample-level DSP channel:
//!
//! * the **Gaussian** approximation `p = Q(√(2·SINR))`, and
//! * the **two-mass** dominant-interferer model used by the fast
//!   backend (`ppr-channel::ber::chip_error_prob_dominant`).
//!
//! The quantities compared are what SoftPHY exposes upward: chip error
//! rate, codeword error rate, and mean Hamming hint.

use ppr_channel::ber::{chip_error_prob, chip_error_prob_dominant, sinr};
use ppr_channel::sample_channel::{render, WaveformTx};
use ppr_phy::modem::{pack_chip_words, unpack_chip_words, MskModem};
use ppr_phy::spread::{bytes_to_symbols, despread_hard, spread_bytes};
use ppr_sim::report::{fmt, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    ppr_bench::banner("Ablation: collision chip-error models");
    let sps = 4;
    let modem = MskModem::new(sps);
    let mut rng = StdRng::seed_from_u64(0xC0DE);

    let payload: Vec<u8> = (0..1500).map(|_| rng.gen()).collect();
    let tx_symbols = bytes_to_symbols(&payload);
    let words = spread_bytes(&payload);
    let chips = unpack_chip_words(&words);

    // Interferer: an independent chip stream, offset by a non-multiple
    // of 32 so its codewords straddle the victim's grid.
    let i_payload: Vec<u8> = (0..1550).map(|_| rng.gen()).collect();
    let i_chips = unpack_chip_words(&spread_bytes(&i_payload));

    let noise_mw = 0.01; // 20+ dB below the unit-power signal
    let snr = sps as f64 / noise_mw; // matched-filter chip SNR convention

    let mut t = Table::new(&[
        "SIR (dB)",
        "chip err DSP",
        "chip err 2-mass",
        "chip err gauss",
        "cw err DSP",
        "cw err 2-mass*",
        "mean hint DSP",
    ]);
    for sir_db in [12.0f64, 6.0, 3.0, 0.0, -3.0, -6.0] {
        let i_power = 10f64.powf(-sir_db / 10.0);
        // DSP ground truth.
        let duration = modem.samples_for_chips(chips.len());
        let txs = vec![
            WaveformTx {
                chips: chips.clone(),
                start_sample: 0,
                power_mw: 1.0,
                phase: 0.0,
            },
            WaveformTx {
                chips: i_chips.clone(),
                start_sample: 12 * sps, // 12-chip offset: grid-misaligned
                power_mw: i_power,
                phase: 0.2,
            },
        ];
        let samples = render(
            &modem,
            &txs,
            duration,
            noise_mw * sps as f64 / snr,
            &mut rng,
        );
        let rx_chips = modem.demodulate_hard(&samples, 0, chips.len(), true);
        // Skip the first codeword (interferer not yet present).
        let skip = 32;
        let chip_err_dsp = rx_chips[skip..]
            .iter()
            .zip(&chips[skip..])
            .filter(|(a, b)| a != b)
            .count() as f64
            / (chips.len() - skip) as f64;
        let decisions = despread_hard(&pack_chip_words(&rx_chips));
        let cw_err_dsp = decisions[1..]
            .iter()
            .zip(&tx_symbols[1..])
            .filter(|(d, &t)| d.symbol != t)
            .count() as f64
            / (tx_symbols.len() - 1) as f64;
        let hint_dsp = decisions[1..]
            .iter()
            .map(|d| d.distance as f64)
            .sum::<f64>()
            / (decisions.len() - 1) as f64;

        // Analytic models (noise at the same calibrated level).
        let n_eff = 1.0 / snr; // mW equivalent in the p=Q(√(2·SNR)) convention
        let p_two_mass = chip_error_prob_dominant(1.0, i_power, 0.0, n_eff);
        let p_gauss = chip_error_prob(sinr(1.0, i_power, n_eff));
        // Codeword error rate implied by the two-mass chip error rate
        // (independent-flip binomial against the decode radius).
        let cw_two_mass = ppr_channel::ber::codeword_error_upper_bound(p_two_mass);

        t.row(&[
            format!("{sir_db}"),
            fmt(chip_err_dsp),
            fmt(p_two_mass),
            fmt(p_gauss),
            fmt(cw_err_dsp),
            fmt(cw_two_mass),
            fmt(hint_dsp),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n(* union bound, an overestimate near its saturation)\n\n\
         Expected: the Gaussian model severely underestimates chip errors\n\
         near SIR 0 dB, where the two-mass model tracks the DSP truth;\n\
         both converge at high SIR. This is why the fast network backend\n\
         models the dominant interferer exactly."
    );
}
