//! Figure 13: anatomy of a collision (sample-level DSP path).

use ppr_sim::experiments::fig13;

fn main() {
    ppr_bench::banner("Figure 13: collision anatomy (DSP path)");
    let anatomy = fig13::collect();
    print!("{}", fig13::render_anatomy(&anatomy));
}
