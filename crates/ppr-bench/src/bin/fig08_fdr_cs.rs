//! Figure 8: per-link frame delivery rate, carrier sense ON, 3.5 kbit/s.

use ppr_sim::experiments::{common::default_duration, fdr};

fn main() {
    ppr_bench::banner("Figure 8: FDR, carrier sense on, moderate load");
    let curves = fdr::collect(3.5, true, default_duration());
    print!("{}", fdr::render("Figure 8", 3.5, true, &curves));
}
