//! Table 2: fragmented-CRC aggregate throughput vs chunk count.

use ppr_sim::experiments::{common::default_duration, table2};

fn main() {
    ppr_bench::banner("Table 2: fragmented-CRC chunk-size sweep");
    let rows = table2::collect(default_duration());
    print!("{}", table2::render(&rows));
}
