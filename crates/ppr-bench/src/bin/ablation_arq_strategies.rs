//! Ablation: PP-ARQ's DP chunking vs naive feedback strategies.
//!
//! Three receivers plan retransmission requests for the same corrupted
//! packets:
//!
//! * **whole-packet** — the status quo: any error ⇒ resend all 1500 B;
//! * **per-run** — request every bad run individually (no merging);
//! * **DP chunking** — the paper's Eq. 4–5 optimum.
//!
//! The metric is the total recovery cost in bits: feedback descriptors +
//! checksums + retransmitted data, exactly the DP's objective.

use ppr_core::dp::{plan_chunks_monotone_with, ChunkScratch, CostModel};
use ppr_core::runs::RunLengths;
use ppr_sim::report::{fmt, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a corrupted-packet label pattern with bursty bad runs.
fn bursty_labels(rng: &mut StdRng, total: usize, bursts: usize, mean_len: usize) -> Vec<bool> {
    let mut labels = vec![true; total];
    for _ in 0..bursts {
        let len = 1 + (rng.gen::<f64>() * 2.0 * mean_len as f64) as usize;
        let start = rng.gen_range(0..total);
        for label in &mut labels[start..(start + len).min(total)] {
            *label = false;
        }
    }
    labels
}

fn main() {
    ppr_bench::banner("Ablation: retransmission-request strategies");
    let total = 1500usize;
    let cost = CostModel::bytes(total);
    let log_s = (total as f64).log2();
    let mut rng = StdRng::seed_from_u64(0xAB1A);
    let mut scratch = ChunkScratch::new();

    let mut t = Table::new(&[
        "scenario",
        "L (bad runs)",
        "whole-packet bits",
        "per-run bits",
        "DP bits",
        "DP saving",
    ]);
    for (name, bursts, mean_len) in [
        ("light: 2 bursts x ~8B", 2usize, 8usize),
        ("moderate: 6 bursts x ~15B", 6, 15),
        ("heavy: 20 bursts x ~10B", 20, 10),
        ("shredded: 80 bursts x ~2B", 80, 2),
    ] {
        let mut whole = 0.0;
        let mut per_run = 0.0;
        let mut dp = 0.0;
        let mut l_sum = 0usize;
        let trials = 50;
        for _ in 0..trials {
            let labels = bursty_labels(&mut rng, total, bursts, mean_len);
            let rl = RunLengths::from_labels(&labels);
            l_sum += rl.l();
            // Whole packet: one descriptor + all data again.
            whole += 2.0 * log_s + (total as f64) * 8.0;
            // Per-run: Eq. 4 for every bad run separately.
            per_run += rl
                .pairs
                .iter()
                .map(|p| {
                    log_s + (p.bad_len.max(2) as f64).log2() + ((p.good_len * 8) as f64).min(16.0)
                })
                .sum::<f64>();
            // DP optimum (production planner, shared scratch).
            dp += plan_chunks_monotone_with(&rl, &cost, &mut scratch).cost_bits;
        }
        let n = trials as f64;
        t.row(&[
            name.to_string(),
            format!("{:.1}", l_sum as f64 / n),
            fmt(whole / n),
            fmt(per_run / n),
            fmt(dp / n),
            format!("{:.1}%", 100.0 * (1.0 - dp / per_run.min(whole))),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nExpected: DP <= per-run <= whole-packet everywhere; the DP's\n\
         edge over per-run grows as runs get numerous and close together."
    );
}
