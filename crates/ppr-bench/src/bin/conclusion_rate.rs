//! The paper's concluding claim (§9), quantified: "with SoftPHY and PPR,
//! it would be better for a PHY to use parameters that lead to a BER
//! that is one or even two orders-of-magnitude higher … because higher
//! layers … can decode and recover partial packets correctly."
//!
//! We sweep the DSSS spreading factor `B` (chips per 4-bit symbol; the
//! standard's 32 down to 4). Smaller `B` means proportionally higher
//! payload bit-rate but weaker codewords. For each (B, SNR) we compute:
//!
//! * **Packet CRC goodput**: the whole 1500 B packet must decode
//!   error-free — `rate × (1 − p_cw)^n_codewords`;
//! * **PPR goodput**: good codewords are delivered individually —
//!   `rate × (1 − p_cw)` (retransmission of the bad remainder is
//!   PP-ARQ's job and costs only the bad fraction asymptotically).
//!
//! Codeword error probabilities come from the same chip-error model as
//! the simulator, through the binomial decode-radius bound with the
//! scaled minimum distance (`d_min ≈ 12·B/32` for the cyclic code
//! family).
//!
//! Expected: the packet-CRC optimum stays at heavy spreading (low rate),
//! while PPR's optimum shifts to much lighter spreading — higher raw
//! BER, higher delivered goodput — exactly the §9 argument.

use ppr_channel::ber::{binomial_tail, chip_error_prob};
use ppr_sim::report::{fmt, Table};

/// Codeword error probability for spreading factor `b_chips` at chip
/// error rate `p`: decoding fails when more than ⌊(d_min−1)/2⌋ chips
/// flip, bounded by the binomial tail times the neighbor count.
fn codeword_error(b_chips: u32, p: f64) -> f64 {
    let d_min = (12 * b_chips / 32).max(1);
    let radius = (d_min - 1) / 2;
    (15.0 * binomial_tail(b_chips, p, radius + 1)).min(1.0)
}

fn main() {
    ppr_bench::banner("Conclusion (9): spreading-factor sweep under PPR");
    let packet_bytes = 1500.0;
    let chip_rate = 2_000_000.0;

    for snr_db in [3.0f64, 6.0, 9.0] {
        let snr = 10f64.powf(snr_db / 10.0);
        // Chip SNR is what the matched filter sees; it does not depend
        // on the spreading factor (same chip rate, same chip energy).
        let p_chip = chip_error_prob(snr);
        println!("\nchip SNR {snr_db} dB (chip error rate {:.2e})", p_chip);
        let mut t = Table::new(&[
            "B (chips/sym)",
            "raw rate kbit/s",
            "cw err",
            "goodput PacketCRC",
            "goodput PPR",
        ]);
        let mut best_pkt = (0u32, 0.0f64);
        let mut best_ppr = (0u32, 0.0f64);
        for b in [32u32, 24, 16, 12, 8, 6, 4] {
            let rate_kbps = chip_rate * 4.0 / b as f64 / 1000.0;
            let p_cw = codeword_error(b, p_chip);
            let n_cw = packet_bytes * 2.0;
            let pkt_goodput = rate_kbps * (1.0 - p_cw).powf(n_cw);
            let ppr_goodput = rate_kbps * (1.0 - p_cw);
            if pkt_goodput > best_pkt.1 {
                best_pkt = (b, pkt_goodput);
            }
            if ppr_goodput > best_ppr.1 {
                best_ppr = (b, ppr_goodput);
            }
            t.row(&[
                b.to_string(),
                fmt(rate_kbps),
                fmt(p_cw),
                fmt(pkt_goodput),
                fmt(ppr_goodput),
            ]);
        }
        print!("{}", t.render());
        println!(
            "optimum: PacketCRC at B={} ({} kbit/s), PPR at B={} ({} kbit/s) — {:.1}x",
            best_pkt.0,
            fmt(best_pkt.1),
            best_ppr.0,
            fmt(best_ppr.1),
            best_ppr.1 / best_pkt.1.max(1e-9),
        );
    }
    println!(
        "\nExpected: PPR's optimal spreading is lighter (higher raw BER)\n\
         and its goodput several times the packet-CRC optimum — the 9\n\
         argument that PPR lets PHYs run 1-2 orders of magnitude hotter."
    );
}
