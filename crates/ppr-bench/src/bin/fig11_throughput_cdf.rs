//! Figure 11: end-to-end per-link throughput CDF at 6.9 kbit/s/node.

use ppr_sim::experiments::{common::default_duration, throughput};

fn main() {
    ppr_bench::banner("Figure 11: per-link throughput, near saturation");
    let curves = throughput::collect_fig11(6.9, default_duration());
    print!("{}", throughput::render_fig11(6.9, &curves));
}
