//! Extension: SoftPHY multi-radio diversity combining (§8.4).

use ppr_sim::experiments::{common::default_duration, mrd};

fn main() {
    ppr_bench::banner("Extension: multi-radio diversity combining");
    let r = mrd::collect(default_duration());
    print!("{}", mrd::render(&r));
}
