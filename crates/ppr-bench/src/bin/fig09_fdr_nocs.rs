//! Figure 9: per-link frame delivery rate, carrier sense OFF, 3.5 kbit/s.

use ppr_sim::experiments::{common::default_duration, fdr};

fn main() {
    ppr_bench::banner("Figure 9: FDR, carrier sense off, moderate load");
    let curves = fdr::collect(3.5, false, default_duration());
    print!("{}", fdr::render("Figure 9", 3.5, false, &curves));
}
