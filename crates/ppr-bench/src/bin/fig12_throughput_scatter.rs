//! Figure 12: per-link throughput scatter — PPR and packet CRC vs the
//! fragmented-CRC baseline, at all three loads.

use ppr_sim::experiments::{common::default_duration, throughput};

fn main() {
    ppr_bench::banner("Figure 12: throughput scatter vs fragmented CRC");
    let points = throughput::collect_fig12(default_duration());
    print!("{}", throughput::render_fig12(&points));
}
