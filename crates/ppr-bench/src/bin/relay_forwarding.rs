//! Extension: partial-packet forwarding over a 2-hop mesh (§8.4).

use ppr_sim::experiments::relay;

fn main() {
    ppr_bench::banner("Extension: partial-packet mesh forwarding");
    let r = relay::collect(400, 200, 0xE20);
    print!("{}", relay::render(&r));
}
