//! Figure 10: per-link frame delivery rate, carrier sense OFF,
//! 13.8 kbit/s/node (high load).

use ppr_sim::experiments::{common::default_duration, fdr};

fn main() {
    ppr_bench::banner("Figure 10: FDR, carrier sense off, high load");
    let curves = fdr::collect(13.8, false, default_duration());
    print!("{}", fdr::render("Figure 10", 13.8, false, &curves));
}
