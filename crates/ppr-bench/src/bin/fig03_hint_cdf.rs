//! Figure 3: Hamming-distance CDFs for correct vs incorrect codewords.

use ppr_sim::experiments::{common::default_duration, fig03};

fn main() {
    ppr_bench::banner("Figure 3: SoftPHY hint distributions");
    let data = fig03::collect(default_duration());
    print!("{}", fig03::render(&data));
}
