//! Figure 15: false-alarm rate vs threshold η, per offered load.

use ppr_sim::experiments::{common::default_duration, fig15};

fn main() {
    ppr_bench::banner("Figure 15: false-alarm rates");
    let data = fig15::collect(default_duration());
    print!("{}", fig15::render(&data));
}
