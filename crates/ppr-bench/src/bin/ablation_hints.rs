//! Ablation: predictive power of alternative SoftPHY hint sources
//! (§3.1's three options).
//!
//! Over the sample-level DSP channel at several SNRs, each codeword is
//! decoded three ways and each hint's ability to separate correct from
//! incorrect decodes is measured:
//!
//! * **Hamming distance** (hard decision — the paper's implemented hint);
//! * **soft-decision correlation margin** (best minus runner-up metric,
//!   Eq. 1);
//! * **matched-filter confidence** (mean |soft chip value|).
//!
//! The separation metric is AUC-style: the probability that a random
//! incorrect codeword looks *worse* than a random correct one under the
//! hint's ordering (1.0 = perfect separation, 0.5 = useless).

use ppr_channel::sample_channel::render_single;
use ppr_phy::chips::CHIPS_PER_SYMBOL;
use ppr_phy::modem::MskModem;
use ppr_phy::spread::{despread_soft, spread_bytes};
use ppr_sim::report::{fmt, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn auc(correct: &[f64], incorrect: &[f64]) -> f64 {
    // P(incorrect_score > correct_score) with ties counted half, via
    // sorting (scores oriented so larger = less confident).
    if correct.is_empty() || incorrect.is_empty() {
        return f64::NAN;
    }
    let mut all: Vec<(f64, bool)> = correct
        .iter()
        .map(|&v| (v, true))
        .chain(incorrect.iter().map(|&v| (v, false)))
        .collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    // Rank-sum (Mann–Whitney U).
    let mut rank_sum_incorrect = 0.0f64;
    let mut i = 0usize;
    while i < all.len() {
        let mut j = i;
        while j < all.len() && all[j].0 == all[i].0 {
            j += 1;
        }
        let avg_rank = (i + j + 1) as f64 / 2.0; // 1-based average rank
        for entry in &all[i..j] {
            if !entry.1 {
                rank_sum_incorrect += avg_rank;
            }
        }
        i = j;
    }
    let n_i = incorrect.len() as f64;
    let n_c = correct.len() as f64;
    (rank_sum_incorrect - n_i * (n_i + 1.0) / 2.0) / (n_i * n_c)
}

fn main() {
    ppr_bench::banner("Ablation: SoftPHY hint sources (3.1)");
    let sps = 4;
    let modem = MskModem::new(sps);
    let mut rng = StdRng::seed_from_u64(0x41C5);
    let n_codewords = 4000usize;
    let payload: Vec<u8> = (0..n_codewords / 2).map(|_| rng.gen()).collect();
    let words = spread_bytes(&payload);
    let chips = ppr_phy::modem::unpack_chip_words(&words);
    let tx_symbols = ppr_phy::spread::bytes_to_symbols(&payload);

    let mut t = Table::new(&[
        "SNR (dB)",
        "codeword err rate",
        "AUC hamming",
        "AUC soft margin",
        "AUC matched filter",
    ]);
    for snr_db in [-2.0f64, 0.0, 2.0, 4.0] {
        let snr = 10f64.powf(snr_db / 10.0);
        let e_pulse = sps as f64; // half-sine energy at this oversampling
        let noise_mw = e_pulse / snr;
        let samples = render_single(&modem, &chips, 1.0, noise_mw, &mut rng);
        let soft = modem.demodulate(&samples, 0, chips.len(), true);

        let mut ham_c = Vec::new();
        let mut ham_i = Vec::new();
        let mut mar_c = Vec::new();
        let mut mar_i = Vec::new();
        let mut mf_c = Vec::new();
        let mut mf_i = Vec::new();
        let mut errors = 0usize;

        for (cw, &tx_sym) in tx_symbols.iter().enumerate() {
            let lo = cw * CHIPS_PER_SYMBOL;
            let soft_cw: &[f32] = &soft[lo..lo + CHIPS_PER_SYMBOL];
            // Hard decision + Hamming.
            let mut word = 0u32;
            for (j, &v) in soft_cw.iter().enumerate() {
                if v >= 0.0 {
                    word |= 1 << j;
                }
            }
            let hard = ppr_phy::chips::decide(word);
            // Soft decision + margin.
            let mut arr = [0.0f32; CHIPS_PER_SYMBOL];
            arr.copy_from_slice(soft_cw);
            let sd = despread_soft(&arr);
            // Matched-filter confidence: mean |soft|, inverted so larger
            // = less confident (consistent hint orientation).
            let mf: f64 = -(soft_cw.iter().map(|v| v.abs() as f64).sum::<f64>() / 32.0);

            let correct = hard.symbol == tx_sym;
            if !correct {
                errors += 1;
            }
            let margin = -(sd.metric - sd.runner_up) as f64; // larger = worse
            if correct {
                ham_c.push(hard.distance as f64);
                mar_c.push(margin);
                mf_c.push(mf);
            } else {
                ham_i.push(hard.distance as f64);
                mar_i.push(margin);
                mf_i.push(mf);
            }
        }
        t.row(&[
            format!("{snr_db}"),
            fmt(errors as f64 / tx_symbols.len() as f64),
            fmt(auc(&ham_c, &ham_i)),
            fmt(auc(&mar_c, &mar_i)),
            fmt(auc(&mf_c, &mf_i)),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nExpected: all three hints separate well (AUC >> 0.5); the soft\n\
         margin is at least as discriminative as Hamming distance, which\n\
         is the paper's rationale for treating them interchangeably\n\
         behind the SoftPHY interface (3.1-3.3)."
    );
}
