//! Quick-bench snapshot of the packed chip pipeline: times the
//! packed-vs-bool stages at L ∈ {1k, 10k, 100k} chips plus a small
//! end-to-end reception run, and writes `BENCH_packed.json` so CI can
//! archive the perf trajectory from PR 2 onward.
//!
//! Timings are coarse (tens of milliseconds per entry) on purpose — this
//! is a smoke-level trend tracker, not a statistics engine; use
//! `cargo bench -p ppr-bench` for interactive comparisons.

use ppr_channel::chip_channel::{corrupt_chip_words, corrupt_chips, ErrorProfile};
use ppr_mac::schemes::DeliveryScheme;
use ppr_phy::chips::ChipWords;
use ppr_phy::frame_rx::ChipReceiver;
use ppr_phy::simd::DespreadKernel;
use ppr_sim::network::{generate_timeline, process_receptions, RadioEnv, RxArm, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Mean ns/iteration of `f`, measured over ~20 ms after one warm-up.
fn time_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let budget = std::time::Duration::from_millis(20);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        std::hint::black_box(f());
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut entries: Vec<(String, f64)> = Vec::new();

    for l in [1_000usize, 10_000, 100_000] {
        let chips: Vec<bool> = (0..l).map(|_| rng.gen()).collect();
        let packed = ChipWords::from_bools(&chips);
        for (regime, p) in [
            ("sparse_0.01", 0.01),
            ("collision_0.2", 0.2),
            ("jammed_0.5", 0.5),
        ] {
            let profile = ErrorProfile::uniform(l as u64, p);
            entries.push((
                format!("corrupt_bool_{regime}_{l}"),
                time_ns(|| corrupt_chips(&chips, &profile, &mut rng)),
            ));
            entries.push((
                format!("corrupt_packed_{regime}_{l}"),
                time_ns(|| corrupt_chip_words(&packed, &profile, &mut rng)),
            ));
        }
        let rx = ChipReceiver::default();
        entries.push((
            format!("despread_bool_{l}"),
            time_ns(|| rx.despread(&chips, 0, l / 32)),
        ));
        entries.push((
            format!("despread_packed_{l}"),
            time_ns(|| rx.despread_words(&packed, 0, l / 32)),
        ));
        // The bare codebook scan, kernel by kernel (gather excluded):
        // what the SIMD rewrite buys at each vector width this CPU has.
        let words: Vec<u32> = (0..l / 32).map(|s| packed.extract_u32(s * 32)).collect();
        for kernel in DespreadKernel::available() {
            let mut out = Vec::with_capacity(words.len());
            entries.push((
                format!("decide_{}_{l}", kernel.name()),
                time_ns(|| {
                    out.clear();
                    kernel.decide_into(&words, &mut out);
                }),
            ));
        }
    }

    let frame = ppr_mac::frame::Frame::new(1, 2, 3, vec![0xA7; 1500]);
    entries.push(("frame_chips_bool_1500B".into(), time_ns(|| frame.chips())));
    entries.push((
        "frame_chips_packed_1500B".into(),
        time_ns(|| frame.chip_words()),
    ));

    // Demand-driven decode: synchronizing a clean 1500 B frame now costs
    // only the header probe; the body despreads when a consumer reads
    // it. The three rows are sync-only, sync + packet-CRC check (header
    // through CRC field; replicated trailer never decoded), and a full
    // link-section read.
    {
        let words = frame.chip_words();
        let receiver = ppr_mac::rx::FrameReceiver::default();
        let data_start = ppr_phy::sync::tx_preamble_chips().len() as i64;
        entries.push((
            "decode_1500B_sync_only".into(),
            time_ns(|| receiver.decode_from_preamble_words(&words, data_start)),
        ));
        entries.push((
            "decode_1500B_crc_check".into(),
            time_ns(|| {
                let rx = receiver.decode_from_preamble_words(&words, data_start);
                rx.pkt_crc_ok()
            }),
        ));
        entries.push((
            "decode_1500B_full".into(),
            time_ns(|| {
                let rx = receiver.decode_from_preamble_words(&words, data_start);
                rx.link_bytes()
            }),
        ));
    }

    // Small end-to-end run through the parallel packed reception loop.
    let env = RadioEnv::new(1);
    let cfg = SimConfig {
        load_kbps: 13.8,
        body_bytes: 200,
        carrier_sense: false,
        duration_s: 2.0,
        seed: 42,
    };
    let timeline = generate_timeline(&env, &cfg);
    let arm = RxArm {
        scheme: DeliveryScheme::Ppr { eta: 6 },
        postamble: true,
        collect_symbols: false,
    };
    let t = Instant::now();
    let recs = process_receptions(&env, &cfg, &timeline, &arm);
    entries.push((
        "process_receptions_2s_ppr_ms".into(),
        t.elapsed().as_secs_f64() * 1e3,
    ));
    entries.push(("process_receptions_2s_count".into(), recs.len() as f64));

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"schema\": \"ppr-bench-packed/v2\",\n  \"threads\": {},\n  \"despread_kernel\": \"{}\",\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        DespreadKernel::active().name()
    ));
    for (i, (name, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!("  \"{name}\": {v:.1}{sep}\n"));
        println!("{name:<40} {v:>14.1}");
    }
    json.push_str("}\n");
    std::fs::write("BENCH_packed.json", &json).expect("write BENCH_packed.json");
    println!("wrote BENCH_packed.json ({} entries)", entries.len());
}
