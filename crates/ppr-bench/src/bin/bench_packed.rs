//! Quick-bench snapshot of the packed chip pipeline: times the
//! packed-vs-bool stages at L ∈ {1k, 10k, 100k} chips (including the
//! allocation-free in-place corruption entry), the chunking-DP planner
//! ladder (`plan_chunks_{interval,quadratic,monotone}_L*`), the CRC-32
//! ladder (1-table vs slice-by-16 vs PCLMULQDQ folding), the DSP kernel
//! ladder (`dsp_{axpy,demod,sova}_<kernel>`), plus a small end-to-end
//! reception run, and writes `BENCH_packed.json` (schema v5) so CI can
//! archive the perf trajectory from PR 2 onward.
//!
//! Schema v5 adds the event-core rows: the reception loop timed under
//! both drivers (`recv_{event,timestep}_w{N}_ms`, workers ∈ {1,2,4,8}),
//! the dispatch batch-size tuning ladder (`recv_event_b{B}_ms`), and
//! the 10k-node mesh flood (`mesh10k_*`: wall ms, measured events/sec
//! and simulated packets/sec, per worker count). Wall-clock reads live
//! here, not in `ppr-sim` — simulation code is banned from timing
//! itself (the ppr-lint `determinism` rule).
//!
//! Timings are coarse (tens of milliseconds per entry) on purpose — this
//! is a smoke-level trend tracker, not a statistics engine; use
//! `cargo bench -p ppr-bench` for interactive comparisons.

use ppr_channel::chip_channel::{
    corrupt_chip_words, corrupt_chip_words_in_place, corrupt_chips, ErrorProfile,
};
use ppr_core::dp::{
    plan_chunks_interval, plan_chunks_monotone_with, plan_chunks_quadratic_with, ChunkScratch,
    CostModel,
};
use ppr_core::runs::RunLengths;
use ppr_mac::schemes::DeliveryScheme;
use ppr_phy::chips::ChipWords;
use ppr_phy::complex::Complex32;
use ppr_phy::frame_rx::ChipReceiver;
use ppr_phy::pulse::HalfSine;
use ppr_phy::simd::{DespreadKernel, DspKernel};
use ppr_phy::sova;
use ppr_sim::experiments::mesh::{run_mesh, MeshParams, MESH_BODY_BYTES};
use ppr_sim::network::{
    generate_timeline, process_receptions, process_receptions_timestep, process_receptions_tuned,
    RadioEnv, RxArm, SimConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Mean ns/iteration of `f`, measured over ~20 ms after one warm-up.
fn time_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let budget = std::time::Duration::from_millis(20);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        std::hint::black_box(f());
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut entries: Vec<(String, f64)> = Vec::new();

    for l in [1_000usize, 10_000, 100_000] {
        let chips: Vec<bool> = (0..l).map(|_| rng.gen()).collect();
        let packed = ChipWords::from_bools(&chips);
        for (regime, p) in [
            ("sparse_0.01", 0.01),
            ("collision_0.2", 0.2),
            ("jammed_0.5", 0.5),
        ] {
            let profile = ErrorProfile::uniform(l as u64, p);
            entries.push((
                format!("corrupt_bool_{regime}_{l}"),
                time_ns(|| corrupt_chips(&chips, &profile, &mut rng)),
            ));
            entries.push((
                format!("corrupt_packed_{regime}_{l}"),
                time_ns(|| corrupt_chip_words(&packed, &profile, &mut rng)),
            ));
            // The production shape since the feedback path went
            // allocation-free: clone a packed template, corrupt it in
            // place (the clone is a memcpy, not a per-chip rebuild).
            entries.push((
                format!("corrupt_packed_inplace_{regime}_{l}"),
                time_ns(|| {
                    let mut w = packed.clone();
                    corrupt_chip_words_in_place(&mut w, &profile, &mut rng);
                    w
                }),
            ));
        }
        let rx = ChipReceiver::default();
        entries.push((
            format!("despread_bool_{l}"),
            time_ns(|| rx.despread(&chips, 0, l / 32)),
        ));
        entries.push((
            format!("despread_packed_{l}"),
            time_ns(|| rx.despread_words(&packed, 0, l / 32)),
        ));
        // The bare codebook scan, kernel by kernel (gather excluded):
        // what the SIMD rewrite buys at each vector width this CPU has.
        let words: Vec<u32> = (0..l / 32).map(|s| packed.extract_u32(s * 32)).collect();
        for kernel in DespreadKernel::available() {
            let mut out = Vec::with_capacity(words.len());
            entries.push((
                format!("decide_{}_{l}", kernel.name()),
                time_ns(|| {
                    out.clear();
                    kernel.decide_into(&words, &mut out);
                }),
            ));
        }
    }

    let frame = ppr_mac::frame::Frame::new(1, 2, 3, vec![0xA7; 1500]);
    entries.push(("frame_chips_bool_1500B".into(), time_ns(|| frame.chips())));
    entries.push((
        "frame_chips_packed_1500B".into(),
        time_ns(|| frame.chip_words()),
    ));

    // Demand-driven decode: synchronizing a clean 1500 B frame now costs
    // only the header probe; the body despreads when a consumer reads
    // it. The three rows are sync-only, sync + packet-CRC check (header
    // through CRC field; replicated trailer never decoded), and a full
    // link-section read.
    {
        let words = frame.chip_words();
        let receiver = ppr_mac::rx::FrameReceiver::default();
        let data_start = ppr_phy::sync::tx_preamble_chips().len() as i64;
        entries.push((
            "decode_1500B_sync_only".into(),
            time_ns(|| receiver.decode_from_preamble_words(&words, data_start)),
        ));
        entries.push((
            "decode_1500B_crc_check".into(),
            time_ns(|| {
                let rx = receiver.decode_from_preamble_words(&words, data_start);
                rx.pkt_crc_ok()
            }),
        ));
        entries.push((
            "decode_1500B_full".into(),
            time_ns(|| {
                let rx = receiver.decode_from_preamble_words(&words, data_start);
                rx.link_bytes()
            }),
        ));
    }

    // Chunking-DP planner ladder (schema v3): the O(L³) interval
    // reference vs the O(L²)/O(L) partition planners on L evenly spaced
    // 3-unit bad runs. Two deliberate exceptions to the 20 ms/entry
    // budget: `plan_chunks_interval_L1024` runs one ~0.4 s iteration so
    // the trajectory records the baseline the partition planners are
    // measured against, and the interval DP is skipped entirely at
    // L = 4096 — it is cubic and would take tens of seconds per
    // iteration there, which is precisely the point of the ladder.
    {
        let mut scratch = ChunkScratch::new();
        for l in [128usize, 1024, 4096] {
            let total = (8 * l).max(1500);
            let mut labels = vec![true; total];
            for i in 0..l {
                let start = (i * total) / l;
                for lab in labels.iter_mut().skip(start).take(3) {
                    *lab = false;
                }
            }
            let rl = RunLengths::from_labels(&labels);
            let cost = CostModel::bytes(total);
            if l <= 1024 {
                entries.push((
                    format!("plan_chunks_interval_L{l}"),
                    time_ns(|| plan_chunks_interval(&rl, &cost)),
                ));
            }
            entries.push((
                format!("plan_chunks_quadratic_L{l}"),
                time_ns(|| plan_chunks_quadratic_with(&rl, &cost, &mut scratch).cost_bits),
            ));
            entries.push((
                format!("plan_chunks_monotone_L{l}"),
                time_ns(|| plan_chunks_monotone_with(&rl, &cost, &mut scratch).cost_bits),
            ));
        }
    }

    // CRC-32 over a 1500 B packet: the 1-table reference, the portable
    // slice-by-16 kernel, and the PCLMULQDQ folding kernel the packet
    // path dispatches to on CPUs that have it.
    {
        let buf: Vec<u8> = (0..1500).map(|_| rng.gen()).collect();
        entries.push((
            "crc32_table_1500B".into(),
            time_ns(|| ppr_mac::crc::crc32_1table(&buf)),
        ));
        entries.push((
            "crc32_slice16_1500B".into(),
            time_ns(|| ppr_mac::crc::crc32_slice16(&buf)),
        ));
        if ppr_mac::clmul::available() {
            entries.push((
                "crc32_clmul_1500B".into(),
                time_ns(|| ppr_mac::clmul::crc32_clmul(&buf)),
            ));
        }
    }

    // DSP kernel ladder: each vector tier this CPU offers against the
    // scalar reference, on the three kernels the sample-level pipeline
    // dispatches — transmitter superposition (axpy), the matched-filter
    // bank (demod), and the SOVA trellis.
    {
        let wave: Vec<Complex32> = (0..4096)
            .map(|_| Complex32 {
                re: rng.gen_range(-1.0f32..1.0),
                im: rng.gen_range(-1.0f32..1.0),
            })
            .collect();
        let rot = Complex32 { re: 0.6, im: -0.8 };
        let mut out = vec![Complex32 { re: 0.0, im: 0.0 }; wave.len()];
        for kernel in DspKernel::available() {
            entries.push((
                format!("dsp_axpy_{}_4096", kernel.name()),
                time_ns(|| kernel.axpy_rotated(&mut out, &wave, rot, 0.5)),
            ));
        }

        let sps = 4usize;
        let pulse = HalfSine::new(sps);
        let n_chips = 1000usize;
        let samples: Vec<Complex32> = (0..n_chips * sps + pulse.len())
            .map(|_| Complex32 {
                re: rng.gen_range(-1.0f32..1.0),
                im: rng.gen_range(-1.0f32..1.0),
            })
            .collect();
        for kernel in DspKernel::available() {
            let mut soft = Vec::with_capacity(n_chips);
            entries.push((
                format!("dsp_demod_{}_1000chips", kernel.name()),
                time_ns(|| {
                    soft.clear();
                    kernel.demod_full_windows(
                        &samples,
                        pulse.samples(),
                        pulse.energy(),
                        0,
                        sps,
                        n_chips,
                        true,
                        &mut soft,
                    );
                }),
            ));
        }

        let bits: Vec<bool> = (0..500).map(|_| rng.gen()).collect();
        let mut soft = sova::modulate_coded(&bits);
        for s in &mut soft {
            *s += rng.gen_range(-0.5f32..0.5);
        }
        for kernel in DspKernel::available() {
            entries.push((
                format!("dsp_sova_{}_500bits", kernel.name()),
                time_ns(|| kernel.sova_decode(&soft)),
            ));
        }
    }

    // Small end-to-end run through the parallel packed reception loop.
    let env = RadioEnv::new(1);
    let cfg = SimConfig {
        load_kbps: 13.8,
        body_bytes: 200,
        carrier_sense: false,
        duration_s: 2.0,
        seed: 42,
    };
    let timeline = generate_timeline(&env, &cfg);
    let arm = RxArm {
        scheme: DeliveryScheme::Ppr { eta: 6 },
        postamble: true,
        collect_symbols: false,
    };
    let t = Instant::now();
    let recs = process_receptions(&env, &cfg, &timeline, &arm);
    entries.push((
        "process_receptions_2s_ppr_ms".into(),
        t.elapsed().as_secs_f64() * 1e3,
    ));
    entries.push(("process_receptions_2s_count".into(), recs.len() as f64));

    // Driver × worker-count scaling: the event core against the pinned
    // time-stepped reference on the same timeline. On a 1-core
    // container the rows are flat — they exist so multi-core hosts
    // record the scaling trajectory under the same schema.
    for workers in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let e = process_receptions_tuned(&env, &cfg, &timeline, &arm, Some(workers), 8);
        entries.push((
            format!("recv_event_w{workers}_ms"),
            t.elapsed().as_secs_f64() * 1e3,
        ));
        let t = Instant::now();
        let s = process_receptions_timestep(&env, &cfg, &timeline, &arm, Some(workers));
        entries.push((
            format!("recv_timestep_w{workers}_ms"),
            t.elapsed().as_secs_f64() * 1e3,
        ));
        assert_eq!(e, s, "drivers diverged at {workers} workers");
    }

    // Dispatch batch tuning at the default worker count: how many
    // receptions each flush hands the fan-out.
    for batch in [4usize, 8, 16, 32] {
        let t = Instant::now();
        let r = process_receptions_tuned(&env, &cfg, &timeline, &arm, None, batch);
        entries.push((
            format!("recv_event_b{batch}_ms"),
            t.elapsed().as_secs_f64() * 1e3,
        ));
        assert_eq!(r.len(), recs.len());
    }

    // The event core at scale: the 10k-node mesh flood, measured.
    // events/sec here is the wall-clock figure the mesh10k experiment
    // deliberately does not compute for itself.
    {
        let params = MeshParams::benign(10_000, 12.0, 42, 6, MESH_BODY_BYTES);
        for workers in [1usize, 2, 4, 8] {
            let t = Instant::now();
            let s = run_mesh(&params, Some(workers));
            let wall = t.elapsed().as_secs_f64();
            entries.push((format!("mesh10k_w{workers}_ms"), wall * 1e3));
            entries.push((
                format!("mesh10k_w{workers}_events_per_sec"),
                s.events_dispatched as f64 / wall,
            ));
            if workers == 1 {
                entries.push(("mesh10k_events".into(), s.events_dispatched as f64));
                entries.push(("mesh10k_transmissions".into(), s.transmissions as f64));
                entries.push(("mesh10k_coverage".into(), s.coverage()));
                entries.push((
                    "mesh10k_sim_packets_per_sec".into(),
                    s.transmissions as f64 / s.sim_seconds().max(1e-9),
                ));
            }
        }
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"schema\": \"ppr-bench-packed/v5\",\n  \"threads\": {},\n  \"despread_kernel\": \"{}\",\n  \"dsp_kernel\": \"{}\",\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        DespreadKernel::active().name(),
        DspKernel::active().name()
    ));
    for (i, (name, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!("  \"{name}\": {v:.1}{sep}\n"));
        println!("{name:<40} {v:>14.1}");
    }
    json.push_str("}\n");
    std::fs::write("BENCH_packed.json", &json).expect("write BENCH_packed.json");
    println!("wrote BENCH_packed.json ({} entries)", entries.len());
}
