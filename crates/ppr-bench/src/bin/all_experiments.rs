//! Runs every experiment and prints the full report, ending with the
//! regenerated Table 1 summary.

use ppr_sim::experiments::{
    common::default_duration, fdr, fig03, fig13, fig14, fig15, fig16, mrd, relay, table1_summary,
    table2, throughput,
};

fn main() {
    let d = default_duration();
    ppr_bench::banner("ALL EXPERIMENTS");
    println!("simulated duration per run: {d} s (override with PPR_DURATION)\n");

    let data = fig03::collect(d);
    print!("{}", fig03::render(&data));
    println!();

    let rows = table2::collect(d);
    print!("{}", table2::render(&rows));
    println!();

    for (fig, load, cs) in [
        ("Figure 8", 3.5, true),
        ("Figure 9", 3.5, false),
        ("Figure 10", 13.8, false),
    ] {
        let curves = fdr::collect(load, cs, d);
        print!("{}", fdr::render(fig, load, cs, &curves));
        println!();
    }

    let curves = throughput::collect_fig11(6.9, d);
    print!("{}", throughput::render_fig11(6.9, &curves));
    println!();

    let points = throughput::collect_fig12(d);
    print!("{}", throughput::render_fig12(&points));
    println!();

    let anatomy = fig13::collect();
    print!("{}", fig13::render_anatomy(&anatomy));
    println!();

    let hist = fig14::collect(d);
    print!("{}", fig14::render(&hist));
    println!();

    let fa = fig15::collect(d);
    print!("{}", fig15::render(&fa));
    println!();

    let arq = fig16::collect(300);
    print!("{}", fig16::render(&arq));
    println!();

    let diversity = mrd::collect(d);
    print!("{}", mrd::render(&diversity));
    println!();

    let fwd = relay::collect(400, 200, 0xE20);
    print!("{}", relay::render(&fwd));
    println!();

    print!("{}", table1_summary(d.min(30.0)));
}
