//! Finer-grained probe: times each stage of one reception evaluation,
//! comparing the reference `&[bool]` chip pipeline against the packed
//! `ChipWords` fast path (which is bit-identical; see
//! `tests/packed_parity.rs`).
//!
//! Since the demand-driven despread landed, the two paths split the
//! receive-side work differently: the reference path decodes the whole
//! link section inside `receive`, while the packed path only probes the
//! header there and despreads the rest when the *consume* stage
//! (packet-CRC check + scheme delivery) reads it. The probe therefore
//! times `receive` and `consume` separately per path and compares
//! totals; parity asserts run outside the timed regions.

use ppr_channel::chip_channel::{corrupt_chip_words, corrupt_chips, ErrorProfile};
use ppr_channel::overlap::{interference_profile, HeardTx};
use ppr_mac::frame::Frame;
use ppr_mac::schemes::DeliveryScheme;
use ppr_phy::chips::ChipWords;
use ppr_phy::simd::DespreadKernel;
use ppr_sim::experiments::common::CapacityRun;
use ppr_sim::network::{build_body_padded, payload_pattern};
use ppr_sim::rxpath::FastRx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

#[derive(Default)]
struct Stages {
    chips: f64,
    corrupt: f64,
    rx: f64,
    consume: f64,
}

fn main() {
    let run = CapacityRun::new(13.8, false, 5.0);
    let env = &run.env;
    let noise = env.model.noise_mw();
    let scheme = DeliveryScheme::Ppr { eta: 6 };
    let fast = FastRx::new(true);
    let r = 0usize;

    let heard: Vec<HeardTx> = run
        .timeline
        .iter()
        .map(|tx| HeardTx {
            id: tx.id,
            start_chip: tx.start_chip,
            len_chips: tx.len_chips,
            power_mw: env.s2r_mw[tx.sender][r],
        })
        .collect();

    let (mut t_pattern, mut t_frame, mut t_profile) = (0.0f64, 0.0, 0.0);
    let mut reference = Stages::default();
    let mut packed = Stages::default();
    let mut n = 0;
    for (i, tx) in run.timeline.iter().enumerate().take(60) {
        let signal = env.s2r_mw[tx.sender][r];
        if signal / noise < 0.16 {
            continue;
        }
        n += 1;
        let t = Instant::now();
        let payload = payload_pattern(tx.sender, tx.seq, scheme.payload_len(1500));
        t_pattern += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let body = build_body_padded(&scheme, &payload, 1500);
        let frame = Frame::new(r as u16, tx.sender as u16, tx.seq, body);
        t_frame += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let spans = interference_profile(&heard[i], &heard);
        let profile = ErrorProfile::from_interference(signal, noise, &spans);
        t_profile += t.elapsed().as_secs_f64();

        // Reference path: Vec<bool> end to end (eager decode in rx).
        let t = Instant::now();
        let chips = frame.chips();
        reference.chips += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let mut rng = StdRng::seed_from_u64(tx.id);
        let corrupted = corrupt_chips(&chips, &profile, &mut rng);
        reference.corrupt += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let (_acq, rx_frame) = fast.receive(&frame, &corrupted, true);
        reference.rx += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let mut delivered_ref = 0usize;
        if let Some(rx) = &rx_frame {
            delivered_ref = scheme.deliver(rx).len();
            let _ = rx.pkt_crc_ok();
        }
        reference.consume += t.elapsed().as_secs_f64();

        // Packed path: ChipWords end to end (identical RNG stream);
        // despread deferred to the consume stage.
        let t = Instant::now();
        let words = frame.chip_words();
        packed.chips += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let mut rng = StdRng::seed_from_u64(tx.id);
        let corrupted_words = corrupt_chip_words(&words, &profile, &mut rng);
        packed.corrupt += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let (_acq_w, rx_frame_w) = fast.receive_words(&frame, &corrupted_words, true);
        packed.rx += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let mut delivered_packed = 0usize;
        if let Some(rx) = &rx_frame_w {
            delivered_packed = scheme.deliver(rx).len();
            let _ = rx.pkt_crc_ok();
        }
        packed.consume += t.elapsed().as_secs_f64();

        // Parity checks, outside every timed region.
        assert_eq!(corrupted_words, ChipWords::from_bools(&corrupted));
        assert_eq!(rx_frame, rx_frame_w);
        assert_eq!(delivered_ref, delivered_packed);
    }
    println!(
        "despread kernel: {} (set PPR_NO_SIMD=1 for scalar)",
        DespreadKernel::active().name()
    );
    println!("over {n} receptions (ms total):");
    for (name, v) in [
        ("payload_pattern", t_pattern),
        ("frame build", t_frame),
        ("profile", t_profile),
    ] {
        println!("  {name:<16} {:8.1}", v * 1000.0);
    }
    println!("chip stages, reference (bool) vs packed (ChipWords):");
    let mut total_ref = 0.0;
    let mut total_packed = 0.0;
    for (name, a, b) in [
        ("chips", reference.chips, packed.chips),
        ("corrupt", reference.corrupt, packed.corrupt),
        ("receive", reference.rx, packed.rx),
        ("consume", reference.consume, packed.consume),
    ] {
        println!(
            "  {name:<16} {:8.1} → {:8.1}   ({:4.1}×)",
            a * 1000.0,
            b * 1000.0,
            a / b.max(1e-12)
        );
        total_ref += a;
        total_packed += b;
    }
    println!(
        "  {:<16} {:8.1} → {:8.1}   ({:4.1}×)",
        "TOTAL",
        total_ref * 1000.0,
        total_packed * 1000.0,
        total_ref / total_packed.max(1e-12)
    );
}
