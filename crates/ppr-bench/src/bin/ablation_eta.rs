//! Ablation: sweep of the SoftPHY threshold η.
//!
//! For each η, reports the PPR scheme's delivered goodput plus the
//! miss / false-alarm trade-off — the quantitative justification for the
//! paper's η = 6 (misses are what break correctness; false alarms only
//! cost one codeword of retransmission each).

use ppr_mac::schemes::DeliveryScheme;
use ppr_sim::experiments::common::{fdr_cdf, CapacityRun};
use ppr_sim::metrics::HintHistogram;
use ppr_sim::network::RxArm;
use ppr_sim::report::{fmt, Table};
use ppr_sim::scenario::ScenarioBuilder;

fn main() {
    ppr_bench::banner("Ablation: SoftPHY threshold eta sweep");
    let scenario = ScenarioBuilder::new().build();
    let run = CapacityRun::from_scenario(&scenario, 13.8, false);

    // Hint statistics are threshold-independent: collect once.
    let stats_arm = RxArm {
        scheme: DeliveryScheme::Ppr { eta: 6 },
        postamble: true,
        collect_symbols: true,
    };
    let mut hist = HintHistogram::new();
    for rec in run.receptions(&stats_arm) {
        for (&h, &c) in rec.symbol_hints.iter().zip(&rec.symbol_correct) {
            hist.record(h, c);
        }
    }

    let mut t = Table::new(&[
        "eta",
        "median FDR",
        "miss rate",
        "false alarms",
        "claimed-but-wrong frac",
    ]);
    for eta in [0u8, 2, 4, 6, 8, 10, 12, 16] {
        let arm = RxArm {
            scheme: DeliveryScheme::Ppr { eta },
            postamble: true,
            collect_symbols: false,
        };
        let recs = run.receptions(&arm);
        let cdf = fdr_cdf(&run.env, &recs, run.cfg.body_bytes);
        let claimed: usize = recs.iter().map(|r| r.delivered_claimed).sum();
        let correct: usize = recs.iter().map(|r| r.delivered_correct).sum();
        let wrong_frac = if claimed > 0 {
            (claimed - correct) as f64 / claimed as f64
        } else {
            f64::NAN
        };
        t.row(&[
            eta.to_string(),
            fmt(cdf.median()),
            fmt(hist.miss_rate(eta)),
            fmt(hist.false_alarm_rate(eta)),
            fmt(wrong_frac),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nExpected: FDR rises with eta then flattens; miss rate grows with\n\
         eta while false alarms shrink — eta=6 balances them (paper 3.2)."
    );
}
