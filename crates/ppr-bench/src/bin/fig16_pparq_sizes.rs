//! Figure 16: PP-ARQ partial-retransmission size distribution.

use ppr_sim::experiments::fig16;

fn main() {
    ppr_bench::banner("Figure 16: PP-ARQ retransmission sizes");
    let run = fig16::collect(300);
    print!("{}", fig16::render(&run));
}
