//! Stage-by-stage timing probe for the simulator's hot path. Not a paper
//! experiment — a development tool for keeping the experiment binaries'
//! runtime sane.

use ppr_mac::schemes::DeliveryScheme;
use ppr_sim::experiments::common::CapacityRun;
use ppr_sim::network::RxArm;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let run = CapacityRun::new(13.8, false, 5.0);
    println!("timeline: {} txs in {:?}", run.timeline.len(), t0.elapsed());

    for (name, arm) in [
        (
            "ppr+post",
            RxArm {
                scheme: DeliveryScheme::Ppr { eta: 6 },
                postamble: true,
                collect_symbols: false,
            },
        ),
        (
            "pkt+nopost",
            RxArm {
                scheme: DeliveryScheme::PacketCrc,
                postamble: false,
                collect_symbols: false,
            },
        ),
        (
            "frag+post",
            RxArm {
                scheme: DeliveryScheme::FragmentedCrc { frag_payload: 50 },
                postamble: true,
                collect_symbols: false,
            },
        ),
    ] {
        let t = Instant::now();
        let recs = run.receptions(&arm);
        println!("{name}: {} receptions in {:?}", recs.len(), t.elapsed());
    }
}
