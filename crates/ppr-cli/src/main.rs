//! `ppr-cli` — the single driver for every paper experiment.
//!
//! ```text
//! ppr-cli --list                          # what can run
//! ppr-cli run fig10                       # one experiment, text report
//! ppr-cli run --all                       # everything, registry order
//! ppr-cli run fig10 --set duration=20     # scenario overrides
//! ppr-cli run fig10 --set load=3.5,6.9,13.8 --json out/
//!                                         # sweep: one run + one JSON
//!                                         # file per parameter point
//! ```
//!
//! Comma-separated `--set` values sweep the cartesian product of all
//! swept keys; every point runs the selected experiments under its own
//! [`Scenario`]. `--json DIR` writes one self-describing JSON document
//! per (experiment, point) next to the text output.
//!
//! Exit status: 0 on success, 2 on usage errors (unknown id, malformed
//! `--set`, unknown flag).

use ppr_sim::experiments::{find, registry, Experiment};
use ppr_sim::results::ExperimentResult;
use ppr_sim::scenario::{Scenario, ScenarioBuilder, SCENARIO_KEYS};

/// Usage text printed by `--help` and on argument errors.
const USAGE: &str = "\
usage:
  ppr-cli --list                     list registered experiments
  ppr-cli run <id>... [options]      run experiments by id
  ppr-cli run --all [options]        run the full registry

options:
  --set key=value[,value...]         scenario override; comma-separated
                                     values sweep the cartesian product
  --json DIR                         write one JSON result per
                                     (experiment, sweep point) into DIR
  --help                             this text

scenario keys (builder > env > default):";

fn print_usage(mut to: impl std::io::Write) {
    let _ = writeln!(to, "{USAGE}");
    for (key, help) in SCENARIO_KEYS {
        let _ = writeln!(to, "  {key:<14} {help}");
    }
}

/// Prints the standard experiment banner (the format the historical
/// per-figure binaries used).
fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("PPR reproduction — {title}");
    println!("{}", "=".repeat(72));
}

struct RunArgs {
    ids: Vec<String>,
    all: bool,
    sets: Vec<(String, Vec<String>)>,
    json_dir: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(real_main(&args));
}

fn real_main(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        None => {
            print_usage(std::io::stderr());
            2
        }
        Some("--help") | Some("-h") => {
            print_usage(std::io::stdout());
            0
        }
        Some("--list") | Some("list") => {
            list();
            0
        }
        Some("run") => match parse_run_args(&args[1..]) {
            Ok(run_args) => run(&run_args),
            Err(e) => {
                eprintln!("error: {e}\n");
                print_usage(std::io::stderr());
                2
            }
        },
        Some(other) => {
            eprintln!("error: unknown command {other:?}\n");
            print_usage(std::io::stderr());
            2
        }
    }
}

fn list() {
    let mut t = ppr_sim::report::Table::new(&["id", "paper ref", "description"]);
    for exp in registry() {
        t.row(&[
            exp.id().to_string(),
            exp.paper_ref().to_string(),
            exp.description().to_string(),
        ]);
    }
    print!("{}", t.render());
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs {
        ids: Vec::new(),
        all: false,
        sets: Vec::new(),
        json_dir: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => out.all = true,
            "--set" => {
                let kv = args
                    .get(i + 1)
                    .ok_or_else(|| "--set needs a key=value argument".to_string())?;
                let (key, values) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("malformed --set {kv:?} (want key=value)"))?;
                if key.trim().is_empty() || values.trim().is_empty() {
                    return Err(format!("malformed --set {kv:?} (want key=value)"));
                }
                let values: Vec<String> = values.split(',').map(|v| v.to_string()).collect();
                // Validate every value now so a sweep fails before any
                // simulation time is spent.
                let mut probe = ScenarioBuilder::new();
                for v in &values {
                    probe.set(key, v)?;
                }
                out.sets.push((key.to_string(), values));
            }
            "--json" => {
                let dir = args
                    .get(i + 1)
                    .ok_or_else(|| "--json needs a directory argument".to_string())?;
                out.json_dir = Some(dir.clone());
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            id => {
                find(id).ok_or_else(|| {
                    let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
                    format!(
                        "unknown experiment {id:?}; registered ids: {}",
                        ids.join(", ")
                    )
                })?;
                out.ids.push(id.to_string());
            }
        }
        i += match args[i].as_str() {
            "--set" | "--json" => 2,
            _ => 1,
        };
    }
    if !out.all && out.ids.is_empty() {
        return Err("nothing to run: give experiment ids or --all".to_string());
    }
    if out.all && !out.ids.is_empty() {
        return Err("--all and explicit ids are mutually exclusive".to_string());
    }
    Ok(out)
}

/// The cartesian product of all swept keys, as per-point key=value
/// assignments (a single point with no assignments when nothing is
/// swept).
fn sweep_points(sets: &[(String, Vec<String>)]) -> Vec<Vec<(String, String)>> {
    let mut points: Vec<Vec<(String, String)>> = vec![Vec::new()];
    for (key, values) in sets {
        let mut next = Vec::with_capacity(points.len() * values.len());
        for point in &points {
            for v in values {
                let mut p = point.clone();
                p.push((key.clone(), v.clone()));
                next.push(p);
            }
        }
        points = next;
    }
    points
}

fn scenario_for(point: &[(String, String)]) -> Result<Scenario, String> {
    let mut b = ScenarioBuilder::new();
    for (k, v) in point {
        b.set(k, v)?;
    }
    Ok(b.build())
}

/// The swept keys' assignments for one point — the sweep-point label
/// and JSON filename suffix.
fn point_label(point: &[(String, String)], sets: &[(String, Vec<String>)]) -> String {
    point
        .iter()
        .filter(|(k, _)| {
            sets.iter()
                .any(|(key, values)| key == k && values.len() > 1)
        })
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join("__")
}

fn run(args: &RunArgs) -> i32 {
    let selected: Vec<&'static dyn Experiment> = if args.all {
        registry().to_vec()
    } else {
        args.ids
            .iter()
            .map(|id| find(id).expect("validated during parse"))
            .collect()
    };

    if let Some(dir) = &args.json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create --json directory {dir:?}: {e}");
            return 1;
        }
    }

    let points = sweep_points(&args.sets);
    let multi_point = points.len() > 1;
    for (p, point) in points.iter().enumerate() {
        let scenario = match scenario_for(point) {
            Ok(s) => s,
            Err(e) => {
                // Unreachable in practice: values were validated during
                // argument parsing.
                eprintln!("error: {e}");
                return 2;
            }
        };
        let label = point_label(point, &args.sets);
        if multi_point {
            if p > 0 {
                println!();
            }
            println!("### sweep point {}/{}: {label}", p + 1, points.len());
            println!();
        }
        if args.all {
            banner("ALL EXPERIMENTS");
            println!(
                "simulated duration per run: {} s (override with PPR_DURATION)\n",
                scenario.duration_s
            );
        }
        let mut results: Vec<ExperimentResult> = Vec::with_capacity(selected.len());
        for (i, exp) in selected.iter().enumerate() {
            if i > 0 {
                println!();
            }
            if !args.all {
                banner(exp.title());
            }
            let result = exp.run_with(&scenario, &results);
            print!("{}", result.render_text());
            if let Some(dir) = &args.json_dir {
                let file = if label.is_empty() {
                    format!("{}.json", result.id)
                } else {
                    format!("{}__{label}.json", result.id)
                };
                let path = std::path::Path::new(dir).join(file);
                if let Err(e) = std::fs::write(&path, result.to_json().render()) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return 1;
                }
            }
            results.push(result);
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_build_the_cartesian_product() {
        let sets = vec![
            ("load".to_string(), vec!["3.5".into(), "13.8".into()]),
            ("eta".to_string(), vec!["6".into()]),
            ("seed".to_string(), vec!["1".into(), "2".into()]),
        ];
        let points = sweep_points(&sets);
        assert_eq!(points.len(), 4);
        // Every point carries all three keys; only swept keys label it.
        for p in &points {
            assert_eq!(p.len(), 3);
            let label = point_label(p, &sets);
            assert!(label.contains("load="));
            assert!(!label.contains("eta="));
            assert!(label.contains("seed="));
        }
    }

    #[test]
    fn run_args_reject_unknown_and_malformed_input() {
        for bad in [
            vec!["nonexistent".to_string()],
            vec!["--set".to_string()],
            vec!["fig03".to_string(), "--set".to_string(), "load".to_string()],
            vec![
                "fig03".to_string(),
                "--set".to_string(),
                "load=abc".to_string(),
            ],
            vec![
                "fig03".to_string(),
                "--set".to_string(),
                "bogus_key=1".to_string(),
            ],
            vec!["--frobnicate".to_string()],
            vec![],
        ] {
            assert!(parse_run_args(&bad).is_err(), "{bad:?} must be rejected");
        }
        let ok = parse_run_args(&[
            "fig03".to_string(),
            "--set".to_string(),
            "load=3.5,6.9".to_string(),
            "--json".to_string(),
            "out".to_string(),
        ])
        .unwrap();
        assert_eq!(ok.ids, vec!["fig03"]);
        assert_eq!(ok.sets.len(), 1);
        assert_eq!(ok.json_dir.as_deref(), Some("out"));
    }
}
