//! `ppr-cli` — the single driver for every paper experiment.
//!
//! ```text
//! ppr-cli --list                          # what can run
//! ppr-cli run fig10                       # one experiment, text report
//! ppr-cli run --all                       # everything, registry order
//! ppr-cli run fig10 --set duration=20     # scenario overrides
//! ppr-cli run fig10 --set load=3.5,6.9,13.8 --json out/
//!                                         # sweep: one run + one JSON
//!                                         # file per parameter point
//! ```
//!
//! Comma-separated `--set` values sweep the cartesian product of all
//! swept keys; every point runs the selected experiments under its own
//! [`Scenario`]. `--json DIR` writes one self-describing JSON document
//! per (experiment, point) next to the text output.
//!
//! `ppr-cli diff` is the differential harness: each selected experiment
//! runs under every driver × checkpoint combination and the rendered
//! reports are compared byte for byte; one reception checkpoint is then
//! restored under every reception backend and the streams diffed event
//! by event (`ppr_sim::diff`). Any disagreement exits 1 and — with
//! `--json DIR` — writes a first-divergence report.
//!
//! Exit status: 0 on success, 1 on divergence, 2 on usage errors
//! (unknown id, malformed `--set`, unknown flag).

use ppr_sim::adversary::JammerSpec;
use ppr_sim::diff::{active_kernel_signature, cross_validate, standard_backends};
use ppr_sim::experiments::common::CapacityRun;
use ppr_sim::experiments::mesh::{run_mesh, MeshDriver, MeshParams};
use ppr_sim::experiments::{find, registry, Experiment};
use ppr_sim::network::{snapshot_after_events, RxArm};
use ppr_sim::results::{fingerprint, ExperimentResult, Json};
use ppr_sim::scenario::{Driver, Scenario, ScenarioBuilder, SCENARIO_KEYS};
use ppr_sim::snapshot::{MeshSnapshot, RxSnapshot};

/// Usage text printed by `--help` and on argument errors.
const USAGE: &str = "\
usage:
  ppr-cli --list                     list registered experiments
  ppr-cli run <id>... [options]      run experiments by id
  ppr-cli run --all [options]        run the full registry
  ppr-cli diff <id>... [options]     cross-validate experiments across
  ppr-cli diff --all [options]       drivers, checkpoints and backends

options:
  --set key=value[,value...]         scenario override; comma-separated
                                     values sweep the cartesian product
  --json DIR                         write one JSON result per
                                     (experiment, sweep point) into DIR
                                     (for diff: the divergence report)
  --help                             this text

scenario keys (builder > env > default):";

fn print_usage(mut to: impl std::io::Write) {
    let _ = writeln!(to, "{USAGE}");
    for (key, help) in SCENARIO_KEYS {
        let _ = writeln!(to, "  {key:<14} {help}");
    }
}

/// Prints the standard experiment banner (the format the historical
/// per-figure binaries used).
fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("PPR reproduction — {title}");
    println!("{}", "=".repeat(72));
}

struct RunArgs {
    ids: Vec<String>,
    all: bool,
    sets: Vec<(String, Vec<String>)>,
    json_dir: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(real_main(&args));
}

fn real_main(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        None => {
            print_usage(std::io::stderr());
            2
        }
        Some("--help") | Some("-h") => {
            print_usage(std::io::stdout());
            0
        }
        Some("--list") | Some("list") => {
            list();
            0
        }
        Some("run") => match parse_run_args(&args[1..]) {
            Ok(run_args) => run(&run_args),
            Err(e) => {
                eprintln!("error: {e}\n");
                print_usage(std::io::stderr());
                2
            }
        },
        Some("diff") => match parse_run_args(&args[1..]) {
            Ok(run_args) => diff(&run_args),
            Err(e) => {
                eprintln!("error: {e}\n");
                print_usage(std::io::stderr());
                2
            }
        },
        Some(other) => {
            eprintln!("error: unknown command {other:?}\n");
            print_usage(std::io::stderr());
            2
        }
    }
}

fn list() {
    let mut t = ppr_sim::report::Table::new(&["id", "paper ref", "description"]);
    for exp in registry() {
        t.row(&[
            exp.id().to_string(),
            exp.paper_ref().to_string(),
            exp.description().to_string(),
        ]);
    }
    print!("{}", t.render());
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs {
        ids: Vec::new(),
        all: false,
        sets: Vec::new(),
        json_dir: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => out.all = true,
            "--set" => {
                let kv = args
                    .get(i + 1)
                    .ok_or_else(|| "--set needs a key=value argument".to_string())?;
                let (key, values) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("malformed --set {kv:?} (want key=value)"))?;
                if key.trim().is_empty() || values.trim().is_empty() {
                    return Err(format!("malformed --set {kv:?} (want key=value)"));
                }
                let values: Vec<String> = values.split(',').map(|v| v.to_string()).collect();
                // Validate every value now so a sweep fails before any
                // simulation time is spent.
                let mut probe = ScenarioBuilder::new();
                for v in &values {
                    probe.set(key, v)?;
                }
                out.sets.push((key.to_string(), values));
            }
            "--json" => {
                let dir = args
                    .get(i + 1)
                    .ok_or_else(|| "--json needs a directory argument".to_string())?;
                out.json_dir = Some(dir.clone());
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            id => {
                find(id).ok_or_else(|| {
                    let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
                    format!(
                        "unknown experiment {id:?}; registered ids: {}",
                        ids.join(", ")
                    )
                })?;
                out.ids.push(id.to_string());
            }
        }
        i += match args[i].as_str() {
            "--set" | "--json" => 2,
            _ => 1,
        };
    }
    if !out.all && out.ids.is_empty() {
        return Err("nothing to run: give experiment ids or --all".to_string());
    }
    if out.all && !out.ids.is_empty() {
        return Err("--all and explicit ids are mutually exclusive".to_string());
    }
    Ok(out)
}

/// The cartesian product of all swept keys, as per-point key=value
/// assignments (a single point with no assignments when nothing is
/// swept).
fn sweep_points(sets: &[(String, Vec<String>)]) -> Vec<Vec<(String, String)>> {
    let mut points: Vec<Vec<(String, String)>> = vec![Vec::new()];
    for (key, values) in sets {
        let mut next = Vec::with_capacity(points.len() * values.len());
        for point in &points {
            for v in values {
                let mut p = point.clone();
                p.push((key.clone(), v.clone()));
                next.push(p);
            }
        }
        points = next;
    }
    points
}

fn scenario_for(point: &[(String, String)]) -> Result<Scenario, String> {
    let mut b = ScenarioBuilder::new();
    for (k, v) in point {
        b.set(k, v)?;
    }
    Ok(b.build())
}

/// The swept keys' assignments for one point — the sweep-point label
/// and JSON filename suffix.
fn point_label(point: &[(String, String)], sets: &[(String, Vec<String>)]) -> String {
    point
        .iter()
        .filter(|(k, _)| {
            sets.iter()
                .any(|(key, values)| key == k && values.len() > 1)
        })
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join("__")
}

fn run(args: &RunArgs) -> i32 {
    let selected: Vec<&'static dyn Experiment> = if args.all {
        registry().to_vec()
    } else {
        args.ids
            .iter()
            .map(|id| find(id).expect("validated during parse"))
            .collect()
    };

    if let Some(dir) = &args.json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create --json directory {dir:?}: {e}");
            return 1;
        }
    }

    let points = sweep_points(&args.sets);
    let multi_point = points.len() > 1;
    for (p, point) in points.iter().enumerate() {
        let scenario = match scenario_for(point) {
            Ok(s) => s,
            Err(e) => {
                // Unreachable in practice: values were validated during
                // argument parsing.
                eprintln!("error: {e}");
                return 2;
            }
        };
        let label = point_label(point, &args.sets);
        if multi_point {
            if p > 0 {
                println!();
            }
            println!("### sweep point {}/{}: {label}", p + 1, points.len());
            println!();
        }
        if args.all {
            banner("ALL EXPERIMENTS");
            println!(
                "simulated duration per run: {} s (override with PPR_DURATION)\n",
                scenario.duration_s
            );
        }
        let mut results: Vec<ExperimentResult> = Vec::with_capacity(selected.len());
        for (i, exp) in selected.iter().enumerate() {
            if i > 0 {
                println!();
            }
            if !args.all {
                banner(exp.title());
            }
            let result = exp.run_with(&scenario, &results);
            print!("{}", result.render_text());
            if let Some(dir) = &args.json_dir {
                let file = if label.is_empty() {
                    format!("{}.json", result.id)
                } else {
                    format!("{}__{label}.json", result.id)
                };
                let path = std::path::Path::new(dir).join(file);
                if let Err(e) = std::fs::write(&path, result.to_json().render()) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return 1;
                }
            }
            results.push(result);
        }
    }
    0
}

/// Default checkpoint epoch for `diff` when the scenario does not pin
/// one (`--set checkpoint=N`): early enough that every short run still
/// has work left after the restore, late enough that in-flight state
/// exists when it is taken.
const DIFF_DEFAULT_CHECKPOINT: u64 = 200;

/// The driver × checkpoint combinations the experiment-level pass runs;
/// the first is the baseline.
fn diff_variants(base: &Scenario, checkpoint: u64) -> Vec<(&'static str, Scenario)> {
    [
        ("event", Driver::Event, None),
        ("event+checkpoint", Driver::Event, Some(checkpoint)),
        ("timestep", Driver::Timestep, None),
        ("timestep+checkpoint", Driver::Timestep, Some(checkpoint)),
    ]
    .into_iter()
    .map(|(name, driver, checkpoint)| {
        let mut sc = base.clone();
        sc.driver = driver;
        sc.checkpoint = checkpoint;
        (name, sc)
    })
    .collect()
}

/// The adversarial mesh the `diff` fleet validates: 300 nodes under a
/// reactive jammer with churn and a ×1.5 backoff ladder, seeded from
/// the scenario so `--set seed=` varies the whole pass.
fn jammed_mesh_params(base: &Scenario) -> MeshParams {
    let mut p = MeshParams::benign(300, 12.0, base.seed, base.eta, 250);
    p.jammer = JammerSpec::React { delay: 4096 };
    p.churn = 2.0;
    p.arq_backoff_milli = 1500;
    p
}

fn diff(args: &RunArgs) -> i32 {
    let selected: Vec<&'static dyn Experiment> = if args.all {
        registry().to_vec()
    } else {
        args.ids
            .iter()
            .map(|id| find(id).expect("validated during parse"))
            .collect()
    };
    if let Some(dir) = &args.json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create --json directory {dir:?}: {e}");
            return 1;
        }
    }

    let points = sweep_points(&args.sets);
    let mut failures: Vec<Json> = Vec::new();
    let mut stream_rows: Vec<Json> = Vec::new();
    for (p, point) in points.iter().enumerate() {
        let base = match scenario_for(point) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        };
        let label = point_label(point, &args.sets);
        if points.len() > 1 {
            if p > 0 {
                println!();
            }
            println!("### sweep point {}/{}: {label}", p + 1, points.len());
        }
        let checkpoint = base.checkpoint.unwrap_or(DIFF_DEFAULT_CHECKPOINT);
        println!(
            "kernel: {}   checkpoint: {checkpoint} events",
            active_kernel_signature()
        );
        println!();

        // Experiment-level pass: every selected experiment under every
        // driver × checkpoint combination; the rendered reports must be
        // byte-identical.
        let mut t = ppr_sim::report::Table::new(&[
            "experiment",
            "event+checkpoint",
            "timestep",
            "timestep+checkpoint",
        ]);
        for exp in &selected {
            let variants = diff_variants(&base, checkpoint);
            let baseline = exp.run(&variants[0].1).render_text();
            let mut row = vec![exp.id().to_string()];
            for (name, sc) in &variants[1..] {
                let agree = exp.run(sc).render_text() == baseline;
                row.push(if agree { "ok" } else { "DIVERGED" }.to_string());
                if !agree {
                    failures.push(Json::Obj(vec![
                        ("experiment".into(), Json::str(exp.id())),
                        ("variant".into(), Json::str(*name)),
                        ("point".into(), Json::str(&label)),
                    ]));
                }
            }
            t.row(&row);
        }
        print!("{}", t.render());
        println!();

        // Stream-level pass: one reception checkpoint, restored under
        // every backend, streams diffed event by event.
        let mut event_base = base.clone();
        event_base.driver = Driver::Event;
        event_base.checkpoint = None;
        let run = CapacityRun::from_scenario(&event_base, 13.8, false);
        let arm = RxArm {
            scheme: base.ppr_scheme(),
            postamble: true,
            collect_symbols: false,
        };
        let bytes = snapshot_after_events(
            &run.env,
            &run.cfg,
            &run.timeline,
            &arm,
            base.threads,
            checkpoint,
        );
        let snap = match RxSnapshot::from_bytes(&bytes) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: reception snapshot does not round-trip: {e}");
                return 1;
            }
        };
        let reports = match cross_validate(
            &run.env,
            &run.cfg,
            &run.timeline,
            &arm,
            &snap,
            &standard_backends(),
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: checkpoint restore failed: {e}");
                return 1;
            }
        };
        let mut t = ppr_sim::report::Table::new(&["backend", "stream fingerprint", "vs baseline"]);
        for report in &reports {
            let verdict = match &report.divergence {
                None => "ok".to_string(),
                Some(d) => format!("DIVERGED: {d}"),
            };
            t.row(&[
                report.label.clone(),
                format!("{:016x}", report.stream_fp),
                verdict,
            ]);
            let mut fields = vec![
                ("backend".into(), Json::str(&report.label)),
                (
                    "stream_fingerprint".into(),
                    Json::str(format!("{:016x}", report.stream_fp)),
                ),
                ("point".into(), Json::str(&label)),
            ];
            if let Some(d) = &report.divergence {
                fields.push((
                    "first_divergence".into(),
                    Json::Obj(vec![
                        ("index".into(), Json::int(d.index as u64)),
                        ("tx_id".into(), Json::int(d.tx_id)),
                        ("sender".into(), Json::int(d.sender as u64)),
                        ("receiver".into(), Json::int(d.receiver as u64)),
                        ("end_chip".into(), Json::int(d.end_chip)),
                        ("field".into(), Json::str(d.field)),
                        ("baseline".into(), Json::str(&d.left)),
                        ("candidate".into(), Json::str(&d.right)),
                    ]),
                ));
                failures.push(Json::Obj(vec![
                    ("backend".into(), Json::str(&report.label)),
                    ("point".into(), Json::str(&label)),
                    ("divergence".into(), Json::str(d.to_string())),
                ]));
            }
            stream_rows.push(Json::Obj(fields));
        }
        print!("{}", t.render());
        println!();

        // Jammed-mesh pass: one frozen adversarial mesh checkpoint
        // (reactive jammer + churn + exponential backoff), restored
        // across the worker fleet and an extra serialize/parse leg.
        // Small on purpose — the point is fleet agreement, not scale.
        let mesh_params = jammed_mesh_params(&base);
        let reference = run_mesh(&mesh_params, Some(1));
        let reference_fp = fingerprint(format!("{reference:?}").as_bytes());
        let mut driver = MeshDriver::new(&mesh_params, Some(1));
        driver.run_events(checkpoint);
        let snap_bytes = driver.save().to_bytes();
        let snap = match MeshSnapshot::from_bytes(&snap_bytes) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: jammed mesh snapshot does not round-trip: {e}");
                return 1;
            }
        };
        let mut t =
            ppr_sim::report::Table::new(&["jammed mesh", "stats fingerprint", "vs baseline"]);
        t.row(&[
            "baseline w1".to_string(),
            format!("{reference_fp:016x}"),
            "ok".to_string(),
        ]);
        for workers in [1usize, 2, 4, 8] {
            let resumed = match MeshDriver::restore(&mesh_params, Some(workers), &snap) {
                Ok(d) => d.run_to_end(),
                Err(e) => {
                    eprintln!("error: jammed mesh checkpoint restore failed: {e}");
                    return 1;
                }
            };
            let fp = fingerprint(format!("{resumed:?}").as_bytes());
            let agree = resumed == reference;
            t.row(&[
                format!("resume w{workers}"),
                format!("{fp:016x}"),
                if agree { "ok" } else { "DIVERGED" }.to_string(),
            ]);
            if !agree {
                failures.push(Json::Obj(vec![
                    ("jammed_mesh_workers".into(), Json::int(workers as u64)),
                    ("point".into(), Json::str(&label)),
                ]));
            }
        }
        print!("{}", t.render());
    }

    let diverged = !failures.is_empty();
    if let Some(dir) = &args.json_dir {
        let report = Json::Obj(vec![
            ("kernel".into(), Json::str(active_kernel_signature())),
            ("diverged".into(), Json::Bool(diverged)),
            ("failures".into(), Json::Arr(failures)),
            ("streams".into(), Json::Arr(stream_rows)),
        ]);
        let path = std::path::Path::new(dir).join("diff_report.json");
        if let Err(e) = std::fs::write(&path, report.render()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return 1;
        }
    }
    if diverged {
        eprintln!("error: differential run diverged");
        1
    } else {
        println!("\nall combinations agree");
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_build_the_cartesian_product() {
        let sets = vec![
            ("load".to_string(), vec!["3.5".into(), "13.8".into()]),
            ("eta".to_string(), vec!["6".into()]),
            ("seed".to_string(), vec!["1".into(), "2".into()]),
        ];
        let points = sweep_points(&sets);
        assert_eq!(points.len(), 4);
        // Every point carries all three keys; only swept keys label it.
        for p in &points {
            assert_eq!(p.len(), 3);
            let label = point_label(p, &sets);
            assert!(label.contains("load="));
            assert!(!label.contains("eta="));
            assert!(label.contains("seed="));
        }
    }

    #[test]
    fn run_args_reject_unknown_and_malformed_input() {
        for bad in [
            vec!["nonexistent".to_string()],
            vec!["--set".to_string()],
            vec!["fig03".to_string(), "--set".to_string(), "load".to_string()],
            vec![
                "fig03".to_string(),
                "--set".to_string(),
                "load=abc".to_string(),
            ],
            vec![
                "fig03".to_string(),
                "--set".to_string(),
                "bogus_key=1".to_string(),
            ],
            vec!["--frobnicate".to_string()],
            vec![],
        ] {
            assert!(parse_run_args(&bad).is_err(), "{bad:?} must be rejected");
        }
        let ok = parse_run_args(&[
            "fig03".to_string(),
            "--set".to_string(),
            "load=3.5,6.9".to_string(),
            "--json".to_string(),
            "out".to_string(),
        ])
        .unwrap();
        assert_eq!(ok.ids, vec!["fig03"]);
        assert_eq!(ok.sets.len(), 1);
        assert_eq!(ok.json_dir.as_deref(), Some("out"));
    }
}
