//! Behavior tests for the `ppr-cli` driver binary, exercised through
//! the real executable (`CARGO_BIN_EXE_ppr-cli`).

use std::process::{Command, Output};

fn ppr_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ppr-cli"))
        .args(args)
        .output()
        .expect("spawn ppr-cli")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn list_covers_every_registered_id() {
    let out = ppr_cli(&["--list"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for exp in ppr_sim::experiments::registry() {
        assert!(
            text.lines().any(|l| l.starts_with(exp.id())),
            "--list is missing {}:\n{text}",
            exp.id()
        );
    }
    // And the subcommand alias behaves identically.
    let alias = ppr_cli(&["list"]);
    assert_eq!(text, stdout(&alias));
}

#[test]
fn unknown_id_exits_nonzero_with_helpful_message() {
    let out = ppr_cli(&["run", "fig99"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown experiment \"fig99\""), "{err}");
    // The message lists what *would* work.
    assert!(err.contains("fig03"), "no id listing in: {err}");
    assert!(err.contains("table1"), "no id listing in: {err}");
}

#[test]
fn malformed_set_pairs_are_rejected() {
    for set in ["load", "load=", "=3.5", "load=abc", "bogus=1", "eta=99"] {
        let out = ppr_cli(&["run", "fig03", "--set", set]);
        assert_eq!(out.status.code(), Some(2), "--set {set} must fail");
        assert!(
            stderr(&out).contains("error:"),
            "--set {set}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn nothing_to_run_is_an_error() {
    let out = ppr_cli(&["run"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("nothing to run"));
}

#[test]
fn run_fig13_emits_report_and_json() {
    // fig13 is the fastest full experiment (fixed three-packet scene).
    let dir = std::env::temp_dir().join(format!("ppr_cli_json_{}", std::process::id()));
    let out = ppr_cli(&["run", "fig13", "--json", dir.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("PPR reproduction — Figure 13"), "{text}");
    assert!(text.contains("POSTAMBLE"), "{text}");
    let json = std::fs::read_to_string(dir.join("fig13.json")).expect("fig13.json written");
    assert!(json.starts_with(r#"{"id":"fig13""#), "{json}");
    assert!(json.contains(r#""scenario":"#));
    assert!(json.contains(r#""blocks":"#));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_produces_one_json_result_per_point() {
    let dir = std::env::temp_dir().join(format!("ppr_cli_sweep_{}", std::process::id()));
    // Sweep the PP-ARQ packet count: three points, no new Rust code.
    let out = ppr_cli(&[
        "run",
        "fig16",
        "--set",
        "arq_packets=2,4,6",
        "--set",
        "duration=1",
        "--json",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("sweep point 1/3"), "{text}");
    assert!(text.contains("sweep point 3/3"), "{text}");
    for n in [2, 4, 6] {
        let path = dir.join(format!("fig16__arq_packets={n}.json"));
        let json =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(json.contains(&format!(r#""arq_packets":{n}"#)), "{json}");
    }
    // The un-swept key (duration) must not appear in filenames.
    let files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(files.len(), 3, "{files:?}");
    assert!(files.iter().all(|f| !f.contains("duration")), "{files:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ppr_no_simd_escape_hatch_is_bit_identical() {
    // The SIMD despread kernels must not change a single experiment
    // byte: the same run with `PPR_NO_SIMD=1` (scalar reference kernel)
    // produces identical output. This exercises the env plumbing the
    // in-process parity tests cannot (kernel choice is cached per
    // process).
    let args = ["run", "fig03", "--set", "duration=2"];
    // Scrub any inherited PPR_NO_SIMD so this run really uses the
    // detected kernel (otherwise scalar would be compared to scalar).
    let simd = Command::new(env!("CARGO_BIN_EXE_ppr-cli"))
        .args(args)
        .env_remove("PPR_NO_SIMD")
        .output()
        .expect("spawn ppr-cli");
    assert!(simd.status.success(), "{}", stderr(&simd));
    let scalar = Command::new(env!("CARGO_BIN_EXE_ppr-cli"))
        .args(args)
        .env("PPR_NO_SIMD", "1")
        .output()
        .expect("spawn ppr-cli");
    assert!(scalar.status.success(), "{}", stderr(&scalar));
    assert_eq!(
        stdout(&simd),
        stdout(&scalar),
        "scalar and SIMD kernels diverged"
    );
}

#[test]
fn help_exits_zero_and_documents_scenario_keys() {
    let out = ppr_cli(&["--help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for key in ["duration", "seed", "load", "eta", "backend"] {
        assert!(text.contains(key), "--help missing {key}:\n{text}");
    }
}
