//! Circular sample buffer for postamble rollback.
//!
//! Postamble decoding (§4) requires the receiver to "maintain a circular
//! buffer of samples of previously-received symbols even when it has not
//! heard a preamble", sized to one maximally-sized packet. When a
//! postamble is detected, the receiver rolls back through this buffer to
//! recover the body of the packet whose preamble it missed.
//!
//! The buffer tracks an *absolute* sample clock: `push` assigns each
//! sample a monotonically increasing index, and ranges are requested in
//! absolute indices, which makes "roll back N symbols from the postamble"
//! a plain subtraction for the caller.

use crate::complex::Complex32;

/// Fixed-capacity circular buffer of complex samples with absolute
/// indexing.
#[derive(Debug, Clone)]
pub struct SampleBuffer {
    buf: Vec<Complex32>,
    capacity: usize,
    /// Absolute index of the *next* sample to be pushed.
    next: u64,
}

impl SampleBuffer {
    /// Creates a buffer holding the last `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sample buffer capacity must be positive");
        SampleBuffer {
            buf: vec![Complex32::ZERO; capacity],
            capacity,
            next: 0,
        }
    }

    /// Capacity in samples.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Absolute index of the next sample to be written (== total samples
    /// pushed so far).
    #[inline]
    pub fn end(&self) -> u64 {
        self.next
    }

    /// Absolute index of the oldest sample still retained.
    #[inline]
    pub fn start(&self) -> u64 {
        self.next.saturating_sub(self.capacity as u64)
    }

    /// Appends one sample.
    #[inline]
    pub fn push(&mut self, s: Complex32) {
        let idx = (self.next % self.capacity as u64) as usize;
        self.buf[idx] = s;
        self.next += 1;
    }

    /// Appends a slice of samples.
    pub fn extend(&mut self, samples: &[Complex32]) {
        for &s in samples {
            self.push(s);
        }
    }

    /// Returns the sample at absolute index `idx`, or `None` if it has
    /// been overwritten or not yet written.
    pub fn get(&self, idx: u64) -> Option<Complex32> {
        if idx >= self.next || idx < self.start() {
            return None;
        }
        Some(self.buf[(idx % self.capacity as u64) as usize])
    }

    /// Copies the absolute range `[from, to)` out of the buffer.
    ///
    /// Returns `None` when any part of the range has been evicted or not
    /// yet written — a partial rollback is worse than a reported failure,
    /// because despreading garbage samples would fabricate confident
    /// codewords.
    pub fn range(&self, from: u64, to: u64) -> Option<Vec<Complex32>> {
        if from > to || to > self.next || from < self.start() {
            return None;
        }
        Some(
            ((from)..(to))
                .map(|i| self.buf[(i % self.capacity as u64) as usize])
                .collect(),
        )
    }

    /// Copies the most recent `n` samples (or fewer if the buffer holds
    /// fewer).
    pub fn latest(&self, n: usize) -> Vec<Complex32> {
        let from = self.next.saturating_sub(n as u64).max(self.start());
        self.range(from, self.next).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: f32) -> Complex32 {
        Complex32::new(v, -v)
    }

    #[test]
    fn push_and_get_within_capacity() {
        let mut b = SampleBuffer::new(8);
        for i in 0..5 {
            b.push(s(i as f32));
        }
        assert_eq!(b.end(), 5);
        assert_eq!(b.start(), 0);
        for i in 0..5u64 {
            assert_eq!(b.get(i), Some(s(i as f32)));
        }
        assert_eq!(b.get(5), None);
    }

    #[test]
    fn old_samples_are_evicted() {
        let mut b = SampleBuffer::new(4);
        for i in 0..10 {
            b.push(s(i as f32));
        }
        assert_eq!(b.start(), 6);
        assert_eq!(b.get(5), None, "evicted sample must not be readable");
        assert_eq!(b.get(6), Some(s(6.0)));
        assert_eq!(b.get(9), Some(s(9.0)));
    }

    #[test]
    fn range_rejects_evicted_spans() {
        let mut b = SampleBuffer::new(4);
        for i in 0..10 {
            b.push(s(i as f32));
        }
        assert!(b.range(4, 8).is_none(), "partially evicted");
        assert_eq!(
            b.range(6, 10).unwrap(),
            vec![s(6.0), s(7.0), s(8.0), s(9.0)]
        );
        assert!(b.range(8, 12).is_none(), "not yet written");
        assert_eq!(b.range(7, 7).unwrap(), vec![]);
    }

    #[test]
    fn latest_clamps_to_available() {
        let mut b = SampleBuffer::new(16);
        for i in 0..3 {
            b.push(s(i as f32));
        }
        assert_eq!(b.latest(100), vec![s(0.0), s(1.0), s(2.0)]);
        assert_eq!(b.latest(2), vec![s(1.0), s(2.0)]);
    }

    #[test]
    fn extend_matches_repeated_push() {
        let mut a = SampleBuffer::new(8);
        let mut b = SampleBuffer::new(8);
        let data: Vec<Complex32> = (0..20).map(|i| s(i as f32)).collect();
        a.extend(&data);
        for &x in &data {
            b.push(x);
        }
        assert_eq!(a.end(), b.end());
        assert_eq!(a.latest(8), b.latest(8));
    }
}
