//! Preamble and postamble frame synchronization.
//!
//! A PPR frame is delimited on both ends (paper Fig. 2):
//!
//! * **Preamble**: eight `0x0` symbols followed by the 802.15.4 SFD byte
//!   `0xA7`, exactly as the standard transmits it.
//! * **Postamble**: four `0x0` symbols followed by the *postamble* start
//!   delimiter `0xC9` — a well-known sequence distinct from the SFD, so a
//!   receiver can tell which end of a frame it has locked onto (§4).
//!
//! Detection correlates the hard-decision chip stream against the known
//! chip pattern of the delimiter and accepts offsets whose Hamming
//! distance is below a threshold. Overlapping candidate hits within one
//! codeword are merged, keeping the best.

use crate::chips::{ChipWords, CHIPS_PER_SYMBOL};
use crate::modem::unpack_chip_words;
use crate::spread::{bytes_to_symbols, spread};

/// The 802.15.4 start-of-frame delimiter byte.
pub const SFD: u8 = 0xA7;

/// The postamble start delimiter byte (chosen distinct from [`SFD`]).
pub const POST_SFD: u8 = 0xC9;

/// Number of zero symbols transmitted before the SFD (the standard's
/// 4-byte preamble = 8 symbols).
pub const PREAMBLE_ZERO_SYMBOLS: usize = 8;

/// Number of zero symbols transmitted before the postamble delimiter.
/// Shorter than the preamble: the postamble exists for re-synchronization
/// and also carries the adaptive-equalizer training sequence (§4).
pub const POSTAMBLE_ZERO_SYMBOLS: usize = 4;

/// Which frame delimiter a synchronization hit corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// Locked on the preamble: decode forward from the frame start.
    Preamble,
    /// Locked on the postamble: roll back through the sample buffer.
    Postamble,
}

/// A detected delimiter occurrence in a chip stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncHit {
    /// Chip offset of the *start of the delimiter pattern* in the stream.
    pub chip_offset: usize,
    /// Hamming distance between the received chips and the pattern.
    pub distance: u32,
    /// Preamble or postamble.
    pub kind: SyncKind,
}

impl SyncHit {
    /// Chip offset of the first symbol *after* the delimiter (for a
    /// preamble hit this is where the header starts).
    pub fn payload_start(&self, pattern: &SyncPattern) -> usize {
        self.chip_offset + pattern.len_chips()
    }
}

/// A chip-level correlation pattern for one delimiter.
#[derive(Debug, Clone)]
pub struct SyncPattern {
    chips: Vec<bool>,
    packed: ChipWords,
    kind: SyncKind,
}

impl SyncPattern {
    /// The preamble pattern: the last `sync_symbols` zero symbols followed
    /// by the SFD. Using only the tail of the zero run keeps the pattern
    /// short while still being unique; a receiver that missed the start of
    /// the preamble can still lock.
    pub fn preamble() -> Self {
        let mut symbols = vec![0u8; 2];
        symbols.extend(bytes_to_symbols(&[SFD]));
        Self::from_codewords(spread(&symbols), SyncKind::Preamble)
    }

    /// The postamble pattern: two zero symbols followed by [`POST_SFD`].
    pub fn postamble() -> Self {
        let mut symbols = vec![0u8; 2];
        symbols.extend(bytes_to_symbols(&[POST_SFD]));
        Self::from_codewords(spread(&symbols), SyncKind::Postamble)
    }

    fn from_codewords(codewords: Vec<u32>, kind: SyncKind) -> Self {
        SyncPattern {
            chips: unpack_chip_words(&codewords),
            packed: ChipWords::from_codewords(&codewords),
            kind,
        }
    }

    /// Pattern length in chips.
    #[inline]
    pub fn len_chips(&self) -> usize {
        self.chips.len()
    }

    /// The delimiter kind this pattern detects.
    #[inline]
    pub fn kind(&self) -> SyncKind {
        self.kind
    }

    /// Hamming distance between the pattern and `stream` at `offset`.
    /// Positions past the end of the stream count as mismatches, so a
    /// pattern straddling the end of a reception degrades instead of
    /// matching spuriously.
    pub fn distance_at(&self, stream: &[bool], offset: usize) -> u32 {
        let mut d = 0u32;
        for (i, &p) in self.chips.iter().enumerate() {
            match stream.get(offset + i) {
                Some(&c) if c == p => {}
                _ => d += 1,
            }
        }
        d
    }

    /// Word-wise equivalent of [`Self::distance_at`] over a packed chip
    /// stream: XOR + `count_ones` per 64-chip lane instead of a per-chip
    /// loop. Positions past the end of the stream count as mismatches,
    /// exactly as in the reference implementation.
    pub fn distance_at_words(&self, stream: &ChipWords, offset: usize) -> u32 {
        let n = self.packed.len();
        let mut d = 0u32;
        let mut done = 0usize;
        for &pw in self.packed.words() {
            let bits = (n - done).min(64);
            let base = offset + done;
            let avail = stream.len().saturating_sub(base).min(bits);
            let sw = stream.extract_u64(base);
            let mask = if avail == 64 {
                u64::MAX
            } else {
                (1u64 << avail) - 1
            };
            d += ((pw ^ sw) & mask).count_ones();
            d += (bits - avail) as u32; // missing chips mismatch
            done += bits;
        }
        d
    }

    /// Scans the whole stream for delimiter occurrences with Hamming
    /// distance ≤ `max_distance`, suppressing non-minimal hits within one
    /// codeword (32 chips) of a better one.
    pub fn scan(&self, stream: &[bool], max_distance: u32) -> Vec<SyncHit> {
        if stream.len() < self.chips.len() {
            return Vec::new();
        }
        let mut hits: Vec<SyncHit> = Vec::new();
        let last = stream.len() - self.chips.len();
        for offset in 0..=last {
            let d = self.distance_at(stream, offset);
            if d > max_distance {
                continue;
            }
            match hits.last_mut() {
                Some(prev) if offset - prev.chip_offset < CHIPS_PER_SYMBOL => {
                    if d < prev.distance {
                        *prev = SyncHit {
                            chip_offset: offset,
                            distance: d,
                            kind: self.kind,
                        };
                    }
                }
                _ => hits.push(SyncHit {
                    chip_offset: offset,
                    distance: d,
                    kind: self.kind,
                }),
            }
        }
        hits
    }
}

/// Default sync acceptance threshold, in chips.
///
/// The delimiter patterns are 128 chips long; random chips sit at an
/// expected distance of 64 with σ ≈ 5.7, so a threshold of 20 keeps the
/// false-lock probability negligible (> 7σ) while tolerating a ~15 % chip
/// error rate over the delimiter.
pub const DEFAULT_SYNC_THRESHOLD: u32 = 20;

/// Builds the full transmitted preamble chip sequence (eight zero symbols
/// + SFD), as the sender emits it.
pub fn tx_preamble_chips() -> Vec<bool> {
    unpack_chip_words(&tx_preamble_codewords())
}

/// Builds the full transmitted postamble chip sequence (four zero symbols
/// + POST_SFD).
pub fn tx_postamble_chips() -> Vec<bool> {
    unpack_chip_words(&tx_postamble_codewords())
}

/// The transmitted preamble as 32-chip codewords (the packed rendering
/// building block).
pub fn tx_preamble_codewords() -> Vec<u32> {
    let mut symbols = vec![0u8; PREAMBLE_ZERO_SYMBOLS];
    symbols.extend(bytes_to_symbols(&[SFD]));
    spread(&symbols)
}

/// The transmitted postamble as 32-chip codewords.
pub fn tx_postamble_codewords() -> Vec<u32> {
    let mut symbols = vec![0u8; POSTAMBLE_ZERO_SYMBOLS];
    symbols.extend(bytes_to_symbols(&[POST_SFD]));
    spread(&symbols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_chips(rng: &mut StdRng, n: usize) -> Vec<bool> {
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn preamble_found_in_clean_stream() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut stream = random_chips(&mut rng, 900);
        let pat = SyncPattern::preamble();
        let insert_at = 200;
        let full = tx_preamble_chips();
        stream.splice(insert_at..insert_at + full.len(), full.iter().copied());
        let hits = pat.scan(&stream, DEFAULT_SYNC_THRESHOLD);
        assert_eq!(hits.len(), 1);
        // The short pattern (2 zero symbols + SFD) matches at the tail of
        // the 8-zero-symbol preamble.
        let expected = insert_at + (PREAMBLE_ZERO_SYMBOLS - 2) * CHIPS_PER_SYMBOL;
        assert_eq!(hits[0].chip_offset, expected);
        assert_eq!(hits[0].distance, 0);
        assert_eq!(hits[0].kind, SyncKind::Preamble);
    }

    #[test]
    fn postamble_found_and_distinct_from_preamble() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut stream = random_chips(&mut rng, 600);
        let post = tx_postamble_chips();
        stream.splice(100..100 + post.len(), post.iter().copied());
        let pre_hits = SyncPattern::preamble().scan(&stream, DEFAULT_SYNC_THRESHOLD);
        let post_hits = SyncPattern::postamble().scan(&stream, DEFAULT_SYNC_THRESHOLD);
        assert!(
            pre_hits.is_empty(),
            "postamble must not trigger preamble sync"
        );
        assert_eq!(post_hits.len(), 1);
        assert_eq!(
            post_hits[0].chip_offset,
            100 + (POSTAMBLE_ZERO_SYMBOLS - 2) * CHIPS_PER_SYMBOL
        );
    }

    #[test]
    fn corrupted_delimiter_within_threshold_still_syncs() {
        let mut rng = StdRng::seed_from_u64(3);
        let pat = SyncPattern::preamble();
        let mut stream = random_chips(&mut rng, 400);
        let full = tx_preamble_chips();
        stream.splice(50..50 + full.len(), full.iter().copied());
        // Flip 15 chips inside the pattern window (< threshold of 20).
        let pat_start = 50 + (PREAMBLE_ZERO_SYMBOLS - 2) * CHIPS_PER_SYMBOL;
        for i in 0..15 {
            stream[pat_start + i * 8] = !stream[pat_start + i * 8];
        }
        let hits = pat.scan(&stream, DEFAULT_SYNC_THRESHOLD);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].chip_offset, pat_start);
        assert_eq!(hits[0].distance, 15);
    }

    #[test]
    fn destroyed_delimiter_does_not_sync() {
        let mut rng = StdRng::seed_from_u64(4);
        let pat = SyncPattern::preamble();
        let mut stream = random_chips(&mut rng, 400);
        let full = tx_preamble_chips();
        stream.splice(50..50 + full.len(), full.iter().copied());
        // Clobber half the pattern chips, as a strong collision would.
        let pat_start = 50 + (PREAMBLE_ZERO_SYMBOLS - 2) * CHIPS_PER_SYMBOL;
        for i in 0..64 {
            stream[pat_start + 2 * i] = rng.gen();
        }
        let hits = pat.scan(&stream, DEFAULT_SYNC_THRESHOLD);
        assert!(hits.is_empty() || hits[0].distance > 15);
    }

    #[test]
    fn no_false_locks_in_long_random_stream() {
        let mut rng = StdRng::seed_from_u64(5);
        let stream = random_chips(&mut rng, 100_000);
        assert!(SyncPattern::preamble()
            .scan(&stream, DEFAULT_SYNC_THRESHOLD)
            .is_empty());
        assert!(SyncPattern::postamble()
            .scan(&stream, DEFAULT_SYNC_THRESHOLD)
            .is_empty());
    }

    #[test]
    fn duplicate_adjacent_hits_are_suppressed() {
        let pat = SyncPattern::preamble();
        // A stream that *is* the pattern, padded by its own chips shifted:
        // only a single hit must be reported even though neighbors may
        // fall under the threshold.
        let mut stream = vec![false; 64];
        stream.extend(tx_preamble_chips());
        stream.extend(vec![false; 64]);
        let hits = pat.scan(&stream, DEFAULT_SYNC_THRESHOLD);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn distance_at_end_of_stream_counts_missing_chips() {
        let pat = SyncPattern::preamble();
        let stream = vec![false; 10];
        // Pattern mostly hangs off the end: distance must include the
        // missing chips rather than panic.
        let d = pat.distance_at(&stream, 5);
        assert!(d >= (pat.len_chips() - 5) as u32 / 2);
    }

    #[test]
    fn packed_distance_matches_reference_at_every_offset() {
        use crate::chips::ChipWords;
        let mut rng = StdRng::seed_from_u64(6);
        let mut stream = random_chips(&mut rng, 700);
        let full = tx_preamble_chips();
        stream.splice(150..150 + full.len(), full.iter().copied());
        let packed = ChipWords::from_bools(&stream);
        for pat in [SyncPattern::preamble(), SyncPattern::postamble()] {
            // Offsets spanning in-stream, straddling the end, and fully
            // past the end.
            for offset in (0..stream.len() + 200).step_by(7) {
                assert_eq!(
                    pat.distance_at(&stream, offset),
                    pat.distance_at_words(&packed, offset),
                    "offset {offset}"
                );
            }
        }
    }
}
