//! # `ppr-phy` — 802.15.4 DSSS/MSK software modem with SoftPHY hints
//!
//! This crate is the physical-layer substrate of the PPR reproduction
//! (Jamieson & Balakrishnan, SIGCOMM 2007): a software implementation of
//! the CC2420-style 2.4 GHz 802.15.4 PHY the paper's testbed used, with
//! the receiver structure of the paper's Fig. 1.
//!
//! ## Transmit path
//!
//! bytes → 4-bit symbols ([`spread::bytes_to_symbols`]) → 32-chip
//! codewords ([`chips::CODEBOOK`]) → MSK waveform
//! ([`modem::MskModem::modulate`]), framed by a preamble and — PPR's
//! addition — a **postamble** ([`sync`]).
//!
//! ## Receive path
//!
//! samples → timing recovery ([`timing`]) → matched filter
//! ([`modem::MskModem::demodulate`]) → hard chip decisions → delimiter
//! sync ([`sync::SyncPattern`]) → nearest-codeword despreading with a
//! **Hamming-distance SoftPHY hint** per symbol
//! ([`frame_rx::ChipReceiver::despread`] → [`softphy::SoftSpan`]).
//!
//! The circular [`sample_buf::SampleBuffer`] retains one max-packet of
//! samples so a postamble detection can *roll back in time* and decode a
//! packet whose preamble was destroyed by a collision.
//!
//! Network-scale experiments bypass the waveform and work on chip streams
//! directly (see `ppr-channel`'s fast backend); the two paths share all
//! code from hard chip decisions upward.

// `deny` rather than `forbid`: the SIMD despread kernels in [`simd`]
// are the one sanctioned exception (feature-gated `core::arch`
// intrinsics behind runtime detection) and opt in with a module-level
// `allow`. Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chips;
pub mod complex;
pub mod frame_rx;
pub mod modem;
pub mod pulse;
pub mod sample_buf;
pub mod simd;
pub mod softphy;
pub mod sova;
pub mod spread;
pub mod sync;
pub mod timing;
pub mod view;

pub use chips::{
    ChipWords, Decision, BITS_PER_SYMBOL, CHIPS_PER_SYMBOL, CHIP_RATE_HZ, SYMBOL_RATE_HZ,
};
pub use complex::Complex32;
pub use frame_rx::{ChipReceiver, ChipStream, SampleReceiver};
pub use modem::MskModem;
pub use sample_buf::SampleBuffer;
pub use simd::{decide_batch, DespreadKernel, DspKernel};
pub use softphy::{SoftSpan, SoftSymbol};
pub use sync::{SyncHit, SyncKind, SyncPattern};
pub use view::SymbolView;
