//! Non-data-aided symbol timing recovery.
//!
//! The paper (§4) requires a timing recovery method that "permits
//! synchronization at any time during a transmission", so that samples
//! stored *before* the postamble was detected can be symbol-synchronized
//! retroactively. We implement a feed-forward, non-data-aided estimator in
//! the spirit of Mueller & Müller: for every candidate sub-chip offset the
//! receiver computes the total matched-filter energy obtained when
//! sampling at chip spacing from that offset, and picks the offset that
//! maximizes it. At the correct offset the matched filter lands on pulse
//! centers and captures full chip energy; off-center sampling leaks energy
//! between rails and chips.
//!
//! This estimator needs no preamble and no decisions, which is exactly the
//! property postamble decoding depends on.

use crate::complex::Complex32;
use crate::modem::MskModem;

/// Result of a timing search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingEstimate {
    /// Estimated sample offset of the first chip boundary, in
    /// `0..samples_per_chip`.
    pub offset: usize,
    /// Normalized energy metric at the winning offset (higher ⇒ cleaner
    /// timing lock). ≈ 1.0 for a noise-free signal.
    pub quality: f32,
}

/// Estimates the sub-chip timing offset of an MSK signal.
///
/// `window_chips` chips starting at `search_from` are used for the
/// estimate; 32–128 chips give a solid lock at the SNRs of interest.
/// Returns `None` when the window does not fit in `samples`.
pub fn estimate_timing(
    modem: &MskModem,
    samples: &[Complex32],
    search_from: usize,
    window_chips: usize,
) -> Option<TimingEstimate> {
    let sps = modem.samples_per_chip();
    let needed = search_from + (window_chips + 2) * sps;
    if needed > samples.len() || window_chips == 0 {
        return None;
    }
    let mut best = TimingEstimate {
        offset: 0,
        quality: f32::NEG_INFINITY,
    };
    for tau in 0..sps {
        let mut energy = 0.0f32;
        for k in 0..window_chips {
            let start = search_from + tau + k * sps;
            let i = modem.chip_soft_value(samples, start, true);
            let q = modem.chip_soft_value(samples, start, false);
            // Whichever rail carries this chip produces the larger
            // magnitude; the other rail holds straddled neighbors.
            energy += (i * i).max(q * q);
        }
        let quality = energy / window_chips as f32;
        if quality > best.quality {
            best = TimingEstimate {
                offset: tau,
                quality,
            };
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modem::unpack_chip_words;
    use crate::spread::spread_bytes;

    fn signal_with_offset(sps: usize, lead_zeros: usize, data: &[u8]) -> Vec<Complex32> {
        let modem = MskModem::new(sps);
        let chips = unpack_chip_words(&spread_bytes(data));
        let mut samples = vec![Complex32::ZERO; lead_zeros];
        samples.extend(modem.modulate(&chips));
        samples
    }

    #[test]
    fn finds_zero_offset_on_aligned_signal() {
        let modem = MskModem::new(8);
        let samples = signal_with_offset(8, 0, b"timing recovery test payload");
        let est = estimate_timing(&modem, &samples, 0, 64).unwrap();
        assert_eq!(est.offset, 0);
        assert!(est.quality > 0.8, "quality {}", est.quality);
    }

    #[test]
    fn finds_injected_offset() {
        let sps = 8;
        let modem = MskModem::new(sps);
        for lead in 1..sps {
            let samples = signal_with_offset(sps, lead, b"timing recovery test payload");
            let est = estimate_timing(&modem, &samples, 0, 64).unwrap();
            assert_eq!(est.offset, lead, "lead {lead}");
        }
    }

    #[test]
    fn mid_stream_lock_works() {
        // Lock using a window that starts in the middle of the
        // transmission — the property postamble rollback needs.
        let sps = 4;
        let modem = MskModem::new(sps);
        let samples = signal_with_offset(sps, 3, b"a fairly long payload for mid-stream locking");
        let est = estimate_timing(&modem, &samples, 40 * sps, 64).unwrap();
        // Offset is relative to chip grid: (3 - 40*sps) mod sps == 3.
        assert_eq!(est.offset, 3);
    }

    #[test]
    fn returns_none_when_window_does_not_fit() {
        let modem = MskModem::new(4);
        let samples = signal_with_offset(4, 0, b"x");
        assert!(estimate_timing(&modem, &samples, 0, 10_000).is_none());
        assert!(estimate_timing(&modem, &samples, 0, 0).is_none());
    }
}
