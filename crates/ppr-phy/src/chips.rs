//! The 802.15.4 2.4 GHz O-QPSK spreading code book.
//!
//! The PHY maps each 4-bit data symbol to one of sixteen 32-chip
//! pseudo-noise sequences (the paper's *codewords*, `b = 4`, `B = 32`).
//! The code book is the one from the IEEE 802.15.4 standard: symbols 1–7
//! are successive 4-chip cyclic right-shifts of symbol 0, and symbols 8–15
//! are symbols 0–7 with every odd-indexed chip inverted.
//!
//! Chips are stored LSB-first: chip `i` of a codeword is bit `i` of the
//! `u32`. All Hamming-distance arithmetic in SoftPHY hinting runs over
//! these 32-bit words, so distance computations are single `popcount`s.

/// Number of chips per codeword (`B` in the paper).
pub const CHIPS_PER_SYMBOL: usize = 32;

/// Number of data bits per codeword (`b` in the paper).
pub const BITS_PER_SYMBOL: usize = 4;

/// Number of distinct codewords (`2^b`).
pub const NUM_SYMBOLS: usize = 16;

/// Chip rate of the CC2420 radio modelled throughout the workspace.
pub const CHIP_RATE_HZ: u64 = 2_000_000;

/// Symbol rate: `CHIP_RATE_HZ / CHIPS_PER_SYMBOL` = 62 500 symbols/s.
pub const SYMBOL_RATE_HZ: u64 = CHIP_RATE_HZ / CHIPS_PER_SYMBOL as u64;

/// Peak data rate: 4 bits per symbol at 62.5 ksym/s = 250 kbit/s.
pub const PEAK_BIT_RATE: u64 = SYMBOL_RATE_HZ * BITS_PER_SYMBOL as u64;

/// Duration of one codeword in microseconds (16 µs; the time unit of the
/// paper's Fig. 13 x-axis).
pub const SYMBOL_TIME_US: u64 = 16;

/// Base chip sequence for data symbol 0, written chip 0 first.
///
/// This is the sequence `1101 1001 1100 0011 0101 0010 0010 1110` from the
/// IEEE 802.15.4 standard, packed LSB-first.
const SYMBOL0_CHIPS: [u8; CHIPS_PER_SYMBOL] = [
    1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0,
];

/// Packs a chip array (chip 0 first) into a `u32`, LSB-first.
const fn pack(chips: [u8; CHIPS_PER_SYMBOL]) -> u32 {
    let mut word = 0u32;
    let mut i = 0;
    while i < CHIPS_PER_SYMBOL {
        if chips[i] != 0 {
            word |= 1 << i;
        }
        i += 1;
    }
    word
}

/// Cyclic right-shift of the chip sequence by `n` chip positions.
///
/// "Right shift" in the 802.15.4 sense: the last `n` chips wrap around to
/// the front of the sequence.
const fn rotate_chips(chips: [u8; CHIPS_PER_SYMBOL], n: usize) -> [u8; CHIPS_PER_SYMBOL] {
    let mut out = [0u8; CHIPS_PER_SYMBOL];
    let mut i = 0;
    while i < CHIPS_PER_SYMBOL {
        out[(i + n) % CHIPS_PER_SYMBOL] = chips[i];
        i += 1;
    }
    out
}

/// Inverts every odd-indexed chip (the Q-phase chips in O-QPSK).
const fn conjugate(chips: [u8; CHIPS_PER_SYMBOL]) -> [u8; CHIPS_PER_SYMBOL] {
    let mut out = chips;
    let mut i = 1;
    while i < CHIPS_PER_SYMBOL {
        out[i] = 1 - out[i];
        i += 2;
    }
    out
}

/// Builds the full 16-entry code book at compile time.
const fn build_codebook() -> [u32; NUM_SYMBOLS] {
    let mut book = [0u32; NUM_SYMBOLS];
    let mut s = 0;
    while s < 8 {
        let rotated = rotate_chips(SYMBOL0_CHIPS, 4 * s);
        book[s] = pack(rotated);
        book[s + 8] = pack(conjugate(rotated));
        s += 1;
    }
    book
}

/// The sixteen 32-chip spreading sequences, indexed by data symbol.
pub const CODEBOOK: [u32; NUM_SYMBOLS] = build_codebook();

/// Hamming distance between two 32-chip words.
#[inline]
pub fn hamming(a: u32, b: u32) -> u32 {
    (a ^ b).count_ones()
}

/// Result of a hard-decision nearest-codeword search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The decoded 4-bit data symbol (index into [`CODEBOOK`]).
    pub symbol: u8,
    /// Hamming distance from the received chip word to the decoded
    /// codeword — the SoftPHY hint of the paper's §3.2.
    pub distance: u8,
}

/// Maps a received 32-chip word to the closest codeword (minimum Hamming
/// distance), returning the decoded symbol and the distance.
///
/// Ties break toward the lowest symbol index, matching a deterministic
/// hardware correlator bank.
#[inline]
pub fn decide(received: u32) -> Decision {
    let mut best = Decision {
        symbol: 0,
        distance: hamming(received, CODEBOOK[0]) as u8,
    };
    let mut s = 1;
    while s < NUM_SYMBOLS {
        let d = hamming(received, CODEBOOK[s]) as u8;
        if d < best.distance {
            best = Decision {
                symbol: s as u8,
                distance: d,
            };
        }
        s += 1;
    }
    best
}

/// Returns the codeword for a 4-bit data symbol.
///
/// # Panics
/// Panics if `symbol >= 16`.
#[inline]
pub fn spread_symbol(symbol: u8) -> u32 {
    CODEBOOK[symbol as usize]
}

/// Minimum pairwise Hamming distance of the code book.
///
/// For the 802.15.4 book this is 12, which is why a received word at
/// distance ≤ 5 from its nearest codeword is almost always a correct
/// decode — the geometric fact behind the paper's threshold `η = 6`.
pub fn min_codeword_distance() -> u32 {
    let mut min = u32::MAX;
    for (i, &a) in CODEBOOK.iter().enumerate() {
        for &b in &CODEBOOK[i + 1..] {
            min = min.min(hamming(a, b));
        }
    }
    min
}

/// Iterator over the chips of a codeword, chip 0 first.
pub fn chips_of(word: u32) -> impl Iterator<Item = bool> {
    (0..CHIPS_PER_SYMBOL).map(move |i| (word >> i) & 1 == 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full chip table from the IEEE 802.15.4 standard, written
    /// chip 0 first, used to pin the generated code book.
    const REFERENCE: [&str; NUM_SYMBOLS] = [
        "11011001110000110101001000101110",
        "11101101100111000011010100100010",
        "00101110110110011100001101010010",
        "00100010111011011001110000110101",
        "01010010001011101101100111000011",
        "00110101001000101110110110011100",
        "11000011010100100010111011011001",
        "10011100001101010010001011101101",
        "10001100100101100000011101111011",
        "10111000110010010110000001110111",
        "01111011100011001001011000000111",
        "01110111101110001100100101100000",
        "00000111011110111000110010010110",
        "01100000011101111011100011001001",
        "10010110000001110111101110001100",
        "11001001011000000111011110111000",
    ];

    fn parse(s: &str) -> u32 {
        let mut w = 0u32;
        for (i, c) in s.chars().enumerate() {
            if c == '1' {
                w |= 1 << i;
            }
        }
        w
    }

    #[test]
    fn codebook_matches_standard_table() {
        for (s, reference) in REFERENCE.iter().enumerate() {
            assert_eq!(
                CODEBOOK[s],
                parse(reference),
                "codebook mismatch at symbol {s}"
            );
        }
    }

    #[test]
    fn codebook_entries_are_distinct() {
        for (i, &a) in CODEBOOK.iter().enumerate() {
            for &b in &CODEBOOK[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn min_distance_is_twelve() {
        assert_eq!(min_codeword_distance(), 12);
    }

    #[test]
    fn decide_is_identity_on_clean_codewords() {
        for (s, &word) in CODEBOOK.iter().enumerate() {
            let d = decide(word);
            assert_eq!(d.symbol as usize, s);
            assert_eq!(d.distance, 0);
        }
    }

    #[test]
    fn decide_tolerates_small_corruption() {
        // Flip 3 chips of every codeword: decode must still be exact and
        // the reported hint must equal the number of flips (3 < 12/2).
        for (s, &word) in CODEBOOK.iter().enumerate() {
            let corrupted = word ^ 0b1001_0000_0000_0000_0100_0000_0000_0000;
            let d = decide(corrupted);
            assert_eq!(d.symbol as usize, s, "symbol {s} misdecoded");
            assert_eq!(d.distance, 3);
        }
    }

    #[test]
    fn hamming_is_symmetric_and_zero_on_equal() {
        assert_eq!(hamming(0xdead_beef, 0xdead_beef), 0);
        assert_eq!(hamming(0x0, 0xffff_ffff), 32);
        assert_eq!(
            hamming(0x1234_5678, 0x8765_4321),
            hamming(0x8765_4321, 0x1234_5678)
        );
    }

    #[test]
    fn chips_roundtrip_through_pack() {
        for &word in CODEBOOK.iter() {
            let collected: Vec<bool> = chips_of(word).collect();
            assert_eq!(collected.len(), CHIPS_PER_SYMBOL);
            let mut repacked = 0u32;
            for (i, c) in collected.iter().enumerate() {
                if *c {
                    repacked |= 1 << i;
                }
            }
            assert_eq!(repacked, word);
        }
    }

    #[test]
    fn symbol_timing_constants_are_consistent() {
        assert_eq!(SYMBOL_RATE_HZ, 62_500);
        assert_eq!(PEAK_BIT_RATE, 250_000);
        // 32 chips at 2 Mchip/s = 16 µs per codeword.
        assert_eq!(
            CHIPS_PER_SYMBOL as u64 * 1_000_000 / CHIP_RATE_HZ,
            SYMBOL_TIME_US
        );
    }
}
