//! The 802.15.4 2.4 GHz O-QPSK spreading code book.
//!
//! The PHY maps each 4-bit data symbol to one of sixteen 32-chip
//! pseudo-noise sequences (the paper's *codewords*, `b = 4`, `B = 32`).
//! The code book is the one from the IEEE 802.15.4 standard: symbols 1–7
//! are successive 4-chip cyclic right-shifts of symbol 0, and symbols 8–15
//! are symbols 0–7 with every odd-indexed chip inverted.
//!
//! Chips are stored LSB-first: chip `i` of a codeword is bit `i` of the
//! `u32`. All Hamming-distance arithmetic in SoftPHY hinting runs over
//! these 32-bit words, so distance computations are single `popcount`s.

/// Number of chips per codeword (`B` in the paper).
pub const CHIPS_PER_SYMBOL: usize = 32;

/// Number of data bits per codeword (`b` in the paper).
pub const BITS_PER_SYMBOL: usize = 4;

/// Number of distinct codewords (`2^b`).
pub const NUM_SYMBOLS: usize = 16;

/// Chip rate of the CC2420 radio modelled throughout the workspace.
pub const CHIP_RATE_HZ: u64 = 2_000_000;

/// Symbol rate: `CHIP_RATE_HZ / CHIPS_PER_SYMBOL` = 62 500 symbols/s.
pub const SYMBOL_RATE_HZ: u64 = CHIP_RATE_HZ / CHIPS_PER_SYMBOL as u64;

/// Peak data rate: 4 bits per symbol at 62.5 ksym/s = 250 kbit/s.
pub const PEAK_BIT_RATE: u64 = SYMBOL_RATE_HZ * BITS_PER_SYMBOL as u64;

/// Duration of one codeword in microseconds (16 µs; the time unit of the
/// paper's Fig. 13 x-axis).
pub const SYMBOL_TIME_US: u64 = 16;

/// Base chip sequence for data symbol 0, written chip 0 first.
///
/// This is the sequence `1101 1001 1100 0011 0101 0010 0010 1110` from the
/// IEEE 802.15.4 standard, packed LSB-first.
const SYMBOL0_CHIPS: [u8; CHIPS_PER_SYMBOL] = [
    1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0,
];

/// Packs a chip array (chip 0 first) into a `u32`, LSB-first.
const fn pack(chips: [u8; CHIPS_PER_SYMBOL]) -> u32 {
    let mut word = 0u32;
    let mut i = 0;
    while i < CHIPS_PER_SYMBOL {
        if chips[i] != 0 {
            word |= 1 << i;
        }
        i += 1;
    }
    word
}

/// Cyclic right-shift of the chip sequence by `n` chip positions.
///
/// "Right shift" in the 802.15.4 sense: the last `n` chips wrap around to
/// the front of the sequence.
const fn rotate_chips(chips: [u8; CHIPS_PER_SYMBOL], n: usize) -> [u8; CHIPS_PER_SYMBOL] {
    let mut out = [0u8; CHIPS_PER_SYMBOL];
    let mut i = 0;
    while i < CHIPS_PER_SYMBOL {
        out[(i + n) % CHIPS_PER_SYMBOL] = chips[i];
        i += 1;
    }
    out
}

/// Inverts every odd-indexed chip (the Q-phase chips in O-QPSK).
const fn conjugate(chips: [u8; CHIPS_PER_SYMBOL]) -> [u8; CHIPS_PER_SYMBOL] {
    let mut out = chips;
    let mut i = 1;
    while i < CHIPS_PER_SYMBOL {
        out[i] = 1 - out[i];
        i += 2;
    }
    out
}

/// Builds the full 16-entry code book at compile time.
const fn build_codebook() -> [u32; NUM_SYMBOLS] {
    let mut book = [0u32; NUM_SYMBOLS];
    let mut s = 0;
    while s < 8 {
        let rotated = rotate_chips(SYMBOL0_CHIPS, 4 * s);
        book[s] = pack(rotated);
        book[s + 8] = pack(conjugate(rotated));
        s += 1;
    }
    book
}

/// The sixteen 32-chip spreading sequences, indexed by data symbol.
pub const CODEBOOK: [u32; NUM_SYMBOLS] = build_codebook();

/// Hamming distance between two 32-chip words.
#[inline]
pub fn hamming(a: u32, b: u32) -> u32 {
    (a ^ b).count_ones()
}

/// Result of a hard-decision nearest-codeword search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The decoded 4-bit data symbol (index into [`CODEBOOK`]).
    pub symbol: u8,
    /// Hamming distance from the received chip word to the decoded
    /// codeword — the SoftPHY hint of the paper's §3.2.
    pub distance: u8,
}

/// Maps a received 32-chip word to the closest codeword (minimum Hamming
/// distance), returning the decoded symbol and the distance.
///
/// Ties break toward the lowest symbol index, matching a deterministic
/// hardware correlator bank.
#[inline]
pub fn decide(received: u32) -> Decision {
    // Branchless min-fold over (distance, symbol) keys: the scan is the
    // inner loop of despreading, and data-dependent early exits
    // mispredict on exactly the noisy frames the simulator spends its
    // time on. Packing the distance above the symbol index makes the
    // numeric minimum select the smallest distance with ties broken
    // toward the lowest symbol index — the deterministic hardware
    // correlator bank's behavior. Four independent accumulator chains
    // keep the fold from serializing on min latency.
    //
    // The unroll reads CODEBOOK[s..s+4] and the key packs the symbol
    // into 4 bits; guard both against a future codebook reshape.
    const _: () = assert!(NUM_SYMBOLS <= 16 && NUM_SYMBOLS.is_multiple_of(4));
    let key = |s: u32| (hamming(received, CODEBOOK[s as usize]) << 4) | s;
    let (mut a, mut b, mut c, mut d) = (u32::MAX, u32::MAX, u32::MAX, u32::MAX);
    let mut s = 0;
    while s < NUM_SYMBOLS as u32 {
        a = a.min(key(s));
        b = b.min(key(s + 1));
        c = c.min(key(s + 2));
        d = d.min(key(s + 3));
        s += 4;
    }
    let best = a.min(b).min(c.min(d));
    Decision {
        symbol: (best & 0xF) as u8,
        distance: (best >> 4) as u8,
    }
}

/// Returns the codeword for a 4-bit data symbol.
///
/// # Panics
/// Panics if `symbol >= 16`.
#[inline]
pub fn spread_symbol(symbol: u8) -> u32 {
    CODEBOOK[symbol as usize]
}

/// Minimum pairwise Hamming distance of the code book.
///
/// For the 802.15.4 book this is 12, which is why a received word at
/// distance ≤ 5 from its nearest codeword is almost always a correct
/// decode — the geometric fact behind the paper's threshold `η = 6`.
pub fn min_codeword_distance() -> u32 {
    let mut min = u32::MAX;
    for (i, &a) in CODEBOOK.iter().enumerate() {
        for &b in &CODEBOOK[i + 1..] {
            min = min.min(hamming(a, b));
        }
    }
    min
}

/// Iterator over the chips of a codeword, chip 0 first.
pub fn chips_of(word: u32) -> impl Iterator<Item = bool> {
    (0..CHIPS_PER_SYMBOL).map(move |i| (word >> i) & 1 == 1)
}

/// A bit-packed chip stream: 64 chips per `u64` lane, chip `i` stored in
/// bit `i % 64` of word `i / 64` (LSB-first, matching the codeword
/// packing convention of [`CODEBOOK`]).
///
/// This is the hot-path representation of chip streams: spreading,
/// corruption and despreading all operate word-wise (XOR + `count_ones`)
/// instead of chip-by-chip over a `Vec<bool>`. The `&[bool]` API remains
/// the reference implementation; `tests/packed_parity.rs` at the
/// workspace root proves the two produce bit-identical results.
///
/// **Invariant**: bits at positions `>= len` in the last word are zero
/// (the canonical form), so `PartialEq` and [`Self::count_ones`] work on
/// raw words and [`Self::extract_u64`] zero-pads past the end for free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChipWords {
    words: Vec<u64>,
    len: usize,
}

impl ChipWords {
    /// An empty chip stream.
    pub fn new() -> Self {
        ChipWords::default()
    }

    /// A stream of `len` zero chips.
    pub fn zeros(len: usize) -> Self {
        ChipWords {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Packs a `&[bool]` chip stream.
    pub fn from_bools(chips: &[bool]) -> Self {
        let mut words = vec![0u64; chips.len().div_ceil(64)];
        for (i, &c) in chips.iter().enumerate() {
            if c {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        ChipWords {
            words,
            len: chips.len(),
        }
    }

    /// Packs a sequence of 32-chip codewords (chip 0 of each codeword in
    /// its LSB), two codewords per `u64` lane.
    pub fn from_codewords(codewords: &[u32]) -> Self {
        let mut out = ChipWords::new();
        out.extend_codewords(codewords);
        out
    }

    /// Unpacks to the reference `Vec<bool>` representation.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Rebuilds a stream from raw lanes previously obtained through
    /// [`Self::words`] and [`Self::len`] — the simulator
    /// snapshot/restore path. Returns `None` when the inputs violate
    /// the canonical form (wrong lane count, or nonzero bits at
    /// positions `>= len`), so a corrupted snapshot cannot smuggle in a
    /// non-canonical stream that breaks `PartialEq`/`count_ones`.
    pub fn from_raw(words: Vec<u64>, len: usize) -> Option<Self> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        if !len.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                if last >> (len % 64) != 0 {
                    return None;
                }
            }
        }
        Some(ChipWords { words, len })
    }

    /// Number of chips.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the stream holds no chips.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw 64-chip lanes (tail bits past `len` are zero).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Chip `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "chip index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets chip `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, chip: bool) {
        assert!(i < self.len, "chip index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if chip {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips chip `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn toggle(&mut self, i: usize) {
        assert!(i < self.len, "chip index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1 << (i % 64);
    }

    /// Flips chip `i` on the hot path: the caller guarantees `i < len`
    /// (only debug-asserted). A caller that breaks that contract either
    /// panics on the word index or flips a canonical-zero tail bit,
    /// corrupting equality comparisons — use [`Self::toggle`] unless the
    /// bound is already established. The sparse corruption loop lives on
    /// this: one predictable slice check and one 64-bit XOR per flip,
    /// with no per-flip assert formatting or tail re-masking.
    #[inline]
    pub fn toggle_in_bounds(&mut self, i: usize) {
        debug_assert!(i < self.len, "chip index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1 << (i % 64);
    }

    /// Appends one chip.
    pub fn push(&mut self, chip: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if chip {
            self.words[self.len / 64] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Appends one 32-chip codeword.
    pub fn push_codeword(&mut self, codeword: u32) {
        let b = self.len % 64;
        let v = codeword as u64;
        if b == 0 {
            self.words.push(v);
        } else {
            *self.words.last_mut().expect("len % 64 != 0 implies a word") |= v << b;
            if b > 32 {
                self.words.push(v >> (64 - b));
            }
        }
        self.len += CHIPS_PER_SYMBOL;
    }

    /// Appends a sequence of 32-chip codewords.
    pub fn extend_codewords(&mut self, codewords: &[u32]) {
        self.words
            .reserve(codewords.len().div_ceil(2).saturating_sub(1));
        for &cw in codewords {
            self.push_codeword(cw);
        }
    }

    /// 64 chips starting at chip `offset`, zero-padded past the end.
    #[inline]
    pub fn extract_u64(&self, offset: usize) -> u64 {
        let w = offset / 64;
        let b = offset % 64;
        let lo = self.words.get(w).copied().unwrap_or(0) >> b;
        if b == 0 {
            lo
        } else {
            lo | (self.words.get(w + 1).copied().unwrap_or(0) << (64 - b))
        }
    }

    /// 32 chips (one codeword) starting at chip `offset`, zero-padded
    /// past the end.
    #[inline]
    pub fn extract_u32(&self, offset: usize) -> u32 {
        let w = offset / 64;
        let b = offset % 64;
        let lo = self.words.get(w).copied().unwrap_or(0) >> b;
        if b <= 32 {
            // The whole codeword lives in one lane (the codeword-aligned
            // hot case: b is 0 or 32).
            lo as u32
        } else {
            (lo | (self.words.get(w + 1).copied().unwrap_or(0) << (64 - b))) as u32
        }
    }

    /// Appends `n_lanes` 64-chip lanes starting at chip `offset` to
    /// `out`, reading chips past the end of the stream as zero (the
    /// [`Self::extract_u64`] contract).
    ///
    /// This is the arbitrary-offset gather primitive: one funnel shift
    /// per lane over a single linear walk of the source words — the
    /// shift amount and word cursor are hoisted out of the loop, and
    /// each source word is loaded once and reused for two adjacent
    /// lanes, instead of re-deriving `word/bit` offsets (and re-loading
    /// both words) per extraction as [`Self::extract_u64`] must.
    pub fn gather_lanes_into(&self, offset: usize, n_lanes: usize, out: &mut Vec<u64>) {
        out.reserve(n_lanes);
        let w0 = offset / 64;
        let b = offset % 64;
        let src = self.words.get(w0..).unwrap_or(&[]);
        if b == 0 {
            let n = n_lanes.min(src.len());
            out.extend_from_slice(&src[..n]);
            for _ in n..n_lanes {
                out.push(0);
            }
        } else {
            // Funnel: lane i = src[i] >> b | src[i+1] << (64-b); the
            // shifted-down tail of each word is carried into the next
            // lane, so every source word is shifted exactly twice and
            // loaded once.
            let shl = 64 - b;
            let mut carry = src.first().copied().unwrap_or(0) >> b;
            let interior = n_lanes.min(src.len().saturating_sub(1));
            for &next in src.iter().skip(1).take(interior) {
                out.push(carry | (next << shl));
                carry = next >> b;
            }
            if interior < n_lanes {
                out.push(carry); // last partial source word, zero-padded
                for _ in interior + 1..n_lanes {
                    out.push(0);
                }
            }
        }
    }

    /// Copies `n_chips` chips starting at `start` into a new stream,
    /// reading chips past the end of `self` as zero (same zero-padding
    /// contract as [`Self::extract_u64`]).
    ///
    /// This is how a [`SymbolView`](crate::view::SymbolView) re-bases a
    /// frame's link section to a codeword-aligned origin: the copy is
    /// one [`Self::gather_lanes_into`] funnel pass, after which every
    /// 32-chip extraction in the view hits the aligned fast path.
    pub fn extract_range(&self, start: usize, n_chips: usize) -> ChipWords {
        let mut words = Vec::new();
        self.gather_lanes_into(start, n_chips.div_ceil(64), &mut words);
        let mut out = ChipWords {
            words,
            len: n_chips,
        };
        out.mask_tail();
        out
    }

    /// Total number of 1-chips.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another stream of the same length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn hamming_to(&self, other: &ChipWords) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Shortens the stream to `len` chips (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.len = len;
        self.words.truncate(len.div_ceil(64));
        self.mask_tail();
    }

    /// Overwrites the chips of 64-chip lane `word_idx` selected by `mask`
    /// with the corresponding bits of `bits`. Mask bits past the end of
    /// the stream are ignored, preserving the canonical-tail invariant.
    ///
    /// This is the dense-corruption primitive: one RNG word replaces a
    /// whole jammed 64-chip block.
    ///
    /// # Panics
    /// Panics if `word_idx` is out of range.
    #[inline]
    pub fn apply_mask64(&mut self, word_idx: usize, mask: u64, bits: u64) {
        let mask = mask & self.tail_mask(word_idx);
        let w = &mut self.words[word_idx];
        *w = (*w & !mask) | (bits & mask);
    }

    /// XORs a flip mask into 64-chip lane `word_idx`. Mask bits past the
    /// end of the stream are ignored, preserving the canonical-tail
    /// invariant.
    ///
    /// # Panics
    /// Panics if `word_idx` is out of range.
    #[inline]
    pub fn xor_word(&mut self, word_idx: usize, flips: u64) {
        self.words[word_idx] ^= flips & self.tail_mask(word_idx);
    }

    /// Iterator over chips, chip 0 first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// Valid-bit mask of lane `word_idx` (all ones except past-`len`
    /// tail bits of the last word).
    #[inline]
    fn tail_mask(&self, word_idx: usize) -> u64 {
        let lane_end = (word_idx + 1) * 64;
        if lane_end <= self.len {
            u64::MAX
        } else {
            let valid = self.len - word_idx * 64;
            if valid == 0 {
                0
            } else {
                u64::MAX >> (64 - valid)
            }
        }
    }

    /// Zeroes any bits past `len` in the last word.
    fn mask_tail(&mut self) {
        let Some(idx) = self.words.len().checked_sub(1) else {
            return;
        };
        if idx * 64 + 64 > self.len {
            let valid = self.len - idx * 64;
            let mask = if valid == 0 {
                0
            } else {
                u64::MAX >> (64 - valid)
            };
            self.words[idx] &= mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full chip table from the IEEE 802.15.4 standard, written
    /// chip 0 first, used to pin the generated code book.
    const REFERENCE: [&str; NUM_SYMBOLS] = [
        "11011001110000110101001000101110",
        "11101101100111000011010100100010",
        "00101110110110011100001101010010",
        "00100010111011011001110000110101",
        "01010010001011101101100111000011",
        "00110101001000101110110110011100",
        "11000011010100100010111011011001",
        "10011100001101010010001011101101",
        "10001100100101100000011101111011",
        "10111000110010010110000001110111",
        "01111011100011001001011000000111",
        "01110111101110001100100101100000",
        "00000111011110111000110010010110",
        "01100000011101111011100011001001",
        "10010110000001110111101110001100",
        "11001001011000000111011110111000",
    ];

    fn parse(s: &str) -> u32 {
        let mut w = 0u32;
        for (i, c) in s.chars().enumerate() {
            if c == '1' {
                w |= 1 << i;
            }
        }
        w
    }

    #[test]
    fn codebook_matches_standard_table() {
        for (s, reference) in REFERENCE.iter().enumerate() {
            assert_eq!(
                CODEBOOK[s],
                parse(reference),
                "codebook mismatch at symbol {s}"
            );
        }
    }

    #[test]
    fn codebook_entries_are_distinct() {
        for (i, &a) in CODEBOOK.iter().enumerate() {
            for &b in &CODEBOOK[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn min_distance_is_twelve() {
        assert_eq!(min_codeword_distance(), 12);
    }

    #[test]
    fn decide_is_identity_on_clean_codewords() {
        for (s, &word) in CODEBOOK.iter().enumerate() {
            let d = decide(word);
            assert_eq!(d.symbol as usize, s);
            assert_eq!(d.distance, 0);
        }
    }

    #[test]
    fn decide_tolerates_small_corruption() {
        // Flip 3 chips of every codeword: decode must still be exact and
        // the reported hint must equal the number of flips (3 < 12/2).
        for (s, &word) in CODEBOOK.iter().enumerate() {
            let corrupted = word ^ 0b1001_0000_0000_0000_0100_0000_0000_0000;
            let d = decide(corrupted);
            assert_eq!(d.symbol as usize, s, "symbol {s} misdecoded");
            assert_eq!(d.distance, 3);
        }
    }

    #[test]
    fn hamming_is_symmetric_and_zero_on_equal() {
        assert_eq!(hamming(0xdead_beef, 0xdead_beef), 0);
        assert_eq!(hamming(0x0, 0xffff_ffff), 32);
        assert_eq!(
            hamming(0x1234_5678, 0x8765_4321),
            hamming(0x8765_4321, 0x1234_5678)
        );
    }

    #[test]
    fn chips_roundtrip_through_pack() {
        for &word in CODEBOOK.iter() {
            let collected: Vec<bool> = chips_of(word).collect();
            assert_eq!(collected.len(), CHIPS_PER_SYMBOL);
            let mut repacked = 0u32;
            for (i, c) in collected.iter().enumerate() {
                if *c {
                    repacked |= 1 << i;
                }
            }
            assert_eq!(repacked, word);
        }
    }

    #[test]
    fn chip_words_roundtrip_bools() {
        let mut rng_state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for len in [0usize, 1, 31, 32, 63, 64, 65, 100, 127, 128, 1000] {
            let chips: Vec<bool> = (0..len).map(|_| next() & 1 == 1).collect();
            let packed = ChipWords::from_bools(&chips);
            assert_eq!(packed.len(), len);
            assert_eq!(packed.to_bools(), chips);
            assert_eq!(
                packed.count_ones(),
                chips.iter().filter(|&&c| c).count(),
                "len {len}"
            );
            let collected: Vec<bool> = packed.iter().collect();
            assert_eq!(collected, chips);
        }
    }

    #[test]
    fn chip_words_from_codewords_matches_unpacked() {
        let codewords: Vec<u32> = CODEBOOK.to_vec();
        let packed = ChipWords::from_codewords(&codewords);
        assert_eq!(packed.len(), codewords.len() * CHIPS_PER_SYMBOL);
        let bools: Vec<bool> = codewords.iter().flat_map(|&w| chips_of(w)).collect();
        assert_eq!(packed, ChipWords::from_bools(&bools));
        // Aligned extraction returns the original codewords.
        for (s, &w) in codewords.iter().enumerate() {
            assert_eq!(packed.extract_u32(s * CHIPS_PER_SYMBOL), w);
        }
    }

    #[test]
    fn push_codeword_handles_unaligned_tails() {
        // Start from an odd chip count so codeword appends straddle word
        // boundaries at every phase.
        for lead in [0usize, 1, 17, 32, 33, 63] {
            let mut packed = ChipWords::zeros(lead);
            let mut reference = vec![false; lead];
            for &w in CODEBOOK.iter().take(5) {
                packed.push_codeword(w);
                reference.extend(chips_of(w));
            }
            assert_eq!(packed, ChipWords::from_bools(&reference), "lead {lead}");
        }
    }

    #[test]
    fn gather_lanes_matches_per_lane_extraction() {
        let mut rng_state = 0xA5A5_5A5A_DEAD_BEEFu64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for len in [0usize, 1, 63, 64, 65, 130, 1000] {
            let chips: Vec<bool> = (0..len).map(|_| next() & 1 == 1).collect();
            let packed = ChipWords::from_bools(&chips);
            for offset in [0usize, 1, 17, 32, 63, 64, 65, 100, len, len + 70] {
                for n_lanes in [0usize, 1, 2, 3, 7] {
                    let mut got = Vec::new();
                    packed.gather_lanes_into(offset, n_lanes, &mut got);
                    let want: Vec<u64> = (0..n_lanes)
                        .map(|i| packed.extract_u64(offset + 64 * i))
                        .collect();
                    assert_eq!(got, want, "len {len} offset {offset} lanes {n_lanes}");
                }
            }
        }
    }

    #[test]
    fn gather_lanes_appends_without_clearing() {
        let packed = ChipWords::from_bools(&[true; 64]);
        let mut out = vec![0xDEADu64];
        packed.gather_lanes_into(0, 1, &mut out);
        assert_eq!(out, vec![0xDEAD, u64::MAX]);
    }

    #[test]
    fn extract_zero_pads_past_end() {
        let packed = ChipWords::from_bools(&[true; 40]);
        assert_eq!(packed.extract_u64(0), (1u64 << 40) - 1);
        assert_eq!(packed.extract_u64(8), (1u64 << 32) - 1);
        assert_eq!(packed.extract_u64(40), 0);
        assert_eq!(packed.extract_u64(1000), 0);
        assert_eq!(packed.extract_u32(16), 0x00FF_FFFF);
    }

    #[test]
    fn set_toggle_push_maintain_canonical_tail() {
        let mut packed = ChipWords::zeros(70);
        packed.set(69, true);
        packed.toggle(0);
        packed.toggle(69); // back to 0
        assert_eq!(packed.count_ones(), 1);
        assert!(packed.get(0));
        packed.push(true);
        assert_eq!(packed.len(), 71);
        assert!(packed.get(70));
        // Equality is structural: rebuilding from bools matches.
        assert_eq!(packed, ChipWords::from_bools(&packed.to_bools()));
    }

    #[test]
    fn truncate_clears_tail_bits() {
        let mut packed = ChipWords::from_bools(&[true; 128]);
        packed.truncate(70);
        assert_eq!(packed.len(), 70);
        assert_eq!(packed.count_ones(), 70);
        assert_eq!(packed, ChipWords::from_bools(&[true; 70]));
        // extract past the new end zero-pads.
        assert_eq!(packed.extract_u64(64), (1 << 6) - 1);
    }

    #[test]
    fn apply_mask64_respects_mask_and_tail() {
        let mut packed = ChipWords::zeros(96);
        packed.apply_mask64(0, 0x0000_0000_0000_FF00, u64::MAX);
        assert_eq!(packed.count_ones(), 8);
        // Second lane only has 32 valid chips; mask bits past len are
        // dropped.
        packed.apply_mask64(1, u64::MAX, u64::MAX);
        assert_eq!(packed.count_ones(), 8 + 32);
        assert_eq!(packed, ChipWords::from_bools(&packed.to_bools()));
    }

    #[test]
    fn hamming_to_counts_differences() {
        let a = ChipWords::from_bools(&[true, false, true, false, true]);
        let b = ChipWords::from_bools(&[true, true, true, true, true]);
        assert_eq!(a.hamming_to(&b), 2);
        assert_eq!(a.hamming_to(&a), 0);
    }

    #[test]
    fn symbol_timing_constants_are_consistent() {
        assert_eq!(SYMBOL_RATE_HZ, 62_500);
        assert_eq!(PEAK_BIT_RATE, 250_000);
        // 32 chips at 2 Mchip/s = 16 µs per codeword.
        assert_eq!(
            CHIPS_PER_SYMBOL as u64 * 1_000_000 / CHIP_RATE_HZ,
            SYMBOL_TIME_US
        );
    }
}
