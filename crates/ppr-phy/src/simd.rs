//! Vectorized nearest-codeword despreading.
//!
//! [`chips::decide`](crate::chips::decide) scans all sixteen codewords of
//! the 802.15.4 book with an XOR + popcount per candidate — 16 popcounts
//! per received symbol. After PR 2 packed the chip pipeline into `u64`
//! lanes, that scan became the dominant receive-side stage (~33 µs per
//! 100 k chips), so this module batches it across symbols and vectorizes
//! the whole scan with `core::arch` x86-64 intrinsics:
//!
//! * **SSSE3** — 4 codewords per 128-bit register; per-lane popcount via
//!   the classic `pshufb` nibble lookup (`maddubs`/`madd` reduce the
//!   per-byte counts into 32-bit lanes).
//! * **AVX2** — the same nibble-LUT popcount widened to 8 codewords per
//!   256-bit register.
//! * **AVX-512** — 16 codewords per 512-bit register with the dedicated
//!   `vpopcntd` instruction (`AVX512VPOPCNTDQ`); masked loads handle the
//!   tail, so there is no scalar remainder loop at all.
//!
//! Every kernel reproduces `decide` **bit-identically**, including its
//! tie-break toward the lowest symbol index: candidates are folded as
//! `(distance << 4) | symbol` keys whose numeric minimum selects the
//! smallest distance and breaks ties toward the lowest symbol — exactly
//! the scalar fold in `chips::decide`. `tests/simd_parity.rs` at the
//! workspace root proves all kernels agree with the scalar reference on
//! arbitrary inputs.
//!
//! ## Kernel selection
//!
//! [`DespreadKernel::active`] picks the widest kernel the CPU supports
//! (via `is_x86_feature_detected!`) once per process and caches it.
//! Setting the environment variable `PPR_NO_SIMD=1` before the first
//! despread forces the scalar reference path — the escape hatch for
//! debugging and for apples-to-apples baseline measurements. On
//! non-x86-64 targets only the scalar kernel exists.
//!
//! This module is the only place in the workspace that uses `unsafe`
//! (the crate is `#![deny(unsafe_code)]`): every unsafe block is a
//! `core::arch` intrinsic call guarded by the corresponding runtime
//! feature check at dispatch time. The `unsafe-containment` lint
//! (`cargo run -p ppr-lint`) enforces both halves mechanically — only
//! this module may contain `unsafe`, and every site must carry a
//! `// SAFETY:` justification.

use crate::chips::{decide, Decision};
use std::sync::OnceLock;

/// One despreading implementation: the scalar reference or one of the
/// vectorized codebook scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DespreadKernel {
    /// The portable scalar reference (`chips::decide` in a loop).
    Scalar,
    /// 128-bit `pshufb` nibble-popcount scan (4 codewords per step).
    Ssse3,
    /// 256-bit `pshufb` nibble-popcount scan (8 codewords per step).
    Avx2,
    /// 512-bit `vpopcntd` scan (16 codewords per step, masked tail).
    Avx512,
}

impl DespreadKernel {
    /// Short name used in bench output and JSON snapshots.
    pub fn name(self) -> &'static str {
        match self {
            DespreadKernel::Scalar => "scalar",
            DespreadKernel::Ssse3 => "ssse3",
            DespreadKernel::Avx2 => "avx2",
            DespreadKernel::Avx512 => "avx512",
        }
    }

    /// Every kernel this CPU can run, widest last. Always starts with
    /// [`DespreadKernel::Scalar`]; ignores `PPR_NO_SIMD`.
    pub fn available() -> Vec<DespreadKernel> {
        let mut out = vec![DespreadKernel::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("ssse3") {
                out.push(DespreadKernel::Ssse3);
            }
            if is_x86_feature_detected!("avx2") {
                out.push(DespreadKernel::Avx2);
            }
            if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq") {
                out.push(DespreadKernel::Avx512);
            }
        }
        out
    }

    /// The kernel every despread in this process uses: the widest
    /// available one, or the scalar reference when `PPR_NO_SIMD=1` is
    /// set. Detected once and cached; changing the environment variable
    /// afterwards has no effect.
    pub fn active() -> DespreadKernel {
        static ACTIVE: OnceLock<DespreadKernel> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            // ppr-lint: allow(env-hygiene) — the documented kernel escape
            // hatch; read once per process and cached, so it cannot make
            // two despread calls in one run disagree.
            if std::env::var_os("PPR_NO_SIMD").is_some_and(|v| v == "1") {
                return DespreadKernel::Scalar;
            }
            *Self::available().last().expect("scalar always available")
        })
    }

    /// Decodes every received 32-chip word with this kernel, appending
    /// one [`Decision`] per word to `out`. Bit-identical to
    /// [`chips::decide`](crate::chips::decide) on each word for every
    /// kernel.
    pub fn decide_into(self, received: &[u32], out: &mut Vec<Decision>) {
        out.reserve(received.len());
        match self {
            DespreadKernel::Scalar => scalar_batch(received, out),
            #[cfg(target_arch = "x86_64")]
            DespreadKernel::Ssse3 => x86::run_ssse3(received, out),
            #[cfg(target_arch = "x86_64")]
            DespreadKernel::Avx2 => x86::run_avx2(received, out),
            #[cfg(target_arch = "x86_64")]
            DespreadKernel::Avx512 => x86::run_avx512(received, out),
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar_batch(received, out),
        }
    }
}

/// Batch nearest-codeword decode with the process-wide
/// [`DespreadKernel::active`] kernel: one [`Decision`] per received
/// 32-chip word.
pub fn decide_batch(received: &[u32]) -> Vec<Decision> {
    let mut out = Vec::with_capacity(received.len());
    DespreadKernel::active().decide_into(received, &mut out);
    out
}

/// Decodes `n` codeword-aligned symbols straight out of packed 64-chip
/// lanes — codeword `2k` in the low half of lane `k`, codeword `2k + 1`
/// in the high half, the layout
/// [`ChipWords`](crate::chips::ChipWords) stores — with no intermediate
/// gather copy on little-endian x86-64. This is the
/// [`SymbolView`](crate::view::SymbolView) fast path: a re-based view's
/// symbols are exactly this layout.
///
/// # Panics
/// Panics if `n` exceeds the `2 × lanes.len()` codewords available.
pub fn decide_lanes_into(lanes: &[u64], n: usize, out: &mut Vec<Decision>) {
    assert!(
        n <= lanes.len() * 2,
        "{n} codewords from {} lanes",
        lanes.len()
    );
    #[cfg(all(target_arch = "x86_64", target_endian = "little"))]
    {
        x86::run_lanes(lanes, n, out);
    }
    #[cfg(not(all(target_arch = "x86_64", target_endian = "little")))]
    {
        let words: Vec<u32> = (0..n)
            .map(|s| {
                let w = lanes[s / 2];
                if s % 2 == 0 {
                    w as u32
                } else {
                    (w >> 32) as u32
                }
            })
            .collect();
        DespreadKernel::active().decide_into(&words, out);
    }
}

/// The scalar reference batch: [`chips::decide`](crate::chips::decide)
/// per word.
fn scalar_batch(received: &[u32], out: &mut Vec<Decision>) {
    out.extend(received.iter().map(|&w| decide(w)));
}

/// Unpacks a `(distance << 4) | symbol` key lane into a [`Decision`].
#[cfg(target_arch = "x86_64")]
#[inline]
fn decision_from_key(key: u32) -> Decision {
    Decision {
        symbol: (key & 0xF) as u8,
        distance: (key >> 4) as u8,
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // core::arch intrinsics; dispatch checks features.
mod x86 {
    use super::decision_from_key;
    use crate::chips::{decide, Decision, CODEBOOK};
    use core::arch::x86_64::*;

    // All kernels fold `(hamming << 4) | symbol` keys with an unsigned
    // minimum, mirroring the branchless scalar fold in `chips::decide`.
    // Keys are at most (32 << 4) | 15 = 527, so they fit comfortably in
    // 16 bits — which is what lets the SSSE3 kernel get away with the
    // SSE2 *signed* 16-bit minimum on 32-bit lanes whose upper halves
    // are zero.

    /// Safe entry: re-asserts the feature (a cached atomic load) so the
    /// `unsafe` call is locally justified, not dependent on the caller.
    pub(super) fn run_ssse3(received: &[u32], out: &mut Vec<Decision>) {
        assert!(is_x86_feature_detected!("ssse3"));
        // SAFETY: feature presence checked on the line above.
        unsafe { ssse3_batch(received, out) }
    }

    /// Safe entry for the AVX2 kernel (see [`run_ssse3`]).
    pub(super) fn run_avx2(received: &[u32], out: &mut Vec<Decision>) {
        assert!(is_x86_feature_detected!("avx2"));
        // SAFETY: feature presence checked on the line above.
        unsafe { avx2_batch(received, out) }
    }

    /// Safe entry for the AVX-512 kernel (see [`run_ssse3`]).
    pub(super) fn run_avx512(received: &[u32], out: &mut Vec<Decision>) {
        assert!(is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq"));
        // SAFETY: feature presence checked on the line above.
        unsafe { avx512_batch(received, out) }
    }

    /// Zero-copy lane decode: on little-endian x86-64 a `&[u64]` of
    /// packed 64-chip lanes *is* a `&[u32]` of codewords in symbol
    /// order, so the active kernel can read the lane memory directly.
    #[cfg(target_endian = "little")]
    pub(super) fn run_lanes(lanes: &[u64], n: usize, out: &mut Vec<Decision>) {
        // SAFETY: `u32` has weaker alignment than `u64`; the slice
        // covers `n ≤ 2 × lanes.len()` `u32`s inside the lanes
        // allocation; `u32` has no invalid bit patterns; and the
        // reborrow is read-only for the lifetime of `words`.
        let words: &[u32] = unsafe { core::slice::from_raw_parts(lanes.as_ptr() as *const u32, n) };
        super::DespreadKernel::active().decide_into(words, out);
    }

    /// Per-32-bit-lane popcount for 128-bit vectors: `pshufb` nibble
    /// lookup, then `maddubs`/`madd` to sum the four byte counts of each
    /// lane (counts ≤ 8 per byte, so the 16-bit partials cannot
    /// overflow).
    // SAFETY: caller must ensure SSSE3 is available (`run_ssse3`
    // asserts it); the body is pure register arithmetic — no memory
    // access, no alignment or validity obligations.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn popcnt_epi32_sse(x: __m128i) -> __m128i {
        let lut = _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
        let mask = _mm_set1_epi8(0x0F);
        let lo = _mm_and_si128(x, mask);
        let hi = _mm_and_si128(_mm_srli_epi16::<4>(x), mask);
        let per_byte = _mm_add_epi8(_mm_shuffle_epi8(lut, lo), _mm_shuffle_epi8(lut, hi));
        let pairs = _mm_maddubs_epi16(per_byte, _mm_set1_epi8(1));
        _mm_madd_epi16(pairs, _mm_set1_epi16(1))
    }

    /// SSSE3 kernel: 4 received codewords per iteration.
    // SAFETY: caller must ensure SSSE3 is available (`run_ssse3`
    // asserts it). All loads/stores are `loadu`/`storeu` (no alignment
    // requirement) on in-bounds `chunks_exact` slices and local arrays.
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_batch(received: &[u32], out: &mut Vec<Decision>) {
        let mut chunks = received.chunks_exact(4);
        for chunk in &mut chunks {
            let r = _mm_loadu_si128(chunk.as_ptr() as *const __m128i);
            // 0x7FFF per 32-bit lane: larger than any key, and the
            // largest value the signed 16-bit minimum handles correctly.
            let mut best = _mm_set1_epi32(0x7FFF);
            for (s, &cw) in CODEBOOK.iter().enumerate() {
                let x = _mm_xor_si128(r, _mm_set1_epi32(cw as i32));
                let key = _mm_or_si128(
                    _mm_slli_epi32::<4>(popcnt_epi32_sse(x)),
                    _mm_set1_epi32(s as i32),
                );
                // Keys fit in the low 16 bits with zeroed upper halves,
                // so the SSE2 signed 16-bit min is exact here and the
                // kernel needs nothing newer than SSSE3.
                best = _mm_min_epi16(best, key);
            }
            let mut lanes = [0u32; 4];
            _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, best);
            out.extend(lanes.iter().map(|&k| decision_from_key(k)));
        }
        out.extend(chunks.remainder().iter().map(|&w| decide(w)));
    }

    /// Per-32-bit-lane popcount for 256-bit vectors (same nibble LUT,
    /// duplicated across both 128-bit halves for the in-lane `pshufb`).
    // SAFETY: caller must ensure AVX2 is available (`run_avx2` asserts
    // it); pure register arithmetic, no memory access.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt_epi32_avx2(x: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let mask = _mm256_set1_epi8(0x0F);
        let lo = _mm256_and_si256(x, mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(x), mask);
        let per_byte = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        let pairs = _mm256_maddubs_epi16(per_byte, _mm256_set1_epi8(1));
        _mm256_madd_epi16(pairs, _mm256_set1_epi16(1))
    }

    /// AVX2 kernel: 8 received codewords per iteration.
    // SAFETY: caller must ensure AVX2 is available (`run_avx2` asserts
    // it). Unaligned `loadu`/`storeu` only, on in-bounds `chunks_exact`
    // slices and local arrays.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_batch(received: &[u32], out: &mut Vec<Decision>) {
        let mut chunks = received.chunks_exact(8);
        for chunk in &mut chunks {
            let r = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
            let mut best = _mm256_set1_epi32(u32::MAX as i32);
            for (s, &cw) in CODEBOOK.iter().enumerate() {
                let x = _mm256_xor_si256(r, _mm256_set1_epi32(cw as i32));
                let key = _mm256_or_si256(
                    _mm256_slli_epi32::<4>(popcnt_epi32_avx2(x)),
                    _mm256_set1_epi32(s as i32),
                );
                best = _mm256_min_epu32(best, key);
            }
            let mut lanes = [0u32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, best);
            out.extend(lanes.iter().map(|&k| decision_from_key(k)));
        }
        out.extend(chunks.remainder().iter().map(|&w| decide(w)));
    }

    /// AVX-512 kernel: 16 received codewords per iteration with native
    /// per-lane popcount; the tail is a masked load, not a scalar loop.
    // SAFETY: caller must ensure AVX512F + AVX512VPOPCNTDQ are
    // available (`run_avx512` asserts both). The masked `loadu` reads
    // only the `n` lanes covered by `mask`, all inside `received[i..]`;
    // the store targets a local array.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn avx512_batch(received: &[u32], out: &mut Vec<Decision>) {
        let mut i = 0;
        while i < received.len() {
            let n = (received.len() - i).min(16);
            let mask: __mmask16 = if n == 16 { !0 } else { (1u16 << n) - 1 };
            let r = _mm512_maskz_loadu_epi32(mask, received.as_ptr().add(i) as *const i32);
            let mut best = _mm512_set1_epi32(u32::MAX as i32);
            for (s, &cw) in CODEBOOK.iter().enumerate() {
                let x = _mm512_xor_si512(r, _mm512_set1_epi32(cw as i32));
                let key = _mm512_or_si512(
                    _mm512_slli_epi32::<4>(_mm512_popcnt_epi32(x)),
                    _mm512_set1_epi32(s as i32),
                );
                best = _mm512_min_epu32(best, key);
            }
            let mut lanes = [0u32; 16];
            _mm512_storeu_si512(lanes.as_mut_ptr() as *mut __m512i, best);
            out.extend(lanes[..n].iter().map(|&k| decision_from_key(k)));
            i += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chips::CODEBOOK;

    /// Deterministic xorshift word stream for kernel tests.
    fn words(n: usize, mut state: u64) -> Vec<u32> {
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u32
            })
            .collect()
    }

    #[test]
    fn every_available_kernel_matches_scalar() {
        // Random words, clean codewords, all-zeros/ones, and every
        // length around the vector widths (tail handling).
        let mut inputs: Vec<u32> = words(333, 0xDEAD_BEEF_1234_5678);
        inputs.extend_from_slice(&CODEBOOK);
        inputs.push(0);
        inputs.push(u32::MAX);
        for kernel in DespreadKernel::available() {
            for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 333] {
                let slice = &inputs[..len.min(inputs.len())];
                let expect: Vec<Decision> = slice.iter().map(|&w| decide(w)).collect();
                let mut got = Vec::new();
                kernel.decide_into(slice, &mut got);
                assert_eq!(got, expect, "kernel {} len {len}", kernel.name());
            }
        }
    }

    #[test]
    fn ties_break_toward_lowest_symbol_in_every_kernel() {
        // A word equidistant from several codewords: all-zero chips are
        // 16 chips from many codewords; the scalar fold picks the lowest
        // symbol index, and every kernel must agree.
        let inputs = vec![0u32; 20];
        let expect = decide(0);
        for kernel in DespreadKernel::available() {
            let mut got = Vec::new();
            kernel.decide_into(&inputs, &mut got);
            assert!(
                got.iter().all(|d| *d == expect),
                "kernel {} broke tie differently",
                kernel.name()
            );
        }
    }

    #[test]
    fn active_kernel_is_available() {
        assert!(DespreadKernel::available().contains(&DespreadKernel::active()));
    }

    #[test]
    fn decide_batch_matches_per_word_decide() {
        let inputs = words(1000, 42);
        let batch = decide_batch(&inputs);
        for (i, &w) in inputs.iter().enumerate() {
            assert_eq!(batch[i], decide(w), "word {i}");
        }
    }

    #[test]
    fn kernel_names_are_distinct() {
        let names: Vec<_> = [
            DespreadKernel::Scalar,
            DespreadKernel::Ssse3,
            DespreadKernel::Avx2,
            DespreadKernel::Avx512,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }
}
