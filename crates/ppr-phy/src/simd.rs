//! Runtime-dispatched SIMD kernels: despreading and the DSP backend.
//!
//! Two kernel families live here, sharing one discipline — a portable
//! scalar reference, runtime feature detection, a cached process-wide
//! choice, and the `PPR_NO_SIMD=1` escape hatch:
//!
//! * [`DespreadKernel`] — the vectorized nearest-codeword scan (PR 6).
//! * [`DspKernel`] — the sample-level DSP backend's inner loops
//!   (this PR): waveform superposition ([`DspKernel::axpy_rotated`]),
//!   the matched-filter bank ([`DspKernel::demod_full_windows`]) and
//!   the SOVA trellis passes ([`DspKernel::sova_decode`]). Every
//!   kernel is **bit-identical** to its scalar reference — mandatory,
//!   because the collision-anatomy experiment (Fig. 13) feeds the DSP
//!   path into the pinned golden-registry fingerprint.
//!
//! ## Despreading
//!
//! [`chips::decide`](crate::chips::decide) scans all sixteen codewords of
//! the 802.15.4 book with an XOR + popcount per candidate — 16 popcounts
//! per received symbol. After PR 2 packed the chip pipeline into `u64`
//! lanes, that scan became the dominant receive-side stage (~33 µs per
//! 100 k chips), so this module batches it across symbols and vectorizes
//! the whole scan with `core::arch` x86-64 intrinsics:
//!
//! * **SSSE3** — 4 codewords per 128-bit register; per-lane popcount via
//!   the classic `pshufb` nibble lookup (`maddubs`/`madd` reduce the
//!   per-byte counts into 32-bit lanes).
//! * **AVX2** — the same nibble-LUT popcount widened to 8 codewords per
//!   256-bit register.
//! * **AVX-512** — 16 codewords per 512-bit register with the dedicated
//!   `vpopcntd` instruction (`AVX512VPOPCNTDQ`); masked loads handle the
//!   tail, so there is no scalar remainder loop at all.
//!
//! Every kernel reproduces `decide` **bit-identically**, including its
//! tie-break toward the lowest symbol index: candidates are folded as
//! `(distance << 4) | symbol` keys whose numeric minimum selects the
//! smallest distance and breaks ties toward the lowest symbol — exactly
//! the scalar fold in `chips::decide`. `tests/simd_parity.rs` at the
//! workspace root proves all kernels agree with the scalar reference on
//! arbitrary inputs.
//!
//! ## Kernel selection
//!
//! [`DespreadKernel::active`] and [`DspKernel::active`] each pick the
//! widest kernel the CPU supports (via `is_x86_feature_detected!`)
//! once per process and cache it. Setting the environment variable
//! `PPR_NO_SIMD=1` before the first use forces the scalar reference
//! paths — the escape hatch for debugging and for apples-to-apples
//! baseline measurements. On non-x86-64 targets only the scalar
//! kernels exist.
//!
//! This module is one of exactly two places in the workspace that use
//! `unsafe` (the other is `ppr_mac::clmul`, the PCLMULQDQ CRC-32; the
//! crate is `#![deny(unsafe_code)]`): every unsafe block is a
//! `core::arch` intrinsic call guarded by the corresponding runtime
//! feature check at dispatch time. The `unsafe-containment` lint
//! (`cargo run -p ppr-lint`) enforces both halves mechanically — only
//! this module and the `unsafe-allowlist` entries in `ppr-lint.toml`
//! may contain `unsafe`, and every site must carry a `// SAFETY:`
//! justification.

use crate::chips::{decide, Decision};
use crate::complex::Complex32;
use crate::sova::SovaBit;
use std::sync::OnceLock;

/// One despreading implementation: the scalar reference or one of the
/// vectorized codebook scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DespreadKernel {
    /// The portable scalar reference (`chips::decide` in a loop).
    Scalar,
    /// 128-bit `pshufb` nibble-popcount scan (4 codewords per step).
    Ssse3,
    /// 256-bit `pshufb` nibble-popcount scan (8 codewords per step).
    Avx2,
    /// 512-bit `vpopcntd` scan (16 codewords per step, masked tail).
    Avx512,
}

impl DespreadKernel {
    /// Short name used in bench output and JSON snapshots.
    pub fn name(self) -> &'static str {
        match self {
            DespreadKernel::Scalar => "scalar",
            DespreadKernel::Ssse3 => "ssse3",
            DespreadKernel::Avx2 => "avx2",
            DespreadKernel::Avx512 => "avx512",
        }
    }

    /// Every kernel this CPU can run, widest last. Always starts with
    /// [`DespreadKernel::Scalar`]; ignores `PPR_NO_SIMD`.
    pub fn available() -> Vec<DespreadKernel> {
        let mut out = vec![DespreadKernel::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("ssse3") {
                out.push(DespreadKernel::Ssse3);
            }
            if is_x86_feature_detected!("avx2") {
                out.push(DespreadKernel::Avx2);
            }
            if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq") {
                out.push(DespreadKernel::Avx512);
            }
        }
        out
    }

    /// The kernel every despread in this process uses: the widest
    /// available one, or the scalar reference when `PPR_NO_SIMD=1` is
    /// set. Detected once and cached; changing the environment variable
    /// afterwards has no effect.
    pub fn active() -> DespreadKernel {
        static ACTIVE: OnceLock<DespreadKernel> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            // ppr-lint: allow(env-hygiene) — the documented kernel escape
            // hatch; read once per process and cached, so it cannot make
            // two despread calls in one run disagree.
            if std::env::var_os("PPR_NO_SIMD").is_some_and(|v| v == "1") {
                return DespreadKernel::Scalar;
            }
            *Self::available().last().expect("scalar always available")
        })
    }

    /// Decodes every received 32-chip word with this kernel, appending
    /// one [`Decision`] per word to `out`. Bit-identical to
    /// [`chips::decide`](crate::chips::decide) on each word for every
    /// kernel.
    pub fn decide_into(self, received: &[u32], out: &mut Vec<Decision>) {
        out.reserve(received.len());
        match self {
            DespreadKernel::Scalar => scalar_batch(received, out),
            #[cfg(target_arch = "x86_64")]
            DespreadKernel::Ssse3 => x86::run_ssse3(received, out),
            #[cfg(target_arch = "x86_64")]
            DespreadKernel::Avx2 => x86::run_avx2(received, out),
            #[cfg(target_arch = "x86_64")]
            DespreadKernel::Avx512 => x86::run_avx512(received, out),
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar_batch(received, out),
        }
    }
}

/// Batch nearest-codeword decode with the process-wide
/// [`DespreadKernel::active`] kernel: one [`Decision`] per received
/// 32-chip word.
pub fn decide_batch(received: &[u32]) -> Vec<Decision> {
    let mut out = Vec::with_capacity(received.len());
    DespreadKernel::active().decide_into(received, &mut out);
    out
}

/// Decodes `n` codeword-aligned symbols straight out of packed 64-chip
/// lanes — codeword `2k` in the low half of lane `k`, codeword `2k + 1`
/// in the high half, the layout
/// [`ChipWords`](crate::chips::ChipWords) stores — with no intermediate
/// gather copy on little-endian x86-64. This is the
/// [`SymbolView`](crate::view::SymbolView) fast path: a re-based view's
/// symbols are exactly this layout.
///
/// # Panics
/// Panics if `n` exceeds the `2 × lanes.len()` codewords available.
pub fn decide_lanes_into(lanes: &[u64], n: usize, out: &mut Vec<Decision>) {
    assert!(
        n <= lanes.len() * 2,
        "{n} codewords from {} lanes",
        lanes.len()
    );
    #[cfg(all(target_arch = "x86_64", target_endian = "little"))]
    {
        x86::run_lanes(lanes, n, out);
    }
    #[cfg(not(all(target_arch = "x86_64", target_endian = "little")))]
    {
        let words: Vec<u32> = (0..n)
            .map(|s| {
                let w = lanes[s / 2];
                if s % 2 == 0 {
                    w as u32
                } else {
                    (w >> 32) as u32
                }
            })
            .collect();
        DespreadKernel::active().decide_into(&words, out);
    }
}

/// The scalar reference batch: [`chips::decide`](crate::chips::decide)
/// per word.
fn scalar_batch(received: &[u32], out: &mut Vec<Decision>) {
    out.extend(received.iter().map(|&w| decide(w)));
}

/// One DSP-backend implementation: the scalar reference or one of the
/// vectorized tiers.
///
/// Unlike despreading (integer XOR + popcount, where lane order is
/// irrelevant), these kernels run floating-point reductions, so each
/// one is built to reproduce the scalar reference's exact operation
/// *order and shape* — same multiplies, same addition order, no FMA
/// contraction — which is what makes them bit-identical rather than
/// merely close. `tests/dsp_simd_parity.rs` at the workspace root
/// proves the parity on arbitrary inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DspKernel {
    /// The portable scalar reference paths.
    Scalar,
    /// 128-bit tier: `addsub`-based complex rotation (SSE3) and the
    /// four-state SOVA trellis passes (one state per lane). The
    /// matched-filter bank stays scalar at this tier — it needs
    /// AVX2's gathers to beat the scalar loop.
    Sse3,
    /// 256-bit tier: adds the wide complex rotation and the gathered
    /// matched-filter bank (8 chips per step).
    Avx2,
}

impl DspKernel {
    /// Short name used in bench output and JSON snapshots.
    pub fn name(self) -> &'static str {
        match self {
            DspKernel::Scalar => "scalar",
            DspKernel::Sse3 => "sse3",
            DspKernel::Avx2 => "avx2",
        }
    }

    /// Every kernel this CPU can run, widest last. Always starts with
    /// [`DspKernel::Scalar`]; ignores `PPR_NO_SIMD`.
    pub fn available() -> Vec<DspKernel> {
        let mut out = vec![DspKernel::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("sse3") {
                out.push(DspKernel::Sse3);
            }
            if is_x86_feature_detected!("avx2") {
                out.push(DspKernel::Avx2);
            }
        }
        out
    }

    /// The kernel every DSP call in this process uses: the widest
    /// available one, or the scalar reference when `PPR_NO_SIMD=1` is
    /// set. Detected once and cached, independently of
    /// [`DespreadKernel::active`].
    pub fn active() -> DspKernel {
        static ACTIVE: OnceLock<DspKernel> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            // ppr-lint: allow(env-hygiene) — the documented kernel escape
            // hatch; read once per process and cached, so it cannot make
            // two DSP calls in one run disagree.
            if std::env::var_os("PPR_NO_SIMD").is_some_and(|v| v == "1") {
                return DspKernel::Scalar;
            }
            *Self::available().last().expect("scalar always available")
        })
    }

    /// Superposes a rotated, scaled waveform:
    /// `out[i] += (wave[i] * rot) * amp` for
    /// `i < min(out.len(), wave.len())` — the inner loop of the
    /// sample-level channel's transmitter superposition.
    ///
    /// Bit-identical to the scalar loop for every kernel: the complex
    /// multiply is decomposed into the same four products and two
    /// same-order additions as
    /// [`Complex32::mul`](crate::complex::Complex32), with no FMA
    /// contraction.
    pub fn axpy_rotated(self, out: &mut [Complex32], wave: &[Complex32], rot: Complex32, amp: f32) {
        match self {
            DspKernel::Scalar => axpy_rotated_scalar(out, wave, rot, amp),
            #[cfg(target_arch = "x86_64")]
            DspKernel::Sse3 => x86::run_axpy_sse3(out, wave, rot, amp),
            #[cfg(target_arch = "x86_64")]
            DspKernel::Avx2 => x86::run_axpy_avx2(out, wave, rot, amp),
            #[cfg(not(target_arch = "x86_64"))]
            _ => axpy_rotated_scalar(out, wave, rot, amp),
        }
    }

    /// Matched-filter bank over chips whose correlation window lies
    /// fully inside `samples`: appends one soft value per chip for
    /// chips `0..full`, where chip `k` correlates
    /// `samples[start + k·sps ..][..pulse.len()]` (rail selected by
    /// the chip's parity against `first_chip_even`) against `pulse`
    /// and normalizes by `energy`.
    ///
    /// The *caller* (`MskModem::demodulate`) computes `full` so that
    /// every window is in bounds and handles truncated tail chips with
    /// the scalar `chip_soft_value`, which keeps the graceful
    /// mid-pulse truncation semantics out of the hot kernel.
    ///
    /// # Panics
    /// Panics if any window `start + k·sps + pulse.len()`, `k < full`,
    /// exceeds `samples.len()`.
    #[allow(clippy::too_many_arguments)] // mirrors the demodulator's geometry verbatim
    pub fn demod_full_windows(
        self,
        samples: &[Complex32],
        pulse: &[f32],
        energy: f32,
        start: usize,
        sps: usize,
        full: usize,
        first_chip_even: bool,
        out: &mut Vec<f32>,
    ) {
        if full > 0 {
            assert!(
                start + (full - 1) * sps + pulse.len() <= samples.len(),
                "window of chip {} out of bounds",
                full - 1
            );
        }
        match self {
            #[cfg(target_arch = "x86_64")]
            DspKernel::Avx2 => x86::run_demod_avx2(
                samples,
                pulse,
                energy,
                start,
                sps,
                full,
                first_chip_even,
                out,
            ),
            _ => demod_full_windows_scalar(
                samples,
                pulse,
                energy,
                start,
                sps,
                full,
                first_chip_even,
                out,
            ),
        }
    }

    /// Max-log-MAP (SOVA) decode with this kernel. The scalar tier is
    /// [`sova::decode_reference`](crate::sova::decode_reference); the
    /// vector tiers run all three trellis passes with the four states
    /// of the (7,5) code in the four lanes of a 128-bit register.
    ///
    /// Bit-identical to the reference for matched-filter-scale inputs
    /// (see the kernel's derivation comment for the exact contract).
    pub fn sova_decode(self, soft: &[f32]) -> Option<Vec<SovaBit>> {
        match self {
            DspKernel::Scalar => crate::sova::decode_reference(soft),
            #[cfg(target_arch = "x86_64")]
            DspKernel::Sse3 | DspKernel::Avx2 => x86::run_sova(soft),
            #[cfg(not(target_arch = "x86_64"))]
            _ => crate::sova::decode_reference(soft),
        }
    }
}

/// The process's active kernel selection as one stable provenance
/// string, `despread=<name> dsp=<name>`. Simulator snapshots record it
/// so a restored run can report which code paths produced the capture,
/// and the differential harness (`ppr-cli diff`) prints it per
/// combination — the SIMD/scalar axis of a cross-validation run is
/// visible in the report, not inferred.
pub fn active_kernel_signature() -> String {
    format!(
        "despread={} dsp={}",
        DespreadKernel::active().name(),
        DspKernel::active().name()
    )
}

/// Scalar reference for [`DspKernel::axpy_rotated`] — the exact loop
/// the sample-level channel ran before vectorization.
fn axpy_rotated_scalar(out: &mut [Complex32], wave: &[Complex32], rot: Complex32, amp: f32) {
    for (o, &w) in out.iter_mut().zip(wave) {
        *o += (w * rot).scale(amp);
    }
}

/// Scalar reference for [`DspKernel::demod_full_windows`]: the body of
/// `MskModem::chip_soft_value` specialized to in-bounds windows (the
/// truncation branch can never fire, so dropping it changes nothing).
#[allow(clippy::too_many_arguments)] // mirrors the demodulator's geometry verbatim
fn demod_full_windows_scalar(
    samples: &[Complex32],
    pulse: &[f32],
    energy: f32,
    start: usize,
    sps: usize,
    full: usize,
    first_chip_even: bool,
    out: &mut Vec<f32>,
) {
    for k in 0..full {
        let even = (k % 2 == 0) == first_chip_even;
        let base = start + k * sps;
        let mut acc = 0.0f32;
        for (i, &p) in pulse.iter().enumerate() {
            let s = if even {
                samples[base + i].re
            } else {
                samples[base + i].im
            };
            acc += s * p;
        }
        out.push(acc / energy);
    }
}

/// Unpacks a `(distance << 4) | symbol` key lane into a [`Decision`].
#[cfg(target_arch = "x86_64")]
#[inline]
fn decision_from_key(key: u32) -> Decision {
    Decision {
        symbol: (key & 0xF) as u8,
        distance: (key >> 4) as u8,
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // core::arch intrinsics; dispatch checks features.
mod x86 {
    use super::decision_from_key;
    use crate::chips::{decide, Decision, CODEBOOK};
    use crate::complex::Complex32;
    use crate::sova::SovaBit;
    use core::arch::x86_64::*;

    // All kernels fold `(hamming << 4) | symbol` keys with an unsigned
    // minimum, mirroring the branchless scalar fold in `chips::decide`.
    // Keys are at most (32 << 4) | 15 = 527, so they fit comfortably in
    // 16 bits — which is what lets the SSSE3 kernel get away with the
    // SSE2 *signed* 16-bit minimum on 32-bit lanes whose upper halves
    // are zero.

    /// Safe entry: re-asserts the feature (a cached atomic load) so the
    /// `unsafe` call is locally justified, not dependent on the caller.
    pub(super) fn run_ssse3(received: &[u32], out: &mut Vec<Decision>) {
        assert!(is_x86_feature_detected!("ssse3"));
        // SAFETY: feature presence checked on the line above.
        unsafe { ssse3_batch(received, out) }
    }

    /// Safe entry for the AVX2 kernel (see [`run_ssse3`]).
    pub(super) fn run_avx2(received: &[u32], out: &mut Vec<Decision>) {
        assert!(is_x86_feature_detected!("avx2"));
        // SAFETY: feature presence checked on the line above.
        unsafe { avx2_batch(received, out) }
    }

    /// Safe entry for the AVX-512 kernel (see [`run_ssse3`]).
    pub(super) fn run_avx512(received: &[u32], out: &mut Vec<Decision>) {
        assert!(is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq"));
        // SAFETY: feature presence checked on the line above.
        unsafe { avx512_batch(received, out) }
    }

    /// Zero-copy lane decode: on little-endian x86-64 a `&[u64]` of
    /// packed 64-chip lanes *is* a `&[u32]` of codewords in symbol
    /// order, so the active kernel can read the lane memory directly.
    #[cfg(target_endian = "little")]
    pub(super) fn run_lanes(lanes: &[u64], n: usize, out: &mut Vec<Decision>) {
        // SAFETY: `u32` has weaker alignment than `u64`; the slice
        // covers `n ≤ 2 × lanes.len()` `u32`s inside the lanes
        // allocation; `u32` has no invalid bit patterns; and the
        // reborrow is read-only for the lifetime of `words`.
        let words: &[u32] = unsafe { core::slice::from_raw_parts(lanes.as_ptr() as *const u32, n) };
        super::DespreadKernel::active().decide_into(words, out);
    }

    /// Per-32-bit-lane popcount for 128-bit vectors: `pshufb` nibble
    /// lookup, then `maddubs`/`madd` to sum the four byte counts of each
    /// lane (counts ≤ 8 per byte, so the 16-bit partials cannot
    /// overflow).
    // SAFETY: caller must ensure SSSE3 is available (`run_ssse3`
    // asserts it); the body is pure register arithmetic — no memory
    // access, no alignment or validity obligations.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn popcnt_epi32_sse(x: __m128i) -> __m128i {
        let lut = _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
        let mask = _mm_set1_epi8(0x0F);
        let lo = _mm_and_si128(x, mask);
        let hi = _mm_and_si128(_mm_srli_epi16::<4>(x), mask);
        let per_byte = _mm_add_epi8(_mm_shuffle_epi8(lut, lo), _mm_shuffle_epi8(lut, hi));
        let pairs = _mm_maddubs_epi16(per_byte, _mm_set1_epi8(1));
        _mm_madd_epi16(pairs, _mm_set1_epi16(1))
    }

    /// SSSE3 kernel: 4 received codewords per iteration.
    // SAFETY: caller must ensure SSSE3 is available (`run_ssse3`
    // asserts it). All loads/stores are `loadu`/`storeu` (no alignment
    // requirement) on in-bounds `chunks_exact` slices and local arrays.
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_batch(received: &[u32], out: &mut Vec<Decision>) {
        let mut chunks = received.chunks_exact(4);
        for chunk in &mut chunks {
            let r = _mm_loadu_si128(chunk.as_ptr() as *const __m128i);
            // 0x7FFF per 32-bit lane: larger than any key, and the
            // largest value the signed 16-bit minimum handles correctly.
            let mut best = _mm_set1_epi32(0x7FFF);
            for (s, &cw) in CODEBOOK.iter().enumerate() {
                let x = _mm_xor_si128(r, _mm_set1_epi32(cw as i32));
                let key = _mm_or_si128(
                    _mm_slli_epi32::<4>(popcnt_epi32_sse(x)),
                    _mm_set1_epi32(s as i32),
                );
                // Keys fit in the low 16 bits with zeroed upper halves,
                // so the SSE2 signed 16-bit min is exact here and the
                // kernel needs nothing newer than SSSE3.
                best = _mm_min_epi16(best, key);
            }
            let mut lanes = [0u32; 4];
            _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, best);
            out.extend(lanes.iter().map(|&k| decision_from_key(k)));
        }
        out.extend(chunks.remainder().iter().map(|&w| decide(w)));
    }

    /// Per-32-bit-lane popcount for 256-bit vectors (same nibble LUT,
    /// duplicated across both 128-bit halves for the in-lane `pshufb`).
    // SAFETY: caller must ensure AVX2 is available (`run_avx2` asserts
    // it); pure register arithmetic, no memory access.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt_epi32_avx2(x: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let mask = _mm256_set1_epi8(0x0F);
        let lo = _mm256_and_si256(x, mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(x), mask);
        let per_byte = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        let pairs = _mm256_maddubs_epi16(per_byte, _mm256_set1_epi8(1));
        _mm256_madd_epi16(pairs, _mm256_set1_epi16(1))
    }

    /// AVX2 kernel: 8 received codewords per iteration.
    // SAFETY: caller must ensure AVX2 is available (`run_avx2` asserts
    // it). Unaligned `loadu`/`storeu` only, on in-bounds `chunks_exact`
    // slices and local arrays.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_batch(received: &[u32], out: &mut Vec<Decision>) {
        let mut chunks = received.chunks_exact(8);
        for chunk in &mut chunks {
            let r = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
            let mut best = _mm256_set1_epi32(u32::MAX as i32);
            for (s, &cw) in CODEBOOK.iter().enumerate() {
                let x = _mm256_xor_si256(r, _mm256_set1_epi32(cw as i32));
                let key = _mm256_or_si256(
                    _mm256_slli_epi32::<4>(popcnt_epi32_avx2(x)),
                    _mm256_set1_epi32(s as i32),
                );
                best = _mm256_min_epu32(best, key);
            }
            let mut lanes = [0u32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, best);
            out.extend(lanes.iter().map(|&k| decision_from_key(k)));
        }
        out.extend(chunks.remainder().iter().map(|&w| decide(w)));
    }

    /// AVX-512 kernel: 16 received codewords per iteration with native
    /// per-lane popcount; the tail is a masked load, not a scalar loop.
    // SAFETY: caller must ensure AVX512F + AVX512VPOPCNTDQ are
    // available (`run_avx512` asserts both). The masked `loadu` reads
    // only the `n` lanes covered by `mask`, all inside `received[i..]`;
    // the store targets a local array.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn avx512_batch(received: &[u32], out: &mut Vec<Decision>) {
        let mut i = 0;
        while i < received.len() {
            let n = (received.len() - i).min(16);
            let mask: __mmask16 = if n == 16 { !0 } else { (1u16 << n) - 1 };
            let r = _mm512_maskz_loadu_epi32(mask, received.as_ptr().add(i) as *const i32);
            let mut best = _mm512_set1_epi32(u32::MAX as i32);
            for (s, &cw) in CODEBOOK.iter().enumerate() {
                let x = _mm512_xor_si512(r, _mm512_set1_epi32(cw as i32));
                let key = _mm512_or_si512(
                    _mm512_slli_epi32::<4>(_mm512_popcnt_epi32(x)),
                    _mm512_set1_epi32(s as i32),
                );
                best = _mm512_min_epu32(best, key);
            }
            let mut lanes = [0u32; 16];
            _mm512_storeu_si512(lanes.as_mut_ptr() as *mut __m512i, best);
            out.extend(lanes[..n].iter().map(|&k| decision_from_key(k)));
            i += n;
        }
    }

    // ---- DSP kernels ---------------------------------------------------
    //
    // `Complex32` is `#[repr(C)] { re: f32, im: f32 }`, so a slice of
    // complex samples is layout-identical to interleaved
    // `[re, im, re, im, …]` f32s — even float lanes carry I, odd lanes
    // carry Q. Every kernel below leans on that layout.

    /// Safe entry for the SSE3 superposition kernel (see [`run_ssse3`]).
    pub(super) fn run_axpy_sse3(
        out: &mut [Complex32],
        wave: &[Complex32],
        rot: Complex32,
        amp: f32,
    ) {
        assert!(is_x86_feature_detected!("sse3"));
        // SAFETY: feature presence checked on the line above.
        unsafe { axpy_sse3(out, wave, rot, amp) }
    }

    /// Safe entry for the AVX2 superposition kernel (see [`run_ssse3`]).
    pub(super) fn run_axpy_avx2(
        out: &mut [Complex32],
        wave: &[Complex32],
        rot: Complex32,
        amp: f32,
    ) {
        assert!(is_x86_feature_detected!("avx2"));
        // SAFETY: feature presence checked on the line above.
        unsafe { axpy_avx2(out, wave, rot, amp) }
    }

    /// SSE3 superposition: 2 complex samples per 128-bit register.
    ///
    /// The complex multiply is the textbook `addsub` decomposition:
    /// with `w = [re, im, …]` interleaved,
    /// `t1 = w · rot.re` and `t2 = swap_pairs(w) · rot.im`, then
    /// `addsub(t1, t2)` subtracts in the even (I) lanes and adds in the
    /// odd (Q) lanes, yielding exactly
    /// `(re·rr − im·ri, im·rr + re·ri)` — the same four products and
    /// same-order additions as the scalar `Complex32::mul` (addition
    /// commutes bit-exactly; no FMA is emitted from intrinsics), so the
    /// result is bit-identical to the scalar reference.
    // SAFETY: caller must ensure SSE3 is available (`run_axpy_sse3`
    // asserts it). All loads/stores are unaligned `loadu`/`storeu` on
    // index `i ≤ n − 2` of slices of length ≥ n; the `Complex32` →
    // interleaved-f32 reinterpretation is sound because the type is
    // `#[repr(C)] { f32, f32 }`.
    #[target_feature(enable = "sse3")]
    unsafe fn axpy_sse3(out: &mut [Complex32], wave: &[Complex32], rot: Complex32, amp: f32) {
        let n = out.len().min(wave.len());
        let vrr = _mm_set1_ps(rot.re);
        let vri = _mm_set1_ps(rot.im);
        let vamp = _mm_set1_ps(amp);
        let mut i = 0;
        while i + 2 <= n {
            let w = _mm_loadu_ps(wave.as_ptr().add(i) as *const f32);
            let o = _mm_loadu_ps(out.as_ptr().add(i) as *const f32);
            let t1 = _mm_mul_ps(w, vrr);
            // Swap re/im within each complex pair: lanes [1,0,3,2].
            let t2 = _mm_mul_ps(_mm_shuffle_ps(w, w, 0b10_11_00_01), vri);
            let prod = _mm_addsub_ps(t1, t2);
            let r = _mm_add_ps(o, _mm_mul_ps(prod, vamp));
            _mm_storeu_ps(out.as_mut_ptr().add(i) as *mut f32, r);
            i += 2;
        }
        for j in i..n {
            out[j] += (wave[j] * rot).scale(amp);
        }
    }

    /// AVX2 superposition: 4 complex samples per 256-bit register
    /// (same `addsub` decomposition as [`axpy_sse3`]).
    // SAFETY: caller must ensure AVX2 is available (`run_axpy_avx2`
    // asserts it). Unaligned `loadu`/`storeu` on index `i ≤ n − 4` of
    // slices of length ≥ n; `Complex32` is `#[repr(C)] { f32, f32 }`.
    #[target_feature(enable = "avx2")]
    unsafe fn axpy_avx2(out: &mut [Complex32], wave: &[Complex32], rot: Complex32, amp: f32) {
        let n = out.len().min(wave.len());
        let vrr = _mm256_set1_ps(rot.re);
        let vri = _mm256_set1_ps(rot.im);
        let vamp = _mm256_set1_ps(amp);
        let mut i = 0;
        while i + 4 <= n {
            let w = _mm256_loadu_ps(wave.as_ptr().add(i) as *const f32);
            let o = _mm256_loadu_ps(out.as_ptr().add(i) as *const f32);
            let t1 = _mm256_mul_ps(w, vrr);
            // In-lane swap of re/im within each complex pair.
            let t2 = _mm256_mul_ps(_mm256_permute_ps(w, 0b10_11_00_01), vri);
            let prod = _mm256_addsub_ps(t1, t2);
            let r = _mm256_add_ps(o, _mm256_mul_ps(prod, vamp));
            _mm256_storeu_ps(out.as_mut_ptr().add(i) as *mut f32, r);
            i += 4;
        }
        for j in i..n {
            out[j] += (wave[j] * rot).scale(amp);
        }
    }

    /// Safe entry for the AVX2 matched-filter bank (see [`run_ssse3`]).
    #[allow(clippy::too_many_arguments)] // mirrors the demodulator's geometry verbatim
    pub(super) fn run_demod_avx2(
        samples: &[Complex32],
        pulse: &[f32],
        energy: f32,
        start: usize,
        sps: usize,
        full: usize,
        first_chip_even: bool,
        out: &mut Vec<f32>,
    ) {
        assert!(is_x86_feature_detected!("avx2"));
        // Gather indices are 32-bit; `demod_full_windows` already
        // asserted every window is inside `samples`.
        assert!(
            samples.len() <= i32::MAX as usize / 2,
            "sample buffer too large for 32-bit gather"
        );
        // SAFETY: feature presence checked above; index bounds asserted
        // here and by the caller.
        unsafe {
            demod_avx2(
                samples,
                pulse,
                energy,
                start,
                sps,
                full,
                first_chip_even,
                out,
            )
        }
    }

    /// AVX2 matched-filter bank: 8 chips per step via `vgatherdps`.
    ///
    /// Lane `l` of a step handles chip `k + l`. Its gather base is the
    /// flat-f32 index of the chip's first window sample on its rail —
    /// `2·(start + (k+l)·sps)` plus 0 (I rail, even chip) or 1 (Q rail,
    /// odd chip) — and each pulse tap advances all lanes by 2 floats.
    /// The per-tap loop accumulates `acc += s · p` in the same order as
    /// the scalar `chip_soft_value`, one multiply and one add per tap,
    /// then divides by the pulse energy: bit-identical per lane.
    // SAFETY: caller must ensure AVX2 is available (`run_demod_avx2`
    // asserts it). The flat view is sound because `Complex32` is
    // `#[repr(C)] { f32, f32 }`; every gathered index is
    // `2·(start + c·sps) + rail + 2·tap < 2·samples.len()` for chips
    // `c < full` because the caller asserted the last window fits, and
    // `2·samples.len()` fits in `i32` (asserted in `run_demod_avx2`).
    // The store targets a local array.
    #[allow(clippy::too_many_arguments)] // mirrors the demodulator's geometry verbatim
    #[target_feature(enable = "avx2")]
    unsafe fn demod_avx2(
        samples: &[Complex32],
        pulse: &[f32],
        energy: f32,
        start: usize,
        sps: usize,
        full: usize,
        first_chip_even: bool,
        out: &mut Vec<f32>,
    ) {
        let flat = samples.as_ptr() as *const f32;
        let venergy = _mm256_set1_ps(energy);
        let mut k = 0;
        while k + 8 <= full {
            let mut base = [0i32; 8];
            for (l, b) in base.iter_mut().enumerate() {
                let even = ((k + l) % 2 == 0) == first_chip_even;
                *b = (2 * (start + (k + l) * sps) + usize::from(!even)) as i32;
            }
            let vbase = _mm256_loadu_si256(base.as_ptr() as *const __m256i);
            let mut acc = _mm256_setzero_ps();
            for (i, &p) in pulse.iter().enumerate() {
                let idx = _mm256_add_epi32(vbase, _mm256_set1_epi32(2 * i as i32));
                let s = _mm256_i32gather_ps::<4>(flat, idx);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(s, _mm256_set1_ps(p)));
            }
            let mut lanes = [0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), _mm256_div_ps(acc, venergy));
            out.extend_from_slice(&lanes);
            k += 8;
        }
        // Remaining full-window chips: the scalar reference loop. `k` is
        // a multiple of 8, so the chip-parity phase carries over as-is.
        super::demod_full_windows_scalar(
            samples,
            pulse,
            energy,
            start + k * sps,
            sps,
            full - k,
            first_chip_even,
            out,
        );
    }

    /// Safe entry for the SSE SOVA kernel (see [`run_ssse3`]).
    pub(super) fn run_sova(soft: &[f32]) -> Option<Vec<SovaBit>> {
        assert!(is_x86_feature_detected!("sse3"));
        // SAFETY: feature presence checked on the line above (the
        // kernel itself needs nothing newer than SSE2, which the SSE3
        // dispatch tier implies).
        unsafe { sova_sse(soft) }
    }

    /// Horizontal maximum of a 4-lane vector. `max` is associative and
    /// commutative on non-NaN floats, so any reduction order yields
    /// the same value as the scalar left-to-right fold.
    // SAFETY: pure register arithmetic; caller provides the feature.
    #[inline]
    #[target_feature(enable = "sse3")]
    unsafe fn hmax_ps(v: __m128) -> f32 {
        let hi = _mm_movehl_ps(v, v); // [v2, v3, v2, v3]
        let m = _mm_max_ps(v, hi); // [max(v0,v2), max(v1,v3), …]
        let s = _mm_shuffle_ps(m, m, 0b01_01_01_01);
        _mm_cvtss_f32(_mm_max_ss(m, s))
    }

    /// SSE SOVA: all three max-log-MAP passes with the four trellis
    /// states in the four lanes of one `__m128`.
    ///
    /// ## Lane derivation (generators 7,5 octal; `reg = b·4 | s`,
    /// `ns = reg >> 1`)
    ///
    /// Every branch metric is `±A` or `±B` where `A = r0 + r1` and
    /// `B = r0 − r1` (`r` = the step's two soft values): coded bits
    /// `(c0, c1)` contribute `±r0 ± r1` with signs `+` for a coded 1.
    /// Enumerating `branch(s, b)`:
    ///
    /// | s | b | ns | metric |   | s | b | ns | metric |
    /// |---|---|----|--------|---|---|---|----|--------|
    /// | 0 | 0 | 0  | −A     |   | 0 | 1 | 2  | +A     |
    /// | 1 | 0 | 0  | +A     |   | 1 | 1 | 2  | −A     |
    /// | 2 | 0 | 1  | +B     |   | 2 | 1 | 3  | −B     |
    /// | 3 | 0 | 1  | −B     |   | 3 | 1 | 3  | +B     |
    ///
    /// so the forward step is
    /// `alpha' = max([α0,α2,α0,α2] + [−A,B,A,−B],
    ///               [α1,α3,α1,α3] + [A,−B,−A,B])`,
    /// the backward step is
    /// `beta' = max([−A,A,B,−B] + [β0,β0,β1,β1],
    ///              [A,−A,−B,B] + [β2,β2,β3,β3])`,
    /// and the per-bit hypothesis metrics are horizontal maxima of
    /// `(α + m_b) + β_next` with the same `m` vectors as the backward
    /// step. Negation (`−A` from `A`) is a sign-bit flip and rounding
    /// is sign-symmetric, so `−A == (−r0) + (−r1)` bit-exactly.
    ///
    /// ## Why dropping the scalar reachability guards is exact
    ///
    /// The scalar reference skips states with `α = NEG_INF` (−1e30);
    /// this kernel instead lets their candidates flow through the max.
    /// For matched-filter-scale inputs (|r| ≤ ~1e6, the documented
    /// contract of `sova::decode`) every such candidate is
    /// `−1e30 + m`, which rounds to exactly −1e30 because
    /// `|m| ≪ ulp(1e30)/2 ≈ 3.8e22` — identical to the untouched
    /// NEG_INF the scalar path leaves behind, and always beaten by any
    /// reachable path's candidate (bounded by ±Σ|r| ≪ 1e30). The
    /// explicit floor at NEG_INF below mirrors the scalar
    /// initialization for states with no surviving predecessor.
    // SAFETY: caller must ensure the dispatch tier's feature is
    // available (`run_sova` asserts SSE3). All loads/stores are
    // unaligned `loadu`/`storeu` on in-bounds `[f32; 4]` rows of the
    // `alpha`/`beta` tables.
    #[target_feature(enable = "sse3")]
    unsafe fn sova_sse(soft: &[f32]) -> Option<Vec<SovaBit>> {
        use crate::sova::{CONSTRAINT, NEG_INF};
        if !soft.len().is_multiple_of(2) {
            return None;
        }
        let steps = soft.len() / 2;
        if steps < CONSTRAINT - 1 {
            return None;
        }
        let n_info = steps - (CONSTRAINT - 1);
        let vneg = _mm_set1_ps(NEG_INF);

        // Forward (alpha) pass.
        let mut alpha = vec![[NEG_INF; 4]; steps + 1];
        alpha[0][0] = 0.0;
        for t in 0..steps {
            let (a, b) = (soft[2 * t] + soft[2 * t + 1], soft[2 * t] - soft[2 * t + 1]);
            let prev = _mm_loadu_ps(alpha[t].as_ptr());
            let c1 = _mm_add_ps(
                _mm_shuffle_ps(prev, prev, 0b10_00_10_00), // [α0, α2, α0, α2]
                _mm_setr_ps(-a, b, a, -b),
            );
            let c2 = _mm_add_ps(
                _mm_shuffle_ps(prev, prev, 0b11_01_11_01), // [α1, α3, α1, α3]
                _mm_setr_ps(a, -b, -a, b),
            );
            let next = _mm_max_ps(_mm_max_ps(c1, c2), vneg);
            _mm_storeu_ps(alpha[t + 1].as_mut_ptr(), next);
        }

        // Backward (beta) pass, anchored at state 0.
        let mut beta = vec![[NEG_INF; 4]; steps + 1];
        beta[steps][0] = 0.0;
        for t in (0..steps).rev() {
            let (a, b) = (soft[2 * t] + soft[2 * t + 1], soft[2 * t] - soft[2 * t + 1]);
            let nxt = _mm_loadu_ps(beta[t + 1].as_ptr());
            let c1 = _mm_add_ps(
                _mm_setr_ps(-a, a, b, -b),
                _mm_shuffle_ps(nxt, nxt, 0b01_01_00_00), // [β0, β0, β1, β1]
            );
            let c2 = _mm_add_ps(
                _mm_setr_ps(a, -a, -b, b),
                _mm_shuffle_ps(nxt, nxt, 0b11_11_10_10), // [β2, β2, β3, β3]
            );
            let best = _mm_max_ps(_mm_max_ps(c1, c2), vneg);
            _mm_storeu_ps(beta[t].as_mut_ptr(), best);
        }

        // Per-bit pass: hypothesis metrics (α + m) + β, matching the
        // scalar reference's left-to-right addition order.
        let mut out = Vec::with_capacity(n_info);
        for t in 0..n_info {
            let (a, b) = (soft[2 * t] + soft[2 * t + 1], soft[2 * t] - soft[2 * t + 1]);
            let va = _mm_loadu_ps(alpha[t].as_ptr());
            let bn = _mm_loadu_ps(beta[t + 1].as_ptr());
            let c0 = _mm_add_ps(
                _mm_add_ps(va, _mm_setr_ps(-a, a, b, -b)),
                _mm_shuffle_ps(bn, bn, 0b01_01_00_00),
            );
            let c1 = _mm_add_ps(
                _mm_add_ps(va, _mm_setr_ps(a, -a, -b, b)),
                _mm_shuffle_ps(bn, bn, 0b11_11_10_10),
            );
            let best0 = hmax_ps(c0).max(NEG_INF);
            let best1 = hmax_ps(c1).max(NEG_INF);
            let bit = best1 > best0;
            let reliability = (best1 - best0).abs();
            out.push(SovaBit { bit, reliability });
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chips::CODEBOOK;

    /// Deterministic xorshift word stream for kernel tests.
    fn words(n: usize, mut state: u64) -> Vec<u32> {
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u32
            })
            .collect()
    }

    #[test]
    fn every_available_kernel_matches_scalar() {
        // Random words, clean codewords, all-zeros/ones, and every
        // length around the vector widths (tail handling).
        let mut inputs: Vec<u32> = words(333, 0xDEAD_BEEF_1234_5678);
        inputs.extend_from_slice(&CODEBOOK);
        inputs.push(0);
        inputs.push(u32::MAX);
        for kernel in DespreadKernel::available() {
            for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 333] {
                let slice = &inputs[..len.min(inputs.len())];
                let expect: Vec<Decision> = slice.iter().map(|&w| decide(w)).collect();
                let mut got = Vec::new();
                kernel.decide_into(slice, &mut got);
                assert_eq!(got, expect, "kernel {} len {len}", kernel.name());
            }
        }
    }

    #[test]
    fn ties_break_toward_lowest_symbol_in_every_kernel() {
        // A word equidistant from several codewords: all-zero chips are
        // 16 chips from many codewords; the scalar fold picks the lowest
        // symbol index, and every kernel must agree.
        let inputs = vec![0u32; 20];
        let expect = decide(0);
        for kernel in DespreadKernel::available() {
            let mut got = Vec::new();
            kernel.decide_into(&inputs, &mut got);
            assert!(
                got.iter().all(|d| *d == expect),
                "kernel {} broke tie differently",
                kernel.name()
            );
        }
    }

    #[test]
    fn active_kernel_is_available() {
        assert!(DespreadKernel::available().contains(&DespreadKernel::active()));
    }

    #[test]
    fn decide_batch_matches_per_word_decide() {
        let inputs = words(1000, 42);
        let batch = decide_batch(&inputs);
        for (i, &w) in inputs.iter().enumerate() {
            assert_eq!(batch[i], decide(w), "word {i}");
        }
    }

    #[test]
    fn kernel_names_are_distinct() {
        let names: Vec<_> = [
            DespreadKernel::Scalar,
            DespreadKernel::Ssse3,
            DespreadKernel::Avx2,
            DespreadKernel::Avx512,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }

    /// Deterministic xorshift f32 stream in roughly [-1, 1).
    fn floats(n: usize, mut state: u64) -> Vec<f32> {
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as u32 as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn complexes(n: usize, state: u64) -> Vec<Complex32> {
        floats(2 * n, state)
            .chunks_exact(2)
            .map(|p| Complex32::new(p[0], p[1]))
            .collect()
    }

    #[test]
    fn dsp_active_kernel_is_available() {
        assert!(DspKernel::available().contains(&DspKernel::active()));
    }

    #[test]
    fn dsp_kernel_names_are_distinct() {
        let names: Vec<_> = [DspKernel::Scalar, DspKernel::Sse3, DspKernel::Avx2]
            .iter()
            .map(|k| k.name())
            .collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }

    #[test]
    fn axpy_kernels_match_scalar_bitwise() {
        let rot = Complex32::from_polar(1.0, 0.83);
        for kernel in DspKernel::available() {
            for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 257] {
                let wave = complexes(n, 0x5EED ^ n as u64);
                let base = complexes(n, 0xACC ^ n as u64);
                let mut expect = base.clone();
                axpy_rotated_scalar(&mut expect, &wave, rot, 0.7);
                let mut got = base.clone();
                kernel.axpy_rotated(&mut got, &wave, rot, 0.7);
                assert_eq!(got, expect, "kernel {} n {n}", kernel.name());
            }
        }
    }

    #[test]
    fn demod_kernels_match_scalar_bitwise() {
        for kernel in DspKernel::available() {
            for sps in [1usize, 2, 4] {
                let pulse: Vec<f32> = (0..2 * sps)
                    .map(|i| (std::f32::consts::PI * i as f32 / (2 * sps) as f32).sin())
                    .collect();
                let energy: f32 = pulse.iter().map(|p| p * p).sum();
                for n_chips in [0usize, 1, 7, 8, 9, 16, 33, 100] {
                    let samples = complexes((n_chips + 2) * sps + 3, 0xD503 ^ n_chips as u64);
                    for start in [0usize, 1, 5] {
                        // Same in-bounds window count the demodulator computes.
                        let full = if samples.len() >= start + pulse.len() {
                            ((samples.len() - start - pulse.len()) / sps + 1).min(n_chips)
                        } else {
                            0
                        };
                        let mut expect = Vec::new();
                        demod_full_windows_scalar(
                            &samples,
                            &pulse,
                            energy,
                            start,
                            sps,
                            full,
                            true,
                            &mut expect,
                        );
                        let mut got = Vec::new();
                        kernel.demod_full_windows(
                            &samples, &pulse, energy, start, sps, full, true, &mut got,
                        );
                        assert_eq!(
                            got,
                            expect,
                            "kernel {} sps {sps} chips {n_chips} start {start}",
                            kernel.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sova_kernels_match_scalar_bitwise() {
        for kernel in DspKernel::available() {
            for steps in [2usize, 3, 4, 10, 129] {
                let soft = floats(2 * steps, 0x50FA ^ steps as u64);
                let expect = crate::sova::decode_reference(&soft);
                let got = kernel.sova_decode(&soft);
                assert_eq!(got, expect, "kernel {} steps {steps}", kernel.name());
            }
            // Malformed inputs are rejected by every kernel.
            assert!(kernel.sova_decode(&[1.0]).is_none());
            assert!(kernel.sova_decode(&[1.0, -1.0]).is_none());
        }
    }
}
