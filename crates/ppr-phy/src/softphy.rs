//! The SoftPHY interface: decoded symbols annotated with confidence hints.
//!
//! This is the boundary the paper proposes between the PHY and higher
//! layers (§3): the PHY still makes *hard* symbol decisions, but passes
//! each decision up together with a small integer hint about how close the
//! reception was to the decoded codeword. Higher layers interpret hints
//! only through a **monotonicity contract** — a smaller hint always means
//! the PHY is at least as confident — and never look at how the hint was
//! computed.
//!
//! For the Hamming-distance hint used throughout the evaluation the hint
//! range is `0..=32` (chips flipped relative to the decoded codeword).

use crate::chips::Decision;

/// One decoded 4-bit symbol with its SoftPHY hint.
///
/// The hint obeys the monotonicity contract: lower ⇒ more confident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftSymbol {
    /// The hard-decided data symbol (4 bits).
    pub symbol: u8,
    /// Confidence hint; for the Hamming hint this is the chip distance to
    /// the decoded codeword (0 = perfect reception).
    pub hint: u8,
}

impl From<Decision> for SoftSymbol {
    fn from(d: Decision) -> Self {
        SoftSymbol {
            symbol: d.symbol,
            hint: d.distance,
        }
    }
}

/// A decoded span of symbols with hints — the unit SoftPHY passes to the
/// link layer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SoftSpan {
    /// Decoded symbols in order.
    pub symbols: Vec<SoftSymbol>,
}

impl SoftSpan {
    /// Wraps a vector of decisions.
    pub fn from_decisions(decisions: Vec<Decision>) -> Self {
        SoftSpan {
            symbols: decisions.into_iter().map(SoftSymbol::from).collect(),
        }
    }

    /// Number of symbols in the span.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when the span holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Reassembles the byte stream (low nibble first), ignoring hints.
    pub fn to_bytes(&self) -> Vec<u8> {
        let symbols: Vec<u8> = self.symbols.iter().map(|s| s.symbol).collect();
        crate::spread::symbols_to_bytes(&symbols)
    }

    /// Per-symbol hints, in order.
    pub fn hints(&self) -> Vec<u8> {
        self.symbols.iter().map(|s| s.hint).collect()
    }

    /// Per-*byte* hint: the worse (larger) of the two nibble hints, which
    /// is the conservative byte-level confidence.
    pub fn byte_hints(&self) -> Vec<u8> {
        self.symbols
            .chunks_exact(2)
            .map(|pair| pair[0].hint.max(pair[1].hint))
            .collect()
    }

    /// Labels each symbol good (`true`) or bad against threshold `eta`:
    /// good ⇔ `hint ≤ eta` (§3.2's threshold rule).
    pub fn labels(&self, eta: u8) -> Vec<bool> {
        self.symbols.iter().map(|s| s.hint <= eta).collect()
    }

    /// Fraction of symbols labeled good at threshold `eta`.
    pub fn good_fraction(&self, eta: u8) -> f64 {
        if self.symbols.is_empty() {
            return 0.0;
        }
        // Count directly rather than materializing `labels()`: the
        // byte-compare loop auto-vectorizes, and the span-sized
        // `Vec<bool>` was pure allocation traffic.
        let good = self.symbols.iter().filter(|s| s.hint <= eta).count();
        good as f64 / self.symbols.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chips::Decision;

    fn span(hints: &[u8]) -> SoftSpan {
        SoftSpan {
            symbols: hints
                .iter()
                .map(|&h| SoftSymbol {
                    symbol: 0xA,
                    hint: h,
                })
                .collect(),
        }
    }

    #[test]
    fn labels_follow_threshold_rule() {
        let s = span(&[0, 3, 6, 7, 12]);
        assert_eq!(s.labels(6), vec![true, true, true, false, false]);
        assert_eq!(s.labels(0), vec![true, false, false, false, false]);
        assert_eq!(s.labels(32), vec![true; 5]);
    }

    #[test]
    fn good_fraction_counts_correctly() {
        let s = span(&[0, 0, 10, 10]);
        assert!((s.good_fraction(6) - 0.5).abs() < 1e-12);
        assert_eq!(span(&[]).good_fraction(6), 0.0);
    }

    #[test]
    fn byte_hints_take_worse_nibble() {
        let s = SoftSpan {
            symbols: vec![
                SoftSymbol { symbol: 1, hint: 2 },
                SoftSymbol { symbol: 2, hint: 9 },
                SoftSymbol { symbol: 3, hint: 0 },
                SoftSymbol { symbol: 4, hint: 1 },
            ],
        };
        assert_eq!(s.byte_hints(), vec![9, 1]);
    }

    #[test]
    fn to_bytes_matches_nibble_order() {
        let s = SoftSpan {
            symbols: vec![
                SoftSymbol {
                    symbol: 0x7,
                    hint: 0,
                },
                SoftSymbol {
                    symbol: 0xA,
                    hint: 0,
                },
            ],
        };
        assert_eq!(s.to_bytes(), vec![0xA7]);
    }

    #[test]
    fn from_decision_preserves_fields() {
        let d = Decision {
            symbol: 5,
            distance: 4,
        };
        let s: SoftSymbol = d.into();
        assert_eq!(s.symbol, 5);
        assert_eq!(s.hint, 4);
    }
}
