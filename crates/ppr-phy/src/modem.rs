//! MSK (O-QPSK half-sine) modulator and matched-filter demodulator.
//!
//! The modulator turns a chip stream into complex baseband samples: even
//! chips become half-sine pulses on the I rail, odd chips on the Q rail,
//! offset by one chip period. Because each pulse spans two chip periods and
//! same-rail pulses start two chip periods apart, the rails tile without
//! inter-symbol interference and the composite signal has the constant
//! envelope characteristic of MSK.
//!
//! The demodulator is the optimal AWGN receiver structure the paper cites:
//! a filter matched to the half-sine pulse, sampled at chip spacing. Its
//! normalized output is the per-chip *soft value* (≈ ±1 on a clean
//! channel), whose sign is the hard chip decision and whose magnitude is a
//! matched-filter SoftPHY hint (§3.1, third option).
//!
//! As in the paper's implementation, MSK needs no carrier recovery
//! (§4): the channel model preserves carrier phase, and the demodulator
//! assumes a phase-aligned signal.

use crate::complex::Complex32;
use crate::pulse::HalfSine;

/// MSK modulator/demodulator pair for a fixed oversampling factor.
#[derive(Debug, Clone)]
pub struct MskModem {
    sps: usize,
    pulse: HalfSine,
}

impl MskModem {
    /// Creates a modem with `samples_per_chip` samples per chip period.
    ///
    /// # Panics
    /// Panics if `samples_per_chip == 0`.
    pub fn new(samples_per_chip: usize) -> Self {
        MskModem {
            sps: samples_per_chip,
            pulse: HalfSine::new(samples_per_chip),
        }
    }

    /// Oversampling factor (samples per chip).
    #[inline]
    pub fn samples_per_chip(&self) -> usize {
        self.sps
    }

    /// Number of samples produced for `n_chips` chips: one chip period per
    /// chip plus one trailing chip period for the final pulse tail.
    #[inline]
    pub fn samples_for_chips(&self, n_chips: usize) -> usize {
        (n_chips + 1) * self.sps
    }

    /// Modulates a chip stream (`true` = chip 1) into unit-amplitude
    /// complex baseband samples.
    pub fn modulate(&self, chips: &[bool]) -> Vec<Complex32> {
        let mut out = vec![Complex32::ZERO; self.samples_for_chips(chips.len())];
        for (k, &chip) in chips.iter().enumerate() {
            let a = if chip { 1.0f32 } else { -1.0f32 };
            let start = k * self.sps;
            if k % 2 == 0 {
                for (i, &p) in self.pulse.samples().iter().enumerate() {
                    out[start + i].re += a * p;
                }
            } else {
                for (i, &p) in self.pulse.samples().iter().enumerate() {
                    out[start + i].im += a * p;
                }
            }
        }
        out
    }

    /// Matched-filter output for the chip starting at sample
    /// `chip_start`, on the rail selected by `even_rail`.
    ///
    /// Returns the normalized correlation (≈ +1 for a clean chip 1,
    /// −1 for a clean chip 0). Samples beyond the end of `samples` are
    /// treated as zero, so a truncated reception degrades gracefully
    /// instead of panicking — essential for decoding partial packets.
    pub fn chip_soft_value(
        &self,
        samples: &[Complex32],
        chip_start: usize,
        even_rail: bool,
    ) -> f32 {
        let mut acc = 0.0f32;
        for (i, &p) in self.pulse.samples().iter().enumerate() {
            let idx = chip_start + i;
            if idx >= samples.len() {
                break;
            }
            let s = if even_rail {
                samples[idx].re
            } else {
                samples[idx].im
            };
            acc += s * p;
        }
        acc / self.pulse.energy()
    }

    /// Demodulates `n_chips` chips starting at sample offset `start`,
    /// where the chip at `start` has parity `first_chip_even` (controls
    /// which rail it is read from). Returns one soft value per chip.
    ///
    /// Chips whose full correlation window lies inside `samples` run
    /// through the process-wide
    /// [`DspKernel`](crate::simd::DspKernel) matched-filter bank
    /// (bit-identical to [`Self::chip_soft_value`]); truncated tail
    /// chips keep the scalar loop and its graceful mid-pulse cutoff.
    pub fn demodulate(
        &self,
        samples: &[Complex32],
        start: usize,
        n_chips: usize,
        first_chip_even: bool,
    ) -> Vec<f32> {
        let plen = self.pulse.len();
        let full = if samples.len() >= start + plen {
            ((samples.len() - start - plen) / self.sps + 1).min(n_chips)
        } else {
            0
        };
        let mut out = Vec::with_capacity(n_chips);
        crate::simd::DspKernel::active().demod_full_windows(
            samples,
            self.pulse.samples(),
            self.pulse.energy(),
            start,
            self.sps,
            full,
            first_chip_even,
            &mut out,
        );
        for k in full..n_chips {
            let even = (k % 2 == 0) == first_chip_even;
            out.push(self.chip_soft_value(samples, start + k * self.sps, even));
        }
        out
    }

    /// Convenience: demodulate and slice soft values into hard chips.
    pub fn demodulate_hard(
        &self,
        samples: &[Complex32],
        start: usize,
        n_chips: usize,
        first_chip_even: bool,
    ) -> Vec<bool> {
        self.demodulate(samples, start, n_chips, first_chip_even)
            .into_iter()
            .map(|v| v >= 0.0)
            .collect()
    }
}

/// Packs a slice of hard chips into 32-chip codeword words (chip 0 of each
/// codeword in the LSB). The tail is dropped if not a whole codeword.
pub fn pack_chip_words(chips: &[bool]) -> Vec<u32> {
    chips
        .chunks_exact(crate::chips::CHIPS_PER_SYMBOL)
        .map(|cw| {
            let mut w = 0u32;
            for (i, &c) in cw.iter().enumerate() {
                if c {
                    w |= 1 << i;
                }
            }
            w
        })
        .collect()
}

/// Unpacks codeword words into a flat chip stream.
pub fn unpack_chip_words(words: &[u32]) -> Vec<bool> {
    let mut chips = Vec::with_capacity(words.len() * crate::chips::CHIPS_PER_SYMBOL);
    for &w in words {
        for i in 0..crate::chips::CHIPS_PER_SYMBOL {
            chips.push((w >> i) & 1 == 1);
        }
    }
    chips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spread::spread_bytes;

    #[test]
    fn modulate_demodulate_roundtrip_clean() {
        let modem = MskModem::new(4);
        let chips = unpack_chip_words(&spread_bytes(b"hello ppr"));
        let samples = modem.modulate(&chips);
        let recovered = modem.demodulate_hard(&samples, 0, chips.len(), true);
        assert_eq!(recovered, chips);
    }

    #[test]
    fn soft_values_are_near_unit_magnitude() {
        let modem = MskModem::new(8);
        let chips = unpack_chip_words(&spread_bytes(&[0x3C, 0xA5]));
        let samples = modem.modulate(&chips);
        let soft = modem.demodulate(&samples, 0, chips.len(), true);
        for (k, v) in soft.iter().enumerate() {
            let expect = if chips[k] { 1.0 } else { -1.0 };
            assert!((v - expect).abs() < 0.05, "chip {k}: {v} vs {expect}");
        }
    }

    #[test]
    fn constant_envelope_in_steady_state() {
        let modem = MskModem::new(8);
        let chips = unpack_chip_words(&spread_bytes(b"envelope"));
        let samples = modem.modulate(&chips);
        let sps = modem.samples_per_chip();
        for (t, s) in samples
            .iter()
            .enumerate()
            .skip(2 * sps)
            .take(samples.len() - 4 * sps)
        {
            let p = s.norm_sqr();
            assert!((p - 1.0).abs() < 1e-3, "power at {t} = {p}");
        }
    }

    #[test]
    fn truncated_reception_does_not_panic() {
        let modem = MskModem::new(4);
        let chips = unpack_chip_words(&spread_bytes(b"cut"));
        let mut samples = modem.modulate(&chips);
        samples.truncate(samples.len() / 2);
        // Demodulating the full span over half the samples must not panic
        // and the first chips must still be correct.
        let soft = modem.demodulate(&samples, 0, chips.len(), true);
        assert_eq!(soft.len(), chips.len());
        for k in 0..chips.len() / 4 {
            assert_eq!(soft[k] >= 0.0, chips[k]);
        }
    }

    #[test]
    fn chip_word_pack_unpack_roundtrip() {
        let words = spread_bytes(b"roundtrip!");
        assert_eq!(pack_chip_words(&unpack_chip_words(&words)), words);
    }

    #[test]
    fn rail_parity_matters() {
        // Demodulating with the wrong parity reads the wrong rails and
        // produces garbage soft values (near zero / wrong signs), which is
        // why sync must establish chip parity.
        let modem = MskModem::new(4);
        let chips = unpack_chip_words(&spread_bytes(b"parity"));
        let samples = modem.modulate(&chips);
        let wrong = modem.demodulate(&samples, 0, chips.len(), false);
        let errors = wrong
            .iter()
            .zip(&chips)
            .filter(|(v, &c)| (**v >= 0.0) != c)
            .count();
        assert!(
            errors > chips.len() / 4,
            "only {errors} errors with wrong parity"
        );
    }
}
