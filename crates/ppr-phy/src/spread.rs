//! Direct-sequence spreading and despreading.
//!
//! The sender path maps a byte stream to 4-bit symbols (low nibble first,
//! as in 802.15.4) and each symbol to its 32-chip codeword. The receiver
//! path reverses this, producing for each codeword either a
//! [`Decision`] (hard decoding + Hamming-distance
//! SoftPHY hint) or a soft correlation metric (the paper's Eq. 1).

use crate::chips::{
    spread_symbol, Decision, BITS_PER_SYMBOL, CHIPS_PER_SYMBOL, CODEBOOK, NUM_SYMBOLS,
};

/// Converts a byte stream into 4-bit data symbols, low nibble first.
pub fn bytes_to_symbols(bytes: &[u8]) -> Vec<u8> {
    let mut symbols = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        symbols.push(b & 0x0f);
        symbols.push(b >> 4);
    }
    symbols
}

/// Reassembles bytes from 4-bit symbols (low nibble first).
///
/// A trailing unpaired symbol is dropped; callers framing whole bytes never
/// produce one.
pub fn symbols_to_bytes(symbols: &[u8]) -> Vec<u8> {
    symbols
        .chunks_exact(2)
        .map(|pair| (pair[0] & 0x0f) | (pair[1] << 4))
        .collect()
}

/// Spreads a symbol stream into packed 32-chip codewords, one `u32` per
/// symbol (chip 0 in the LSB).
pub fn spread(symbols: &[u8]) -> Vec<u32> {
    symbols.iter().map(|&s| spread_symbol(s & 0x0f)).collect()
}

/// Spreads a byte stream directly to chip words.
pub fn spread_bytes(bytes: &[u8]) -> Vec<u32> {
    spread(&bytes_to_symbols(bytes))
}

/// Hard-decision despreading: nearest-codeword decode of every chip word,
/// yielding the data symbol and its Hamming-distance hint.
///
/// Runs on the process-wide SIMD kernel
/// ([`DespreadKernel::active`](crate::simd::DespreadKernel::active));
/// output is bit-identical to [`decide`](crate::chips::decide) per
/// word on every kernel.
pub fn despread_hard(chip_words: &[u32]) -> Vec<Decision> {
    crate::simd::decide_batch(chip_words)
}

/// Soft-decision correlation metric of the paper's Eq. 1 for one received
/// chip-soft-value vector against codeword `symbol`:
///
/// `C(R, Cᵢ) = Σⱼ (2 cᵢⱼ − 1) rⱼ`
///
/// `soft_chips` holds one soft value per chip (positive ⇒ chip "1").
pub fn correlation_metric(soft_chips: &[f32; CHIPS_PER_SYMBOL], symbol: u8) -> f32 {
    let word = CODEBOOK[symbol as usize & 0x0f];
    let mut acc = 0.0f32;
    for (j, &r) in soft_chips.iter().enumerate() {
        let c = ((word >> j) & 1) as i32;
        acc += (2 * c - 1) as f32 * r;
    }
    acc
}

/// A soft-decision decode of one codeword: the maximum-correlation symbol
/// plus the winning and runner-up metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftDecision {
    /// Decoded 4-bit symbol.
    pub symbol: u8,
    /// Correlation metric of the winning codeword (Eq. 1). Larger ⇒ more
    /// confident.
    pub metric: f32,
    /// Correlation metric of the second-best codeword; the margin
    /// `metric − runner_up` is an alternative SoftPHY hint.
    pub runner_up: f32,
}

/// Soft-decision despreading of one codeword worth of chip soft values.
pub fn despread_soft(soft_chips: &[f32; CHIPS_PER_SYMBOL]) -> SoftDecision {
    let mut best_sym = 0u8;
    let mut best = f32::NEG_INFINITY;
    let mut second = f32::NEG_INFINITY;
    for s in 0..NUM_SYMBOLS as u8 {
        let m = correlation_metric(soft_chips, s);
        if m > best {
            second = best;
            best = m;
            best_sym = s;
        } else if m > second {
            second = m;
        }
    }
    SoftDecision {
        symbol: best_sym,
        metric: best,
        runner_up: second,
    }
}

/// Number of codewords needed to carry `n_bytes` bytes.
#[inline]
pub fn codewords_for_bytes(n_bytes: usize) -> usize {
    n_bytes * 8 / BITS_PER_SYMBOL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_order_is_low_first() {
        assert_eq!(bytes_to_symbols(&[0xA7]), vec![0x7, 0xA]);
        assert_eq!(symbols_to_bytes(&[0x7, 0xA]), vec![0xA7]);
    }

    #[test]
    fn bytes_symbols_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(symbols_to_bytes(&bytes_to_symbols(&data)), data);
    }

    #[test]
    fn spread_despread_roundtrip_clean() {
        let data = b"partial packet recovery";
        let chips = spread_bytes(data);
        assert_eq!(chips.len(), codewords_for_bytes(data.len()));
        let decisions = despread_hard(&chips);
        assert!(decisions.iter().all(|d| d.distance == 0));
        let symbols: Vec<u8> = decisions.iter().map(|d| d.symbol).collect();
        assert_eq!(symbols_to_bytes(&symbols), data);
    }

    #[test]
    fn hard_decode_reports_flip_count_as_hint() {
        let chips = spread_bytes(&[0x5A]);
        // Flip 4 chips in the first codeword.
        let corrupted = chips[0] ^ 0x0000_1111;
        let d = decide_one(corrupted);
        assert_eq!(d.distance, 4);
        assert_eq!(d.symbol, 0x5A & 0x0f);
    }

    fn decide_one(w: u32) -> crate::chips::Decision {
        despread_hard(&[w])[0]
    }

    #[test]
    fn soft_decode_matches_hard_decode_on_strong_signal() {
        for sym in 0..16u8 {
            let word = spread_symbol(sym);
            let mut soft = [0.0f32; CHIPS_PER_SYMBOL];
            for (j, v) in soft.iter_mut().enumerate() {
                *v = if (word >> j) & 1 == 1 { 1.0 } else { -1.0 };
            }
            let sd = despread_soft(&soft);
            assert_eq!(sd.symbol, sym);
            assert_eq!(sd.metric, CHIPS_PER_SYMBOL as f32);
            assert!(sd.metric > sd.runner_up);
        }
    }

    #[test]
    fn correlation_metric_is_linear_in_amplitude() {
        let word = spread_symbol(3);
        let mut soft = [0.0f32; CHIPS_PER_SYMBOL];
        for (j, v) in soft.iter_mut().enumerate() {
            *v = if (word >> j) & 1 == 1 { 0.5 } else { -0.5 };
        }
        let m = correlation_metric(&soft, 3);
        assert!((m - 16.0).abs() < 1e-4);
    }

    #[test]
    fn soft_decode_degrades_gracefully_under_noise() {
        // With mild deterministic perturbation the decision is unchanged
        // and the margin shrinks but stays positive.
        let sym = 9u8;
        let word = spread_symbol(sym);
        let mut soft = [0.0f32; CHIPS_PER_SYMBOL];
        for (j, v) in soft.iter_mut().enumerate() {
            let clean = if (word >> j) & 1 == 1 { 1.0 } else { -1.0 };
            // ±0.4 perturbation alternating sign.
            let pert = if j % 2 == 0 { 0.4 } else { -0.4 };
            *v = clean + pert;
        }
        let sd = despread_soft(&soft);
        assert_eq!(sd.symbol, sym);
        assert!(sd.metric > sd.runner_up);
    }
}
