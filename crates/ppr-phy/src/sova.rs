//! Convolutional coding with soft-output decoding — the paper's third
//! SoftPHY hint source (§3.1: "a particularly interesting instance …
//! is to use the output of the Viterbi decoder", citing SOVA \[11\]).
//!
//! This module implements a rate-1/2, constraint-length-3 convolutional
//! code (generators 7, 5 octal — the classic textbook pair) and a
//! max-log-MAP decoder, which produces exactly the soft output SOVA
//! approximates: for every information bit, the metric gap between the
//! best path deciding `1` and the best path deciding `0`. The magnitude
//! of that gap is a SoftPHY confidence (hint orientation: we report
//! `-|gap|`-style *reliability*, larger = more confident, and provide a
//! helper to convert to the workspace's smaller-is-better hint scale).
//!
//! This PHY design is an *alternative* to the DSSS codebook used by the
//! 802.15.4 pipeline — it exists to demonstrate that the SoftPHY
//! interface is implementation-agnostic (§3.3): the `ablation_hints`
//! experiment compares its hint quality against Hamming distance on the
//! same channel realizations.

/// Constraint length of the code.
pub const CONSTRAINT: usize = 3;
/// Number of trellis states (2^(K-1)).
pub const STATES: usize = 1 << (CONSTRAINT - 1);
/// Generator polynomials (octal 7 and 5).
const GENERATORS: [u8; 2] = [0b111, 0b101];

/// Rate-1/2 convolutional encoder, zero-terminated.
///
/// Output length is `2 × (bits.len() + K − 1)`: the tail flushes the
/// encoder back to state 0 so the decoder can anchor both trellis ends.
pub fn encode(bits: &[bool]) -> Vec<bool> {
    let mut state = 0u8; // (K-1)-bit shift register
    let mut out = Vec::with_capacity(2 * (bits.len() + CONSTRAINT - 1));
    for &b in bits
        .iter()
        .chain(std::iter::repeat_n(&false, CONSTRAINT - 1))
    {
        let reg = ((b as u8) << (CONSTRAINT - 1)) | state;
        for g in GENERATORS {
            out.push((reg & g).count_ones() % 2 == 1);
        }
        state = reg >> 1;
    }
    out
}

/// One decoded information bit with its soft-output reliability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SovaBit {
    /// The hard decision.
    pub bit: bool,
    /// Soft-output reliability: the max-log-MAP metric gap between the
    /// two hypotheses. Larger ⇒ more confident. Non-negative.
    pub reliability: f32,
}

impl SovaBit {
    /// Converts the reliability to the workspace hint scale
    /// (smaller = more confident), saturating at `max_hint`.
    /// `scale` maps reliability units to hint steps.
    pub fn to_hint(&self, scale: f32, max_hint: u8) -> u8 {
        let h = (max_hint as f32 - self.reliability * scale).max(0.0);
        (h as u8).min(max_hint)
    }
}

/// "Minus infinity" path metric. A finite sentinel (rather than
/// `f32::NEG_INFINITY`) so metric arithmetic stays NaN-free; shared
/// with the vectorized decoder in [`crate::simd`].
pub(crate) const NEG_INF: f32 = -1.0e30;

/// Branch metric table entry: for state `s` and input bit `b`, the two
/// coded bits emitted and the successor state.
fn branch(s: usize, b: bool) -> (usize, [bool; 2]) {
    let reg = ((b as u8) << (CONSTRAINT - 1)) | s as u8;
    let mut coded = [false; 2];
    for (i, g) in GENERATORS.iter().enumerate() {
        coded[i] = (reg & g).count_ones() % 2 == 1;
    }
    ((reg >> 1) as usize, coded)
}

/// Max-log-MAP (SOVA-equivalent) decoder.
///
/// `soft` holds one value per *coded* bit (positive ⇒ bit 1), length
/// `2 × (n_info + K − 1)` as produced by [`encode`] over a soft channel.
/// Returns `n_info` decoded bits with reliabilities.
///
/// Returns `None` when `soft` is too short or not a whole number of
/// trellis steps.
///
/// Dispatches to the process-wide
/// [`DspKernel`](crate::simd::DspKernel): the vectorized trellis
/// passes on x86-64, or [`decode_reference`] (also forced by
/// `PPR_NO_SIMD=1`). Soft inputs are matched-filter-scale values
/// (|r| ≲ 1e6 — far below the NEG_INF sentinel), for which every
/// kernel is bit-identical to the reference.
pub fn decode(soft: &[f32]) -> Option<Vec<SovaBit>> {
    crate::simd::DspKernel::active().sova_decode(soft)
}

/// The pinned scalar reference for [`decode`] — the decoder the SIMD
/// kernels are proven against (`tests/dsp_simd_parity.rs`).
pub fn decode_reference(soft: &[f32]) -> Option<Vec<SovaBit>> {
    if !soft.len().is_multiple_of(2) {
        return None;
    }
    let steps = soft.len() / 2;
    if steps < CONSTRAINT - 1 {
        return None;
    }
    let n_info = steps - (CONSTRAINT - 1);

    // Forward (alpha) pass. alpha[t][s] = best metric of any path
    // reaching state s after t steps.
    let mut alpha = vec![[NEG_INF; STATES]; steps + 1];
    alpha[0][0] = 0.0;
    for t in 0..steps {
        let r = [soft[2 * t], soft[2 * t + 1]];
        for s in 0..STATES {
            if alpha[t][s] <= NEG_INF {
                continue;
            }
            for b in [false, true] {
                let (ns, coded) = branch(s, b);
                let m = metric(&r, &coded);
                let cand = alpha[t][s] + m;
                if cand > alpha[t + 1][ns] {
                    alpha[t + 1][ns] = cand;
                }
            }
        }
    }

    // Backward (beta) pass, anchored at state 0 (zero-terminated).
    let mut beta = vec![[NEG_INF; STATES]; steps + 1];
    beta[steps][0] = 0.0;
    for t in (0..steps).rev() {
        let r = [soft[2 * t], soft[2 * t + 1]];
        for s in 0..STATES {
            let mut best = NEG_INF;
            for b in [false, true] {
                let (ns, coded) = branch(s, b);
                let cand = metric(&r, &coded) + beta[t + 1][ns];
                if cand > best {
                    best = cand;
                }
            }
            beta[t][s] = best;
        }
    }

    // Per-bit max-log-MAP: L(b_t) = max over transitions with b=1 minus
    // max over transitions with b=0 of (alpha + branch + beta).
    let mut out = Vec::with_capacity(n_info);
    for t in 0..n_info {
        let r = [soft[2 * t], soft[2 * t + 1]];
        let mut best = [NEG_INF; 2];
        for (s, &a) in alpha[t].iter().enumerate() {
            if a <= NEG_INF {
                continue;
            }
            for b in [false, true] {
                let (ns, coded) = branch(s, b);
                let cand = a + metric(&r, &coded) + beta[t + 1][ns];
                if cand > best[b as usize] {
                    best[b as usize] = cand;
                }
            }
        }
        let bit = best[1] > best[0];
        let reliability = (best[1] - best[0]).abs();
        out.push(SovaBit { bit, reliability });
    }
    Some(out)
}

#[inline]
fn metric(r: &[f32; 2], coded: &[bool; 2]) -> f32 {
    let mut m = 0.0;
    for i in 0..2 {
        m += if coded[i] { r[i] } else { -r[i] };
    }
    m
}

/// Encodes bits and maps them to clean antipodal soft values (±1) —
/// test/demo helper for driving [`decode`].
pub fn modulate_coded(bits: &[bool]) -> Vec<f32> {
    encode(bits)
        .into_iter()
        .map(|b| if b { 1.0 } else { -1.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn info_bits(rng: &mut StdRng, n: usize) -> Vec<bool> {
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn encode_rate_and_termination() {
        let bits = vec![true, false, true, true];
        let coded = encode(&bits);
        assert_eq!(coded.len(), 2 * (bits.len() + CONSTRAINT - 1));
        // Encoding the all-zero word yields the all-zero codeword.
        assert!(encode(&[false; 8]).iter().all(|&b| !b));
    }

    #[test]
    fn clean_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 10, 100, 500] {
            let bits = info_bits(&mut rng, n);
            let decoded = decode(&modulate_coded(&bits)).unwrap();
            assert_eq!(decoded.len(), n);
            let hard: Vec<bool> = decoded.iter().map(|d| d.bit).collect();
            assert_eq!(hard, bits, "n={n}");
            assert!(decoded.iter().all(|d| d.reliability > 0.0));
        }
    }

    #[test]
    fn corrects_scattered_errors() {
        // Free distance of (7,5) is 5: any 2 coded-bit flips far apart
        // are corrected.
        let mut rng = StdRng::seed_from_u64(2);
        let bits = info_bits(&mut rng, 200);
        let mut soft = modulate_coded(&bits);
        soft[30] = -soft[30];
        soft[200] = -soft[200];
        soft[350] = -soft[350];
        let decoded = decode(&soft).unwrap();
        let hard: Vec<bool> = decoded.iter().map(|d| d.bit).collect();
        assert_eq!(hard, bits);
    }

    #[test]
    fn reliability_drops_near_errors() {
        let mut rng = StdRng::seed_from_u64(3);
        let bits = info_bits(&mut rng, 100);
        let mut soft = modulate_coded(&bits);
        // Weaken (don't flip) the coded bits of info bit ~50.
        for v in &mut soft[96..104] {
            *v *= 0.1;
        }
        let decoded = decode(&soft).unwrap();
        let far = decoded[10].reliability;
        let near = decoded[50].reliability;
        assert!(near < far, "near {near} !< far {far}");
    }

    #[test]
    fn soft_output_separates_correct_from_wrong_in_noise() {
        // At moderate noise, decoded-wrong bits must carry systematically
        // lower reliability — the SoftPHY property the paper wants.
        let mut rng = StdRng::seed_from_u64(4);
        let mut rel_correct = Vec::new();
        let mut rel_wrong = Vec::new();
        for _ in 0..30 {
            let bits = info_bits(&mut rng, 300);
            let mut soft = modulate_coded(&bits);
            for s in soft.iter_mut() {
                // σ = 1.0 AWGN over ±1 signaling (≈ 0 dB Eb/N0 after
                // rate loss): plenty of decode errors.
                *s += ppr_box_muller(&mut rng);
            }
            let decoded = decode(&soft).unwrap();
            for (d, &b) in decoded.iter().zip(&bits) {
                if d.bit == b {
                    rel_correct.push(d.reliability as f64);
                } else {
                    rel_wrong.push(d.reliability as f64);
                }
            }
        }
        assert!(
            rel_wrong.len() > 50,
            "want decode errors, got {}",
            rel_wrong.len()
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&rel_correct) > 2.0 * mean(&rel_wrong),
            "correct {:.2} vs wrong {:.2}",
            mean(&rel_correct),
            mean(&rel_wrong)
        );
    }

    fn ppr_box_muller(rng: &mut StdRng) -> f32 {
        let u1: f32 = rng.gen::<f32>().max(1e-30);
        let u2: f32 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    #[test]
    fn to_hint_orientation() {
        let confident = SovaBit {
            bit: true,
            reliability: 40.0,
        };
        let shaky = SovaBit {
            bit: true,
            reliability: 0.5,
        };
        assert!(confident.to_hint(1.0, 32) < shaky.to_hint(1.0, 32));
        assert_eq!(confident.to_hint(1.0, 32), 0);
    }

    #[test]
    fn decode_rejects_malformed_input() {
        assert!(decode(&[1.0]).is_none());
        assert!(decode(&[1.0, -1.0]).is_none()); // shorter than the tail
        assert!(decode_reference(&[1.0]).is_none());
        assert!(decode_reference(&[1.0, -1.0]).is_none());
    }

    #[test]
    fn branch_metrics_match_simd_lane_table() {
        // The vectorized decoder (crate::simd) hardcodes each
        // transition's metric as ±A or ±B with A = r0 + r1 and
        // B = r0 − r1, per the table in its derivation comment. Pin
        // that table against branch()/metric() here so a generator
        // change cannot silently diverge from the kernel.
        let r = [1.0f32, 10.0];
        let (a, b) = (r[0] + r[1], r[0] - r[1]);
        let expect = [
            ((0, -a), (2, a)),
            ((0, a), (2, -a)),
            ((1, b), (3, -b)),
            ((1, -b), (3, b)),
        ];
        for (s, &((ns0, m0), (ns1, m1))) in expect.iter().enumerate() {
            let (n0, c0) = branch(s, false);
            let (n1, c1) = branch(s, true);
            assert_eq!((n0, metric(&r, &c0)), (ns0, m0), "s={s} b=0");
            assert_eq!((n1, metric(&r, &c1)), (ns1, m1), "s={s} b=1");
        }
    }

    #[test]
    fn dispatched_decode_matches_reference_in_noise() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let bits = info_bits(&mut rng, 257);
            let mut soft = modulate_coded(&bits);
            for s in soft.iter_mut() {
                *s += ppr_box_muller(&mut rng);
            }
            let got = decode(&soft).unwrap();
            let expect = decode_reference(&soft).unwrap();
            assert_eq!(got, expect);
        }
    }
}
