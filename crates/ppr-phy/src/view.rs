//! Demand-driven symbol decoding: the lazy [`SymbolView`].
//!
//! PR 2's packed pipeline despreads a frame's *entire* link section the
//! moment a delimiter verifies, even when the consumer only reads a
//! slice of it — a scheme probing a header, PP-ARQ decoding the chunks a
//! feedback packet asked for, a relay checking a trailer. The
//! [`SymbolView`] defers that work: it captures the (packed) chips of a
//! symbol range at construction and despreads **only the sub-ranges a
//! consumer actually requests**, in 64-symbol blocks, each decoded once
//! and cached. Decoding runs on the active SIMD kernel
//! ([`DespreadKernel::active`](crate::simd::DespreadKernel::active)) and
//! is bit-identical to the eager reference path.
//!
//! A view is *frame-shaped*: it always exposes exactly the symbol count
//! it was built for. Symbols the reception never captured (the stream
//! started after them or ended before them) read as a caller-supplied
//! `absent` sentinel — `ppr-mac` passes its `HINT_NEVER_RECEIVED`
//! padding symbol — so downstream layers see maximally un-confident
//! symbols rather than a shortened span, exactly as the eager pipeline
//! did.
//!
//! Interior mutability: the decode cache lives behind a
//! [`RefCell`], so a `&SymbolView` can decode on demand. The type
//! is `Send` but not `Sync`; receive pipelines hand whole frames between
//! threads rather than sharing one frame across threads, which is the
//! pattern `ppr-sim`'s parallel reception loop already uses.

use crate::chips::{ChipWords, CHIPS_PER_SYMBOL};
use crate::softphy::SoftSymbol;
use std::cell::RefCell;
use std::ops::Range;

/// Symbols despread together per cache fill: 64 codewords = 2048 chips,
/// a comfortable batch for every SIMD kernel (4 full AVX-512 vectors).
const BLOCK_SYMBOLS: usize = 64;

/// A lazily-despread span of symbols (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct SymbolView {
    /// Total symbols the view exposes (absent + decodable).
    total: usize,
    /// Symbols before the captured stream (read as `absent`).
    lead: usize,
    /// Decodable symbols: `lead..lead + present` are backed by chips.
    present: usize,
    /// Captured chips, re-based so symbol `lead + k` starts at chip
    /// `k * 32` (always codeword-aligned extraction).
    chips: ChipWords,
    /// Sentinel for symbols outside the captured stream.
    absent: SoftSymbol,
    /// Decoded symbols (`present` entries) + per-block fill flags.
    cache: RefCell<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    symbols: Vec<SoftSymbol>,
    block_done: Vec<bool>,
}

impl SymbolView {
    /// Builds a lazy view of `n_symbols` symbols whose first chip sits
    /// at `chip_offset` of `stream` (may be negative or extend past the
    /// stream; those symbols read as `absent`). No despreading happens
    /// here — only a word-wise copy of the captured chip range.
    ///
    /// Boundary semantics match the eager reference
    /// (`ppr-mac`'s clamped despread): a symbol is decodable iff its
    /// *first* chip lies inside the stream; chips past the end read as
    /// zero, so a truncated final codeword decodes with a large, honest
    /// hint.
    pub fn lazy(
        stream: &ChipWords,
        chip_offset: i64,
        n_symbols: usize,
        absent: SoftSymbol,
    ) -> Self {
        let sym_chips = CHIPS_PER_SYMBOL as i64;
        // Symbols whose first chip is before the stream are absent.
        let lead = if chip_offset < 0 {
            (((-chip_offset) as usize).div_ceil(CHIPS_PER_SYMBOL)).min(n_symbols)
        } else {
            0
        };
        let start = chip_offset + (lead as i64) * sym_chips;
        let remaining = n_symbols - lead;
        let present = if remaining == 0 || start as usize >= stream.len() {
            0
        } else {
            remaining.min((stream.len() - start as usize).div_ceil(CHIPS_PER_SYMBOL))
        };
        let chips = if present == 0 {
            ChipWords::new()
        } else {
            stream.extract_range(start as usize, present * CHIPS_PER_SYMBOL)
        };
        SymbolView {
            total: n_symbols,
            lead,
            present,
            chips,
            absent,
            cache: RefCell::new(Cache {
                symbols: vec![absent; present],
                block_done: vec![false; present.div_ceil(BLOCK_SYMBOLS)],
            }),
        }
    }

    /// Wraps already-decoded symbols as a fully-materialized view — the
    /// eager construction the reference (`&[bool]`) receive path uses,
    /// so both paths flow through one frame type.
    pub fn eager(symbols: Vec<SoftSymbol>) -> Self {
        let present = symbols.len();
        SymbolView {
            total: present,
            lead: 0,
            present,
            chips: ChipWords::new(),
            absent: SoftSymbol { symbol: 0, hint: 0 },
            cache: RefCell::new(Cache {
                symbols,
                block_done: vec![true; present.div_ceil(BLOCK_SYMBOLS)],
            }),
        }
    }

    /// Total symbols the view exposes.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when the view exposes no symbols.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Symbols despread so far — the demand-driven cost of this view.
    /// Zero for an untouched lazy view, full for an eager one; grows
    /// block-wise as ranges are read.
    pub fn decoded_symbols(&self) -> usize {
        let cache = self.cache.borrow();
        cache
            .block_done
            .iter()
            .enumerate()
            .filter(|&(_, &done)| done)
            .map(|(b, _)| ((b + 1) * BLOCK_SYMBOLS).min(self.present) - b * BLOCK_SYMBOLS)
            .sum()
    }

    /// Symbol `i`, despreading its 64-symbol block on first touch.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> SoftSymbol {
        assert!(
            i < self.total,
            "symbol index {i} out of range {}",
            self.total
        );
        if i < self.lead || i >= self.lead + self.present {
            return self.absent;
        }
        let k = i - self.lead;
        self.ensure_blocks(k..k + 1);
        self.cache.borrow().symbols[k]
    }

    /// The symbols of `range`, despreading exactly the blocks that
    /// overlap it (absent symbols padded with the sentinel).
    ///
    /// # Panics
    /// Panics if `range.end > len()`.
    pub fn range(&self, range: Range<usize>) -> Vec<SoftSymbol> {
        assert!(
            range.end <= self.total,
            "symbol range {range:?} out of range {}",
            self.total
        );
        let mut out = Vec::with_capacity(range.len());
        // Leading absent symbols.
        let lead_end = range.end.min(self.lead);
        out.extend(std::iter::repeat_n(
            self.absent,
            lead_end.saturating_sub(range.start),
        ));
        // Captured symbols.
        let cap_start = range.start.max(self.lead).min(self.lead + self.present);
        let cap_end = range.end.max(self.lead).min(self.lead + self.present);
        if cap_end > cap_start {
            let (ks, ke) = (cap_start - self.lead, cap_end - self.lead);
            self.ensure_blocks(ks..ke);
            out.extend_from_slice(&self.cache.borrow().symbols[ks..ke]);
        }
        // Trailing absent symbols.
        out.extend(std::iter::repeat_n(self.absent, range.len() - out.len()));
        out
    }

    /// Every symbol of the view (forces a full despread).
    pub fn all(&self) -> Vec<SoftSymbol> {
        self.range(0..self.total)
    }

    /// Despreads every not-yet-decoded block covering captured symbols
    /// `range` (indices relative to the captured region).
    fn ensure_blocks(&self, range: Range<usize>) {
        let mut cache = self.cache.borrow_mut();
        let first = range.start / BLOCK_SYMBOLS;
        let last = (range.end - 1) / BLOCK_SYMBOLS;
        let mut decisions: Vec<crate::chips::Decision> = Vec::with_capacity(BLOCK_SYMBOLS);
        for b in first..=last {
            if cache.block_done[b] {
                continue;
            }
            // The view is re-based, so block `b`'s codewords sit packed
            // two-per-lane starting at lane `lo / 2` (`lo` is even:
            // BLOCK_SYMBOLS is) — decoded straight from lane memory.
            let lo = b * BLOCK_SYMBOLS;
            let hi = ((b + 1) * BLOCK_SYMBOLS).min(self.present);
            let lanes = &self.chips.words()[lo / 2..hi.div_ceil(2)];
            decisions.clear();
            crate::simd::decide_lanes_into(lanes, hi - lo, &mut decisions);
            for (slot, d) in cache.symbols[lo..hi].iter_mut().zip(&decisions) {
                *slot = (*d).into();
            }
            cache.block_done[b] = true;
        }
    }
}

/// Equality forces both views to despread fully and compares the
/// resulting symbols — a lazy view and the eager reference view of the
/// same reception compare equal, which is what the parity harnesses
/// rely on.
impl PartialEq for SymbolView {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total && self.all() == other.all()
    }
}

impl Eq for SymbolView {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chips::CODEBOOK;

    const ABSENT: SoftSymbol = SoftSymbol {
        symbol: 0,
        hint: 33,
    };

    fn stream_of(symbols: &[u8]) -> ChipWords {
        ChipWords::from_codewords(
            &symbols
                .iter()
                .map(|&s| CODEBOOK[s as usize])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn lazy_view_decodes_aligned_codewords() {
        let syms: Vec<u8> = (0..16).chain(0..16).collect();
        let stream = stream_of(&syms);
        let view = SymbolView::lazy(&stream, 0, syms.len(), ABSENT);
        assert_eq!(view.decoded_symbols(), 0, "construction must not decode");
        let got = view.all();
        assert_eq!(got.len(), syms.len());
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s.symbol, syms[i]);
            assert_eq!(s.hint, 0);
        }
        assert_eq!(view.decoded_symbols(), syms.len());
    }

    #[test]
    fn negative_offset_pads_head_with_absent() {
        let stream = stream_of(&[5, 6, 7]);
        // First two symbols were transmitted before the capture began.
        let view = SymbolView::lazy(&stream, -64, 5, ABSENT);
        let got = view.all();
        assert_eq!(got[0], ABSENT);
        assert_eq!(got[1], ABSENT);
        assert_eq!(got[2].symbol, 5);
        assert_eq!(got[4].symbol, 7);
    }

    #[test]
    fn tail_past_stream_pads_with_absent() {
        let stream = stream_of(&[1, 2]);
        let view = SymbolView::lazy(&stream, 0, 4, ABSENT);
        let got = view.all();
        assert_eq!(got[0].symbol, 1);
        assert_eq!(got[1].symbol, 2);
        assert_eq!(got[2], ABSENT);
        assert_eq!(got[3], ABSENT);
    }

    #[test]
    fn truncated_final_codeword_decodes_with_honest_hint() {
        let mut stream = stream_of(&[9, 9]);
        stream.truncate(32 + 10); // 10 chips of the second codeword
        let view = SymbolView::lazy(&stream, 0, 2, ABSENT);
        let got = view.all();
        assert_eq!(got[0].symbol, 9);
        assert_eq!(got[0].hint, 0);
        // Second symbol's first chip is inside the stream → decoded,
        // with a large hint from the zero-read tail.
        assert!(got[1].hint > 0, "truncated codeword must not decode clean");
        assert_ne!(got[1], ABSENT, "partially captured symbol is not absent");
    }

    #[test]
    fn range_reads_decode_only_touched_blocks() {
        let syms: Vec<u8> = (0..200).map(|i| (i % 16) as u8).collect();
        let stream = stream_of(&syms);
        let view = SymbolView::lazy(&stream, 0, syms.len(), ABSENT);
        // Touch ten symbols in the middle: exactly one 64-symbol block
        // must fill.
        let got = view.range(70..80);
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s.symbol, syms[70 + i]);
        }
        assert_eq!(view.decoded_symbols(), 64);
        // A repeated read decodes nothing further.
        let again = view.range(70..80);
        assert_eq!(again, got);
        assert_eq!(view.decoded_symbols(), 64);
        // A full read fills the rest and agrees symbol-for-symbol.
        let all = view.all();
        assert_eq!(all.len(), syms.len());
        assert_eq!(view.decoded_symbols(), syms.len());
        assert_eq!(&all[70..80], &got[..]);
    }

    #[test]
    fn unaligned_offset_matches_despread_words() {
        let syms: Vec<u8> = (0..50).map(|i| ((i * 7) % 16) as u8).collect();
        let mut stream = ChipWords::zeros(17); // unaligned lead
        for &s in &syms {
            stream.push_codeword(CODEBOOK[s as usize]);
        }
        let rx = crate::frame_rx::ChipReceiver::default();
        let reference = rx.despread_words(&stream, 17, syms.len());
        let view = SymbolView::lazy(&stream, 17, syms.len(), ABSENT);
        assert_eq!(view.all(), reference.symbols);
    }

    #[test]
    fn eager_and_lazy_views_compare_equal() {
        let syms: Vec<u8> = (0..100).map(|i| ((i * 3) % 16) as u8).collect();
        let stream = stream_of(&syms);
        let lazy = SymbolView::lazy(&stream, 0, syms.len(), ABSENT);
        let eager = SymbolView::eager(lazy.all());
        assert_eq!(lazy, eager);
        assert_eq!(eager.decoded_symbols(), syms.len());
    }

    #[test]
    fn view_entirely_before_or_after_stream_is_all_absent() {
        let stream = stream_of(&[3]);
        let before = SymbolView::lazy(&stream, -320, 4, ABSENT);
        assert!(before.all().iter().all(|&s| s == ABSENT));
        let after = SymbolView::lazy(&stream, 320, 4, ABSENT);
        assert!(after.all().iter().all(|&s| s == ABSENT));
        let empty = SymbolView::lazy(&stream, 0, 0, ABSENT);
        assert!(empty.is_empty());
        assert_eq!(empty.all(), Vec::new());
    }
}
