//! Half-sine pulse shaping for O-QPSK / MSK.
//!
//! The CC2420 transmits O-QPSK with half-sine pulse shaping, which is
//! mathematically identical to minimum-shift keying (MSK). Each chip is
//! carried by a half-sine pulse spanning **two** chip periods; even chips
//! ride the I rail and odd chips the Q rail, offset by one chip period, so
//! consecutive pulses on the same rail tile the time axis without
//! inter-symbol interference.

/// A sampled half-sine pulse, `sin(π t / (2 T_c))` for `t ∈ [0, 2 T_c)`.
#[derive(Debug, Clone)]
pub struct HalfSine {
    samples: Vec<f32>,
}

impl HalfSine {
    /// Builds the pulse table for a given oversampling factor
    /// (`samples_per_chip` ≥ 1). The pulse spans `2 × samples_per_chip`
    /// samples.
    pub fn new(samples_per_chip: usize) -> Self {
        assert!(samples_per_chip >= 1, "need at least one sample per chip");
        let n = 2 * samples_per_chip;
        let samples = (0..n)
            .map(|i| (std::f32::consts::PI * i as f32 / n as f32).sin())
            .collect();
        HalfSine { samples }
    }

    /// The pulse samples (length `2 × samples_per_chip`).
    #[inline]
    pub fn samples(&self) -> &[f32] {
        &self.samples
    }

    /// Length of the pulse in samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the pulse table is empty (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Energy of the pulse, `Σ p[i]²`. Used to normalize matched-filter
    /// outputs so chip soft values are amplitude-comparable across
    /// oversampling factors.
    pub fn energy(&self) -> f32 {
        self.samples.iter().map(|s| s * s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_spans_two_chip_periods() {
        for sps in [1, 2, 4, 8] {
            assert_eq!(HalfSine::new(sps).len(), 2 * sps);
        }
    }

    #[test]
    fn pulse_starts_at_zero_and_peaks_mid() {
        let p = HalfSine::new(8);
        assert!(p.samples()[0].abs() < 1e-6);
        // Peak (value 1.0) is at the midpoint, sample index 8.
        assert!((p.samples()[8] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pulse_is_symmetric() {
        let p = HalfSine::new(16);
        let s = p.samples();
        for i in 1..s.len() {
            // sin(π i/n) = sin(π (n-i)/n)
            assert!((s[i] - s[s.len() - i]).abs() < 1e-5);
        }
    }

    #[test]
    fn energy_is_half_pulse_length() {
        // ∫ sin² over a half period = n/2 for the discrete sum.
        let p = HalfSine::new(32);
        assert!((p.energy() - p.len() as f32 / 2.0).abs() < 0.51);
    }

    #[test]
    fn tiled_pulses_have_constant_envelope() {
        // MSK property: I pulses at even chips plus Q pulses at odd chips
        // (all-ones chips) give a constant-envelope signal. With I²+Q²
        // sampled at chip offsets, sin²+cos² = 1.
        let sps = 8;
        let p = HalfSine::new(sps);
        // I rail: pulses starting at 0, 2Tc, 4Tc... Q rail offset by Tc.
        let total = 8 * sps;
        let mut i_rail = vec![0.0f32; total + 2 * sps];
        let mut q_rail = vec![0.0f32; total + 2 * sps];
        let mut t = 0;
        while t < total {
            for (k, v) in p.samples().iter().enumerate() {
                i_rail[t + k] += v;
            }
            t += 2 * sps;
        }
        let mut t = sps;
        while t < total {
            for (k, v) in p.samples().iter().enumerate() {
                q_rail[t + k] += v;
            }
            t += 2 * sps;
        }
        // Check the steady-state interior region.
        for t in (2 * sps)..(total - 2 * sps) {
            let env = i_rail[t] * i_rail[t] + q_rail[t] * q_rail[t];
            assert!((env - 1.0).abs() < 1e-4, "envelope at {t} = {env}");
        }
    }
}
