//! A minimal complex-baseband sample type.
//!
//! The sample-level channel and the MSK modem work on complex I/Q samples.
//! We implement the handful of operations we need rather than pulling in a
//! numerics crate; this keeps the PHY self-contained and the sample type
//! `Copy`-cheap.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex baseband sample, `re + j·im`, in 32-bit floats.
///
/// `#[repr(C)]` is load-bearing: the DSP SIMD kernels
/// ([`crate::simd`]) reinterpret `&[Complex32]` as interleaved
/// `[re, im, re, im, …]` `f32`s, which requires this exact layout.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex32 {
    /// In-phase (real) component.
    pub re: f32,
    /// Quadrature (imaginary) component.
    pub im: f32,
}

impl Complex32 {
    /// The additive identity.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };

    /// Creates a sample from rectangular coordinates.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// Creates a sample from polar coordinates (magnitude, phase in radians).
    #[inline]
    pub fn from_polar(mag: f32, phase: f32) -> Self {
        Complex32 {
            re: mag * phase.cos(),
            im: mag * phase.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex32 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²` — the instantaneous power of the sample.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Phase angle in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f32) -> Self {
        Complex32 {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex32 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex32 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    #[inline]
    fn neg(self) -> Self {
        Complex32 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex32 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Mul<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: f32) -> Self {
        self.scale(rhs)
    }
}

impl Div<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn div(self, rhs: f32) -> Self {
        self.scale(1.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex32::new(3.0, -4.0);
        assert_eq!(z + Complex32::ZERO, z);
        assert_eq!(z - z, Complex32::ZERO);
        assert!(close(z.norm_sqr(), 25.0));
        assert!(close(z.abs(), 5.0));
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        // (1 + 2j)(3 + 4j) = 3 + 4j + 6j + 8j² = -5 + 10j
        let p = Complex32::new(1.0, 2.0) * Complex32::new(3.0, 4.0);
        assert!(close(p.re, -5.0) && close(p.im, 10.0));
    }

    #[test]
    fn conj_mul_gives_power() {
        let z = Complex32::new(0.6, 0.8);
        let p = z * z.conj();
        assert!(close(p.re, 1.0));
        assert!(close(p.im, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex32::from_polar(2.0, std::f32::consts::FRAC_PI_3);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), std::f32::consts::FRAC_PI_3));
    }

    #[test]
    fn unit_rotation_preserves_magnitude() {
        let z = Complex32::new(1.0, 1.0);
        let r = Complex32::from_polar(1.0, 0.7);
        assert!(close((z * r).abs(), z.abs()));
    }
}
