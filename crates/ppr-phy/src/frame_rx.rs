//! Chip-stream and sample-stream receiver front ends.
//!
//! [`ChipReceiver`] is the synchronization + despreading engine shared by
//! every experiment: it scans a hard-decision chip stream for preamble and
//! postamble delimiters and despreads arbitrary symbol ranges with
//! SoftPHY hints attached. Frame *parsing* (headers, trailers, CRCs) is a
//! link-layer concern and lives in `ppr-mac`.
//!
//! [`SampleReceiver`] stacks the DSP front end on top: timing recovery,
//! matched-filter demodulation (resolving the I/Q rail-parity ambiguity by
//! trying both) and then the same chip-level machinery.

use crate::chips::{ChipWords, CHIPS_PER_SYMBOL};
use crate::complex::Complex32;
use crate::modem::{pack_chip_words, MskModem};
use crate::softphy::SoftSpan;
use crate::spread::despread_hard;
use crate::sync::{SyncHit, SyncPattern, DEFAULT_SYNC_THRESHOLD};
use crate::timing::estimate_timing;

/// Synchronization + despreading over a hard chip stream.
#[derive(Debug, Clone)]
pub struct ChipReceiver {
    preamble: SyncPattern,
    postamble: SyncPattern,
    threshold: u32,
}

impl Default for ChipReceiver {
    fn default() -> Self {
        Self::new(DEFAULT_SYNC_THRESHOLD)
    }
}

impl ChipReceiver {
    /// Creates a receiver with the given sync acceptance threshold (max
    /// Hamming distance over the 128-chip delimiter pattern).
    pub fn new(threshold: u32) -> Self {
        ChipReceiver {
            preamble: SyncPattern::preamble(),
            postamble: SyncPattern::postamble(),
            threshold,
        }
    }

    /// The preamble pattern in use.
    pub fn preamble_pattern(&self) -> &SyncPattern {
        &self.preamble
    }

    /// The postamble pattern in use.
    pub fn postamble_pattern(&self) -> &SyncPattern {
        &self.postamble
    }

    /// Scans for both delimiters; hits are returned sorted by offset.
    pub fn scan(&self, stream: &[bool]) -> Vec<SyncHit> {
        let mut hits = self.preamble.scan(stream, self.threshold);
        hits.extend(self.postamble.scan(stream, self.threshold));
        hits.sort_by_key(|h| h.chip_offset);
        hits
    }

    /// Chip offset of the first data symbol implied by a preamble hit.
    pub fn data_start_after(&self, hit: &SyncHit) -> usize {
        hit.chip_offset + self.preamble.len_chips()
    }

    /// Despreads `n_symbols` symbols starting at `chip_offset`.
    ///
    /// Chips beyond the end of the stream are read as zero, so the final
    /// codewords of a truncated reception decode with large (honest)
    /// Hamming hints instead of being dropped silently. Symbols whose
    /// *first* chip is already past the end are not emitted.
    pub fn despread(&self, stream: &[bool], chip_offset: usize, n_symbols: usize) -> SoftSpan {
        let mut words = Vec::with_capacity(n_symbols);
        for s in 0..n_symbols {
            let start = chip_offset + s * CHIPS_PER_SYMBOL;
            if start >= stream.len() {
                break;
            }
            let mut w = 0u32;
            for i in 0..CHIPS_PER_SYMBOL {
                if let Some(&c) = stream.get(start + i) {
                    if c {
                        w |= 1 << i;
                    }
                }
            }
            words.push(w);
        }
        SoftSpan::from_decisions(despread_hard(&words))
    }

    /// Word-wise equivalent of [`Self::despread`] over a packed chip
    /// stream: the codeword gather is one whole-lane funnel-shift pass
    /// ([`ChipWords::gather_lanes_into`]) — or a zero-copy borrow of the
    /// lane storage when the offset is 64-aligned — and the
    /// nearest-codeword scan runs batched on the active SIMD kernel
    /// straight out of the lanes
    /// ([`decide_lanes_into`](crate::simd::decide_lanes_into)).
    /// Chips past the end of the stream read as zero and symbols whose
    /// first chip is past the end are not emitted, exactly as in the
    /// reference implementation.
    pub fn despread_words(
        &self,
        stream: &ChipWords,
        chip_offset: usize,
        n_symbols: usize,
    ) -> SoftSpan {
        // Symbols whose first chip is past the end are not emitted.
        let n = if chip_offset >= stream.len() {
            0
        } else {
            n_symbols.min((stream.len() - chip_offset).div_ceil(CHIPS_PER_SYMBOL))
        };
        if n == 0 {
            return SoftSpan::from_decisions(Vec::new());
        }
        let n_lanes = n.div_ceil(2);
        let mut decisions = Vec::new();
        let lane0 = chip_offset / 64;
        if chip_offset.is_multiple_of(64) && lane0 + n_lanes <= stream.words().len() {
            // Lane-aligned and fully in range: decode from lane storage.
            crate::simd::decide_lanes_into(
                &stream.words()[lane0..lane0 + n_lanes],
                n,
                &mut decisions,
            );
        } else {
            let mut lanes = Vec::new();
            stream.gather_lanes_into(chip_offset, n_lanes, &mut lanes);
            crate::simd::decide_lanes_into(&lanes, n, &mut decisions);
        }
        SoftSpan::from_decisions(decisions)
    }
}

/// Result of the sample-level front end: the chip stream a receiver
/// recovered, plus how it was aligned.
#[derive(Debug, Clone)]
pub struct ChipStream {
    /// Hard chip decisions.
    pub chips: Vec<bool>,
    /// Sub-chip sample offset chosen by timing recovery.
    pub timing_offset: usize,
    /// Whether chip 0 of `chips` was read from the I rail (`true`) or the
    /// Q rail.
    pub even_parity: bool,
}

/// DSP front end: timing recovery + matched filter + rail-parity
/// resolution.
#[derive(Debug, Clone)]
pub struct SampleReceiver {
    modem: MskModem,
    chip_rx: ChipReceiver,
}

impl SampleReceiver {
    /// Creates a sample receiver with the given oversampling factor.
    pub fn new(samples_per_chip: usize) -> Self {
        SampleReceiver {
            modem: MskModem::new(samples_per_chip),
            chip_rx: ChipReceiver::default(),
        }
    }

    /// The chip-level receiver this front end feeds.
    pub fn chip_receiver(&self) -> &ChipReceiver {
        &self.chip_rx
    }

    /// The modem in use.
    pub fn modem(&self) -> &MskModem {
        &self.modem
    }

    /// Recovers the chip stream from raw samples: runs timing recovery,
    /// demodulates at both rail parities and keeps the alignment whose
    /// sync scan finds delimiters (preferring the parity with more /
    /// better hits). Returns the chip stream and any sync hits found.
    pub fn acquire(&self, samples: &[Complex32]) -> (ChipStream, Vec<SyncHit>) {
        let sps = self.modem.samples_per_chip();
        let window = 64.min(samples.len() / sps / 2);
        let timing = estimate_timing(&self.modem, samples, 0, window).unwrap_or(
            crate::timing::TimingEstimate {
                offset: 0,
                quality: 0.0,
            },
        );
        let n_chips = (samples.len().saturating_sub(timing.offset)) / sps;

        let mut best: Option<(ChipStream, Vec<SyncHit>)> = None;
        for parity in [true, false] {
            let chips = self
                .modem
                .demodulate_hard(samples, timing.offset, n_chips, parity);
            let hits = self.chip_rx.scan(&chips);
            let stream = ChipStream {
                chips,
                timing_offset: timing.offset,
                even_parity: parity,
            };
            let better = match &best {
                None => true,
                Some((_, best_hits)) => score(&hits) > score(best_hits),
            };
            if better {
                best = Some((stream, hits));
            }
        }
        best.expect("two candidates always evaluated")
    }

    /// Despreads a symbol range of an acquired chip stream.
    pub fn despread(&self, stream: &ChipStream, chip_offset: usize, n_symbols: usize) -> SoftSpan {
        self.chip_rx.despread(&stream.chips, chip_offset, n_symbols)
    }
}

/// Sync-quality score used to pick a rail parity: more hits win; among
/// equal counts, lower total distance wins.
fn score(hits: &[SyncHit]) -> (usize, i64) {
    let total: i64 = hits.iter().map(|h| h.distance as i64).sum();
    (hits.len(), -total)
}

/// Builds the chip stream a sender emits for raw payload symbols framed by
/// preamble and postamble (no MAC structure — test helper and building
/// block for `ppr-mac`'s frame builder).
pub fn frame_chips(symbols: &[u8]) -> Vec<bool> {
    let mut chips = crate::sync::tx_preamble_chips();
    chips.extend(crate::modem::unpack_chip_words(&crate::spread::spread(
        symbols,
    )));
    chips.extend(crate::sync::tx_postamble_chips());
    chips
}

/// Packs a chip stream back into codeword-aligned words from an offset —
/// convenience for tests.
pub fn words_from(stream: &[bool], chip_offset: usize, n_symbols: usize) -> Vec<u32> {
    let end = (chip_offset + n_symbols * CHIPS_PER_SYMBOL).min(stream.len());
    pack_chip_words(&stream[chip_offset.min(end)..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spread::bytes_to_symbols;
    use crate::sync::{SyncKind, PREAMBLE_ZERO_SYMBOLS};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chip_receiver_finds_frame_and_decodes_payload() {
        let payload = b"partial packets";
        let symbols = bytes_to_symbols(payload);
        let mut stream: Vec<bool> = vec![];
        let mut rng = StdRng::seed_from_u64(7);
        stream.extend((0..333).map(|_| rng.gen::<bool>()));
        stream.extend(frame_chips(&symbols));
        stream.extend((0..200).map(|_| rng.gen::<bool>()));

        let rx = ChipReceiver::default();
        let hits = rx.scan(&stream);
        let pre: Vec<_> = hits
            .iter()
            .filter(|h| h.kind == SyncKind::Preamble)
            .collect();
        let post: Vec<_> = hits
            .iter()
            .filter(|h| h.kind == SyncKind::Postamble)
            .collect();
        assert_eq!(pre.len(), 1);
        assert_eq!(post.len(), 1);

        let data_start = rx.data_start_after(pre[0]);
        let span = rx.despread(&stream, data_start, symbols.len());
        assert_eq!(span.to_bytes(), payload);
        assert!(span.hints().iter().all(|&h| h == 0));
    }

    #[test]
    fn sample_receiver_end_to_end() {
        let payload = b"dsp path";
        let symbols = bytes_to_symbols(payload);
        let chips = frame_chips(&symbols);
        let modem = MskModem::new(4);
        let mut samples = vec![Complex32::ZERO; 13]; // odd lead to stress timing
        samples.extend(modem.modulate(&chips));

        let rx = SampleReceiver::new(4);
        let (stream, hits) = rx.acquire(&samples);
        let pre: Vec<_> = hits
            .iter()
            .filter(|h| h.kind == SyncKind::Preamble)
            .collect();
        assert_eq!(pre.len(), 1, "hits: {hits:?}");
        let data_start = rx.chip_receiver().data_start_after(pre[0]);
        let span = rx.despread(&stream, data_start, symbols.len());
        assert_eq!(span.to_bytes(), payload);
    }

    #[test]
    fn postamble_alone_still_syncs() {
        // Destroy the preamble completely; the postamble must still give
        // a sync point (the rollback logic is exercised in ppr-mac).
        let payload = b"rollback!";
        let symbols = bytes_to_symbols(payload);
        let mut chips = frame_chips(&symbols);
        let mut rng = StdRng::seed_from_u64(9);
        let pre_len = crate::sync::tx_preamble_chips().len();
        for c in chips.iter_mut().take(pre_len) {
            *c = rng.gen();
        }
        let rx = ChipReceiver::default();
        let hits = rx.scan(&chips);
        assert!(hits.iter().all(|h| h.kind == SyncKind::Postamble));
        assert_eq!(hits.len(), 1);
        // Rolling back from the postamble recovers the payload: the
        // postamble starts right after the data.
        let post = hits[0];
        let data_chips = symbols.len() * CHIPS_PER_SYMBOL;
        // Postamble hit is 2 zero-symbols into the postamble run... the
        // pattern starts at (POSTAMBLE_ZERO_SYMBOLS - 2) symbols after the
        // postamble begins.
        let postamble_start =
            post.chip_offset - (crate::sync::POSTAMBLE_ZERO_SYMBOLS - 2) * CHIPS_PER_SYMBOL;
        let data_start = postamble_start - data_chips;
        assert_eq!(data_start, pre_len);
        let span = rx.despread(&chips, data_start, symbols.len());
        assert_eq!(span.to_bytes(), payload);
    }

    #[test]
    fn despread_truncated_stream_flags_missing_tail() {
        let symbols = bytes_to_symbols(b"0123456789");
        let mut chips = frame_chips(&symbols);
        // Truncate mid-codeword: 8 whole payload codewords plus 10 chips
        // of the ninth survive.
        let data_start_tx = crate::sync::tx_preamble_chips().len();
        chips.truncate(data_start_tx + 8 * CHIPS_PER_SYMBOL + 10);
        let rx = ChipReceiver::default();
        let hits = rx.scan(&chips);
        let pre = hits.iter().find(|h| h.kind == SyncKind::Preamble).unwrap();
        let data_start = rx.data_start_after(pre);
        assert_eq!(data_start, data_start_tx);
        let span = rx.despread(&chips, data_start, symbols.len());
        // Symbols whose first chip is past the end are not emitted; the
        // partially received ninth symbol is, with an honest non-zero
        // hint (no codeword has a 22-chip all-zero tail).
        assert_eq!(span.len(), 9);
        assert_eq!(&span.hints()[..8], &[0; 8]);
        assert!(span.hints()[8] > 0);
    }

    #[test]
    fn despread_words_matches_reference() {
        use crate::chips::ChipWords;
        let symbols = bytes_to_symbols(b"packed despread parity");
        let mut chips = frame_chips(&symbols);
        let mut rng = StdRng::seed_from_u64(11);
        // Corrupt a sprinkling of chips so hints are non-trivial.
        for _ in 0..200 {
            let i = rng.gen_range(0..chips.len());
            chips[i] = !chips[i];
        }
        let packed = ChipWords::from_bools(&chips);
        let rx = ChipReceiver::default();
        let data_start = crate::sync::tx_preamble_chips().len();
        // Whole section, truncated section, unaligned offset, and a
        // request running past the end of the stream.
        for (off, n) in [
            (data_start, symbols.len()),
            (data_start + 7, symbols.len()),
            (0, symbols.len() + 40),
            (chips.len() - 10, 4),
        ] {
            let a = rx.despread(&chips, off, n);
            let b = rx.despread_words(&packed, off, n);
            assert_eq!(a, b, "offset {off} n {n}");
        }
    }

    #[test]
    fn frame_chips_layout() {
        let symbols = bytes_to_symbols(&[0xFF]);
        let chips = frame_chips(&symbols);
        let expect = crate::sync::tx_preamble_chips().len()
            + 2 * CHIPS_PER_SYMBOL
            + crate::sync::tx_postamble_chips().len();
        assert_eq!(chips.len(), expect);
        // Preamble region = codeword 0 repeated: first 8 symbols' chips
        // all equal CODEBOOK[0] pattern.
        let zero = crate::chips::CODEBOOK[0];
        for s in 0..PREAMBLE_ZERO_SYMBOLS {
            let w = words_from(&chips, s * CHIPS_PER_SYMBOL, 1)[0];
            assert_eq!(w, zero);
        }
    }
}
